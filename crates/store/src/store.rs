//! The `runs/` directory: an append-only, content-addressed run log.
//!
//! Each committed run lives in one file, `<run_id>.jsonl`. Because the
//! id is a hash of the run's canonical content, commits are idempotent:
//! re-recording an unchanged evaluation maps onto the file that already
//! exists, and two stores agree on identity without coordination. Files
//! are verified against their id on load, so silent edits surface as
//! [`StoreError::Corrupt`] instead of skewed history.

use crate::record::{parse_line, render_run, run_id, MetricRecord, RunDraft, RunHeader, RunRecord};
use crate::StoreError;
use std::path::{Path, PathBuf};

/// A run as persisted: header, canonically-ordered records, and the file
/// they live in.
#[derive(Debug, Clone)]
pub struct StoredRun {
    /// The header line.
    pub header: RunHeader,
    /// The metric lines, in canonical (product, metric) order.
    pub metrics: Vec<MetricRecord>,
    /// The backing file.
    pub path: PathBuf,
    /// Whether this commit created the file (`false`: it already
    /// existed, or the run was loaded rather than committed).
    pub created: bool,
}

impl StoredRun {
    /// The records for one product, in metric order.
    pub fn product_records(&self, product: &str) -> Vec<&MetricRecord> {
        self.metrics.iter().filter(|m| m.product == product).collect()
    }

    /// Find one record by (product, metric).
    pub fn get(&self, product: &str, metric: &str) -> Option<&MetricRecord> {
        self.metrics.iter().find(|m| m.product == product && m.metric == metric)
    }
}

/// One point in a metric's history across stored runs.
#[derive(Debug, Clone)]
pub struct HistoryPoint {
    /// The run the value was recorded in.
    pub run_id: String,
    /// That run's context (`evaluate`, `fault-matrix`, `bench`, …).
    pub context: String,
    /// That run's stamp, if one was supplied.
    pub stamp: Option<String>,
    /// The product the value was recorded for.
    pub product: String,
    /// The recorded value.
    pub value: f64,
    /// Its unit.
    pub unit: String,
}

/// A directory of run files.
#[derive(Debug, Clone)]
pub struct RunStore {
    dir: PathBuf,
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io { path: path.display().to_string(), source }
}

impl RunStore {
    /// Open (creating if needed) the store at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(RunStore { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Canonicalize `draft`, compute its id, and persist it. Idempotent:
    /// if a file for the id already exists the existing run is returned
    /// (verified) with [`StoredRun::created`] `false`.
    pub fn commit(&self, draft: RunDraft) -> Result<StoredRun, StoreError> {
        let (header, metrics) = draft.canonicalize()?;
        let path = self.dir.join(format!("{}.jsonl", header.run_id));
        if path.exists() {
            return self.load_file(&path);
        }
        let text = render_run(&header, &metrics);
        std::fs::write(&path, text.as_bytes()).map_err(|e| io_err(&path, e))?;
        Ok(StoredRun { header, metrics, path, created: true })
    }

    /// Load and verify one run file.
    pub fn load_file(&self, path: impl AsRef<Path>) -> Result<StoredRun, StoreError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
        let mut header: Option<RunHeader> = None;
        let mut metrics = Vec::new();
        for (index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let at = format!("{}:{}", path.display(), index + 1);
            match parse_line(line, &at)? {
                RunRecord::Header(h) => {
                    if header.is_some() {
                        return Err(StoreError::Parse {
                            at,
                            message: "second header record in one run file".to_owned(),
                        });
                    }
                    header = Some(h);
                }
                RunRecord::Metric(m) => {
                    if header.is_none() {
                        return Err(StoreError::Parse {
                            at,
                            message: "metric record before the header".to_owned(),
                        });
                    }
                    metrics.push(m);
                }
            }
        }
        let header = header.ok_or_else(|| StoreError::Parse {
            at: path.display().to_string(),
            message: "no header record".to_owned(),
        })?;
        if header.records != metrics.len() as u64 {
            return Err(StoreError::Parse {
                at: path.display().to_string(),
                message: format!(
                    "header declares {} records but {} are present",
                    header.records,
                    metrics.len()
                ),
            });
        }
        // The id is a pure function of the content; recompute and compare
        // so a hand-edited file cannot masquerade as the recorded run.
        let recomputed =
            run_id(&header.context, &header.catalog_version, &header.provenance, &metrics);
        if recomputed != header.run_id {
            return Err(StoreError::Corrupt {
                path: path.display().to_string(),
                expected: recomputed,
            });
        }
        Ok(StoredRun { header, metrics, path: path.to_path_buf(), created: false })
    }

    /// Every run id present in the store, sorted.
    pub fn run_ids(&self) -> Result<Vec<String>, StoreError> {
        let mut ids = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(stem) = name.strip_suffix(".jsonl") {
                if stem.starts_with('r') && stem.len() == 17 {
                    ids.push(stem.to_owned());
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Load every run, sorted by id.
    pub fn list(&self) -> Result<Vec<StoredRun>, StoreError> {
        self.run_ids()?
            .into_iter()
            .map(|id| self.load_file(self.dir.join(format!("{id}.jsonl"))))
            .collect()
    }

    /// Resolve a run reference: a path (anything containing a separator
    /// or ending in `.jsonl`) is loaded directly; otherwise the ref must
    /// be a unique prefix of exactly one stored run id.
    pub fn resolve(&self, run_ref: &str) -> Result<StoredRun, StoreError> {
        if run_ref.contains('/') || run_ref.contains('\\') || run_ref.ends_with(".jsonl") {
            return self.load_file(run_ref);
        }
        let matches: Vec<String> =
            self.run_ids()?.into_iter().filter(|id| id.starts_with(run_ref)).collect();
        match matches.len() {
            0 => Err(StoreError::NotFound(run_ref.to_owned())),
            1 => self.load_file(self.dir.join(format!("{}.jsonl", matches[0]))),
            _ => Err(StoreError::Ambiguous { run_ref: run_ref.to_owned(), matches }),
        }
    }

    /// The history of one metric across every stored run, optionally
    /// narrowed to one product. Points appear in run-id order; the
    /// stamps, when supplied at record time, carry the chronology.
    pub fn history(
        &self,
        metric: &str,
        product: Option<&str>,
    ) -> Result<Vec<HistoryPoint>, StoreError> {
        let mut points = Vec::new();
        for run in self.list()? {
            for m in &run.metrics {
                if m.metric != metric {
                    continue;
                }
                if let Some(p) = product {
                    if m.product != p {
                        continue;
                    }
                }
                points.push(HistoryPoint {
                    run_id: run.header.run_id.clone(),
                    context: run.header.context.clone(),
                    stamp: run.header.stamp.clone(),
                    product: m.product.clone(),
                    value: m.value,
                    unit: m.unit.clone(),
                });
            }
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idse-store-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn draft(seed: u64, timeliness: f64) -> RunDraft {
        let mut d = RunDraft::new("evaluate", json!({ "seed": seed }));
        d.record("ExampleIDS", "Timeliness", timeliness).unwrap();
        d.record("ExampleIDS", "measure.fp_ratio", 0.05).unwrap();
        d
    }

    #[test]
    fn commit_is_idempotent_and_content_addressed() {
        let store = RunStore::open(tmp("idempotent")).unwrap();
        let first = store.commit(draft(7, 4.0)).unwrap();
        assert!(first.created);
        let again = store.commit(draft(7, 4.0)).unwrap();
        assert!(!again.created, "second commit reuses the existing file");
        assert_eq!(first.header.run_id, again.header.run_id);
        assert_eq!(store.run_ids().unwrap().len(), 1);
        let other = store.commit(draft(7, 3.0)).unwrap();
        assert_ne!(other.header.run_id, first.header.run_id);
        assert_eq!(store.run_ids().unwrap().len(), 2);
    }

    #[test]
    fn stored_bytes_round_trip_through_load() {
        let store = RunStore::open(tmp("roundtrip")).unwrap();
        let run = store.commit(draft(7, 4.0).with_stamp(Some("2026-08-08".into()))).unwrap();
        let bytes = std::fs::read(&run.path).unwrap();
        let loaded = store.load_file(&run.path).unwrap();
        assert_eq!(loaded.header.run_id, run.header.run_id);
        assert_eq!(loaded.header.stamp.as_deref(), Some("2026-08-08"));
        assert_eq!(loaded.metrics, run.metrics);
        let rerendered = render_run(&loaded.header, &loaded.metrics);
        assert_eq!(bytes, rerendered.as_bytes(), "load → render is byte-identical");
    }

    #[test]
    fn edited_files_are_rejected_as_corrupt() {
        let store = RunStore::open(tmp("corrupt")).unwrap();
        let run = store.commit(draft(7, 4.0)).unwrap();
        let text = std::fs::read_to_string(&run.path).unwrap();
        let doctored = text.replace("4.0", "2.0");
        assert_ne!(text, doctored);
        std::fs::write(&run.path, doctored).unwrap();
        assert!(matches!(store.load_file(&run.path), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn resolve_accepts_unique_prefixes_and_paths() {
        let store = RunStore::open(tmp("resolve")).unwrap();
        let run = store.commit(draft(7, 4.0)).unwrap();
        store.commit(draft(8, 4.0)).unwrap();
        let full = &run.header.run_id;
        assert_eq!(store.resolve(full).unwrap().header.run_id, *full);
        // A long prefix is unique with overwhelming probability.
        let prefix = &full[..12];
        assert_eq!(store.resolve(prefix).unwrap().header.run_id, *full);
        // "r" matches both runs.
        assert!(matches!(store.resolve("r"), Err(StoreError::Ambiguous { .. })));
        assert!(matches!(store.resolve("zzz"), Err(StoreError::NotFound(_))));
        let by_path = store.resolve(&run.path.display().to_string()).unwrap();
        assert_eq!(by_path.header.run_id, *full);
    }

    #[test]
    fn history_filters_by_metric_and_product() {
        let store = RunStore::open(tmp("history")).unwrap();
        store.commit(draft(7, 4.0).with_stamp(Some("t1".into()))).unwrap();
        store.commit(draft(8, 2.0).with_stamp(Some("t2".into()))).unwrap();
        let points = store.history("Timeliness", None).unwrap();
        assert_eq!(points.len(), 2);
        let mut values: Vec<f64> = points.iter().map(|p| p.value).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        assert_eq!(values, vec![2.0, 4.0]);
        assert!(store.history("Timeliness", Some("NoSuch")).unwrap().is_empty());
        assert_eq!(store.history("measure.fp_ratio", Some("ExampleIDS")).unwrap().len(), 2);
    }
}
