//! Direction-aware scorecard diffing between two stored runs.
//!
//! A diff is computed over the union of (product, metric) pairs in the
//! two runs. The registry's [`Direction`] supplies the regression sign:
//! a false-positive ratio that *rises* regresses, a zero-loss throughput
//! that *falls* regresses, and a neutral metric (operating sensitivity,
//! worker counts) merely *changes*. Regressions carry a normalized
//! severity — discrete deltas against the 0–4 rubric span, continuous
//! deltas relative to the baseline value — so `top-regressions` ranks a
//! 2-point rubric drop above a 0.1 ms latency wobble.

use crate::registry::{lookup, Direction, ScoreKind};
use crate::store::StoredRun;
use std::collections::BTreeMap;

/// The verdict on one (product, metric) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The value moved in the metric's unfavorable direction.
    Regressed,
    /// The value moved in the metric's favorable direction.
    Improved,
    /// Bit-identical values.
    Unchanged,
    /// The value moved, but the metric has no favorable direction.
    Changed,
    /// Present only in the second run.
    Added,
    /// Present only in the first run.
    Removed,
}

impl Verdict {
    /// Stable uppercase label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "IMPROVED",
            Verdict::Unchanged => "UNCHANGED",
            Verdict::Changed => "CHANGED",
            Verdict::Added => "ADDED",
            Verdict::Removed => "REMOVED",
        }
    }
}

/// One row of a run diff.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// The measured subject.
    pub product: String,
    /// The registry key.
    pub metric: String,
    /// The metric's unit (from whichever run recorded it).
    pub unit: String,
    /// The metric's aggregation direction.
    pub direction: Direction,
    /// Value in the first (baseline) run, if recorded there.
    pub before: Option<f64>,
    /// Value in the second (candidate) run, if recorded there.
    pub after: Option<f64>,
    /// Normalized regression magnitude; `0.0` unless the verdict is
    /// [`Verdict::Regressed`]. Discrete scores normalize against the 0–4
    /// rubric span, continuous measures against the baseline magnitude.
    pub severity: f64,
    /// The verdict.
    pub verdict: Verdict,
}

impl DiffEntry {
    /// `after - before`, when both sides recorded the metric.
    pub fn delta(&self) -> Option<f64> {
        match (self.before, self.after) {
            (Some(b), Some(a)) => Some(a - b),
            _ => None,
        }
    }

    /// One fixed-format report line, byte-stable across platforms.
    pub fn render(&self) -> String {
        let side = |v: Option<f64>| match v {
            Some(v) => format!("{v:?}"),
            None => "-".to_owned(),
        };
        let movement = match self.delta() {
            Some(d) => format!(" (delta {d:+?}, {})", self.direction.name()),
            None => String::new(),
        };
        format!(
            "{:<9} {} / {}: {} -> {} {}{}",
            self.verdict.name(),
            self.product,
            self.metric,
            side(self.before),
            side(self.after),
            self.unit,
            movement,
        )
    }
}

/// A full diff between two stored runs.
#[derive(Debug, Clone)]
pub struct RunDiff {
    /// The baseline run's id.
    pub run_a: String,
    /// The candidate run's id.
    pub run_b: String,
    /// Every (product, metric) in either run, in canonical order.
    pub entries: Vec<DiffEntry>,
}

impl RunDiff {
    /// How many entries carry `verdict`.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.entries.iter().filter(|e| e.verdict == verdict).count()
    }

    /// Whether any entry regressed — the `--fail-on-regression` signal.
    pub fn has_regressions(&self) -> bool {
        self.entries.iter().any(|e| e.verdict == Verdict::Regressed)
    }

    /// The `n` worst regressions by normalized severity (ties broken by
    /// canonical (product, metric) order, so output is deterministic).
    pub fn top_regressions(&self, n: usize) -> Vec<&DiffEntry> {
        let mut regressed: Vec<&DiffEntry> =
            self.entries.iter().filter(|e| e.verdict == Verdict::Regressed).collect();
        regressed.sort_by(|a, b| {
            b.severity.partial_cmp(&a.severity).expect("severities are finite").then_with(|| {
                (a.product.as_str(), a.metric.as_str())
                    .cmp(&(b.product.as_str(), b.metric.as_str()))
            })
        });
        regressed.truncate(n);
        regressed
    }

    /// One-line summary: `3 regressed, 1 improved, 52 unchanged, …`.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for verdict in [
            Verdict::Regressed,
            Verdict::Improved,
            Verdict::Changed,
            Verdict::Unchanged,
            Verdict::Added,
            Verdict::Removed,
        ] {
            let count = self.count(verdict);
            if count > 0 || matches!(verdict, Verdict::Regressed | Verdict::Unchanged) {
                parts.push(format!("{} {}", count, verdict.name().to_lowercase()));
            }
        }
        parts.join(", ")
    }
}

fn bits_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn classify(direction: Direction, kind: ScoreKind, before: f64, after: f64) -> (Verdict, f64) {
    if bits_equal(before, after) {
        return (Verdict::Unchanged, 0.0);
    }
    let worsening = match direction {
        Direction::HigherIsBetter => before - after,
        Direction::LowerIsBetter => after - before,
        Direction::Neutral => return (Verdict::Changed, 0.0),
    };
    if worsening > 0.0 {
        let severity = match kind {
            ScoreKind::Discrete => worsening / 4.0,
            ScoreKind::Measure => worsening / before.abs().max(1e-9),
        };
        (Verdict::Regressed, severity)
    } else {
        (Verdict::Improved, 0.0)
    }
}

/// One (before, after, unit) slot keyed by (product, metric) while the
/// union of two runs is being assembled.
type PairSlot = (Option<f64>, Option<f64>, String);

/// Diff two stored runs over the union of their (product, metric) pairs.
pub fn diff_runs(a: &StoredRun, b: &StoredRun) -> RunDiff {
    let mut pairs: BTreeMap<(String, String), PairSlot> = BTreeMap::new();
    for m in &a.metrics {
        pairs.insert((m.product.clone(), m.metric.clone()), (Some(m.value), None, m.unit.clone()));
    }
    for m in &b.metrics {
        let slot = pairs.entry((m.product.clone(), m.metric.clone())).or_insert((
            None,
            None,
            m.unit.clone(),
        ));
        slot.1 = Some(m.value);
    }
    let entries = pairs
        .into_iter()
        .map(|((product, metric), (before, after, unit))| {
            let entry = lookup(&metric);
            let direction = entry.as_ref().map_or(Direction::Neutral, |e| e.direction);
            let kind = entry.as_ref().map_or(ScoreKind::Measure, |e| e.kind);
            let (verdict, severity) = match (before, after) {
                (Some(x), Some(y)) => classify(direction, kind, x, y),
                (Some(_), None) => (Verdict::Removed, 0.0),
                (None, Some(_)) => (Verdict::Added, 0.0),
                (None, None) => (Verdict::Unchanged, 0.0),
            };
            DiffEntry { product, metric, unit, direction, before, after, severity, verdict }
        })
        .collect();
    RunDiff { run_a: a.header.run_id.clone(), run_b: b.header.run_id.clone(), entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunDraft;
    use crate::store::RunStore;
    use serde_json::json;

    fn stored(name: &str, fill: impl FnOnce(&mut RunDraft)) -> StoredRun {
        let dir = std::env::temp_dir().join(format!("idse-store-diff-{}", std::process::id()));
        let store = RunStore::open(dir).unwrap();
        let mut draft = RunDraft::new("evaluate", json!({ "fixture": name }));
        fill(&mut draft);
        store.commit(draft).unwrap()
    }

    #[test]
    fn verdicts_follow_the_direction() {
        let a = stored("dir-a", |d| {
            d.record("P", "Timeliness", 4.0).unwrap(); // higher-is-better
            d.record("P", "measure.fp_ratio", 0.05).unwrap(); // lower-is-better
            d.record("P", "measure.zero_loss_pps", 1000.0).unwrap(); // higher-is-better
            d.record("P", "measure.operating_sensitivity", 0.6).unwrap(); // neutral
            d.record("P", "ClarityOfReports", 3.0).unwrap();
            d.record("P", "measure.state_bytes", 4096.0).unwrap();
        });
        let b = stored("dir-b", |d| {
            d.record("P", "Timeliness", 2.0).unwrap(); // fell → REGRESSED
            d.record("P", "measure.fp_ratio", 0.10).unwrap(); // rose → REGRESSED
            d.record("P", "measure.zero_loss_pps", 1200.0).unwrap(); // rose → IMPROVED
            d.record("P", "measure.operating_sensitivity", 0.7).unwrap(); // moved → CHANGED
            d.record("P", "ClarityOfReports", 3.0).unwrap(); // UNCHANGED
            d.record("P", "measure.timeliness_ms", 80.0).unwrap(); // ADDED
                                                                   // measure.state_bytes absent → REMOVED
        });
        let diff = diff_runs(&a, &b);
        let verdict = |metric: &str| {
            diff.entries.iter().find(|e| e.metric == metric).expect("metric diffed").verdict
        };
        assert_eq!(verdict("Timeliness"), Verdict::Regressed);
        assert_eq!(verdict("measure.fp_ratio"), Verdict::Regressed);
        assert_eq!(verdict("measure.zero_loss_pps"), Verdict::Improved);
        assert_eq!(verdict("measure.operating_sensitivity"), Verdict::Changed);
        assert_eq!(verdict("ClarityOfReports"), Verdict::Unchanged);
        assert_eq!(verdict("measure.timeliness_ms"), Verdict::Added);
        assert_eq!(verdict("measure.state_bytes"), Verdict::Removed);
        assert!(diff.has_regressions());
        assert_eq!(diff.count(Verdict::Regressed), 2);
    }

    #[test]
    fn improvements_do_not_trip_the_gate() {
        let a = stored("gate-a", |d| {
            d.record("P", "Timeliness", 2.0).unwrap();
            d.record("P", "measure.fp_ratio", 0.10).unwrap();
        });
        let b = stored("gate-b", |d| {
            d.record("P", "Timeliness", 4.0).unwrap();
            d.record("P", "measure.fp_ratio", 0.05).unwrap();
        });
        let diff = diff_runs(&a, &b);
        assert!(!diff.has_regressions());
        assert_eq!(diff.count(Verdict::Improved), 2);
        // Reversed, both regress.
        assert_eq!(diff_runs(&b, &a).count(Verdict::Regressed), 2);
    }

    #[test]
    fn top_regressions_rank_by_normalized_severity() {
        let a = stored("rank-a", |d| {
            d.record("P", "Timeliness", 4.0).unwrap();
            d.record("P", "measure.induced_latency_ms", 100.0).unwrap();
        });
        let b = stored("rank-b", |d| {
            d.record("P", "Timeliness", 1.0).unwrap(); // 3/4 of the rubric span
            d.record("P", "measure.induced_latency_ms", 110.0).unwrap(); // +10 %
        });
        let diff = diff_runs(&a, &b);
        let top = diff.top_regressions(10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].metric, "Timeliness", "rubric collapse outranks a 10 % wobble");
        assert_eq!(top[1].metric, "measure.induced_latency_ms");
        assert_eq!(diff.top_regressions(1).len(), 1);
    }

    #[test]
    fn rendering_is_fixed_format() {
        let a = stored("render-a", |d| {
            d.record("P", "Timeliness", 4.0).unwrap();
        });
        let b = stored("render-b", |d| {
            d.record("P", "Timeliness", 2.0).unwrap();
        });
        let diff = diff_runs(&a, &b);
        let line = diff.entries[0].render();
        assert_eq!(
            line,
            "REGRESSED P / Timeliness: 4.0 -> 2.0 score/0-4 (delta -2.0, higher-is-better)"
        );
        assert_eq!(diff.summary(), "1 regressed, 0 unchanged");
    }
}
