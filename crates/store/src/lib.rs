//! # idse-store — provenance-keyed run history for the evaluation platform
//!
//! The paper's methodology only pays off when scorecards are *comparable
//! over time*: "did metric M regress since last week's commit?" is the
//! question a procurement standard exists to answer. This crate persists
//! every evaluation as an append-only, content-addressed run log and makes
//! that question a query:
//!
//! * [`registry`] — the typed metric catalog: every discrete metric from
//!   `idse-core`'s 56-entry catalog plus the continuous measurements the
//!   harness records alongside them, each with a unit, a score kind, and
//!   an aggregation **direction** ("is higher better"), so diffs know the
//!   sign of a regression;
//! * [`record`] — one JSONL record per (run, product, metric) under a
//!   run-header record carrying full provenance (master seed, fault-plan
//!   hash, sweep plan, git rev, catalog version, telemetry summary);
//! * [`store`] — the `runs/` directory: content-hashed run ids, so
//!   re-recording an unchanged run is a no-op and two stores agree on
//!   identity without coordination;
//! * [`diff`] — per-metric delta tables with direction-aware
//!   REGRESSED / IMPROVED / CHANGED verdicts, the engine behind CI's
//!   `store diff --fail-on-regression` gate;
//! * [`spark`] — unicode sparklines over a metric's history, one bar per
//!   stored run, so trend shape is visible straight from the terminal;
//! * [`journal`] — the evaluation daemon's append-only job journal:
//!   line-at-a-time JSONL transitions with crash recovery (torn trailing
//!   line tolerated, `Running` jobs re-marked `Aborted`, `Queued` jobs
//!   resumed).
//!
//! # Determinism contract
//!
//! Nothing in this crate reads a clock or an environment: run files are a
//! pure function of the recorded values and the provenance handed in.
//! Timestamps exist only as an opaque `--stamp` passthrough, excluded
//! from the content hash, so a re-run of an unchanged evaluation maps to
//! the *same* run id byte-for-byte at any `--jobs N`.
//!
//! ```
//! use idse_store::{diff_runs, RunDraft, Verdict};
//! use serde_json::json;
//!
//! let mut a = RunDraft::new("evaluate", json!({ "seed": 7u64 }));
//! a.record("ExampleIDS", "Timeliness", 4.0).expect("known metric");
//! let mut b = RunDraft::new("evaluate", json!({ "seed": 7u64 }));
//! b.record("ExampleIDS", "Timeliness", 2.0).expect("known metric");
//!
//! let dir = std::env::temp_dir().join(format!("idse-store-doc-{}", std::process::id()));
//! let store = idse_store::RunStore::open(&dir).expect("store opens");
//! let ra = store.commit(a).expect("run commits");
//! let rb = store.commit(b).expect("run commits");
//! let diff = diff_runs(&ra, &rb);
//! assert_eq!(diff.entries[0].verdict, Verdict::Regressed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod journal;
pub mod record;
pub mod registry;
pub mod spark;
pub mod store;

pub use diff::{diff_runs, DiffEntry, RunDiff, Verdict};
pub use journal::{JobState, Journal, JournalEntry, JournaledJob};
pub use record::{MetricRecord, RunDraft, RunHeader, SCHEMA_VERSION};
pub use registry::{catalog_version, lookup, registry, Direction, MetricEntry, ScoreKind};
pub use spark::{history_sparklines, sparkline};
pub use store::{HistoryPoint, RunStore, StoredRun};

/// 64-bit FNV-1a over a byte string — the content hash behind run ids and
/// the catalog fingerprint. Hand-rolled so the store stays dependency-free
/// and two builds of the workspace agree on every id.
pub fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Everything that can go wrong talking to a run store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble at `path`.
    Io {
        /// The path being read or written.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A run file line did not parse as a store record.
    Parse {
        /// File (and line, 1-based) the problem was found at.
        at: String,
        /// What was wrong.
        message: String,
    },
    /// A metric key absent from the [`registry`].
    UnknownMetric(String),
    /// Two records for the same (product, metric) in one run.
    DuplicateRecord {
        /// The product both records name.
        product: String,
        /// The metric both records name.
        metric: String,
    },
    /// A recorded value that is not representable (non-finite, or a
    /// discrete score outside 0–4).
    InvalidValue {
        /// The metric the value was recorded for.
        metric: String,
        /// Why the value was rejected.
        message: String,
    },
    /// A run reference that matched nothing in the store.
    NotFound(String),
    /// A run-id prefix that matched more than one run.
    Ambiguous {
        /// The ambiguous reference.
        run_ref: String,
        /// Every run id it matched.
        matches: Vec<String>,
    },
    /// A run file whose recomputed content hash disagrees with its id —
    /// the file was edited after it was recorded.
    Corrupt {
        /// The offending file.
        path: String,
        /// The id the content actually hashes to.
        expected: String,
    },
    /// An empty draft: a run must carry at least one metric record.
    EmptyRun,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "{path}: {source}"),
            StoreError::Parse { at, message } => write!(f, "{at}: {message}"),
            StoreError::UnknownMetric(key) => {
                write!(f, "unknown metric key {key:?} (not in the catalog registry)")
            }
            StoreError::DuplicateRecord { product, metric } => {
                write!(f, "duplicate record for ({product:?}, {metric:?}) in one run")
            }
            StoreError::InvalidValue { metric, message } => {
                write!(f, "invalid value for {metric:?}: {message}")
            }
            StoreError::NotFound(run_ref) => write!(f, "no run matches {run_ref:?}"),
            StoreError::Ambiguous { run_ref, matches } => {
                write!(f, "run ref {run_ref:?} is ambiguous: matches {}", matches.join(", "))
            }
            StoreError::Corrupt { path, expected } => write!(
                f,
                "{path}: content does not hash to its run id (got {expected}); \
                 the file was modified after it was recorded"
            ),
            StoreError::EmptyRun => write!(f, "a run must contain at least one metric record"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn errors_render_their_context() {
        let e = StoreError::UnknownMetric("measure.bogus".to_owned());
        assert!(e.to_string().contains("measure.bogus"));
        let e = StoreError::Ambiguous {
            run_ref: "r1".to_owned(),
            matches: vec!["r1a".to_owned(), "r1b".to_owned()],
        };
        assert!(e.to_string().contains("r1a, r1b"));
    }
}
