//! Run records: the JSONL schema of one stored run.
//!
//! A run file is one header line followed by one line per
//! (product, metric), in canonical `(product, metric)` order:
//!
//! ```text
//! {"kind":"header","run_id":"r…","schema":1,"context":"evaluate",…}
//! {"kind":"metric","product":"FlowHunter FH-9","metric":"AlertLossRatio","value":3.0,"unit":"score/0-4","note":"…"}
//! ```
//!
//! The run id is the FNV-1a hash of the canonical body — context,
//! catalog version, provenance, and every metric line — so identical
//! results re-recorded anywhere map to the same id. The `stamp` (an
//! opaque caller-supplied timestamp) and the telemetry summary are
//! *annotations*: they ride in the header but are excluded from the
//! hash, keeping records byte-stable under replay.

use crate::registry::{lookup, ScoreKind};
use crate::{fnv64, registry, StoreError};
use serde_json::Value;

/// Version of the run-file layout; bumped only on incompatible change.
pub const SCHEMA_VERSION: u64 = 1;

/// One (run, product, metric) observation.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRecord {
    /// The measured subject — a product name, or `product@scenario` for
    /// fault-matrix cells, or a jobs configuration for bench runs.
    pub product: String,
    /// Registry key ([`crate::registry::MetricEntry::key`]).
    pub metric: String,
    /// The observed value (discrete scores are stored as their f64
    /// embedding, 0.0–4.0).
    pub value: f64,
    /// Unit, copied from the registry at record time.
    pub unit: String,
    /// Free-form context (the scorecard note, typically).
    pub note: Option<String>,
}

impl MetricRecord {
    /// Render as one canonical JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut pairs = vec![
            ("kind".to_owned(), Value::Str("metric".to_owned())),
            ("product".to_owned(), Value::Str(self.product.clone())),
            ("metric".to_owned(), Value::Str(self.metric.clone())),
            ("value".to_owned(), Value::F64(self.value)),
            ("unit".to_owned(), Value::Str(self.unit.clone())),
        ];
        if let Some(note) = &self.note {
            pairs.push(("note".to_owned(), Value::Str(note.clone())));
        }
        serde_json::to_string(&Value::Object(pairs)).expect("a JSON value always serializes")
    }
}

/// The run-header record: identity plus provenance.
#[derive(Debug, Clone)]
pub struct RunHeader {
    /// Content-hashed id, `r` + 16 hex digits.
    pub run_id: String,
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema: u64,
    /// What produced the run: `evaluate`, `fault-matrix`, `bench`, ….
    pub context: String,
    /// [`crate::registry::catalog_version`] at record time.
    pub catalog_version: String,
    /// Opaque caller-supplied timestamp; excluded from the run id.
    pub stamp: Option<String>,
    /// Distinct products recorded, sorted.
    pub products: Vec<String>,
    /// Number of metric records that follow the header.
    pub records: u64,
    /// Full provenance (seed, feed, policy, fault-plan hash, git rev…).
    pub provenance: Value,
    /// Folded telemetry summary; excluded from the run id.
    pub telemetry: Option<Value>,
}

impl RunHeader {
    /// Render as one canonical JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut pairs = vec![
            ("kind".to_owned(), Value::Str("header".to_owned())),
            ("run_id".to_owned(), Value::Str(self.run_id.clone())),
            ("schema".to_owned(), Value::U64(self.schema)),
            ("context".to_owned(), Value::Str(self.context.clone())),
            ("catalog_version".to_owned(), Value::Str(self.catalog_version.clone())),
            (
                "stamp".to_owned(),
                match &self.stamp {
                    Some(s) => Value::Str(s.clone()),
                    None => Value::Null,
                },
            ),
            (
                "products".to_owned(),
                Value::Array(self.products.iter().map(|p| Value::Str(p.clone())).collect()),
            ),
            ("records".to_owned(), Value::U64(self.records)),
            ("provenance".to_owned(), self.provenance.clone()),
        ];
        if let Some(telemetry) = &self.telemetry {
            pairs.push(("telemetry".to_owned(), telemetry.clone()));
        }
        serde_json::to_string(&Value::Object(pairs)).expect("a JSON value always serializes")
    }
}

/// Render a complete run file (header + sorted metric lines).
pub fn render_run(header: &RunHeader, metrics: &[MetricRecord]) -> String {
    let mut text = String::with_capacity(128 * (metrics.len() + 1));
    text.push_str(&header.to_jsonl());
    text.push('\n');
    for m in metrics {
        text.push_str(&m.to_jsonl());
        text.push('\n');
    }
    text
}

/// Compute the content-hashed run id over the canonical body. The stamp
/// and telemetry annotations are deliberately excluded.
pub fn run_id(
    context: &str,
    catalog_version: &str,
    provenance: &Value,
    metrics: &[MetricRecord],
) -> String {
    let mut body = String::with_capacity(128 * (metrics.len() + 2));
    body.push_str("idse-store/run/v1\n");
    body.push_str(context);
    body.push('\n');
    body.push_str(catalog_version);
    body.push('\n');
    body.push_str(&serde_json::to_string(provenance).expect("a JSON value always serializes"));
    body.push('\n');
    for m in metrics {
        body.push_str(&m.to_jsonl());
        body.push('\n');
    }
    format!("r{:016x}", fnv64(body.as_bytes()))
}

/// A run being assembled. [`RunDraft::record`] validates every key
/// against the registry; [`crate::RunStore::commit`] canonicalizes and
/// persists it.
#[derive(Debug, Clone)]
pub struct RunDraft {
    pub(crate) context: String,
    pub(crate) provenance: Value,
    pub(crate) stamp: Option<String>,
    pub(crate) telemetry: Option<Value>,
    pub(crate) metrics: Vec<MetricRecord>,
}

impl RunDraft {
    /// An empty draft for `context` with the given provenance document.
    pub fn new(context: impl Into<String>, provenance: Value) -> Self {
        RunDraft {
            context: context.into(),
            provenance,
            stamp: None,
            telemetry: None,
            metrics: Vec::new(),
        }
    }

    /// Attach an opaque timestamp (excluded from the run id).
    pub fn with_stamp(mut self, stamp: Option<String>) -> Self {
        self.stamp = stamp;
        self
    }

    /// Attach a folded telemetry summary (excluded from the run id).
    pub fn with_telemetry(mut self, telemetry: Value) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Record one observation. The key must exist in the registry; a
    /// discrete metric must carry an integral value in 0–4; every value
    /// must be finite.
    pub fn record(&mut self, product: &str, metric: &str, value: f64) -> Result<(), StoreError> {
        self.push(product, metric, value, None)
    }

    /// [`RunDraft::record`] with a free-form note attached.
    pub fn record_noted(
        &mut self,
        product: &str,
        metric: &str,
        value: f64,
        note: impl Into<String>,
    ) -> Result<(), StoreError> {
        self.push(product, metric, value, Some(note.into()))
    }

    fn push(
        &mut self,
        product: &str,
        metric: &str,
        value: f64,
        note: Option<String>,
    ) -> Result<(), StoreError> {
        let entry = lookup(metric).ok_or_else(|| StoreError::UnknownMetric(metric.to_owned()))?;
        if !value.is_finite() {
            return Err(StoreError::InvalidValue {
                metric: metric.to_owned(),
                message: format!("{value:?} is not finite"),
            });
        }
        if entry.kind == ScoreKind::Discrete {
            let truncated = value as u8;
            let integral_in_range =
                (0.0..=4.0).contains(&value) && value.to_bits() == f64::from(truncated).to_bits();
            if !integral_in_range {
                return Err(StoreError::InvalidValue {
                    metric: metric.to_owned(),
                    message: format!("{value:?} is not an integral discrete score in 0–4"),
                });
            }
        }
        self.metrics.push(MetricRecord {
            product: product.to_owned(),
            metric: metric.to_owned(),
            value,
            unit: entry.unit.to_owned(),
            note,
        });
        Ok(())
    }

    /// Number of metric records so far.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Sort records canonically, reject duplicates, compute the id, and
    /// produce the header + records pair a store persists.
    pub(crate) fn canonicalize(mut self) -> Result<(RunHeader, Vec<MetricRecord>), StoreError> {
        if self.metrics.is_empty() {
            return Err(StoreError::EmptyRun);
        }
        self.metrics.sort_by(|a, b| {
            (a.product.as_str(), a.metric.as_str()).cmp(&(b.product.as_str(), b.metric.as_str()))
        });
        for pair in self.metrics.windows(2) {
            if pair[0].product == pair[1].product && pair[0].metric == pair[1].metric {
                return Err(StoreError::DuplicateRecord {
                    product: pair[0].product.clone(),
                    metric: pair[0].metric.clone(),
                });
            }
        }
        let mut products: Vec<String> = self.metrics.iter().map(|m| m.product.clone()).collect();
        products.dedup();
        let catalog_version = registry::catalog_version();
        let id = run_id(&self.context, &catalog_version, &self.provenance, &self.metrics);
        let header = RunHeader {
            run_id: id,
            schema: SCHEMA_VERSION,
            context: self.context,
            catalog_version,
            stamp: self.stamp,
            products,
            records: self.metrics.len() as u64,
            provenance: self.provenance,
            telemetry: self.telemetry,
        };
        Ok((header, self.metrics))
    }
}

/// One parsed line of a run file.
#[derive(Debug, Clone)]
pub enum RunRecord {
    /// The first line.
    Header(RunHeader),
    /// Every subsequent line.
    Metric(MetricRecord),
}

/// Parse one JSONL line. `at` names the file/line for error context.
pub fn parse_line(line: &str, at: &str) -> Result<RunRecord, StoreError> {
    let value: Value = serde_json::from_str(line).map_err(|e| StoreError::Parse {
        at: at.to_owned(),
        message: format!("not valid JSON: {e}"),
    })?;
    let parse = || -> Option<RunRecord> {
        match value.get("kind")?.as_str()? {
            "header" => Some(RunRecord::Header(RunHeader {
                run_id: value.get("run_id")?.as_str()?.to_owned(),
                schema: value.get("schema")?.as_u64()?,
                context: value.get("context")?.as_str()?.to_owned(),
                catalog_version: value.get("catalog_version")?.as_str()?.to_owned(),
                stamp: match value.get("stamp")? {
                    Value::Null => None,
                    other => Some(other.as_str()?.to_owned()),
                },
                products: value
                    .get("products")?
                    .as_array()?
                    .iter()
                    .map(|p| p.as_str().map(str::to_owned))
                    .collect::<Option<Vec<String>>>()?,
                records: value.get("records")?.as_u64()?,
                provenance: value.get("provenance")?.clone(),
                telemetry: value.get("telemetry").cloned(),
            })),
            "metric" => Some(RunRecord::Metric(MetricRecord {
                product: value.get("product")?.as_str()?.to_owned(),
                metric: value.get("metric")?.as_str()?.to_owned(),
                value: value.get("value")?.as_f64()?,
                unit: value.get("unit")?.as_str()?.to_owned(),
                note: match value.get("note") {
                    None => None,
                    Some(n) => Some(n.as_str()?.to_owned()),
                },
            })),
            _ => None,
        }
    };
    parse().ok_or_else(|| StoreError::Parse {
        at: at.to_owned(),
        message: "not a store record (bad or missing fields)".to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn draft() -> RunDraft {
        let mut d = RunDraft::new("evaluate", json!({ "seed": 7u64 }));
        d.record_noted("B prod", "Timeliness", 4.0, "mean 80 ms").unwrap();
        d.record("A prod", "measure.fp_ratio", 0.0375).unwrap();
        d.record("A prod", "Timeliness", 2.0).unwrap();
        d
    }

    #[test]
    fn canonicalize_sorts_and_hashes_stably() {
        let (h1, m1) = draft().canonicalize().unwrap();
        let (h2, m2) = draft().with_stamp(Some("2026-08-08".into())).canonicalize().unwrap();
        // Product-major, metric-minor order.
        assert_eq!(m1[0].product, "A prod");
        assert_eq!(m1[0].metric, "Timeliness");
        assert_eq!(m1[1].metric, "measure.fp_ratio");
        assert_eq!(m1[2].product, "B prod");
        assert_eq!(h1.products, vec!["A prod".to_owned(), "B prod".to_owned()]);
        assert_eq!(h1.records, 3);
        // The stamp is an annotation: identical content, identical id.
        assert_eq!(h1.run_id, h2.run_id);
        assert_eq!(m1, m2);
        assert!(h1.run_id.starts_with('r') && h1.run_id.len() == 17, "{}", h1.run_id);
    }

    #[test]
    fn content_changes_move_the_id() {
        let (base, _) = draft().canonicalize().unwrap();
        let mut changed = draft();
        changed.record("C prod", "measure.host_impact", 0.02).unwrap();
        let (h, _) = changed.canonicalize().unwrap();
        assert_ne!(base.run_id, h.run_id);
        let other_prov = RunDraft::new("evaluate", json!({ "seed": 8u64 }));
        let mut other_prov = other_prov;
        other_prov.record("A prod", "Timeliness", 2.0).unwrap();
        let (h2, _) = other_prov.canonicalize().unwrap();
        assert_ne!(base.run_id, h2.run_id, "provenance is part of identity");
    }

    #[test]
    fn validation_rejects_bad_records() {
        let mut d = RunDraft::new("evaluate", Value::Null);
        assert!(matches!(d.record("P", "measure.bogus", 1.0), Err(StoreError::UnknownMetric(_))));
        assert!(matches!(d.record("P", "Timeliness", 2.5), Err(StoreError::InvalidValue { .. })));
        assert!(matches!(d.record("P", "Timeliness", 5.0), Err(StoreError::InvalidValue { .. })));
        assert!(matches!(
            d.record("P", "measure.fp_ratio", f64::NAN),
            Err(StoreError::InvalidValue { .. })
        ));
        assert!(RunDraft::new("evaluate", Value::Null).canonicalize().is_err());
        d.record("P", "Timeliness", 3.0).unwrap();
        d.record("P", "Timeliness", 3.0).unwrap();
        assert!(matches!(d.canonicalize(), Err(StoreError::DuplicateRecord { .. })));
    }

    #[test]
    fn lines_round_trip() {
        let (header, metrics) = draft().with_stamp(Some("s1".into())).canonicalize().unwrap();
        for record in std::iter::once(RunRecord::Header(header.clone()))
            .chain(metrics.iter().cloned().map(RunRecord::Metric))
        {
            let line = match &record {
                RunRecord::Header(h) => h.to_jsonl(),
                RunRecord::Metric(m) => m.to_jsonl(),
            };
            let back = parse_line(&line, "test:1").unwrap();
            let reline = match &back {
                RunRecord::Header(h) => h.to_jsonl(),
                RunRecord::Metric(m) => m.to_jsonl(),
            };
            assert_eq!(line, reline, "canonical lines re-render byte-identically");
        }
        assert!(parse_line("{\"kind\":\"mystery\"}", "test:1").is_err());
        assert!(parse_line("not json", "test:1").is_err());
    }
}
