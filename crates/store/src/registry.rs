//! The typed metric catalog registry.
//!
//! Modeled on clarium's `performance.metric_def` table: every metric the
//! store will accept is declared up front with an id, a display name, a
//! class, a unit, a score kind and — the part diffing depends on — an
//! aggregation **direction**. A run record naming a key outside this
//! registry is rejected at record time, so the store can never silently
//! accumulate typo'd series.
//!
//! Two families of entries:
//!
//! * the **56 discrete metrics** generated from [`idse_core::catalog`]
//!   (keyed by their `MetricId` variant name, e.g. `"Timeliness"`), all
//!   scored 0–4 where higher is more favorable;
//! * the **continuous measurements** the harness records alongside them
//!   (keyed `measure.*` / `bench.*`), where direction varies: a
//!   false-positive ratio regresses *upward*, a zero-loss throughput
//!   regresses *downward*, and an operating sensitivity merely *changes*.

use crate::fnv64;
use idse_core::catalog::{catalog, fingerprint};

/// Which way "better" points for a metric — the regression sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are more favorable (all discrete 0–4 scores,
    /// throughput, detection rate).
    HigherIsBetter,
    /// Smaller values are more favorable (error ratios, latencies,
    /// footprints, wall time).
    LowerIsBetter,
    /// Neither direction is a regression; a delta is just a change
    /// (operating sensitivity, worker counts).
    Neutral,
}

impl Direction {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher-is-better",
            Direction::LowerIsBetter => "lower-is-better",
            Direction::Neutral => "neutral",
        }
    }
}

/// How a metric's values are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreKind {
    /// A 0–4 discrete rubric score ([`idse_core::DiscreteScore`]).
    Discrete,
    /// A continuous measured quantity.
    Measure,
}

impl ScoreKind {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ScoreKind::Discrete => "discrete",
            ScoreKind::Measure => "measure",
        }
    }
}

/// One registry row: everything the store knows about a metric key.
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// The record key (`MetricId` variant name, or `measure.*`/`bench.*`).
    pub key: String,
    /// Human-readable name.
    pub name: String,
    /// Metric class: the paper's three classes for discrete metrics,
    /// `Measurement`/`Benchmark` for the continuous families.
    pub class: &'static str,
    /// Unit the value is expressed in.
    pub unit: &'static str,
    /// Discrete rubric score or continuous measurement.
    pub kind: ScoreKind,
    /// Aggregation direction — the regression sign.
    pub direction: Direction,
}

/// The continuous measurement keys the harness and benches record,
/// alongside the discrete catalog. Key, name, unit, direction.
const MEASURES: &[(&str, &str, &str, Direction)] = &[
    ("measure.operating_sensitivity", "Operating sensitivity", "sensitivity", Direction::Neutral),
    ("measure.fp_ratio", "False-positive ratio |D-A|/|T|", "ratio", Direction::LowerIsBetter),
    ("measure.fn_ratio", "False-negative ratio |A-D|/|T|", "ratio", Direction::LowerIsBetter),
    ("measure.detection_rate", "Detection rate", "ratio", Direction::HigherIsBetter),
    ("measure.zero_loss_pps", "Zero-loss throughput", "pps", Direction::HigherIsBetter),
    ("measure.lethal_dose_pps", "Network lethal dose", "pps", Direction::HigherIsBetter),
    (
        "measure.induced_latency_ms",
        "Induced traffic latency (mean)",
        "ms",
        Direction::LowerIsBetter,
    ),
    ("measure.timeliness_ms", "Detection timeliness (mean)", "ms", Direction::LowerIsBetter),
    ("measure.host_impact", "Monitored-host CPU impact", "fraction", Direction::LowerIsBetter),
    ("measure.state_bytes", "Engine state size", "bytes", Direction::LowerIsBetter),
    (
        "measure.detection_retention",
        "Detection retention under faults",
        "ratio",
        Direction::HigherIsBetter,
    ),
    (
        "measure.alert_loss_ratio",
        "Alert loss ratio under faults",
        "ratio",
        Direction::LowerIsBetter,
    ),
    ("measure.mean_reroute_us", "Mean time to reroute", "us", Direction::LowerIsBetter),
    ("measure.recovery_completeness", "Recovery completeness", "ratio", Direction::HigherIsBetter),
    ("measure.rerouted", "Work items rerouted", "count", Direction::Neutral),
    ("measure.replayed", "Buffered items replayed", "count", Direction::Neutral),
    ("measure.lost_alerts", "Alerts lost to faults", "count", Direction::LowerIsBetter),
    (
        "measure.audit_share",
        "Host CPU share of audit logging",
        "fraction",
        Direction::LowerIsBetter,
    ),
    (
        "measure.agent_share",
        "Host CPU share of audit + agent analysis",
        "fraction",
        Direction::LowerIsBetter,
    ),
    (
        "measure.production_events_per_sec",
        "Production events completed per second",
        "events/s",
        Direction::HigherIsBetter,
    ),
    ("measure.eer_sensitivity", "Equal-error-rate sensitivity", "sensitivity", Direction::Neutral),
    ("measure.eer_rate", "Equal error rate", "ratio", Direction::LowerIsBetter),
    ("measure.trust_detection", "Trust-exploit detection rate", "ratio", Direction::HigherIsBetter),
    ("measure.alerts", "Raw alert volume", "count", Direction::Neutral),
    ("measure.triaged", "Alerts triaged within operator budget", "count", Direction::Neutral),
    (
        "measure.effective_detection",
        "Human-constrained effective detection",
        "ratio",
        Direction::HigherIsBetter,
    ),
    ("measure.alerts_per_kpkt", "Alerts per thousand packets", "alerts/kpkt", Direction::Neutral),
    ("measure.ops_per_pkt", "Inspection cost per packet", "ops/pkt", Direction::LowerIsBetter),
    ("measure.byte_entropy", "Payload byte entropy", "bits", Direction::Neutral),
    ("measure.printable_fraction", "Printable payload fraction", "fraction", Direction::Neutral),
    ("measure.realism_score", "Payload realism score", "score", Direction::HigherIsBetter),
    ("bench.wall_ms", "Benchmark wall time", "ms", Direction::LowerIsBetter),
    ("bench.workers", "Resolved worker count", "count", Direction::Neutral),
    ("bench.speedup", "Parallel speedup", "x", Direction::HigherIsBetter),
    ("bench.lint_cold_ms", "Lint cold wall time", "ms", Direction::LowerIsBetter),
    ("bench.lint_warm_ms", "Lint warm wall time", "ms", Direction::LowerIsBetter),
    ("bench.engine_mb_s", "Signature-engine scan throughput", "MiB/s", Direction::HigherIsBetter),
    ("bench.sim_events_s", "Sim kernel dispatch throughput", "events/s", Direction::HigherIsBetter),
];

/// The complete registry: the 56 discrete catalog metrics (in catalog
/// order) followed by the continuous measurement keys.
pub fn registry() -> Vec<MetricEntry> {
    let mut entries = Vec::with_capacity(80);
    for def in catalog() {
        entries.push(MetricEntry {
            // The derive'd Debug name equals the serde name for unit
            // variants, so registry keys match serialized MetricIds.
            key: format!("{:?}", def.id),
            name: def.name.to_owned(),
            class: def.class.name(),
            unit: "score/0-4",
            kind: ScoreKind::Discrete,
            direction: Direction::HigherIsBetter,
        });
    }
    for &(key, name, unit, direction) in MEASURES {
        entries.push(MetricEntry {
            key: key.to_owned(),
            name: name.to_owned(),
            class: if key.starts_with("bench.") { "Benchmark" } else { "Measurement" },
            unit,
            kind: ScoreKind::Measure,
            direction,
        });
    }
    entries
}

/// Look up one registry entry by key.
pub fn lookup(key: &str) -> Option<MetricEntry> {
    registry().into_iter().find(|e| e.key == key)
}

/// The catalog version stamped into every run header: entry count plus a
/// fingerprint over the full registry *and* the `idse-core` catalog
/// export, so any change to a metric's identity, anchors, unit or
/// direction produces runs that no longer claim comparability.
pub fn catalog_version() -> String {
    let mut acc = String::with_capacity(4096);
    acc.push_str("idse-store-registry/v1\n");
    acc.push_str(&format!("core-catalog {:016x}\n", fingerprint()));
    let entries = registry();
    for e in &entries {
        acc.push_str(&format!(
            "{}|{}|{}|{}|{}|{}\n",
            e.key,
            e.name,
            e.class,
            e.unit,
            e.kind.name(),
            e.direction.name()
        ));
    }
    format!("c{}-{:016x}", entries.len(), fnv64(acc.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_core::MetricId;

    #[test]
    fn registry_covers_the_full_catalog_plus_measures() {
        let entries = registry();
        let discrete = entries.iter().filter(|e| e.kind == ScoreKind::Discrete).count();
        assert_eq!(discrete, 56, "every catalog metric is registered");
        assert_eq!(entries.len(), 56 + MEASURES.len());
        // Keys are unique.
        let keys: std::collections::BTreeSet<&str> =
            entries.iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys.len(), entries.len());
    }

    #[test]
    fn discrete_keys_match_serialized_metric_ids() {
        let serialized = serde_json::to_string(&MetricId::Timeliness).expect("id serializes");
        assert_eq!(serialized, "\"Timeliness\"");
        let entry = lookup("Timeliness").expect("Timeliness is registered");
        assert_eq!(entry.unit, "score/0-4");
        assert_eq!(entry.direction, Direction::HigherIsBetter);
        assert_eq!(entry.class, "Performance");
    }

    #[test]
    fn measures_carry_real_directions() {
        assert_eq!(
            lookup("measure.fp_ratio").expect("registered").direction,
            Direction::LowerIsBetter
        );
        assert_eq!(
            lookup("measure.zero_loss_pps").expect("registered").direction,
            Direction::HigherIsBetter
        );
        assert_eq!(
            lookup("measure.operating_sensitivity").expect("registered").direction,
            Direction::Neutral
        );
        assert!(lookup("measure.no_such_key").is_none());
    }

    #[test]
    fn catalog_version_is_stable_within_a_build() {
        let v = catalog_version();
        assert_eq!(v, catalog_version());
        assert!(v.starts_with(&format!("c{}-", registry().len())), "{v}");
    }
}
