//! Unicode sparklines over metric history.
//!
//! `store history <metric>` answers "what are the values"; the sparkline
//! view answers "what is the shape" — a regression that crept in over ten
//! runs is obvious as a bar ramp where a table of 10 floats is not. The
//! rendering is pure text (the eight U+2581..U+2588 block elements), so it
//! survives CI logs and `--out` capture byte-for-byte.

use crate::store::HistoryPoint;

/// The eight block elements, shortest to tallest.
const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render `values` as one bar character each, scaled so the minimum maps
/// to `▁` and the maximum to `█`. A flat series (or a single point) has no
/// shape to show and renders as mid-height `▄` bars; an empty series
/// renders as an empty string.
pub fn sparkline(values: &[f64]) -> String {
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if span > 0.0 {
                // Index 0..=7; the `min` guards the max-value rounding edge.
                BARS[((((v - min) / span) * 7.0).round() as usize).min(7)]
            } else {
                BARS[3]
            }
        })
        .collect()
}

/// Render integral values as the integers they are, everything else with
/// four decimals — matches how the store's own tables print measurements.
fn fmt_value(v: f64) -> String {
    // idse-lint: allow(float-eq-comparison, reason = "exact-zero sentinel: only a bit-exact integral value renders as an integer")
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

/// One sparkline line per product, in order of first appearance in
/// `points` (which [`crate::RunStore::history`] yields in run order, so
/// the bars read oldest-to-newest left-to-right). Each line carries the
/// product, the bars, and the min/max/latest annotation that anchors the
/// bar scale to real numbers.
pub fn history_sparklines(points: &[HistoryPoint]) -> Vec<String> {
    let mut products: Vec<&str> = Vec::new();
    for p in points {
        if !products.contains(&p.product.as_str()) {
            products.push(&p.product);
        }
    }
    let width = products.iter().map(|p| p.chars().count()).max().unwrap_or(0);
    products
        .iter()
        .map(|product| {
            let series: Vec<&HistoryPoint> =
                points.iter().filter(|p| p.product == *product).collect();
            let values: Vec<f64> = series.iter().map(|p| p.value).collect();
            let (mut min, mut max) = (values[0], values[0]);
            for &v in &values[1..] {
                min = min.min(v);
                max = max.max(v);
            }
            let unit = &series[0].unit;
            let unit_suffix = if unit.is_empty() { String::new() } else { format!(" {unit}") };
            format!(
                "{product:width$}  {}  min {} max {} last {}{unit_suffix} ({} runs)",
                sparkline(&values),
                fmt_value(min),
                fmt_value(max),
                fmt_value(values[values.len() - 1]),
                values.len()
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(product: &str, value: f64) -> HistoryPoint {
        HistoryPoint {
            run_id: "r".to_owned(),
            context: "bench".to_owned(),
            stamp: None,
            product: product.to_owned(),
            value,
            unit: "ms".to_owned(),
        }
    }

    #[test]
    fn ramps_span_the_full_bar_range() {
        let bars = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(bars, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn flat_and_single_series_render_mid_height() {
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
        assert_eq!(sparkline(&[42.0]), "▄");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn extremes_always_map_to_the_end_bars() {
        let bars: Vec<char> = sparkline(&[10.0, 11.0, 400.0]).chars().collect();
        assert_eq!(bars[0], '▁');
        assert_eq!(bars[2], '█');
    }

    #[test]
    fn history_lines_group_by_product_in_first_seen_order() {
        let points = vec![
            point("jobs=1", 100.0),
            point("jobs=8", 30.0),
            point("jobs=1", 80.0),
            point("jobs=8", 25.0),
            point("jobs=1", 60.0),
        ];
        let lines = history_sparklines(&points);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("jobs=1"), "{}", lines[0]);
        assert!(lines[0].contains("min 60 max 100 last 60 ms (3 runs)"), "{}", lines[0]);
        assert!(lines[1].contains("min 25 max 30 last 25 ms (2 runs)"), "{}", lines[1]);
        // Oldest-to-newest, falling: first bar tallest, last shortest.
        let bars: Vec<char> = lines[0].split_whitespace().nth(1).unwrap().chars().collect();
        assert_eq!(bars.first(), Some(&'█'));
        assert_eq!(bars.last(), Some(&'▁'));
    }

    #[test]
    fn fractional_annotations_keep_four_decimals() {
        let points = vec![point("overall", 3.25), point("overall", 3.5)];
        let lines = history_sparklines(&points);
        assert!(lines[0].contains("min 3.2500 max 3.5000 last 3.5000"), "{}", lines[0]);
    }

    #[test]
    fn empty_history_renders_no_lines() {
        assert!(history_sparklines(&[]).is_empty());
    }
}
