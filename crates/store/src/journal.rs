//! Append-only job journal — the daemon's crash-safe memory.
//!
//! The evaluation daemon survives restarts by writing one JSONL line per
//! job state transition to a journal file *before* acting on the
//! transition. On startup it folds the journal: jobs whose last state was
//! terminal are history, jobs still `Queued` are re-queued, and jobs
//! caught `Running` mid-crash are re-marked [`JobState::Aborted`] with an
//! explanatory detail (the work they did is unrecoverable — reruns are
//! cheap and deterministic, silent half-results are not).
//!
//! Crash tolerance is structural, not transactional: appends flush and
//! sync line-at-a-time, and the loader ignores a torn trailing line (the
//! one write a crash can interrupt). Everything else is ordinary JSONL —
//! inspectable with the same tools as the run store's records.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Lifecycle state of a journaled job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted and waiting for a queue slot.
    Queued,
    /// Claimed by the executor.
    Running,
    /// Finished successfully.
    Completed,
    /// Cancelled on request; partial telemetry may have been flushed.
    Cancelled,
    /// The job itself failed (invalid spec, store error, …).
    Failed,
    /// The daemon died while the job was running.
    Aborted,
}

impl JobState {
    /// Stable lowercase name for listings.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
            JobState::Aborted => "aborted",
        }
    }

    /// Whether the job can change state again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed | JobState::Aborted
        )
    }
}

/// One journal line: job `id` entered `state`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Daemon-assigned job id (monotonic per daemon lifetime).
    pub id: u64,
    /// The state the job entered.
    pub state: JobState,
    /// Human-readable context: a cancel reason, an error, a run id.
    pub detail: Option<String>,
    /// The submitted job spec, carried on the `Queued` line only so a
    /// restart can resume queued work.
    pub spec: Option<Value>,
}

impl JournalEntry {
    /// A bare transition with no detail or spec payload.
    pub fn transition(id: u64, state: JobState) -> Self {
        JournalEntry { id, state, detail: None, spec: None }
    }
}

/// A job's folded journal history: its latest state plus the submit-time
/// payload.
#[derive(Debug, Clone, PartialEq)]
pub struct JournaledJob {
    /// Daemon-assigned job id.
    pub id: u64,
    /// Latest state observed in the journal.
    pub state: JobState,
    /// Detail from the latest transition that carried one.
    pub detail: Option<String>,
    /// The spec recorded on the `Queued` line, if any.
    pub spec: Option<Value>,
}

/// The append-only journal file.
pub struct Journal {
    path: PathBuf,
    file: File,
    entries: Vec<JournalEntry>,
}

impl Journal {
    /// Open (or create) the journal at `path`, loading every intact line.
    ///
    /// A torn trailing line — the footprint of a crash mid-append — is
    /// skipped; any other malformed line is an error, because it means
    /// something other than this daemon wrote the file.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let entries = parse_journal(&text).map_err(std::io::Error::other)?;
        Ok(Journal { path, file, entries })
    }

    /// The journal file's location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All intact entries, in append order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Append one transition, flushing and syncing before returning so a
    /// crash after `append` cannot lose the line.
    pub fn append(&mut self, entry: JournalEntry) -> std::io::Result<()> {
        let mut line = serde_json::to_string(&entry).map_err(std::io::Error::other)?;
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.entries.push(entry);
        Ok(())
    }

    /// Fold the journal into per-job final states, keyed by job id.
    pub fn fold(&self) -> BTreeMap<u64, JournaledJob> {
        let mut jobs: BTreeMap<u64, JournaledJob> = BTreeMap::new();
        for entry in &self.entries {
            let job = jobs.entry(entry.id).or_insert_with(|| JournaledJob {
                id: entry.id,
                state: entry.state,
                detail: None,
                spec: None,
            });
            job.state = entry.state;
            if entry.detail.is_some() {
                job.detail = entry.detail.clone();
            }
            if entry.spec.is_some() {
                job.spec = entry.spec.clone();
            }
        }
        jobs
    }

    /// Crash recovery: append an `Aborted` line for every job the journal
    /// left `Running`, then return the folded state. Queued jobs come back
    /// in the returned map still `Queued` — the caller re-queues them in
    /// id order.
    pub fn recover(&mut self, reason: &str) -> std::io::Result<BTreeMap<u64, JournaledJob>> {
        let folded = self.fold();
        for job in folded.values() {
            if job.state == JobState::Running {
                let mut entry = JournalEntry::transition(job.id, JobState::Aborted);
                entry.detail = Some(reason.to_owned());
                self.append(entry)?;
            }
        }
        Ok(self.fold())
    }

    /// The highest job id the journal has seen, for id-allocation resume.
    pub fn max_id(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.id).max()
    }
}

/// Parse journal text, tolerating exactly one torn trailing line.
fn parse_journal(text: &str) -> Result<Vec<JournalEntry>, String> {
    let mut entries = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, line)) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalEntry>(line) {
            Ok(entry) => entries.push(entry),
            // The final line may be torn by a crash mid-write; anything
            // earlier is corruption worth failing loudly over.
            Err(_) if lines.peek().is_none() => break,
            Err(e) => return Err(format!("journal line {}: {e}", idx + 1)),
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("idse-journal-{tag}-{}", std::process::id()))
    }

    #[test]
    fn appends_survive_reopen() {
        let path = temp_journal("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = Journal::open(&path).expect("opens");
            let mut submitted = JournalEntry::transition(1, JobState::Queued);
            submitted.spec = Some(json!({ "kind": "evaluate" }));
            journal.append(submitted).expect("appends");
            journal.append(JournalEntry::transition(1, JobState::Running)).expect("appends");
        }
        let journal = Journal::open(&path).expect("reopens");
        assert_eq!(journal.entries().len(), 2);
        let folded = journal.fold();
        assert_eq!(folded[&1].state, JobState::Running);
        assert!(folded[&1].spec.is_some(), "submit payload survives the fold");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn a_torn_trailing_line_is_ignored() {
        let path = temp_journal("torn");
        let entry = JournalEntry::transition(3, JobState::Queued);
        let mut text = serde_json::to_string(&entry).expect("entry serializes");
        text.push('\n');
        text.push_str("{\"id\": 4, \"state\": \"Ru"); // crash mid-append
        std::fs::write(&path, text).expect("writes");
        let journal = Journal::open(&path).expect("opens despite the torn line");
        assert_eq!(journal.entries().len(), 1);
        assert_eq!(journal.entries()[0].id, 3);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn a_malformed_interior_line_fails_loudly() {
        let path = temp_journal("corrupt");
        std::fs::write(
            &path,
            "not json\n{\"id\":1,\"state\":\"Queued\",\"detail\":null,\"spec\":null}\n",
        )
        .expect("writes");
        assert!(Journal::open(&path).is_err(), "interior corruption is not a torn line");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn recover_aborts_running_jobs_and_requeues_nothing_terminal() {
        let path = temp_journal("recover");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = Journal::open(&path).expect("opens");
            for id in 1..=4 {
                journal.append(JournalEntry::transition(id, JobState::Queued)).expect("appends");
            }
            journal.append(JournalEntry::transition(1, JobState::Running)).expect("appends");
            journal.append(JournalEntry::transition(1, JobState::Completed)).expect("appends");
            journal.append(JournalEntry::transition(2, JobState::Running)).expect("appends");
            // ... daemon dies here: 2 running, 3 and 4 still queued.
        }
        let mut journal = Journal::open(&path).expect("reopens");
        let folded = journal.recover("daemon restarted mid-run").expect("recovers");
        assert_eq!(folded[&1].state, JobState::Completed);
        assert_eq!(folded[&2].state, JobState::Aborted);
        assert_eq!(folded[&2].detail.as_deref(), Some("daemon restarted mid-run"));
        assert_eq!(folded[&3].state, JobState::Queued);
        assert_eq!(folded[&4].state, JobState::Queued);
        assert_eq!(journal.max_id(), Some(4));

        // Recovery is itself journaled: a second restart sees the abort.
        let journal = Journal::open(&path).expect("reopens again");
        assert_eq!(journal.fold()[&2].state, JobState::Aborted);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn terminal_states_are_exactly_the_non_resumable_ones() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        for state in [JobState::Completed, JobState::Cancelled, JobState::Failed, JobState::Aborted]
        {
            assert!(state.is_terminal(), "{} is terminal", state.name());
        }
    }
}
