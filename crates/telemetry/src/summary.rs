//! Aggregation of recorded events into a per-stage report.
//!
//! [`summarize`] folds an event slice (typically a [`MemorySink`]
//! snapshot) into per-name statistics:
//!
//! * **spans** → count, total/mean/p50/p95/max duration, and occupancy
//!   (fraction of the observed sim-time window spent inside the span —
//!   the per-stage busy fraction that locates the throughput knee);
//! * **counters** → total plus first/last advance time (so e.g.
//!   time-to-first-alert falls out of the `pipeline.alert` counter);
//! * **gauges** → sample count, min/mean/p50/p95/max, last value.
//!
//! Everything is computed from sim-time stamps, so two summaries of the
//! same seeded run are identical.
//!
//! [`MemorySink`]: crate::MemorySink

use crate::{Event, EventKind, SimNanos};
use serde::Serialize;
use std::collections::BTreeMap;

/// Statistics for one named span (pipeline stage).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanStats {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub max_ns: u64,
    /// Fraction of the observed window spent inside this span. Can
    /// exceed 1.0 when the stage has parallel servers.
    pub occupancy: f64,
}

/// Statistics for one monotonic counter.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterStats {
    pub name: &'static str,
    pub total: f64,
    pub first_at: SimNanos,
    pub last_at: SimNanos,
}

/// Statistics for one sampled gauge.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeStats {
    pub name: &'static str,
    pub samples: u64,
    pub min: f64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub max: f64,
    pub last: f64,
}

/// The aggregated view of one run's telemetry.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TelemetrySummary {
    /// Sim-time extent of the observed events (first..last stamp).
    pub window_ns: u64,
    /// Events the ring buffer evicted before this summary was taken —
    /// nonzero means the statistics below describe a truncated window
    /// and should be read with suspicion. Populated by
    /// [`summarize_sink`]; plain [`summarize`] cannot see the sink and
    /// leaves it 0.
    pub dropped_events: u64,
    pub spans: Vec<SpanStats>,
    pub counters: Vec<CounterStats>,
    pub gauges: Vec<GaugeStats>,
}

impl TelemetrySummary {
    /// Look up a span by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<&CounterStats> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeStats> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Render a fixed-width text report (deterministic ordering).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry summary (window {:.3} ms sim-time)\n",
            self.window_ns as f64 / 1e6
        ));
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "  dropped_events {:>26} (ring buffer evicted; stats cover a truncated window)\n",
                self.dropped_events
            ));
        }
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "  {:<28} {:>8} {:>11} {:>11} {:>11} {:>11} {:>8}\n",
                "span", "count", "mean", "p50", "p95", "max", "occup"
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:<28} {:>8} {:>11} {:>11} {:>11} {:>11} {:>7.1}%\n",
                    s.name,
                    s.count,
                    fmt_ns(s.mean_ns),
                    fmt_ns(s.p50_ns as f64),
                    fmt_ns(s.p95_ns as f64),
                    fmt_ns(s.max_ns as f64),
                    s.occupancy * 100.0
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!(
                "  {:<28} {:>12} {:>14} {:>14}\n",
                "counter", "total", "first", "last"
            ));
            for c in &self.counters {
                out.push_str(&format!(
                    "  {:<28} {:>12} {:>14} {:>14}\n",
                    c.name,
                    c.total,
                    fmt_ns(c.first_at as f64),
                    fmt_ns(c.last_at as f64)
                ));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!(
                "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
                "gauge", "samples", "min", "mean", "p50", "p95", "max"
            ));
            for g in &self.gauges {
                out.push_str(&format!(
                    "  {:<28} {:>8} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}\n",
                    g.name, g.samples, g.min, g.mean, g.p50, g.p95, g.max
                ));
            }
        }
        out
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn percentile_u64(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn percentile_f64(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Fold raw events into a [`TelemetrySummary`].
pub fn summarize(events: &[Event]) -> TelemetrySummary {
    if events.is_empty() {
        return TelemetrySummary::default();
    }
    let mut lo = SimNanos::MAX;
    let mut hi = 0;
    // BTreeMap keyed by name gives deterministic, alphabetic report order.
    let mut span_durations: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut counters: BTreeMap<&'static str, CounterStats> = BTreeMap::new();
    let mut gauges: BTreeMap<&'static str, Vec<(SimNanos, f64)>> = BTreeMap::new();

    for ev in events {
        lo = lo.min(ev.at);
        hi = hi.max(ev.at);
        match ev.kind {
            EventKind::SpanEnter => {}
            EventKind::SpanExit => {
                span_durations.entry(ev.name).or_default().push(ev.value as u64);
            }
            EventKind::Counter => {
                let entry = counters.entry(ev.name).or_insert(CounterStats {
                    name: ev.name,
                    total: 0.0,
                    first_at: ev.at,
                    last_at: ev.at,
                });
                entry.total += ev.value;
                entry.first_at = entry.first_at.min(ev.at);
                entry.last_at = entry.last_at.max(ev.at);
            }
            EventKind::Gauge => {
                gauges.entry(ev.name).or_default().push((ev.at, ev.value));
            }
        }
    }

    let window_ns = hi.saturating_sub(lo).max(1);

    let spans = span_durations
        .into_iter()
        .map(|(name, mut durations)| {
            let count = durations.len() as u64;
            let total_ns: u64 = durations.iter().sum();
            durations.sort_unstable();
            SpanStats {
                name,
                count,
                total_ns,
                mean_ns: total_ns as f64 / count as f64,
                p50_ns: percentile_u64(&durations, 0.50),
                p95_ns: percentile_u64(&durations, 0.95),
                max_ns: *durations.last().unwrap_or(&0),
                occupancy: total_ns as f64 / window_ns as f64,
            }
        })
        .collect();

    let gauges = gauges
        .into_iter()
        .map(|(name, samples)| {
            let last = samples.last().map(|&(_, v)| v).unwrap_or(0.0);
            let mut values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
            values.sort_unstable_by(|a, b| a.total_cmp(b));
            let n = values.len();
            GaugeStats {
                name,
                samples: n as u64,
                min: values.first().copied().unwrap_or(0.0),
                mean: values.iter().sum::<f64>() / n as f64,
                p50: percentile_f64(&values, 0.50),
                p95: percentile_f64(&values, 0.95),
                max: values.last().copied().unwrap_or(0.0),
                last,
            }
        })
        .collect();

    TelemetrySummary {
        window_ns,
        dropped_events: 0,
        spans,
        counters: counters.into_values().collect(),
        gauges,
    }
}

/// Summarize a [`MemorySink`]'s current contents, including its eviction
/// count as [`TelemetrySummary::dropped_events`].
///
/// Prefer this over `summarize(&sink.events())` when the sink is at hand:
/// a summary that silently described a truncated event window used to be
/// indistinguishable from a complete one.
///
/// [`MemorySink`]: crate::MemorySink
pub fn summarize_sink(sink: &crate::MemorySink) -> TelemetrySummary {
    let mut summary = summarize(&sink.events());
    summary.dropped_events = sink.dropped();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, Telemetry};

    fn sample_events() -> Vec<Event> {
        let sink = MemorySink::new(1024);
        let tel = Telemetry::new(sink.clone());
        // Two sense spans, one analyze span, alerts, queue-depth gauges.
        tel.span(0, 100, "stage.sense");
        tel.span(200, 500, "stage.sense");
        tel.span(100, 1_100, "stage.analyze");
        tel.counter(900, "pipeline.alert", 1);
        tel.counter(1_000, "pipeline.alert", 2);
        tel.gauge(50, "queue.depth", 1.0);
        tel.gauge(500, "queue.depth", 5.0);
        tel.gauge(1_000, "queue.depth", 3.0);
        sink.events()
    }

    #[test]
    fn spans_aggregate_durations_and_occupancy() {
        let s = summarize(&sample_events());
        let sense = s.span("stage.sense").expect("sense span");
        assert_eq!(sense.count, 2);
        assert_eq!(sense.total_ns, 400);
        assert_eq!(sense.max_ns, 300);
        let analyze = s.span("stage.analyze").expect("analyze span");
        assert_eq!(analyze.count, 1);
        assert_eq!(analyze.total_ns, 1_000);
        // Window is 0..1100; analyze occupies ~91% of it.
        assert!((analyze.occupancy - 1_000.0 / 1_100.0).abs() < 1e-9);
    }

    #[test]
    fn counters_track_total_and_first_last() {
        let s = summarize(&sample_events());
        let alerts = s.counter("pipeline.alert").expect("alert counter");
        assert_eq!(alerts.total, 3.0);
        assert_eq!(alerts.first_at, 900);
        assert_eq!(alerts.last_at, 1_000);
    }

    #[test]
    fn gauges_track_distribution() {
        let s = summarize(&sample_events());
        let depth = s.gauge("queue.depth").expect("depth gauge");
        assert_eq!(depth.samples, 3);
        assert_eq!(depth.min, 1.0);
        assert_eq!(depth.max, 5.0);
        assert_eq!(depth.last, 3.0);
        assert!((depth.mean - 3.0).abs() < 1e-9);
    }

    #[test]
    fn summary_is_deterministic_and_renders() {
        let a = summarize(&sample_events());
        let b = summarize(&sample_events());
        assert_eq!(a.spans, b.spans);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.gauges, b.gauges);
        let text = a.render_text();
        assert!(text.contains("stage.sense"));
        assert!(text.contains("pipeline.alert"));
        assert!(text.contains("queue.depth"));
    }

    #[test]
    fn sink_summary_surfaces_dropped_events() {
        let sink = MemorySink::new(4);
        let tel = Telemetry::new(sink.clone());
        for i in 0..10 {
            tel.counter(i, "pipeline.alert", 1);
        }
        let s = summarize_sink(&sink);
        assert_eq!(s.dropped_events, 6);
        assert!(s.render_text().contains("dropped_events"));

        // A sink that never overflowed reports 0 and stays silent.
        let quiet = MemorySink::new(64);
        Telemetry::new(quiet.clone()).counter(1, "pipeline.alert", 1);
        let q = summarize_sink(&quiet);
        assert_eq!(q.dropped_events, 0);
        assert!(!q.render_text().contains("dropped_events"));
    }

    #[test]
    fn empty_input_yields_empty_summary() {
        let s = summarize(&[]);
        assert!(s.spans.is_empty() && s.counters.is_empty() && s.gauges.is_empty());
        assert_eq!(s.window_ns, 0);
    }
}
