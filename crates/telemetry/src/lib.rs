//! Deterministic, sim-time-stamped telemetry for the evaluation pipeline.
//!
//! The paper's methodology lives or dies on *scientific repeatability*:
//! the same seed must produce the same run, whether or not anyone is
//! watching. This crate therefore provides observability that is
//!
//! * **sim-time native** — every event carries the simulation clock
//!   (nanoseconds), never the wall clock, so traces from two machines
//!   with the same seed are byte-identical;
//! * **zero-effect** — recording never influences the run. A disabled
//!   handle ([`Telemetry::disabled`]) is a single `Option` check per
//!   call site, and no instrumented code path branches on what was
//!   recorded;
//! * **bounded** — the in-memory sink is a fixed-capacity ring buffer
//!   that drops its oldest events (and counts the drops) instead of
//!   growing without limit during long sweeps.
//!
//! The crate sits below the simulation: it cannot depend on `idse-sim`
//! (which itself records into it), so timestamps are raw [`SimNanos`] —
//! the same `u64` nanosecond value `idse_sim::SimTime::as_nanos` yields.
//! Its only dependency is `serde`, so [`summary::TelemetrySummary`] can
//! be folded into persisted run headers.
//!
//! # Anatomy
//!
//! [`Telemetry`] is a cheaply cloneable handle shared by every layer of
//! a run (simulation kernel, IDS pipeline, evaluation harness). Events
//! flow into a swappable [`Sink`]:
//!
//! * [`NoopSink`] — discards everything (useful to measure the cost of
//!   the enabled path itself);
//! * [`MemorySink`] — bounded ring buffer, readable back for
//!   aggregation via [`summary::summarize`];
//! * [`JsonlSink`] — streams one JSON object per line to a writer.
//!
//! ```
//! use idse_telemetry::{MemorySink, Telemetry};
//!
//! let sink = MemorySink::new(1024);
//! let tel = Telemetry::new(sink.clone());
//! tel.span(500, 1_500, "stage.sense");
//! tel.counter(1_500, "pipeline.alert", 1);
//! tel.gauge(2_000, "queue.depth", 3.0);
//! assert_eq!(sink.events().len(), 4); // enter + exit + counter + gauge
//! ```

use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Simulation-clock nanoseconds (`idse_sim::SimTime::as_nanos`).
pub type SimNanos = u64;

/// What a single telemetry event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A named region of sim-time began (`value` is 0).
    SpanEnter,
    /// The region ended; `value` is its duration in nanoseconds.
    SpanExit,
    /// A monotonic counter advanced; `value` is the (positive) delta.
    Counter,
    /// A sampled instantaneous level; `value` is the sample.
    Gauge,
}

impl EventKind {
    /// Stable lowercase name used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span_enter",
            EventKind::SpanExit => "span_exit",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
        }
    }
}

/// One recorded telemetry event.
///
/// Names are `&'static str` by design: keys are a closed, compile-time
/// vocabulary (e.g. `"stage.sense"`), which keeps recording
/// allocation-free and makes aggregation a pointer-cheap group-by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    pub at: SimNanos,
    pub name: &'static str,
    /// Which stream the event belongs to (e.g. the product under
    /// evaluation when four evaluations share one sink). `""` when the
    /// recording handle was never scoped.
    pub scope: &'static str,
    pub kind: EventKind,
    pub value: f64,
}

impl Event {
    /// Render as a single JSON object (one JSONL line, no trailing
    /// newline). Field order is fixed, so output is deterministic.
    pub fn to_jsonl(&self) -> String {
        // Names and scopes are static identifiers (no quotes/control
        // characters), so they embed without escaping.
        format!(
            r#"{{"at":{},"kind":"{}","name":"{}","scope":"{}","value":{}}}"#,
            self.at,
            self.kind.label(),
            self.name,
            self.scope,
            fmt_value(self.value)
        )
    }
}

/// Format an f64 the way serde_json would: integral values keep `.0`.
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

/// Destination for recorded events.
pub trait Sink: Send {
    fn record(&mut self, event: &Event);

    /// Flush any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}

    /// A copy of the retained events, oldest first, when the sink keeps
    /// any (streaming sinks return `None`). Lets a run fold its own
    /// telemetry into a persisted summary without holding a second
    /// reference to the concrete sink.
    fn snapshot(&self) -> Option<Vec<Event>> {
        None
    }

    /// How many events this sink has evicted or discarded (`0` for
    /// unbounded or streaming sinks).
    fn dropped_count(&self) -> u64 {
        0
    }
}

/// Discards every event. Lets benchmarks measure the overhead of the
/// *enabled* telemetry path separate from sink costs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&mut self, _event: &Event) {}
}

/// Bounded ring buffer of events, shared across clones.
///
/// When full, the oldest event is dropped and counted — a long sweep
/// can never exhaust memory through observability.
#[derive(Debug, Clone)]
pub struct MemorySink {
    shared: Arc<Mutex<MemoryBuffer>>,
}

#[derive(Debug)]
struct MemoryBuffer {
    events: std::collections::VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl MemorySink {
    /// A ring buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            shared: Arc::new(Mutex::new(MemoryBuffer {
                events: std::collections::VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let buf = self.shared.lock().expect("telemetry buffer lock");
        buf.events.iter().copied().collect()
    }

    /// How many events were evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.shared.lock().expect("telemetry buffer lock").dropped
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.shared.lock().expect("telemetry buffer lock").events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        let mut buf = self.shared.lock().expect("telemetry buffer lock");
        if buf.events.len() == buf.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(*event);
    }

    fn snapshot(&self) -> Option<Vec<Event>> {
        Some(self.events())
    }

    fn dropped_count(&self) -> u64 {
        self.dropped()
    }
}

/// A drainable event channel for *live* streaming to a consumer on
/// another thread (the evaluation daemon's `watch` feed).
///
/// Producers record through the [`Sink`] impl; a consumer periodically
/// calls [`ChannelSink::drain`], which *removes* the buffered events and
/// hands them over, oldest first. Unlike [`MemorySink`], this sink is a
/// conveyor, not a recorder: [`Sink::snapshot`] intentionally returns
/// `None`, because what a snapshot would see depends on how recently the
/// consumer drained — a wall-clock accident that must never leak into a
/// persisted run header. The buffer is bounded; when the consumer falls
/// behind, the oldest undelivered events are dropped and counted.
#[derive(Debug, Clone)]
pub struct ChannelSink {
    shared: Arc<Mutex<MemoryBuffer>>,
}

impl ChannelSink {
    /// A channel buffering at most `capacity` undelivered events (min 1).
    pub fn new(capacity: usize) -> Self {
        ChannelSink {
            shared: Arc::new(Mutex::new(MemoryBuffer {
                events: std::collections::VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            })),
        }
    }

    /// Take every buffered event, oldest first, leaving the channel
    /// empty. Returns an empty vector when nothing arrived since the
    /// last drain.
    pub fn drain(&self) -> Vec<Event> {
        let mut buf = self.shared.lock().expect("telemetry channel lock");
        buf.events.drain(..).collect()
    }

    /// Undelivered events currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().expect("telemetry channel lock").events.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the consumer fell behind.
    pub fn dropped(&self) -> u64 {
        self.shared.lock().expect("telemetry channel lock").dropped
    }
}

impl Sink for ChannelSink {
    fn record(&mut self, event: &Event) {
        let mut buf = self.shared.lock().expect("telemetry channel lock");
        if buf.events.len() == buf.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(*event);
    }

    // snapshot() stays `None` (the trait default): a drained channel's
    // contents are timing-dependent, so nothing here may feed a
    // deterministic run summary.

    fn dropped_count(&self) -> u64 {
        self.dropped()
    }
}

/// Streams each event as one JSON line to any writer.
pub struct JsonlSink<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Create (truncating) a JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        // Telemetry must never abort a run; I/O errors degrade to
        // silently dropped lines.
        let _ = writeln!(self.out, "{}", event.to_jsonl());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// A sink that duplicates every event into two sinks (e.g. JSONL file
/// plus in-memory buffer for the end-of-run summary).
pub struct TeeSink<A: Sink, B: Sink> {
    a: A,
    b: B,
}

impl<A: Sink, B: Sink> TeeSink<A, B> {
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: Sink, B: Sink> Sink for TeeSink<A, B> {
    fn record(&mut self, event: &Event) {
        self.a.record(event);
        self.b.record(event);
    }

    fn flush(&mut self) {
        self.a.flush();
        self.b.flush();
    }

    fn snapshot(&self) -> Option<Vec<Event>> {
        self.a.snapshot().or_else(|| self.b.snapshot())
    }

    fn dropped_count(&self) -> u64 {
        // Both sides saw the same stream; report the retaining side.
        match (self.a.snapshot().is_some(), self.b.snapshot().is_some()) {
            (true, _) => self.a.dropped_count(),
            (false, true) => self.b.dropped_count(),
            (false, false) => self.a.dropped_count().max(self.b.dropped_count()),
        }
    }
}

/// Shared recording handle. Clone freely; all clones feed one sink.
///
/// The default handle is disabled: every record call reduces to one
/// `Option` discriminant check and the event is never constructed.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Box<dyn Sink>>>>,
    scope: &'static str,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("scope", &self.scope)
            .finish()
    }
}

impl Telemetry {
    /// A handle that records nothing and costs (almost) nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None, scope: "" }
    }

    /// A handle recording into `sink`.
    pub fn new(sink: impl Sink + 'static) -> Self {
        Telemetry { inner: Some(Arc::new(Mutex::new(Box::new(sink)))), scope: "" }
    }

    /// A clone of this handle whose events carry `scope` — used to keep
    /// concurrent streams (one per evaluated product) separable in a
    /// shared sink.
    pub fn with_scope(&self, scope: &'static str) -> Self {
        Telemetry { inner: self.inner.clone(), scope }
    }

    /// The scope attached to events from this handle (`""` = unscoped).
    pub fn scope(&self) -> &'static str {
        self.scope
    }

    /// Whether events are being recorded at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    fn record(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("telemetry sink lock").record(&event);
        }
    }

    /// Mark entry into a named sim-time region.
    #[inline]
    pub fn span_enter(&self, at: SimNanos, name: &'static str) {
        if self.inner.is_none() {
            return;
        }
        self.record(Event { at, name, scope: self.scope, kind: EventKind::SpanEnter, value: 0.0 });
    }

    /// Mark exit from a named region entered at `entered`.
    #[inline]
    pub fn span_exit(&self, at: SimNanos, entered: SimNanos, name: &'static str) {
        if self.inner.is_none() {
            return;
        }
        self.record(Event {
            at,
            name,
            scope: self.scope,
            kind: EventKind::SpanExit,
            value: at.saturating_sub(entered) as f64,
        });
    }

    /// Record a completed region in one call (enter + exit pair).
    #[inline]
    pub fn span(&self, start: SimNanos, end: SimNanos, name: &'static str) {
        if self.inner.is_none() {
            return;
        }
        self.span_enter(start, name);
        self.span_exit(end, start, name);
    }

    /// Advance a monotonic counter by `delta`.
    #[inline]
    pub fn counter(&self, at: SimNanos, name: &'static str, delta: u64) {
        if self.inner.is_none() {
            return;
        }
        self.record(Event {
            at,
            name,
            scope: self.scope,
            kind: EventKind::Counter,
            value: delta as f64,
        });
    }

    /// Record an instantaneous sampled level (queue depth, utilization).
    #[inline]
    pub fn gauge(&self, at: SimNanos, name: &'static str, value: f64) {
        if self.inner.is_none() {
            return;
        }
        self.record(Event { at, name, scope: self.scope, kind: EventKind::Gauge, value });
    }

    /// Flush the underlying sink (e.g. the JSONL writer).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("telemetry sink lock").flush();
        }
    }

    /// A copy of the events the sink retains ([`Sink::snapshot`]):
    /// `None` when disabled or when the sink streams without retaining.
    pub fn snapshot_events(&self) -> Option<Vec<Event>> {
        self.inner.as_ref().and_then(|inner| inner.lock().expect("telemetry sink lock").snapshot())
    }

    /// How many events the sink has discarded ([`Sink::dropped_count`]).
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.lock().expect("telemetry sink lock").dropped_count())
    }

    /// Record a pre-built event verbatim — scope and timestamp are taken
    /// from the event, not from this handle. This is the replay primitive
    /// behind [`JobRecorder::merge_into`]: buffered events keep the scope
    /// they were recorded under when they are merged into a shared sink.
    #[inline]
    pub fn emit(&self, event: Event) {
        self.record(event);
    }
}

/// A per-job buffered recorder for deterministic parallel execution.
///
/// Concurrent jobs recording straight into one shared sink interleave by
/// scheduling order, which would make the retained stream depend on the
/// worker count. A `JobRecorder` gives each job a private bounded buffer
/// instead: the job records through [`JobRecorder::handle`], and when the
/// executor merges results in canonical job order it calls
/// [`JobRecorder::merge_into`], replaying the buffered events into the
/// shared sink. The merged stream is therefore byte-identical for any
/// number of workers.
///
/// A recorder forked from a disabled parent is itself disabled and costs
/// nothing.
#[derive(Debug)]
pub struct JobRecorder {
    buffer: Option<MemorySink>,
    handle: Telemetry,
}

impl JobRecorder {
    /// Fork a buffered recorder from `parent`, tagging events with
    /// `scope` (pass `parent.scope()` to inherit). Holds at most
    /// `capacity` events; older events are evicted and counted.
    pub fn fork(parent: &Telemetry, scope: &'static str, capacity: usize) -> Self {
        if !parent.enabled() {
            return JobRecorder { buffer: None, handle: Telemetry::disabled() };
        }
        let buffer = MemorySink::new(capacity);
        let handle = Telemetry::new(buffer.clone()).with_scope(scope);
        JobRecorder { buffer: Some(buffer), handle }
    }

    /// The recording handle the job should use.
    pub fn handle(&self) -> Telemetry {
        self.handle.clone()
    }

    /// Events evicted from the job buffer because it was full.
    pub fn dropped(&self) -> u64 {
        self.buffer.as_ref().map_or(0, MemorySink::dropped)
    }

    /// Replay the buffered events, in recording order, into `target`.
    /// Returns how many events were merged.
    pub fn merge_into(self, target: &Telemetry) -> u64 {
        let Some(buffer) = self.buffer else { return 0 };
        let events = buffer.events();
        for event in &events {
            target.emit(*event);
        }
        events.len() as u64
    }
}

pub mod summary;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_is_cheap() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.counter(1, "x", 1);
        tel.gauge(2, "y", 3.0);
        tel.span(0, 5, "z");
        // Nothing to observe — the point is simply that none of the
        // calls panic or allocate a sink.
        tel.flush();
    }

    #[test]
    fn memory_sink_round_trip() {
        let sink = MemorySink::new(16);
        let tel = Telemetry::new(sink.clone());
        assert!(tel.enabled());
        tel.span(100, 250, "stage.sense");
        tel.counter(250, "pipeline.alert", 2);
        tel.gauge(300, "queue.depth", 7.0);
        let events = sink.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::SpanEnter);
        assert_eq!(events[1].kind, EventKind::SpanExit);
        assert_eq!(events[1].value, 150.0);
        assert_eq!(events[2].name, "pipeline.alert");
        assert_eq!(events[3].value, 7.0);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_buffer_is_bounded_and_counts_drops() {
        let sink = MemorySink::new(4);
        let tel = Telemetry::new(sink.clone());
        for i in 0..10u64 {
            tel.counter(i, "c", 1);
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 6);
        // Oldest events were evicted: the survivors are the last four.
        assert_eq!(sink.events()[0].at, 6);
    }

    #[test]
    fn clones_share_one_sink() {
        let sink = MemorySink::new(64);
        let tel = Telemetry::new(sink.clone());
        let tel2 = tel.clone();
        tel.counter(1, "a", 1);
        tel2.counter(2, "b", 1);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn jsonl_lines_are_deterministic() {
        let ev = Event {
            at: 1_500,
            name: "stage.analyze",
            scope: "NidSentry NS-5",
            kind: EventKind::SpanExit,
            value: 250.0,
        };
        assert_eq!(
            ev.to_jsonl(),
            r#"{"at":1500,"kind":"span_exit","name":"stage.analyze","scope":"NidSentry NS-5","value":250.0}"#
        );
    }

    #[test]
    fn scoped_clones_tag_events_and_share_the_sink() {
        let sink = MemorySink::new(16);
        let tel = Telemetry::new(sink.clone());
        let scoped = tel.with_scope("product-a");
        tel.counter(1, "c", 1);
        scoped.counter(2, "c", 1);
        let events = sink.events();
        assert_eq!(events[0].scope, "");
        assert_eq!(events[1].scope, "product-a");
        assert_eq!(scoped.scope(), "product-a");
        assert!(scoped.enabled());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = SharedBuf::default();
        let tel = Telemetry::new(JsonlSink::new(shared.clone()));
        tel.counter(10, "c", 3);
        tel.gauge(20, "g", 0.5);
        tel.flush();
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""kind":"counter""#));
        assert!(lines[1].contains(r#""value":0.5"#));
    }

    #[test]
    fn job_recorder_buffers_and_merges_in_order() {
        let sink = MemorySink::new(64);
        let parent = Telemetry::new(sink.clone());
        let fork = JobRecorder::fork(&parent, "job-b", 16);
        let handle = fork.handle();
        handle.counter(5, "c", 1);
        handle.gauge(7, "g", 2.0);
        // Nothing reaches the parent until the merge.
        assert_eq!(sink.len(), 0);
        assert_eq!(fork.merge_into(&parent), 2);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "c");
        assert_eq!(events[0].scope, "job-b", "merged events keep their recorded scope");
        assert_eq!(events[1].name, "g");
    }

    #[test]
    fn job_recorder_from_disabled_parent_is_disabled() {
        let fork = JobRecorder::fork(&Telemetry::disabled(), "job", 16);
        assert!(!fork.handle().enabled());
        fork.handle().counter(1, "c", 1);
        assert_eq!(fork.dropped(), 0);
        assert_eq!(fork.merge_into(&Telemetry::disabled()), 0);
    }

    #[test]
    fn job_recorder_buffer_is_bounded() {
        let sink = MemorySink::new(64);
        let parent = Telemetry::new(sink.clone());
        let fork = JobRecorder::fork(&parent, "job", 2);
        let handle = fork.handle();
        for i in 0..5u64 {
            handle.counter(i, "c", 1);
        }
        assert_eq!(fork.dropped(), 3);
        assert_eq!(fork.merge_into(&parent), 2);
        assert_eq!(sink.events()[0].at, 3);
    }

    #[test]
    fn emit_preserves_event_scope() {
        let sink = MemorySink::new(8);
        let tel = Telemetry::new(sink.clone()).with_scope("mine");
        tel.emit(Event { at: 9, name: "x", scope: "theirs", kind: EventKind::Counter, value: 1.0 });
        assert_eq!(sink.events()[0].scope, "theirs");
    }

    #[test]
    fn snapshot_reaches_through_the_handle() {
        let sink = MemorySink::new(2);
        let tel = Telemetry::new(sink.clone());
        for i in 0..3u64 {
            tel.counter(i, "c", 1);
        }
        let events = tel.snapshot_events().expect("memory sink retains events");
        assert_eq!(events.len(), 2);
        assert_eq!(tel.dropped_events(), 1);
        assert!(Telemetry::disabled().snapshot_events().is_none());
        assert_eq!(Telemetry::disabled().dropped_events(), 0);
        // A tee over memory + jsonl still exposes the retained side.
        let mem = MemorySink::new(8);
        let tee = Telemetry::new(TeeSink::new(mem.clone(), NoopSink));
        tee.gauge(1, "g", 2.0);
        assert_eq!(tee.snapshot_events().expect("tee retains via memory side").len(), 1);
    }

    #[test]
    fn channel_sink_drains_in_order_and_then_is_empty() {
        let chan = ChannelSink::new(16);
        let tel = Telemetry::new(chan.clone()).with_scope("job-1");
        tel.counter(1, "a", 1);
        tel.gauge(2, "b", 0.5);
        assert_eq!(chan.len(), 2);
        let first = chan.drain();
        assert_eq!(first.len(), 2);
        assert_eq!((first[0].name, first[0].scope), ("a", "job-1"));
        assert_eq!(first[1].name, "b");
        assert!(chan.is_empty());
        assert!(chan.drain().is_empty(), "a second drain sees nothing new");
        tel.counter(3, "c", 1);
        assert_eq!(chan.drain().len(), 1, "later events arrive in the next drain");
    }

    #[test]
    fn channel_sink_never_snapshots_and_bounds_its_lag() {
        let chan = ChannelSink::new(2);
        let tel = Telemetry::new(chan.clone());
        for i in 0..5u64 {
            tel.counter(i, "c", 1);
        }
        assert!(tel.snapshot_events().is_none(), "a conveyor must not feed run summaries");
        assert_eq!(chan.dropped(), 3);
        assert_eq!(tel.dropped_events(), 3);
        let survivors = chan.drain();
        assert_eq!(survivors.len(), 2);
        assert_eq!(survivors[0].at, 3, "oldest undelivered events are the ones dropped");
    }

    #[test]
    fn tee_sink_duplicates() {
        let a = MemorySink::new(8);
        let b = MemorySink::new(8);
        let tel = Telemetry::new(TeeSink::new(a.clone(), b.clone()));
        tel.counter(1, "x", 1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
