//! Property-based tests for the evaluation algebra: the confusion ledger
//! partitions transactions, ratios stay in range, and scoring rubrics are
//! monotone.

use idse_eval::confusion::TransactionLedger;
use idse_eval::measure;
use idse_ids::alert::{Alert, DetectionSource};
use idse_ids::Severity;
use idse_net::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};
use idse_net::trace::{AttackClass, GroundTruth, Trace};
use idse_net::FlowKey;
use idse_sim::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_trace() -> impl Strategy<Value = Trace> {
    // A trace of n records; each either benign (flow by src port mod k) or
    // an attack packet of instance id 1..=4.
    prop::collection::vec((any::<bool>(), 0u16..8, 1u32..5), 1..120).prop_map(|specs| {
        let mut t = Trace::new();
        for (i, (is_attack, flow, id)) in specs.into_iter().enumerate() {
            let p = Packet::tcp(
                Ipv4Header::simple(
                    Ipv4Addr::new(1, 1, 0, flow as u8 + 1),
                    Ipv4Addr::new(2, 2, 2, 2),
                ),
                TcpHeader {
                    src_port: 1000 + flow,
                    dst_port: 80,
                    seq: 0,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: 0,
                },
                Vec::new(),
            );
            let at = SimTime::from_millis(i as u64);
            if is_attack {
                t.push_attack(at, p, GroundTruth { attack_id: id, class: AttackClass::PortScan });
            } else {
                t.push_benign(at, p);
            }
        }
        t
    })
}

fn alert_on(trace: &Trace, trigger: usize) -> Alert {
    Alert {
        raised_at: SimTime::from_secs(1),
        observed_at: SimTime::from_secs(1),
        trigger,
        flow: FlowKey::of(&trace.records()[trigger].packet),
        class_guess: AttackClass::PortScan,
        severity: Severity::Warning,
        source: DetectionSource::Signature,
        sensor: 0,
        detector: "prop".into(),
    }
}

proptest! {
    /// Ratios are bounded and consistent for any trace and alert subset.
    #[test]
    fn confusion_ratios_are_bounded(trace in arb_trace(), picks in prop::collection::vec(any::<prop::sample::Index>(), 0..40)) {
        let ledger = TransactionLedger::of(&trace);
        let alerts: Vec<Alert> = picks
            .iter()
            .map(|ix| alert_on(&trace, ix.index(trace.len())))
            .collect();
        let c = ledger.score(&alerts);
        prop_assert!(c.false_positive_ratio() >= 0.0 && c.false_positive_ratio() <= 1.0);
        prop_assert!(c.false_negative_ratio() >= 0.0 && c.false_negative_ratio() <= 1.0);
        prop_assert!(c.detected_attacks + c.missed_attacks.len() == c.actual_attacks);
        prop_assert!(c.detected_attacks <= c.actual_attacks);
        prop_assert!(c.false_positives <= ledger.benign_count());
        prop_assert!(ledger.total() == ledger.benign_count() + ledger.attack_count());
    }

    /// Alerting on every packet detects every attack and flags every
    /// benign flow; alerting on nothing detects nothing.
    #[test]
    fn confusion_extremes(trace in arb_trace()) {
        let ledger = TransactionLedger::of(&trace);
        let none = ledger.score(&[]);
        prop_assert_eq!(none.detected_attacks, 0);
        prop_assert_eq!(none.false_positives, 0);
        let all: Vec<Alert> = (0..trace.len()).map(|i| alert_on(&trace, i)).collect();
        let full = ledger.score(&all);
        prop_assert_eq!(full.detected_attacks, full.actual_attacks);
        prop_assert_eq!(full.false_positives, ledger.benign_count());
        prop_assert_eq!(full.false_negative_ratio(), 0.0);
    }

    /// More alerts never decrease detections (monotonicity of D).
    #[test]
    fn detections_are_monotone_in_alerts(trace in arb_trace(), picks in prop::collection::vec(any::<prop::sample::Index>(), 1..40)) {
        let ledger = TransactionLedger::of(&trace);
        let alerts: Vec<Alert> = picks
            .iter()
            .map(|ix| alert_on(&trace, ix.index(trace.len())))
            .collect();
        let some = ledger.score(&alerts[..alerts.len() / 2]);
        let more = ledger.score(&alerts);
        prop_assert!(more.detected_attacks >= some.detected_attacks);
        prop_assert!(more.false_positives >= some.false_positives);
    }

    /// Measurement rubrics are monotone in their argument.
    #[test]
    fn rubrics_are_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            measure::score_false_positive_ratio(lo) >= measure::score_false_positive_ratio(hi),
            "more FP must not score higher"
        );
        prop_assert!(
            measure::score_detection_rate(lo) <= measure::score_detection_rate(hi),
            "more detection must not score lower"
        );
        prop_assert!(
            measure::score_host_impact(lo) >= measure::score_host_impact(hi),
            "more host impact must not score higher"
        );
    }
}
