//! Telemetry must be a pure observer: the same seeded evaluation with
//! recording enabled produces a byte-identical scorecard to one with it
//! disabled, and the recorded stream itself is deterministic — at any
//! executor width.

use idse_eval::feeds::FeedConfig;
use idse_eval::EvaluationRequest;
use idse_ids::products::{IdsProduct, ProductId};
use idse_sim::SimDuration;
use idse_telemetry::{summary::summarize, MemorySink, Telemetry};

fn request(telemetry: Telemetry) -> EvaluationRequest {
    EvaluationRequest::new()
        .with_feed(
            FeedConfig::builder()
                .session_rate(12.0)
                .training_span(SimDuration::from_secs(8))
                .test_span(SimDuration::from_secs(18))
                .campaign_intensity(1)
                .seed(20_020_415)
                .build(),
        )
        .with_sweep_steps(3)
        .with_max_throughput_factor(16.0)
        .with_telemetry(telemetry)
}

#[test]
fn telemetry_enabled_run_matches_disabled_run_byte_for_byte() {
    let off_req = request(Telemetry::disabled());
    let feed = off_req.build_feed();
    let product = IdsProduct::model(ProductId::GuardSecure);

    let off = off_req.evaluate(&product, &feed);
    let sink = MemorySink::new(1 << 20);
    let on = request(Telemetry::new(sink.clone())).evaluate(&product, &feed);

    let off_json = serde_json::to_string(&off.scorecard).expect("scorecard serializes");
    let on_json = serde_json::to_string(&on.scorecard).expect("scorecard serializes");
    assert_eq!(off_json, on_json, "recording changed the scorecard");
    assert_eq!(off.operating_sensitivity, on.operating_sensitivity);
    assert_eq!(sink.dropped(), 0, "test-sized run must fit the buffer");
    assert!(!sink.is_empty(), "enabled run must record events");
}

#[test]
fn recorded_stream_is_deterministic_and_scoped() {
    let product = IdsProduct::model(ProductId::NidSentry);
    let run = |jobs: usize| {
        let sink = MemorySink::new(1 << 20);
        let req = request(Telemetry::new(sink.clone())).with_jobs(jobs);
        let feed = req.build_feed();
        req.evaluate(&product, &feed);
        sink.events()
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a.len(), b.len());
    assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y), "event streams differ");
    assert!(a.iter().all(|e| e.scope == product.id.name()));

    // The recorded stream — not just the scorecard — is identical when the
    // same evaluation fans out across workers: per-job buffers merge in
    // canonical key order, never completion order.
    let wide = run(8);
    assert_eq!(a.len(), wide.len(), "worker count changed the event count");
    assert!(a.iter().zip(wide.iter()).all(|(x, y)| x == y), "worker count reordered events");

    let summary = summarize(&a);
    assert!(summary.span("stage.sense").is_some());
    assert!(summary.span("phase.operating_run").is_some());
    assert!(summary.counter("phase.sweep.points").is_some());
    assert!(summary.gauge("phase.throughput.zero_loss_pps").is_some());
    assert!(summary.gauge("sim.queue_depth").is_some(), "kernel queue-depth samples missing");
}
