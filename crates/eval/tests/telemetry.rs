//! Telemetry must be a pure observer: the same seeded evaluation with
//! recording enabled produces a byte-identical scorecard to one with it
//! disabled, and the recorded stream itself is deterministic.

use idse_eval::feeds::{FeedConfig, TestFeed};
use idse_eval::harness::{evaluate_product, EvaluationConfig};
use idse_ids::products::{IdsProduct, ProductId};
use idse_sim::SimDuration;
use idse_telemetry::{summary::summarize, MemorySink, Telemetry};

fn config(telemetry: Telemetry) -> EvaluationConfig {
    EvaluationConfig {
        feed: FeedConfig {
            session_rate: 12.0,
            training_span: SimDuration::from_secs(8),
            test_span: SimDuration::from_secs(18),
            campaign_intensity: 1,
            seed: 20_020_415,
        },
        sweep_steps: 3,
        max_throughput_factor: 16.0,
        telemetry,
        ..EvaluationConfig::default()
    }
}

#[test]
fn telemetry_enabled_run_matches_disabled_run_byte_for_byte() {
    let off_cfg = config(Telemetry::disabled());
    let feed = TestFeed::realtime_cluster(&off_cfg.feed);
    let product = IdsProduct::model(ProductId::GuardSecure);

    let off = evaluate_product(&product, &feed, &off_cfg);
    let sink = MemorySink::new(1 << 20);
    let on = evaluate_product(&product, &feed, &config(Telemetry::new(sink.clone())));

    let off_json = serde_json::to_string(&off.scorecard).expect("scorecard serializes");
    let on_json = serde_json::to_string(&on.scorecard).expect("scorecard serializes");
    assert_eq!(off_json, on_json, "recording changed the scorecard");
    assert_eq!(off.operating_sensitivity, on.operating_sensitivity);
    assert_eq!(sink.dropped(), 0, "test-sized run must fit the buffer");
    assert!(!sink.is_empty(), "enabled run must record events");
}

#[test]
fn recorded_stream_is_deterministic_and_scoped() {
    let product = IdsProduct::model(ProductId::NidSentry);
    let run = || {
        let sink = MemorySink::new(1 << 20);
        let cfg = config(Telemetry::new(sink.clone()));
        let feed = TestFeed::realtime_cluster(&cfg.feed);
        evaluate_product(&product, &feed, &cfg);
        sink.events()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y), "event streams differ");
    assert!(a.iter().all(|e| e.scope == product.id.name()));

    let summary = summarize(&a);
    assert!(summary.span("stage.sense").is_some());
    assert!(summary.span("phase.operating_run").is_some());
    assert!(summary.counter("phase.sweep.points").is_some());
    assert!(summary.gauge("phase.throughput.zero_loss_pps").is_some());
    assert!(summary.gauge("sim.queue_depth").is_some(), "kernel queue-depth samples missing");
}
