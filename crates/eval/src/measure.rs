//! Rubrics: measured quantities → discrete 0–4 scores.
//!
//! The scorecard's *analysis* observation method produces continuous
//! measurements; the methodology requires discrete scoring ("discrete
//! scoring simplifies the process of assigning values"). Each rubric here
//! is an explicit, documented threshold ladder, so a score is always
//! reproducible from its measurement — the paper's "observable,
//! reproducible, quantifiable" requirement. Thresholds are expressed
//! relative to the procurer's stated needs (required packet rate, response
//! window) where the metric is need-relative.

use idse_core::DiscreteScore;
use idse_ids::components::FailureBehavior;
use idse_sim::SimDuration;

/// What the protected network requires (the procurer's environment facts
/// that need-relative rubrics compare against).
#[derive(Debug, Clone)]
pub struct EnvironmentNeeds {
    /// Nominal offered load the IDS must monitor, packets/second.
    pub nominal_pps: f64,
    /// Latency budget real-time traffic can tolerate from an in-line
    /// element.
    pub latency_budget: SimDuration,
    /// The response window within which a report is "timely".
    pub response_window: SimDuration,
}

impl EnvironmentNeeds {
    /// The distributed real-time cluster environment: milliseconds matter.
    pub fn realtime_cluster(nominal_pps: f64) -> Self {
        Self {
            nominal_pps,
            latency_budget: SimDuration::from_micros(500),
            response_window: SimDuration::from_millis(500),
        }
    }

    /// An e-commerce site: seconds are fine.
    pub fn ecommerce(nominal_pps: f64) -> Self {
        Self {
            nominal_pps,
            latency_budget: SimDuration::from_millis(20),
            response_window: SimDuration::from_secs(10),
        }
    }
}

/// Observed False Positive Ratio (`|D − A| / |T|`): lower is better.
pub fn score_false_positive_ratio(fpr: f64) -> DiscreteScore {
    DiscreteScore::new(match fpr {
        x if x < 0.001 => 4,
        x if x < 0.005 => 3,
        x if x < 0.02 => 2,
        x if x < 0.10 => 1,
        _ => 0,
    })
}

/// Observed False Negative Ratio, scored through the detection rate over
/// replayed attack instances (the ratio's numerator normalized by attacks
/// rather than transactions, so the score does not reward busy benign
/// traffic).
pub fn score_detection_rate(rate: f64) -> DiscreteScore {
    DiscreteScore::new(match rate {
        x if x >= 0.95 => 4,
        x if x >= 0.80 => 3,
        x if x >= 0.60 => 2,
        x if x >= 0.30 => 1,
        _ => 0,
    })
}

/// System Throughput / Maximal Throughput with Zero Loss, relative to the
/// environment's nominal load.
pub fn score_throughput(zero_loss_pps: f64, needs: &EnvironmentNeeds) -> DiscreteScore {
    let headroom = zero_loss_pps / needs.nominal_pps.max(1.0);
    DiscreteScore::new(match headroom {
        x if x >= 4.0 => 4,
        x if x >= 2.0 => 3,
        x if x >= 1.2 => 2,
        x if x >= 1.0 => 1,
        _ => 0,
    })
}

/// Network Lethal Dose: how far beyond nominal load the IDS survives.
/// `None` means no failure was provoked within the search ceiling.
pub fn score_lethal_dose(lethal_pps: Option<f64>, needs: &EnvironmentNeeds) -> DiscreteScore {
    match lethal_pps {
        None => DiscreteScore::new(4),
        Some(pps) => {
            let margin = pps / needs.nominal_pps.max(1.0);
            DiscreteScore::new(match margin {
                x if x >= 32.0 => 3,
                x if x >= 12.0 => 2,
                x if x >= 4.0 => 1,
                _ => 0,
            })
        }
    }
}

/// Induced Traffic Latency relative to the environment's budget.
pub fn score_induced_latency(mean: SimDuration, needs: &EnvironmentNeeds) -> DiscreteScore {
    if mean == SimDuration::ZERO {
        return DiscreteScore::new(4); // passive tap
    }
    let ratio = mean.as_secs_f64() / needs.latency_budget.as_secs_f64().max(1e-12);
    DiscreteScore::new(match ratio {
        x if x <= 0.1 => 4,
        x if x <= 0.5 => 3,
        x if x <= 1.0 => 2,
        x if x <= 4.0 => 1,
        _ => 0,
    })
}

/// Timeliness relative to the environment's response window.
pub fn score_timeliness(mean: SimDuration, needs: &EnvironmentNeeds) -> DiscreteScore {
    let ratio = mean.as_secs_f64() / needs.response_window.as_secs_f64().max(1e-12);
    DiscreteScore::new(match ratio {
        x if x <= 0.25 => 4,
        x if x <= 1.0 => 3,
        x if x <= 4.0 => 2,
        x if x <= 20.0 => 1,
        _ => 0,
    })
}

/// Operational Performance Impact (fraction of monitored-host CPU).
/// Anchored on the paper's cited figures: the nominal 3–5 % logging share
/// scores 2; C2's 20 % scores 0; no impact scores 4.
pub fn score_host_impact(fraction: f64) -> DiscreteScore {
    DiscreteScore::new(match fraction {
        x if x < 0.005 => 4,
        x if x < 0.03 => 3,
        x if x < 0.06 => 2,
        x if x < 0.15 => 1,
        _ => 0,
    })
}

/// Error Reporting and Recovery: the paper's anchors name these exact
/// behaviors (hang / cold reboot / service restart).
pub fn score_error_recovery(behavior: FailureBehavior) -> DiscreteScore {
    DiscreteScore::new(match behavior {
        FailureBehavior::Hang => 0,
        FailureBehavior::ColdReboot { .. } => 2,
        FailureBehavior::RestartService { .. } => 4,
    })
}

/// Data Storage: retained engine state per megabyte of monitored source
/// data (lower is better).
pub fn score_data_storage(state_bytes: usize, source_bytes: u64) -> DiscreteScore {
    let per_mb = state_bytes as f64 / (source_bytes as f64 / 1e6).max(1e-9);
    DiscreteScore::new(match per_mb {
        x if x < 1_000.0 => 4,
        x if x < 10_000.0 => 3,
        x if x < 100_000.0 => 2,
        x if x < 1_000_000.0 => 1,
        _ => 0,
    })
}

/// Firewall/Router interaction measured end-to-end: capability plus the
/// observed effectiveness of automated blocking (attack packets stopped
/// vs benign sources collaterally blocked — "faulty policy risks shutting
/// out legitimate users").
pub fn score_response_interaction(
    capable: bool,
    blocked_attack_packets: u64,
    collateral_sources: usize,
) -> DiscreteScore {
    if !capable {
        return DiscreteScore::new(0);
    }
    if blocked_attack_packets == 0 {
        return DiscreteScore::new(1); // capability unproven in test
    }
    DiscreteScore::new(match collateral_sources {
        0 => 4,
        1..=2 => 3,
        _ => 2,
    })
}

/// Evidence Collection, measured as mean forensic coverage of detected
/// attack instances (fraction of their packets preserved under the
/// product's retention budget).
pub fn score_evidence_coverage(coverage: f64) -> DiscreteScore {
    DiscreteScore::new(match coverage {
        c if c >= 0.9 => 4,
        c if c >= 0.6 => 3,
        c if c >= 0.3 => 2,
        c if c > 0.0 => 1,
        _ => 0,
    })
}

/// Detection Retention Under Failure: true-alert fraction a faulted run
/// keeps relative to its fault-free twin. The 0.95 bar mirrors the
/// detection-rate ladder: survivability should cost no more than the
/// engine's own error floor.
pub fn score_detection_retention(retention: f64) -> DiscreteScore {
    DiscreteScore::new(match retention {
        x if x >= 0.95 => 4,
        x if x >= 0.80 => 3,
        x if x >= 0.60 => 2,
        x if x >= 0.30 => 1,
        _ => 0,
    })
}

/// Alert Loss Ratio under faults: lower is better. The top grade requires
/// near-lossless store-and-forward (≤1 %); losing a quarter of raised
/// alerts or more is the bottom anchor.
pub fn score_alert_loss(loss: f64) -> DiscreteScore {
    DiscreteScore::new(match loss {
        x if x <= 0.01 => 4,
        x if x <= 0.05 => 3,
        x if x <= 0.10 => 2,
        x if x <= 0.25 => 1,
        _ => 0,
    })
}

/// Mean Time to Reroute around a crashed instance. Anchored on the
/// real-time premise: sub-100 µs failover is invisible at the monitor;
/// beyond 100 ms the fault window shows up in Timeliness.
pub fn score_reroute_time(mean: SimDuration, any_rerouted: bool) -> DiscreteScore {
    if !any_rerouted {
        // Nothing ever rerouted: either nothing needed to (fine — treat
        // as instant) — the caller distinguishes "couldn't" via the
        // retention score, which a reroute-less single-instance
        // architecture tanks.
        return DiscreteScore::new(4);
    }
    DiscreteScore::new(match mean.as_secs_f64() {
        x if x <= 100e-6 => 4,
        x if x <= 1e-3 => 3,
        x if x <= 10e-3 => 2,
        x if x <= 100e-3 => 1,
        _ => 0,
    })
}

/// Recovery Completeness: recovered crashes / injected crashes, with
/// state replay assumed measured into the retention score.
pub fn score_recovery_completeness(fraction: f64) -> DiscreteScore {
    DiscreteScore::new(match fraction {
        x if x >= 0.99 => 4,
        x if x >= 0.75 => 3,
        x if x >= 0.50 => 2,
        x if x > 0.0 => 1,
        _ => 0,
    })
}

/// SNMP interaction: capability with observed trap volume.
pub fn score_snmp(capable: bool, traps_sent: u32) -> DiscreteScore {
    match (capable, traps_sent) {
        (false, _) => DiscreteScore::new(0),
        (true, 0) => DiscreteScore::new(2),
        (true, _) => DiscreteScore::new(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_ladder_is_monotone() {
        let scores: Vec<u8> = [0.0, 0.003, 0.01, 0.05, 0.5]
            .iter()
            .map(|&x| score_false_positive_ratio(x).value())
            .collect();
        assert_eq!(scores, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn detection_ladder() {
        assert_eq!(score_detection_rate(1.0).value(), 4);
        assert_eq!(score_detection_rate(0.85).value(), 3);
        assert_eq!(score_detection_rate(0.65).value(), 2);
        assert_eq!(score_detection_rate(0.4).value(), 1);
        assert_eq!(score_detection_rate(0.1).value(), 0);
    }

    #[test]
    fn throughput_is_need_relative() {
        let modest = EnvironmentNeeds::ecommerce(1_000.0);
        let heavy = EnvironmentNeeds::realtime_cluster(50_000.0);
        assert_eq!(score_throughput(5_000.0, &modest).value(), 4);
        assert_eq!(score_throughput(5_000.0, &heavy).value(), 0);
    }

    #[test]
    fn lethal_dose_none_is_graceful() {
        let needs = EnvironmentNeeds::ecommerce(1_000.0);
        assert_eq!(score_lethal_dose(None, &needs).value(), 4);
        assert_eq!(score_lethal_dose(Some(40_000.0), &needs).value(), 3);
        assert_eq!(score_lethal_dose(Some(2_000.0), &needs).value(), 0);
    }

    #[test]
    fn latency_zero_is_passive_four() {
        let needs = EnvironmentNeeds::realtime_cluster(10_000.0);
        assert_eq!(score_induced_latency(SimDuration::ZERO, &needs).value(), 4);
        assert_eq!(score_induced_latency(SimDuration::from_micros(500), &needs).value(), 2);
        assert_eq!(score_induced_latency(SimDuration::from_millis(10), &needs).value(), 0);
    }

    #[test]
    fn timeliness_windows() {
        let rt = EnvironmentNeeds::realtime_cluster(1_000.0); // 500 ms window
        assert_eq!(score_timeliness(SimDuration::from_millis(100), &rt).value(), 4);
        assert_eq!(score_timeliness(SimDuration::from_millis(400), &rt).value(), 3);
        assert_eq!(score_timeliness(SimDuration::from_secs(30), &rt).value(), 0);
        let ec = EnvironmentNeeds::ecommerce(1_000.0); // 10 s window
        assert_eq!(score_timeliness(SimDuration::from_secs(2), &ec).value(), 4);
    }

    #[test]
    fn host_impact_matches_cited_anchors() {
        assert_eq!(score_host_impact(0.0).value(), 4);
        assert_eq!(score_host_impact(0.04).value(), 2, "nominal 3–5% is 'average'");
        assert_eq!(score_host_impact(0.20).value(), 0, "C2's 20% is the low anchor");
    }

    #[test]
    fn error_recovery_matches_paper_anchors() {
        assert_eq!(score_error_recovery(FailureBehavior::Hang).value(), 0);
        assert_eq!(
            score_error_recovery(FailureBehavior::ColdReboot {
                downtime: SimDuration::from_secs(30)
            })
            .value(),
            2
        );
        assert_eq!(
            score_error_recovery(FailureBehavior::RestartService {
                downtime: SimDuration::from_secs(1)
            })
            .value(),
            4
        );
    }

    #[test]
    fn response_interaction_penalizes_collateral() {
        assert_eq!(score_response_interaction(false, 100, 0).value(), 0);
        assert_eq!(score_response_interaction(true, 0, 0).value(), 1);
        assert_eq!(score_response_interaction(true, 500, 0).value(), 4);
        assert_eq!(score_response_interaction(true, 500, 5).value(), 2);
    }

    #[test]
    fn evidence_ladder() {
        assert_eq!(score_evidence_coverage(1.0).value(), 4);
        assert_eq!(score_evidence_coverage(0.7).value(), 3);
        assert_eq!(score_evidence_coverage(0.4).value(), 2);
        assert_eq!(score_evidence_coverage(0.05).value(), 1);
        assert_eq!(score_evidence_coverage(0.0).value(), 0);
    }

    #[test]
    fn survivability_ladders() {
        assert_eq!(score_detection_retention(1.0).value(), 4);
        assert_eq!(score_detection_retention(0.85).value(), 3);
        assert_eq!(score_detection_retention(0.65).value(), 2);
        assert_eq!(score_detection_retention(0.4).value(), 1);
        assert_eq!(score_detection_retention(0.0).value(), 0);

        assert_eq!(score_alert_loss(0.0).value(), 4);
        assert_eq!(score_alert_loss(0.03).value(), 3);
        assert_eq!(score_alert_loss(0.08).value(), 2);
        assert_eq!(score_alert_loss(0.2).value(), 1);
        assert_eq!(score_alert_loss(0.5).value(), 0);

        assert_eq!(score_reroute_time(SimDuration::ZERO, false).value(), 4);
        assert_eq!(score_reroute_time(SimDuration::from_micros(50), true).value(), 4);
        assert_eq!(score_reroute_time(SimDuration::from_micros(500), true).value(), 3);
        assert_eq!(score_reroute_time(SimDuration::from_millis(5), true).value(), 2);
        assert_eq!(score_reroute_time(SimDuration::from_millis(50), true).value(), 1);
        assert_eq!(score_reroute_time(SimDuration::from_secs(1), true).value(), 0);

        assert_eq!(score_recovery_completeness(1.0).value(), 4);
        assert_eq!(score_recovery_completeness(0.8).value(), 3);
        assert_eq!(score_recovery_completeness(0.5).value(), 2);
        assert_eq!(score_recovery_completeness(0.25).value(), 1);
        assert_eq!(score_recovery_completeness(0.0).value(), 0);
    }

    #[test]
    fn storage_ladder() {
        assert_eq!(score_data_storage(100, 10_000_000).value(), 4);
        assert_eq!(score_data_storage(50_000_000, 10_000_000).value(), 0);
    }
}
