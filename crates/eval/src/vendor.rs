//! Rubrics: vendor facts → discrete scores (the "open source material"
//! observation method).
//!
//! These score the logistical metrics, the qualitative architectural
//! metrics, and the named-only performance metrics whose values come from
//! product capability sheets rather than testbed runs. Every rule is a
//! deterministic function of the product definition, so re-scoring a
//! product is reproducible — the property the paper demands of its
//! metrics.

use idse_core::{DiscreteScore, MetricId, Scorecard};
use idse_ids::components::BalanceStrategy;
use idse_ids::products::{EffortTier, IdsProduct, ManagementTier, QualityTier};

fn tier_mgmt(t: ManagementTier) -> u8 {
    match t {
        ManagementTier::NodeOnly => 0,
        ManagementTier::LimitedRemote => 2,
        ManagementTier::FullSecureRemote => 4,
    }
}

fn tier_effort(t: EffortTier) -> u8 {
    match t {
        EffortTier::Heavy => 0,
        EffortTier::Moderate => 2,
        EffortTier::Light => 4,
    }
}

fn tier_quality(t: QualityTier) -> u8 {
    match t {
        QualityTier::Poor => 0,
        QualityTier::Fair => 2,
        QualityTier::Good => 4,
    }
}

/// Score every vendor-observable metric into `card`.
pub fn score_vendor_metrics(product: &IdsProduct, card: &mut Scorecard) {
    let v = &product.vendor;
    let arch = &product.architecture;
    let set = |card: &mut Scorecard, id: MetricId, s: u8, note: &str| {
        card.set_with_note(id, DiscreteScore::new(s), note);
    };

    // ---- Logistical ----
    set(
        card,
        MetricId::DistributedManagement,
        tier_mgmt(v.remote_management),
        "management tier from vendor profile",
    );
    set(
        card,
        MetricId::EaseOfConfiguration,
        tier_effort(v.configuration),
        "configuration effort tier",
    );
    set(
        card,
        MetricId::EaseOfPolicyMaintenance,
        tier_effort(v.policy_tooling),
        "policy tooling tier",
    );
    set(card, MetricId::LicenseManagement, tier_effort(v.licensing), "licensing burden tier");
    // Anchors: high score = fully locally operable.
    set(
        card,
        MetricId::OutsourcedSolution,
        DiscreteScore::from_f64(4.0 * (1.0 - v.outsourced_degree)).value(),
        "4·(1 − outsourced degree)",
    );
    let platform = match (v.dedicated_hardware, v.platform_footprint_mb) {
        (false, mb) if mb < 128 => 4,
        (false, mb) if mb < 512 => 3,
        (false, _) => 2,
        (true, mb) if mb < 512 => 2,
        (true, mb) if mb < 1024 => 1,
        (true, _) => 0,
    };
    set(card, MetricId::PlatformRequirements, platform, "dedicated hardware + footprint");
    set(card, MetricId::QualityOfDocumentation, tier_quality(v.documentation), "doc tier");
    set(
        card,
        MetricId::EaseOfAttackFilterGeneration,
        if product.engines.signature.is_some() { tier_effort(v.policy_tooling) } else { 1 },
        "filter authoring follows policy tooling; anomaly products need baselines instead",
    );
    set(
        card,
        MetricId::EvaluationCopyAvailability,
        if v.evaluation_copy { 4 } else { 0 },
        "availability fact",
    );
    let admin = match (v.configuration, product.engines.anomaly.is_some()) {
        // Anomaly products demand baseline upkeep on top of configuration.
        (EffortTier::Light, false) => 4,
        (EffortTier::Light, true) => 3,
        (EffortTier::Moderate, false) => 3,
        (EffortTier::Moderate, true) => 2,
        (EffortTier::Heavy, false) => 1,
        (EffortTier::Heavy, true) => 0,
    };
    set(card, MetricId::LevelOfAdministration, admin, "config effort + baseline upkeep");
    set(
        card,
        MetricId::ProductLifetime,
        match v.support {
            QualityTier::Good => 3,
            QualityTier::Fair => 2,
            QualityTier::Poor => 1,
        },
        "support tier proxies roadmap commitment",
    );
    set(card, MetricId::QualityOfTechnicalSupport, tier_quality(v.support), "support tier");
    let cost = match v.cost_3yr_usd {
        c if c < 20_000 => 4,
        c if c < 60_000 => 3,
        c if c < 100_000 => 2,
        c if c < 150_000 => 1,
        _ => 0,
    };
    set(card, MetricId::ThreeYearCostOfOwnership, cost, "2002-USD cost ladder");
    set(card, MetricId::TrainingSupport, tier_quality(v.training), "training tier");

    // ---- Architectural (qualitative) ----
    set(
        card,
        MetricId::AdjustableSensitivity,
        if v.adjustable_sensitivity { 4 } else { 0 },
        "runtime sensitivity knob",
    );
    set(
        card,
        MetricId::DataPoolSelectability,
        if v.data_pool_selectable { 3 } else { 0 },
        "protocol/address filters",
    );
    let host_frac = product.host_based_fraction();
    set(
        card,
        MetricId::HostBased,
        DiscreteScore::from_f64(4.0 * host_frac).value(),
        "host-based input fraction",
    );
    set(
        card,
        MetricId::NetworkBased,
        DiscreteScore::from_f64(
            4.0 * (1.0 - host_frac).max(
                if arch.sensors > 0
                    && (product.engines.signature.is_some() || product.engines.anomaly.is_some())
                {
                    0.75
                } else {
                    0.0
                },
            ),
        )
        .value(),
        "network-based input fraction",
    );
    let multi = match (arch.sensors, arch.lb_capacity_ops.is_some(), product.engines.host_agents) {
        (1, false, false) => 1,
        (1, false, true) => 2, // many agents behind one aggregation point
        (n, false, _) if n > 1 => 3,
        (_, true, _) => 4,
        _ => 1,
    };
    set(card, MetricId::MultiSensorSupport, multi, "sensor count + integration");
    let lb = match arch.balance {
        BalanceStrategy::None => 0,
        BalanceStrategy::StaticPartition => 2,
        BalanceStrategy::RoundRobin => 3,
        BalanceStrategy::SessionHash => 4,
    };
    set(card, MetricId::ScalableLoadBalancing, lb, "paper anchor ladder: none/static/dynamic");
    set(
        card,
        MetricId::AnomalyBased,
        match (&product.engines.anomaly, product.engines.host_agents) {
            (Some(_), _) => 4,
            (None, true) => 2, // origin learning in host agents
            (None, false) => 0,
        },
        "behavior-based coverage",
    );
    set(
        card,
        MetricId::AutonomousLearning,
        if v.autonomous_learning { 4 } else { 0 },
        "vendor fact",
    );
    set(
        card,
        MetricId::HostOsSecurity,
        match (v.dedicated_hardware, v.support) {
            (true, QualityTier::Good) => 4,
            (true, _) => 3,
            (false, QualityTier::Good) => 2,
            (false, QualityTier::Fair) => 2,
            (false, QualityTier::Poor) => 1,
        },
        "dedicated minimized platform beats shared hosts",
    );
    set(card, MetricId::Interoperability, tier_quality(v.interoperability), "interop tier");
    set(
        card,
        MetricId::PackageContents,
        match v.cost_3yr_usd {
            c if c > 100_000 => 4, // full-stack commercial package
            c if c > 30_000 => 3,
            _ => 1,
        },
        "delivered completeness proxies the commercial tier",
    );
    set(
        card,
        MetricId::ProcessSecurity,
        match v.support {
            QualityTier::Good => 3,
            QualityTier::Fair => 2,
            QualityTier::Poor => 1,
        },
        "hardening maturity follows product maturity",
    );
    set(
        card,
        MetricId::SignatureBased,
        match (&product.engines.signature, product.engines.host_agents) {
            (Some(_), _) => 4,
            (None, true) => 1, // fixed host integrity markers
            (None, false) => 0,
        },
        "knowledge-based coverage",
    );
    set(
        card,
        MetricId::Visibility,
        match arch.tap {
            idse_ids::components::TapMode::Inline => 1, // addressable in-path element
            idse_ids::components::TapMode::Mirrored => {
                if product.engines.host_agents {
                    2
                } else {
                    4
                } // agents are on-host software
            }
        },
        "in-line elements are fingerprintable; passive taps are not",
    );

    // ---- Performance (capability-sheet subset) ----
    set(
        card,
        MetricId::AnalysisOfCompromise,
        match (product.engines.host_agents, v.storage_kb_per_mb) {
            (true, _) => 3,              // host vantage sees what was touched
            (false, s) if s >= 200 => 2, // deep flow history supports reconstruction
            (false, _) => 1,
        },
        "host vantage / retained history",
    );
    set(
        card,
        MetricId::AnalysisOfIntruderIntent,
        if arch.analyzers > 1 && !arch.combined_sensor_analyzer { 2 } else { 1 },
        "second-order analysis requires a separate analysis tier",
    );
    set(
        card,
        MetricId::ClarityOfReports,
        tier_quality(v.documentation),
        "report quality follows doc maturity",
    );
    set(
        card,
        MetricId::EvidenceCollection,
        match v.storage_kb_per_mb {
            s if s >= 250 => 4,
            s if s >= 120 => 3,
            s if s >= 60 => 2,
            _ => 1,
        },
        "retention per source MB",
    );
    set(
        card,
        MetricId::InformationSharing,
        tier_quality(v.interoperability),
        "follows interoperability",
    );
    let channels =
        (arch.response.snmp as u8) + (arch.response.firewall as u8) + (arch.response.router as u8);
    set(
        card,
        MetricId::NotificationUserAlerts,
        (1 + channels).min(4),
        "console plus each automated channel",
    );
    set(
        card,
        MetricId::ProgramInteraction,
        if channels > 0 { 3 } else { 1 },
        "response hooks exist iff any automated channel does",
    );
    set(
        card,
        MetricId::SessionRecordingAndPlayback,
        match v.storage_kb_per_mb {
            s if s >= 250 => 3,
            s if s >= 120 => 2,
            _ => 1,
        },
        "recording depth follows retention",
    );
    set(
        card,
        MetricId::ThreatCorrelation,
        match (!arch.combined_sensor_analyzer, v.autonomous_learning) {
            (true, true) => 3,
            (true, false) | (false, true) => 2,
            (false, false) => 1,
        },
        "separate analysis tier + learning enables correlation",
    );
    set(
        card,
        MetricId::TrendAnalysis,
        if channels > 0 { 2 } else { 1 },
        "console products keep history views",
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_ids::products::ProductId;

    fn card_for(id: ProductId) -> Scorecard {
        let p = IdsProduct::model(id);
        let mut c = Scorecard::new(p.id.name());
        score_vendor_metrics(&p, &mut c);
        c
    }

    /// Fetch a score that `score_vendor_metrics` is contractually required
    /// to have set — the single place the "metric was scored" invariant is
    /// asserted, instead of an `unwrap()` per call site.
    fn score_of(card: &Scorecard, id: MetricId) -> u8 {
        card.get(id).unwrap_or_else(|| panic!("score_vendor_metrics must score {id:?}")).value()
    }

    #[test]
    fn scores_land_for_all_products() {
        for id in ProductId::ALL {
            let c = card_for(id);
            // All logistical (14) + architectural qualitative (14 of 16)
            // + performance capability subset (10) land here.
            assert!(c.len() >= 35, "{}: only {} scored", id.name(), c.len());
        }
    }

    #[test]
    fn distributed_management_anchors() {
        assert_eq!(
            score_of(&card_for(ProductId::AgentWatch), MetricId::DistributedManagement),
            0,
            "research prototype: node-only management"
        );
        assert_eq!(score_of(&card_for(ProductId::GuardSecure), MetricId::DistributedManagement), 4);
    }

    #[test]
    fn load_balancing_ladder_matches_paper_anchors() {
        assert_eq!(score_of(&card_for(ProductId::NidSentry), MetricId::ScalableLoadBalancing), 0);
        assert_eq!(score_of(&card_for(ProductId::GuardSecure), MetricId::ScalableLoadBalancing), 2);
        assert_eq!(score_of(&card_for(ProductId::FlowHunter), MetricId::ScalableLoadBalancing), 4);
    }

    #[test]
    fn detection_mechanism_metrics_differentiate() {
        let nid = card_for(ProductId::NidSentry);
        let fh = card_for(ProductId::FlowHunter);
        assert_eq!(score_of(&nid, MetricId::SignatureBased), 4);
        assert_eq!(score_of(&nid, MetricId::AnomalyBased), 0);
        assert_eq!(score_of(&fh, MetricId::SignatureBased), 0);
        assert_eq!(score_of(&fh, MetricId::AnomalyBased), 4);
    }

    #[test]
    fn host_network_fractions() {
        let aw = card_for(ProductId::AgentWatch);
        assert_eq!(score_of(&aw, MetricId::HostBased), 4);
        assert_eq!(score_of(&aw, MetricId::NetworkBased), 0);
        let nid = card_for(ProductId::NidSentry);
        assert_eq!(score_of(&nid, MetricId::HostBased), 0);
        assert_eq!(score_of(&nid, MetricId::NetworkBased), 4);
    }

    #[test]
    fn notes_explain_scores() {
        let c = card_for(ProductId::FlowHunter);
        assert!(c.note(MetricId::ScalableLoadBalancing).is_some());
    }

    #[test]
    fn cost_ladder() {
        // AgentWatch is integration-labor only: best cost score.
        assert_eq!(
            score_of(&card_for(ProductId::AgentWatch), MetricId::ThreeYearCostOfOwnership),
            4
        );
        assert_eq!(
            score_of(&card_for(ProductId::FlowHunter), MetricId::ThreeYearCostOfOwnership),
            0
        );
    }
}
