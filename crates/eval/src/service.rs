//! Job specs — the serde bridge between the evaluation service and
//! [`EvaluationRequest`].
//!
//! The daemon's `submit` payload and the `evaluate` CLI's flags must
//! construct *the same request*, or "a daemon-submitted job produces the
//! same store bytes as a direct `evaluate --store` run" would be a
//! coincidence instead of a property. This module is that single source:
//! a [`JobSpec`] carries the caller-supplied knobs (everything optional,
//! with the CLI's documented defaults), and [`JobSpec::to_request`] is
//! the one place those knobs become a request. The `evaluate` binary
//! builds its request through the same path, so the two entry points
//! cannot drift.
//!
//! Specs are plain serde values: they ride the daemon's line-delimited
//! JSON protocol, land verbatim in the journal for crash-safe restart,
//! and round-trip losslessly.

use crate::feeds::FeedConfig;
use crate::harness::EvaluationRequest;
use crate::measure::EnvironmentNeeds;
use crate::provenance::StoreSpec;
use idse_core::{RequirementSet, WeightSet};
use idse_faults::FaultPlan;
use idse_ids::products::{IdsProduct, ProductId};
use idse_sim::SimDuration;
use idse_traffic::SiteProfile;
use serde::{Deserialize, Serialize};

/// The canned methodology seed every CLI defaults to (`evaluate`,
/// `stream`, the `table*` and `exp_*` experiments, and daemon job specs
/// with no explicit seed).
pub const STANDARD_SEED: u64 = 0x2002_0415;

/// A spec failed validation (unknown profile, malformed knob, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        SpecError { message: message.into() }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// Which evaluation path a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// The classic materialized harness: full sweep, operating point,
    /// throughput searches, all 56 metrics, optional store recording.
    Evaluate,
    /// The constant-memory streaming path at a fixed sensitivity.
    Stream,
}

impl JobKind {
    /// Stable lowercase name (the `kind` field's wire value).
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Evaluate => "evaluate",
            JobKind::Stream => "stream",
        }
    }
}

/// Store recording knobs carried by a job spec (the `--store`,
/// `--stamp`, `--git-rev` flags in wire form).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StoreRequest {
    /// Run-store directory.
    pub dir: String,
    /// Opaque caller-supplied stamp for the run header.
    pub stamp: Option<String>,
    /// Revision folded into provenance.
    pub git_rev: Option<String>,
}

/// One evaluation job, as submitted over the service protocol.
///
/// Every field is optional on the wire (the vendored serde shim defaults
/// missing fields), and the defaults are exactly the `evaluate` /
/// `stream` CLI defaults, resolved in one place by the accessors below.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobSpec {
    /// `"evaluate"` (default) or `"stream"`.
    pub kind: Option<String>,
    /// Site profile: `cluster` (default), `web` or `office`.
    pub profile: Option<String>,
    /// Scorecard weighting: `realtime` (default), `ecommerce` or
    /// `uniform`.
    pub weighting: Option<String>,
    /// Product selectors (`nid`, `guard`, `flow`, `agent`); absent or
    /// empty means all four modeled products.
    pub products: Option<Vec<String>>,
    /// Master feed seed; defaults to [`STANDARD_SEED`].
    pub seed: Option<u64>,
    /// Session arrival rate (sessions/s). Defaults: 25 for `evaluate`,
    /// 25 000 for `stream`.
    pub rate: Option<f64>,
    /// Sensitivity sweep steps (`evaluate` only, default 7, min 2).
    pub sweep: Option<usize>,
    /// Attack-campaign intensity (default 2).
    pub intensity: Option<u32>,
    /// Fixed sensitivity for the streaming path (default 0.6).
    pub sensitivity: Option<f64>,
    /// Stream length in transactions (`stream` only, default 1 000 000).
    pub transactions: Option<u64>,
    /// Host-population override (`stream` only).
    pub hosts: Option<u32>,
    /// Stream chunk size in records (default
    /// [`idse_traffic::DEFAULT_CHUNK_RECORDS`]).
    pub chunk_records: Option<usize>,
    /// Flow-key shard count (`stream` only, default 8).
    pub shards: Option<u32>,
    /// Fault plan for the survivability probe.
    pub fault_plan: Option<FaultPlan>,
    /// Run-store recording (`evaluate` jobs only).
    pub store: Option<StoreRequest>,
}

impl JobSpec {
    /// An empty `evaluate` spec (every knob at its CLI default).
    pub fn evaluate() -> Self {
        JobSpec { kind: Some("evaluate".to_owned()), ..JobSpec::default() }
    }

    /// An empty `stream` spec.
    pub fn stream() -> Self {
        JobSpec { kind: Some("stream".to_owned()), ..JobSpec::default() }
    }

    /// The resolved job kind.
    pub fn job_kind(&self) -> Result<JobKind, SpecError> {
        match self.kind.as_deref().unwrap_or("") {
            "" | "evaluate" => Ok(JobKind::Evaluate),
            "stream" => Ok(JobKind::Stream),
            other => Err(SpecError::new(format!("unknown job kind {other:?} (evaluate|stream)"))),
        }
    }

    /// The resolved master seed.
    pub fn resolved_seed(&self) -> u64 {
        self.seed.unwrap_or(STANDARD_SEED)
    }

    /// The resolved streaming sensitivity.
    pub fn resolved_sensitivity(&self) -> f64 {
        self.sensitivity.unwrap_or(0.6)
    }

    /// The site profile and the environment needs it is scored against —
    /// the `--profile` match of the `evaluate` CLI.
    pub fn site(&self) -> Result<(SiteProfile, EnvironmentNeeds), SpecError> {
        match self.profile.as_deref().unwrap_or("") {
            "" | "cluster" => {
                Ok((SiteProfile::realtime_cluster(), EnvironmentNeeds::realtime_cluster(3_000.0)))
            }
            "web" => Ok((SiteProfile::ecommerce_web(), EnvironmentNeeds::ecommerce(3_000.0))),
            "office" => Ok((SiteProfile::office_lan(), EnvironmentNeeds::ecommerce(1_500.0))),
            other => Err(SpecError::new(format!("unknown profile {other:?} (cluster|web|office)"))),
        }
    }

    /// The scorecard weighting — the `--weighting` match of the
    /// `evaluate` CLI.
    pub fn weights(&self) -> Result<WeightSet, SpecError> {
        match self.weighting.as_deref().unwrap_or("") {
            "" | "realtime" => Ok(RequirementSet::realtime_distributed().derive()),
            "ecommerce" => Ok(RequirementSet::ecommerce_site().derive()),
            "uniform" => Ok(WeightSet::uniform()),
            other => Err(SpecError::new(format!(
                "unknown weighting {other:?} (realtime|ecommerce|uniform)"
            ))),
        }
    }

    /// The products this job evaluates, in selector order (all four
    /// models when no selector is given).
    pub fn resolve_products(&self) -> Result<Vec<IdsProduct>, SpecError> {
        let selectors = self.products.as_deref().unwrap_or(&[]);
        if selectors.is_empty() {
            return Ok(IdsProduct::all_models());
        }
        selectors
            .iter()
            .map(|name| {
                let id = match name.as_str() {
                    "nid" => ProductId::NidSentry,
                    "guard" => ProductId::GuardSecure,
                    "flow" => ProductId::FlowHunter,
                    "agent" => ProductId::AgentWatch,
                    other => {
                        return Err(SpecError::new(format!(
                            "unknown product {other:?} (nid|guard|flow|agent)"
                        )))
                    }
                };
                Ok(IdsProduct::model(id))
            })
            .collect()
    }

    /// A short human label for job listings and journal lines.
    pub fn label(&self) -> String {
        let kind = self.job_kind().map(JobKind::name).unwrap_or("invalid");
        format!("{kind} seed={:#x}", self.resolved_seed())
    }

    /// Build the [`EvaluationRequest`] this spec describes.
    ///
    /// This is the byte-identity chokepoint: the `evaluate` CLI routes
    /// its flags through here too, so a daemon-submitted spec and a
    /// direct CLI run construct provably identical requests (telemetry
    /// handles and worker counts are attached afterwards by each caller —
    /// neither may change an output byte).
    pub fn to_request(&self) -> Result<EvaluationRequest, SpecError> {
        let kind = self.job_kind()?;
        let (profile, needs) = self.site()?;
        let weights = self.weights()?;
        self.resolve_products()?;
        let seed = self.resolved_seed();
        let request = match kind {
            JobKind::Evaluate => {
                let sweep = self.sweep.unwrap_or(7);
                if sweep < 2 {
                    return Err(SpecError::new("sweep must be at least 2"));
                }
                let request = EvaluationRequest::new()
                    .with_feed(
                        FeedConfig::builder()
                            .session_rate(self.rate.unwrap_or(25.0))
                            .training_span(SimDuration::from_secs(20))
                            .test_span(SimDuration::from_secs(45))
                            .campaign_intensity(self.intensity.unwrap_or(2))
                            .seed(seed)
                            .build(),
                    )
                    .with_needs(needs)
                    .with_sweep_steps(sweep)
                    .with_max_throughput_factor(4096.0)
                    .with_fp_budget(0.15);
                match &self.store {
                    Some(store) if store.dir.is_empty() => {
                        return Err(SpecError::new("store.dir must not be empty"));
                    }
                    Some(store) => request.with_store_spec(
                        StoreSpec::new(&store.dir)
                            .with_stamp(store.stamp.clone())
                            .with_git_rev(store.git_rev.clone())
                            .with_profile(profile.name.clone())
                            .with_weighting(weights.name.clone()),
                    ),
                    None => request,
                }
            }
            JobKind::Stream => {
                if self.store.is_some() {
                    return Err(SpecError::new("store recording is not supported for stream jobs"));
                }
                if self.sweep.is_some() {
                    return Err(SpecError::new(
                        "stream jobs run at a fixed sensitivity, not a sweep",
                    ));
                }
                let mut builder = FeedConfig::builder()
                    .session_rate(self.rate.unwrap_or(25_000.0))
                    .transactions(self.transactions.unwrap_or(1_000_000))
                    .campaign_intensity(self.intensity.unwrap_or(2))
                    .seed(seed)
                    .chunk_records(
                        self.chunk_records.unwrap_or(idse_traffic::DEFAULT_CHUNK_RECORDS),
                    )
                    .shards(self.shards.unwrap_or(8));
                if let Some(hosts) = self.hosts {
                    builder = builder.hosts(hosts);
                }
                EvaluationRequest::new().with_feed(builder.build())
            }
        };
        Ok(match &self.fault_plan {
            Some(plan) => request.with_fault_plan(plan.clone()),
            None => request,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_the_cli_default_evaluate_run() {
        let spec: JobSpec = serde_json::from_str("{}").expect("empty spec parses");
        assert_eq!(spec.job_kind().expect("valid"), JobKind::Evaluate);
        assert_eq!(spec.resolved_seed(), STANDARD_SEED);
        let request = spec.to_request().expect("default spec is valid");
        assert_eq!(request.feed.seed, STANDARD_SEED);
        assert_eq!(request.feed.session_rate, 25.0);
        assert_eq!(request.sweep.steps, 7);
        assert_eq!(request.max_throughput_factor, 4096.0);
        assert!(request.store.is_none());
        assert_eq!(spec.resolve_products().expect("valid").len(), 4);
    }

    #[test]
    fn specs_round_trip_through_json() {
        let spec = JobSpec {
            kind: Some("stream".to_owned()),
            products: Some(vec!["flow".to_owned()]),
            seed: Some(7),
            rate: Some(5_000.0),
            transactions: Some(100_000),
            hosts: Some(1_000),
            shards: Some(4),
            ..JobSpec::default()
        };
        let json = serde_json::to_string(&spec).expect("spec serializes");
        let back: JobSpec = serde_json::from_str(&json).expect("spec parses");
        assert_eq!(back, spec);
    }

    #[test]
    fn stream_spec_mirrors_the_stream_cli_defaults() {
        let spec = JobSpec::stream();
        let request = spec.to_request().expect("valid");
        assert_eq!(request.feed.session_rate, 25_000.0);
        assert_eq!(request.feed.chunk_records, idse_traffic::DEFAULT_CHUNK_RECORDS);
        assert_eq!(request.feed.shards, 8);
        assert_eq!(spec.resolved_sensitivity(), 0.6);
    }

    #[test]
    fn invalid_knobs_are_rejected_with_reasons() {
        let bad_kind = JobSpec { kind: Some("batch".to_owned()), ..JobSpec::default() };
        assert!(bad_kind.to_request().expect_err("rejected").to_string().contains("job kind"));

        let bad_profile = JobSpec { profile: Some("lab".to_owned()), ..JobSpec::default() };
        assert!(bad_profile.to_request().expect_err("rejected").to_string().contains("profile"));

        let bad_sweep = JobSpec { sweep: Some(1), ..JobSpec::default() };
        assert!(bad_sweep.to_request().expect_err("rejected").to_string().contains("sweep"));

        let stream_store = JobSpec {
            kind: Some("stream".to_owned()),
            store: Some(StoreRequest { dir: "runs".to_owned(), ..StoreRequest::default() }),
            ..JobSpec::default()
        };
        assert!(stream_store.to_request().expect_err("rejected").to_string().contains("store"));

        let bad_product = JobSpec { products: Some(vec!["nope".to_owned()]), ..JobSpec::default() };
        assert!(bad_product
            .resolve_products()
            .expect_err("rejected")
            .to_string()
            .contains("product"));
    }

    #[test]
    fn store_annotations_match_the_evaluate_cli() {
        let spec = JobSpec {
            store: Some(StoreRequest {
                dir: "runs-dir".to_owned(),
                stamp: Some("s1".to_owned()),
                git_rev: Some("abc".to_owned()),
            }),
            ..JobSpec::evaluate()
        };
        let request = spec.to_request().expect("valid");
        let store = request.store.expect("store spec attached");
        assert_eq!(store.dir, std::path::PathBuf::from("runs-dir"));
    }

    #[test]
    fn fault_plans_ride_the_spec() {
        use idse_faults::{FaultComponent, FaultKind};
        let plan = FaultPlan::new("spec-blink").with(
            idse_sim::SimTime::from_secs(8),
            FaultKind::Crash { component: FaultComponent::Monitor, restart_after: None },
        );
        let spec = JobSpec { fault_plan: Some(plan.clone()), ..JobSpec::evaluate() };
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: JobSpec = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.fault_plan.as_ref().map(FaultPlan::label), Some("spec-blink"));
        let request = back.to_request().expect("valid");
        assert_eq!(request.fault_plan.map(|p| p.label().to_owned()), Some("spec-blink".to_owned()));
    }
}
