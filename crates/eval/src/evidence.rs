//! Evidence collection (Table 3: "ability to preserve forensically useful
//! records of intrusions") and §3.3's closing requirement: "Logging of
//! historical traffic is also key to ex post facto unraveling the
//! compromise of a complex distributed system."
//!
//! The collector captures a window of packets around each alert's trigger
//! under a byte budget (2002-era disk is finite). What the evaluation can
//! then measure is *forensic coverage*: for each detected attack instance,
//! what fraction of its packets ended up preserved — the quantity an
//! incident responder actually cares about when unraveling a trust-chain
//! compromise after the fact.

use idse_ids::Alert;
use idse_net::trace::Trace;
use serde::Serialize;
use std::collections::BTreeSet;

/// Capture policy.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EvidencePolicy {
    /// Packets captured before each trigger.
    pub pre_packets: usize,
    /// Packets captured after each trigger (inclusive of the trigger).
    pub post_packets: usize,
    /// Total byte budget for the evidence store.
    pub byte_budget: u64,
}

impl EvidencePolicy {
    /// A conventional alert-adjacent capture: 8 before, 32 after, 4 MiB.
    pub fn alert_adjacent() -> Self {
        Self { pre_packets: 8, post_packets: 32, byte_budget: 4 * 1024 * 1024 }
    }
}

/// What the collector preserved.
#[derive(Debug, Clone, Serialize)]
pub struct EvidenceStore {
    /// Record indices preserved, deduplicated across overlapping windows.
    pub preserved: Vec<usize>,
    /// Wire bytes consumed.
    pub bytes_used: u64,
    /// Alerts whose windows were cut short by the byte budget.
    pub truncated_alerts: usize,
}

impl EvidenceStore {
    /// Collect evidence for `alerts` over `trace` under `policy`.
    ///
    /// Alerts are processed in visibility order (as a real spooler would);
    /// once the budget is exhausted, later windows are truncated.
    pub fn collect(trace: &Trace, alerts: &[Alert], policy: EvidencePolicy) -> Self {
        let mut order: Vec<&Alert> = alerts.iter().collect();
        order.sort_by_key(|a| a.raised_at);
        let mut preserved: BTreeSet<usize> = BTreeSet::new();
        let mut bytes_used = 0u64;
        let mut truncated_alerts = 0;
        for alert in order {
            let lo = alert.trigger.saturating_sub(policy.pre_packets);
            let hi = (alert.trigger + policy.post_packets).min(trace.len());
            let mut cut = false;
            for idx in lo..hi {
                if preserved.contains(&idx) {
                    continue;
                }
                let cost = trace.records()[idx].packet.wire_len() as u64;
                if bytes_used + cost > policy.byte_budget {
                    cut = true;
                    break;
                }
                bytes_used += cost;
                preserved.insert(idx);
            }
            if cut {
                truncated_alerts += 1;
            }
        }
        Self { preserved: preserved.into_iter().collect(), bytes_used, truncated_alerts }
    }

    /// Forensic coverage of one attack instance: fraction of its packets
    /// preserved. `None` if the instance has no packets in the trace.
    pub fn coverage_of(&self, trace: &Trace, attack_id: u32) -> Option<f64> {
        let preserved: BTreeSet<usize> = self.preserved.iter().copied().collect();
        let mut total = 0u32;
        let mut kept = 0u32;
        for (i, rec) in trace.records().iter().enumerate() {
            if rec.truth.is_some_and(|t| t.attack_id == attack_id) {
                total += 1;
                if preserved.contains(&i) {
                    kept += 1;
                }
            }
        }
        (total > 0).then(|| f64::from(kept) / f64::from(total))
    }

    /// Mean forensic coverage over the detected attack instances.
    pub fn mean_coverage(&self, trace: &Trace, detected_ids: &[u32]) -> f64 {
        let covs: Vec<f64> =
            detected_ids.iter().filter_map(|&id| self.coverage_of(trace, id)).collect();
        if covs.is_empty() {
            0.0
        } else {
            covs.iter().sum::<f64>() / covs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_ids::alert::DetectionSource;
    use idse_ids::Severity;
    use idse_net::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};
    use idse_net::trace::{AttackClass, GroundTruth};
    use idse_net::FlowKey;
    use idse_sim::SimTime;
    use std::net::Ipv4Addr;

    fn pkt(n: u16) -> Packet {
        Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)),
            TcpHeader {
                src_port: 1000 + n,
                dst_port: 80,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 0,
            },
            vec![0u8; 100],
        )
    }

    fn trace_with_attack(n: usize, attack_range: std::ops::Range<usize>) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            let p = pkt(i as u16);
            if attack_range.contains(&i) {
                t.push_attack(
                    SimTime::from_millis(i as u64),
                    p,
                    GroundTruth { attack_id: 1, class: AttackClass::PortScan },
                );
            } else {
                t.push_benign(SimTime::from_millis(i as u64), p);
            }
        }
        t
    }

    fn alert(trigger: usize, ms: u64) -> Alert {
        Alert {
            raised_at: SimTime::from_millis(ms),
            observed_at: SimTime::from_millis(ms),
            trigger,
            flow: FlowKey::of(&pkt(0)),
            class_guess: AttackClass::PortScan,
            severity: Severity::Warning,
            source: DetectionSource::Signature,
            sensor: 0,
            detector: "t".into(),
        }
    }

    #[test]
    fn window_is_captured_around_trigger() {
        let trace = trace_with_attack(100, 40..60);
        let policy = EvidencePolicy { pre_packets: 3, post_packets: 5, byte_budget: 1 << 20 };
        let store = EvidenceStore::collect(&trace, &[alert(50, 1)], policy);
        assert_eq!(store.preserved, (47..55).collect::<Vec<_>>());
        assert_eq!(store.truncated_alerts, 0);
        assert!(store.bytes_used > 0);
    }

    #[test]
    fn budget_truncates_later_alerts() {
        let trace = trace_with_attack(200, 0..0);
        // Each packet is 100B payload + headers ≈ 158 wire bytes.
        let policy = EvidencePolicy { pre_packets: 0, post_packets: 10, byte_budget: 700 };
        let store = EvidenceStore::collect(&trace, &[alert(10, 1), alert(100, 2)], policy);
        assert!(store.truncated_alerts >= 1);
        assert!(store.bytes_used <= 700);
        // Earlier alert wins the budget.
        assert!(store.preserved.iter().all(|&i| i < 20));
    }

    #[test]
    fn overlapping_windows_deduplicate() {
        let trace = trace_with_attack(50, 0..0);
        let policy = EvidencePolicy { pre_packets: 2, post_packets: 6, byte_budget: 1 << 20 };
        let one = EvidenceStore::collect(&trace, &[alert(10, 1)], policy);
        let two = EvidenceStore::collect(&trace, &[alert(10, 1), alert(12, 2)], policy);
        // The second window adds only its non-overlapping tail.
        assert!(two.preserved.len() < one.preserved.len() * 2);
        assert!(two.preserved.len() > one.preserved.len());
    }

    #[test]
    fn coverage_measures_preserved_fraction() {
        let trace = trace_with_attack(100, 40..60);
        let policy = EvidencePolicy { pre_packets: 0, post_packets: 10, byte_budget: 1 << 20 };
        let store = EvidenceStore::collect(&trace, &[alert(40, 1)], policy);
        let cov = store.coverage_of(&trace, 1).unwrap();
        assert!((cov - 0.5).abs() < 1e-9, "10 of 20 attack packets preserved: {cov}");
        assert_eq!(store.coverage_of(&trace, 99), None);
        assert!((store.mean_coverage(&trace, &[1]) - 0.5).abs() < 1e-9);
    }
}
