//! Throughput searches: zero-loss maximum and lethal dose (Table 3).
//!
//! Both metrics replay *the same canned feed* at increasing time
//! compression — the methodology's answer to "simple flooding … is not
//! sufficient": the load is realistic traffic sped up, not random
//! packets. Zero-loss is the largest offered rate with no unmonitored
//! packets; lethal dose is the offered rate at which a component's
//! failure behavior trips.

use crate::feeds::TestFeed;
use idse_ids::pipeline::{PipelineOutcome, PipelineRunner, RunConfig};
use idse_ids::products::IdsProduct;
use serde::Serialize;

/// Result of the two searches for one product.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputReport {
    /// Product name.
    pub product: String,
    /// Offered rate at the base (uncompressed) feed, packets/second.
    pub base_pps: f64,
    /// Largest sustained rate with zero unmonitored packets, pps.
    pub zero_loss_pps: f64,
    /// Offered rate at which a component failure tripped, pps
    /// (`None` if no failure occurred within the search ceiling —
    /// "degrades gracefully").
    pub lethal_dose_pps: Option<f64>,
    /// Loss ratio observed at the lethal dose (or at the ceiling).
    pub loss_at_extreme: f64,
    /// Peak simultaneous open TCP connections at the zero-loss rate — the
    /// paper's alternative denomination ("measured in packets/sec or # of
    /// simultaneous TCP streams").
    pub zero_loss_streams: usize,
}

/// Peak simultaneous open TCP connections over a trace.
pub fn peak_simultaneous_streams(trace: &idse_net::trace::Trace) -> usize {
    let mut tracker = idse_net::tcp::ConnTracker::new();
    let mut peak = 0;
    for rec in trace.records() {
        tracker.observe(&rec.packet);
        peak = peak.max(tracker.open_connections());
    }
    peak
}

fn run_at(product: &IdsProduct, feed: &TestFeed, factor: f64) -> PipelineOutcome {
    // Load tests replay the realistic *background* (content matters to
    // per-packet cost); attack accuracy is measured elsewhere. The scaled
    // trace is tiled to at least one second of sustained load so stage
    // buffers cannot hide the offered rate as a transient.
    let scaled = feed.background.time_scaled(factor);
    let span = scaled.span().as_secs_f64();
    let copies = if span > 0.0 { (1.0 / span).ceil().max(1.0) as u32 } else { 1 };
    let test = scaled.repeated(copies);
    let config = RunConfig { monitored_hosts: feed.servers.clone(), ..RunConfig::default() };
    PipelineRunner::new(product.clone(), config).with_training(feed.training.clone()).run(&test)
}

/// Binary-search the zero-loss maximum and escalate to the lethal dose.
///
/// `max_factor` bounds the search (time compression beyond which we call
/// the product graceful). Tolerance: a run counts as lossless when less
/// than 0.1% of packets go unmonitored (the paper's "sustained average of
/// zero lost packets" over a finite replay).
pub fn throughput_search(
    product: &IdsProduct,
    feed: &TestFeed,
    max_factor: f64,
) -> ThroughputReport {
    let base_pps = feed.background.mean_pps();
    const LOSSLESS: f64 = 0.001;

    // Establish an upper bracket for zero-loss by doubling.
    let mut lo = 1.0;
    let mut hi = 1.0;
    let mut hi_outcome = run_at(product, feed, hi);
    while hi_outcome.loss_ratio() <= LOSSLESS && hi < max_factor {
        lo = hi;
        hi = (hi * 2.0).min(max_factor);
        hi_outcome = run_at(product, feed, hi);
        if hi >= max_factor {
            break;
        }
    }

    let zero_loss_factor = if hi_outcome.loss_ratio() <= LOSSLESS {
        hi // lossless all the way to the ceiling
    } else {
        // Bisect [lo, hi].
        for _ in 0..12 {
            let mid = 0.5 * (lo + hi);
            let out = run_at(product, feed, mid);
            if out.loss_ratio() <= LOSSLESS {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    };

    // Lethal dose: escalate from the zero-loss point until failures trip.
    let mut lethal = None;
    let mut loss_at_extreme = 0.0;
    let mut factor = (zero_loss_factor * 1.5).max(2.0);
    while factor <= max_factor {
        let out = run_at(product, feed, factor);
        loss_at_extreme = out.loss_ratio();
        if out.failures > 0 {
            lethal = Some(factor);
            break;
        }
        factor *= 1.6;
    }

    let zero_loss_streams =
        peak_simultaneous_streams(&feed.background.time_scaled(zero_loss_factor));

    ThroughputReport {
        product: product.id.name().to_owned(),
        base_pps,
        zero_loss_pps: base_pps * zero_loss_factor,
        lethal_dose_pps: lethal.map(|f| base_pps * f),
        loss_at_extreme,
        zero_loss_streams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feeds::FeedConfig;
    use idse_ids::products::ProductId;
    use idse_sim::SimDuration;

    fn tiny_feed() -> TestFeed {
        TestFeed::ecommerce(
            &FeedConfig::builder()
                .session_rate(10.0)
                .training_span(SimDuration::from_secs(8))
                .test_span(SimDuration::from_secs(15))
                .campaign_intensity(1)
                .seed(3)
                .build(),
        )
    }

    #[test]
    fn zero_loss_at_least_base_rate() {
        let feed = tiny_feed();
        let r = throughput_search(&IdsProduct::model(ProductId::NidSentry), &feed, 64.0);
        assert!(r.zero_loss_pps >= r.base_pps, "{r:?}");
        assert!(r.zero_loss_streams > 0, "TCP sessions must overlap at speed: {r:?}");
    }

    #[test]
    fn stream_peak_counts_overlap() {
        // Compression does not change which connections exist, only how
        // much they overlap: the peak must not fall as the rate rises.
        let feed = tiny_feed();
        let slow = peak_simultaneous_streams(&feed.background);
        let fast = peak_simultaneous_streams(&feed.background.time_scaled(64.0));
        assert!(fast >= slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn lethal_dose_exceeds_zero_loss_when_found() {
        let feed = tiny_feed();
        let r = throughput_search(&IdsProduct::model(ProductId::AgentWatch), &feed, 512.0);
        if let Some(lethal) = r.lethal_dose_pps {
            assert!(
                lethal > r.zero_loss_pps,
                "lethal dose {lethal} must exceed zero-loss {}",
                r.zero_loss_pps
            );
        }
    }

    #[test]
    fn products_differ_in_headroom() {
        let feed = tiny_feed();
        let nid = throughput_search(&IdsProduct::model(ProductId::NidSentry), &feed, 1024.0);
        let fh = throughput_search(&IdsProduct::model(ProductId::FlowHunter), &feed, 1024.0);
        assert!(
            fh.zero_loss_pps > nid.zero_loss_pps,
            "the load-balanced 4-sensor product should outrun the single sensor: {fh:?} vs {nid:?}"
        );
    }
}
