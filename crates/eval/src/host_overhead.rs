//! Experiment X1: host-based monitoring overhead (§2.1).
//!
//! The paper cites [3, 10]: "Nominal event-logging support for host IDSs
//! has been shown to consume three to five percent of the monitored host's
//! resources. Logging compliant with Department of Defense C2-level
//! (Controlled Access Protection) security requires as much as twenty
//! percent of the host's processing power." The experiment loads a host
//! with a production event stream under each audit level and measures the
//! share of capacity the logging consumes, then optionally stacks a host
//! agent on top.

use idse_sim::{AuditLevel, HostCpu, RngStream, SimDuration, SimTime};
use serde::Serialize;

/// One audit level's measured overhead.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Audit level name.
    pub level: &'static str,
    /// Measured fraction of host capacity consumed by audit logging.
    pub audit_share: f64,
    /// Fraction consumed with an IDS host agent also installed.
    pub with_agent_share: f64,
    /// Production work completed per second (events/s) — shows the
    /// capacity actually lost to monitoring.
    pub production_events_per_sec: f64,
}

/// Run X1: a host at ~`load` utilization for `span`, under each audit
/// level, with and without an agent charging `agent_ops` per event.
pub fn host_overhead_experiment(
    load: f64,
    span: SimDuration,
    agent_ops: f64,
    seed: u64,
) -> Vec<OverheadRow> {
    let capacity = 500e6;
    let event_ops = 5_000.0; // one production transaction
    let target_rate = load * capacity / event_ops; // events/sec at `load`

    let mut rows = Vec::new();
    for level in [AuditLevel::Off, AuditLevel::Nominal, AuditLevel::C2] {
        let run = |agent: bool| -> (f64, f64) {
            let mut cpu = HostCpu::new(capacity, SimDuration::from_millis(200));
            cpu.set_audit_level(level);
            let mut rng = RngStream::derive(seed, &format!("x1-{}-{agent}", level.name()));
            let mut t = SimTime::ZERO;
            let end = SimTime::ZERO + span;
            let mut produced = 0u64;
            while t < end {
                if let idse_sim::host::CpuVerdict::Completed { .. } =
                    cpu.execute_production(t, event_ops)
                {
                    produced += 1;
                }
                if agent {
                    let _ = cpu.execute_ids(t, agent_ops);
                }
                t += SimDuration::from_secs_f64(rng.exponential(target_rate));
            }
            (cpu.ids_impact(end), produced as f64 / span.as_secs_f64())
        };
        let (audit_share, production_rate) = run(false);
        let (with_agent_share, _) = run(true);
        rows.push(OverheadRow {
            level: level.name(),
            audit_share,
            with_agent_share,
            production_events_per_sec: production_rate,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_shares_match_the_cited_ranges() {
        let rows = host_overhead_experiment(0.5, SimDuration::from_secs(30), 500.0, 1);
        let by_level: std::collections::BTreeMap<&str, &OverheadRow> =
            rows.iter().map(|r| (r.level, r)).collect();
        assert!(by_level["off"].audit_share < 1e-9);
        // Audit shares scale with utilization: at 50% production load the
        // nominal share is ~half the saturated 4%.
        let nominal = by_level["nominal"].audit_share;
        assert!(nominal > 0.01 && nominal < 0.05, "nominal share {nominal}");
        let c2 = by_level["C2"].audit_share;
        assert!(c2 > 0.08 && c2 < 0.20, "C2 share {c2}");
        assert!(c2 > 3.0 * nominal, "C2 must dwarf nominal (paper: 20% vs 3–5%)");
    }

    #[test]
    fn agent_adds_measurable_share() {
        let rows = host_overhead_experiment(0.5, SimDuration::from_secs(20), 1_000.0, 2);
        for r in &rows {
            assert!(
                r.with_agent_share > r.audit_share,
                "{}: agent share {} must exceed bare audit {}",
                r.level,
                r.with_agent_share,
                r.audit_share
            );
        }
    }

    #[test]
    fn overhead_rows_are_byte_stable_across_runs() {
        // Regression guard for the PR 1 `host_impact` bug class: the
        // serialized experiment output must be byte-identical run to run —
        // no container in the pipeline may let hash-seeded iteration order
        // reach the report.
        let run = || {
            let rows = host_overhead_experiment(0.7, SimDuration::from_secs(10), 750.0, 42);
            serde_json::to_string(&rows).expect("rows serialize")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn heavier_audit_reduces_production_headroom() {
        // At near-saturation load, C2 auditing must cost visible production
        // throughput.
        let rows = host_overhead_experiment(1.2, SimDuration::from_secs(20), 0.0, 3);
        let by_level: std::collections::BTreeMap<&str, &OverheadRow> =
            rows.iter().map(|r| (r.level, r)).collect();
        assert!(
            by_level["C2"].production_events_per_sec
                < by_level["off"].production_events_per_sec * 0.9,
            "C2 {} vs off {}",
            by_level["C2"].production_events_per_sec,
            by_level["off"].production_events_per_sec
        );
    }
}
