//! Figure 3: confusion quantities and the paper's ratio formulas.
//!
//! The paper defines, over transactions `T`, actual intrusions `A` and
//! IDS-detected intrusions `D`:
//!
//! ```text
//! False Positive Ratio = |D − A| / |T|
//! False Negative Ratio = |A − D| / |T|
//! ```
//!
//! The paper itself notes that "even the definition of an attack is not
//! always clear". We adopt the transaction ledger: a *transaction* is
//! either one attack instance (all packets a scenario emitted) or one
//! benign canonical flow. `D` is the set of transactions the IDS flagged
//! (an alert's trigger packet belongs to exactly one transaction), so
//! `|D − A|` counts benign flows falsely flagged and `|A − D|` counts
//! attack instances missed — the Venn regions of Figure 3.

use idse_ids::Alert;
use idse_net::trace::{AttackClass, Trace, TraceRecord};
use idse_net::FlowKey;
use std::collections::{BTreeMap, BTreeSet};

/// The transaction universe of one test trace.
///
/// Every container here is ordered (`BTreeMap`/`BTreeSet`): these counts
/// feed the reported FP/FN ratios, and hash-seeded iteration order must
/// never be observable in a report path (the PR 1 `host_impact` bug class).
#[derive(Debug)]
pub struct TransactionLedger {
    /// Benign canonical flows.
    benign_flows: BTreeSet<FlowKey>,
    /// Attack instance ids with class.
    attacks: BTreeMap<u32, AttackClass>,
    /// Per-record lookup: record index → transaction.
    record_txn: Vec<Txn>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Txn {
    Benign(FlowKey),
    Attack(u32),
}

impl TransactionLedger {
    /// Build the ledger for a labeled trace.
    pub fn of(trace: &Trace) -> Self {
        let mut benign_flows = BTreeSet::new();
        let mut attacks = BTreeMap::new();
        let mut record_txn = Vec::with_capacity(trace.len());
        for rec in trace.records() {
            match rec.truth {
                Some(t) => {
                    attacks.insert(t.attack_id, t.class);
                    record_txn.push(Txn::Attack(t.attack_id));
                }
                None => {
                    let flow = FlowKey::of(&rec.packet).canonical();
                    benign_flows.insert(flow);
                    record_txn.push(Txn::Benign(flow));
                }
            }
        }
        Self { benign_flows, attacks, record_txn }
    }

    /// Total transactions `|T|`.
    pub fn total(&self) -> usize {
        self.benign_flows.len() + self.attacks.len()
    }

    /// Actual intrusions `|A|`.
    pub fn attack_count(&self) -> usize {
        self.attacks.len()
    }

    /// Benign transaction count.
    pub fn benign_count(&self) -> usize {
        self.benign_flows.len()
    }

    /// Score a run's alerts into confusion counts.
    pub fn score(&self, alerts: &[Alert]) -> ConfusionCounts {
        let mut detected_attacks: BTreeSet<u32> = BTreeSet::new();
        let mut flagged_benign: BTreeSet<FlowKey> = BTreeSet::new();
        for a in alerts {
            match self.record_txn.get(a.trigger) {
                Some(Txn::Attack(id)) => {
                    detected_attacks.insert(*id);
                }
                Some(Txn::Benign(flow)) => {
                    flagged_benign.insert(*flow);
                }
                None => {}
            }
        }
        let missed: Vec<(u32, AttackClass)> = self
            .attacks
            .iter()
            .filter(|(id, _)| !detected_attacks.contains(id))
            .map(|(&id, &c)| (id, c))
            .collect();

        let mut per_class: BTreeMap<AttackClass, (u32, u32)> = BTreeMap::new();
        for (&id, &class) in &self.attacks {
            let e = per_class.entry(class).or_insert((0, 0));
            e.1 += 1;
            if detected_attacks.contains(&id) {
                e.0 += 1;
            }
        }

        ConfusionCounts {
            transactions: self.total(),
            actual_attacks: self.attacks.len(),
            detected_attacks: detected_attacks.len(),
            false_positives: flagged_benign.len(),
            missed_attacks: missed,
            per_class,
            alert_count: alerts.len(),
        }
    }
}

/// The Figure 3 quantities for one run.
#[derive(Debug, Clone)]
pub struct ConfusionCounts {
    /// `|T|`: total transactions.
    pub transactions: usize,
    /// `|A|`: actual attack instances.
    pub actual_attacks: usize,
    /// `|A ∩ D|`: attack instances with at least one attributable alert.
    pub detected_attacks: usize,
    /// `|D − A|`: benign flows falsely flagged.
    pub false_positives: usize,
    /// The missed instances `A − D`, with class.
    pub missed_attacks: Vec<(u32, AttackClass)>,
    /// Per-class `(detected, total)` instance counts.
    pub per_class: BTreeMap<AttackClass, (u32, u32)>,
    /// Raw alert volume (operator workload).
    pub alert_count: usize,
}

impl ConfusionCounts {
    /// The paper's false positive ratio `|D − A| / |T|`.
    pub fn false_positive_ratio(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.transactions as f64
        }
    }

    /// The paper's false negative ratio `|A − D| / |T|`.
    pub fn false_negative_ratio(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.missed_attacks.len() as f64 / self.transactions as f64
        }
    }

    /// Detection rate over attack instances (recall), a convenient
    /// complement for the per-class table.
    pub fn detection_rate(&self) -> f64 {
        if self.actual_attacks == 0 {
            1.0
        } else {
            self.detected_attacks as f64 / self.actual_attacks as f64
        }
    }

    /// Detection rate for one class, `None` if the class was absent.
    pub fn class_detection_rate(&self, class: AttackClass) -> Option<f64> {
        self.per_class
            .get(&class)
            .map(|&(d, t)| if t == 0 { 1.0 } else { f64::from(d) / f64::from(t) })
    }
}

/// Stable 64-bit hash of a flow key (FNV-1a over the canonical fields).
///
/// [`StreamLedger`] counts distinct benign flows through these hashes so
/// a million-flow run costs 8 bytes per flow instead of a `FlowKey` set.
/// Deterministic across runs and processes; collision odds at 10⁷ flows
/// are ~10⁻⁶ and cannot vary between runs of the same feed.
pub fn flow_hash(flow: &FlowKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(flow.protocol.number());
    for b in flow.src.octets() {
        eat(b);
    }
    for b in flow.src_port.to_be_bytes() {
        eat(b);
    }
    for b in flow.dst.octets() {
        eat(b);
    }
    for b in flow.dst_port.to_be_bytes() {
        eat(b);
    }
    h
}

/// Constant-memory transaction ledger for streamed feeds.
///
/// [`TransactionLedger`] indexes every record so alert triggers can be
/// joined back to transactions — O(trace) memory a streaming run cannot
/// afford. A `StreamLedger` instead observes records as they flow past,
/// holding only the attack-instance table (small) and one 64-bit hash
/// per distinct benign flow. Alerts are joined through the pipeline's
/// own channels (`PipelineOutcome::alert_truths` and [`Alert::flow`])
/// rather than a record index.
///
/// Flow-key shards never split a host pair, so per-shard ledgers merge
/// losslessly: [`StreamLedger::merge`] of the shard ledgers equals the
/// ledger of the unsharded stream.
#[derive(Debug, Clone, Default)]
pub struct StreamLedger {
    /// Attack instance ids with class (the `A` universe).
    attacks: BTreeMap<u32, AttackClass>,
    /// Hashes of distinct benign canonical flows; sorted+deduped
    /// amortized, with `pending` unsorted entries at the tail.
    flow_hashes: Vec<u64>,
    pending: usize,
    records: u64,
}

impl StreamLedger {
    /// How many unsorted tail entries trigger a compaction.
    const COMPACT_EVERY: usize = 1 << 16;

    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one streamed record.
    pub fn observe(&mut self, rec: &TraceRecord) {
        self.records += 1;
        match rec.truth {
            Some(t) => {
                self.attacks.insert(t.attack_id, t.class);
            }
            None => {
                self.flow_hashes.push(flow_hash(&FlowKey::of(&rec.packet).canonical()));
                self.pending += 1;
                if self.pending >= Self::COMPACT_EVERY {
                    self.compact();
                }
            }
        }
    }

    /// Observe a chunk of streamed records.
    pub fn observe_chunk(&mut self, records: &[TraceRecord]) {
        for rec in records {
            self.observe(rec);
        }
    }

    fn compact(&mut self) {
        self.flow_hashes.sort_unstable();
        self.flow_hashes.dedup();
        self.pending = 0;
    }

    /// Fold another shard's ledger into this one.
    pub fn merge(&mut self, other: StreamLedger) {
        self.attacks.extend(other.attacks);
        self.flow_hashes.extend(other.flow_hashes);
        self.records += other.records;
        self.compact();
    }

    /// Records observed (packets, not transactions).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Actual intrusions `|A|`.
    pub fn attack_count(&self) -> usize {
        self.attacks.len()
    }

    /// Distinct benign flows seen so far.
    pub fn benign_count(&mut self) -> usize {
        self.compact();
        self.flow_hashes.len()
    }

    /// Total transactions `|T|`.
    pub fn total(&mut self) -> usize {
        self.benign_count() + self.attacks.len()
    }

    /// The attack-instance table.
    pub fn attacks(&self) -> &BTreeMap<u32, AttackClass> {
        &self.attacks
    }

    /// Score a run from pre-joined alert facts: the set of attack ids
    /// with at least one alert (from `PipelineOutcome::alert_truths`) and
    /// the distinct benign flows falsely flagged (from [`Alert::flow`]).
    pub fn score(
        &mut self,
        detected: &BTreeSet<u32>,
        flagged_benign: usize,
        alert_count: usize,
    ) -> ConfusionCounts {
        let missed: Vec<(u32, AttackClass)> = self
            .attacks
            .iter()
            .filter(|(id, _)| !detected.contains(id))
            .map(|(&id, &c)| (id, c))
            .collect();
        let mut per_class: BTreeMap<AttackClass, (u32, u32)> = BTreeMap::new();
        let mut detected_attacks = 0usize;
        for (&id, &class) in &self.attacks {
            let e = per_class.entry(class).or_insert((0, 0));
            e.1 += 1;
            if detected.contains(&id) {
                e.0 += 1;
                detected_attacks += 1;
            }
        }
        ConfusionCounts {
            transactions: self.total(),
            actual_attacks: self.attacks.len(),
            detected_attacks,
            false_positives: flagged_benign,
            missed_attacks: missed,
            per_class,
            alert_count,
        }
    }
}

/// Aggregate alerts by detector name (diagnostics for noisy rules).
/// Ordered so serialized output is byte-stable across processes.
pub fn alerts_by_detector(alerts: &[Alert]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for a in alerts {
        *m.entry(a.detector.clone().into_owned()).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_ids::alert::{DetectionSource, Severity};
    use idse_net::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};
    use idse_net::trace::GroundTruth;
    use idse_sim::SimTime;
    use std::net::Ipv4Addr;

    fn pkt(sport: u16) -> Packet {
        Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)),
            TcpHeader {
                src_port: sport,
                dst_port: 80,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 0,
            },
            Vec::new(),
        )
    }

    fn alert_on(trigger: usize) -> Alert {
        Alert {
            raised_at: SimTime::from_millis(1),
            observed_at: SimTime::ZERO,
            trigger,
            flow: FlowKey::of(&pkt(1)),
            class_guess: AttackClass::PortScan,
            severity: Severity::Warning,
            source: DetectionSource::Signature,
            sensor: 0,
            detector: "t".into(),
        }
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        // Two benign flows (two packets each), two attack instances.
        t.push_benign(SimTime::from_millis(0), pkt(1000));
        t.push_benign(SimTime::from_millis(1), pkt(1000));
        t.push_benign(SimTime::from_millis(2), pkt(2000));
        t.push_benign(SimTime::from_millis(3), pkt(2000));
        let g1 = GroundTruth { attack_id: 1, class: AttackClass::PortScan };
        let g2 = GroundTruth { attack_id: 2, class: AttackClass::SynFlood };
        t.push_attack(SimTime::from_millis(4), pkt(3000), g1);
        t.push_attack(SimTime::from_millis(5), pkt(3001), g1);
        t.push_attack(SimTime::from_millis(6), pkt(4000), g2);
        t
    }

    #[test]
    fn ledger_counts_transactions() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        assert_eq!(ledger.benign_count(), 2);
        assert_eq!(ledger.attack_count(), 2);
        assert_eq!(ledger.total(), 4);
    }

    #[test]
    fn perfect_detection() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        // Alerts on records 4 (attack 1) and 6 (attack 2).
        let c = ledger.score(&[alert_on(4), alert_on(6)]);
        assert_eq!(c.detected_attacks, 2);
        assert_eq!(c.false_positives, 0);
        assert_eq!(c.false_positive_ratio(), 0.0);
        assert_eq!(c.false_negative_ratio(), 0.0);
        assert_eq!(c.detection_rate(), 1.0);
    }

    #[test]
    fn miss_and_false_alarm() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        // One alert on a benign record, none on attacks.
        let c = ledger.score(&[alert_on(0)]);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.missed_attacks.len(), 2);
        assert!((c.false_positive_ratio() - 0.25).abs() < 1e-12); // 1/4
        assert!((c.false_negative_ratio() - 0.5).abs() < 1e-12); // 2/4
        assert_eq!(c.detection_rate(), 0.0);
    }

    #[test]
    fn duplicate_alerts_do_not_double_count() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        let c = ledger.score(&[alert_on(4), alert_on(5), alert_on(0), alert_on(1)]);
        // Records 4,5 are the same attack; 0,1 the same benign flow.
        assert_eq!(c.detected_attacks, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.alert_count, 4);
    }

    #[test]
    fn per_class_rates() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        let c = ledger.score(&[alert_on(4)]);
        assert_eq!(c.class_detection_rate(AttackClass::PortScan), Some(1.0));
        assert_eq!(c.class_detection_rate(AttackClass::SynFlood), Some(0.0));
        assert_eq!(c.class_detection_rate(AttackClass::Tunneling), None);
    }

    #[test]
    fn detector_histogram_is_byte_stable() {
        // Regression guard for the PR 1 bug class: with a HashMap, the
        // serialized histogram order depended on the per-instance hash
        // seed. Ordered aggregation must serialize byte-identically
        // regardless of alert arrival order.
        let mut forward = Vec::new();
        let mut reverse = Vec::new();
        for (i, name) in ["zeta", "alpha", "mid", "alpha", "zeta"].iter().enumerate() {
            let mut a = alert_on(i);
            a.detector = (*name).into();
            forward.push(a);
        }
        reverse.extend(forward.iter().rev().cloned());
        let fwd_json = serde_json::to_string(&alerts_by_detector(&forward)).expect("serializes");
        let rev_json = serde_json::to_string(&alerts_by_detector(&reverse)).expect("serializes");
        assert_eq!(fwd_json, rev_json);
        assert_eq!(fwd_json, r#"{"alpha":2,"mid":1,"zeta":2}"#);
    }

    #[test]
    fn confusion_counts_are_byte_stable_across_runs() {
        // Two independently built ledgers over the same trace must agree
        // byte-for-byte on every derived quantity, including the ordered
        // missed-attack list.
        let t = sample_trace();
        let alerts = [alert_on(0), alert_on(4)];
        let a = TransactionLedger::of(&t).score(&alerts);
        let b = TransactionLedger::of(&t).score(&alerts);
        assert_eq!(format!("{:?}", a.missed_attacks), format!("{:?}", b.missed_attacks));
        assert_eq!(format!("{:?}", a.per_class), format!("{:?}", b.per_class));
        assert_eq!(a.false_positive_ratio().to_bits(), b.false_positive_ratio().to_bits());
        assert_eq!(a.false_negative_ratio().to_bits(), b.false_negative_ratio().to_bits());
    }

    #[test]
    fn out_of_range_trigger_is_ignored() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        let c = ledger.score(&[alert_on(999)]);
        assert_eq!(c.false_positives, 0);
        assert_eq!(c.detected_attacks, 0);
    }

    #[test]
    fn stream_ledger_counts_like_the_materialized_ledger() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        for chunk in [1usize, 3, 64] {
            let mut sl = StreamLedger::new();
            for c in t.records().chunks(chunk) {
                sl.observe_chunk(c);
            }
            assert_eq!(sl.benign_count(), ledger.benign_count());
            assert_eq!(sl.attack_count(), ledger.attack_count());
            assert_eq!(sl.total(), ledger.total());
            assert_eq!(sl.records(), t.len() as u64);
        }
    }

    #[test]
    fn stream_ledger_scores_like_the_materialized_ledger() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        // Alerts on records 0 and 1 (one benign flow) and 4 (attack 1).
        let triggers = [0usize, 1, 4];
        let alerts: Vec<Alert> = triggers.iter().map(|&i| alert_on(i)).collect();
        let reference = ledger.score(&alerts);

        // The streaming join: truth and flow come off the trigger records
        // as the pipeline hands them back, never through a trace index.
        let mut sl = StreamLedger::new();
        sl.observe_chunk(t.records());
        let mut detected = BTreeSet::new();
        let mut flagged = BTreeSet::new();
        for &i in &triggers {
            match t.records()[i].truth {
                Some(g) => {
                    detected.insert(g.attack_id);
                }
                None => {
                    flagged.insert(FlowKey::of(&t.records()[i].packet).canonical());
                }
            }
        }
        let counts = sl.score(&detected, flagged.len(), alerts.len());
        assert_eq!(counts.transactions, reference.transactions);
        assert_eq!(counts.actual_attacks, reference.actual_attacks);
        assert_eq!(counts.detected_attacks, reference.detected_attacks);
        assert_eq!(counts.false_positives, reference.false_positives);
        assert_eq!(counts.missed_attacks, reference.missed_attacks);
        assert_eq!(counts.per_class, reference.per_class);
        assert_eq!(
            counts.false_positive_ratio().to_bits(),
            reference.false_positive_ratio().to_bits()
        );
        assert_eq!(
            counts.false_negative_ratio().to_bits(),
            reference.false_negative_ratio().to_bits()
        );
    }

    #[test]
    fn shard_ledgers_merge_losslessly() {
        use idse_traffic::flow_shard;
        let t = sample_trace();
        let shards = 3u32;
        let mut parts: Vec<StreamLedger> = (0..shards).map(|_| StreamLedger::new()).collect();
        for rec in t.records() {
            let s = flow_shard(rec.packet.ip.src, rec.packet.ip.dst, shards) as usize;
            parts[s].observe(rec);
        }
        let mut merged = StreamLedger::new();
        for p in parts {
            merged.merge(p);
        }
        let mut whole = StreamLedger::new();
        whole.observe_chunk(t.records());
        assert_eq!(merged.total(), whole.total());
        assert_eq!(merged.benign_count(), whole.benign_count());
        assert_eq!(merged.attacks(), whole.attacks());
        assert_eq!(merged.records(), whole.records());
    }

    #[test]
    fn flow_hash_is_direction_stable_after_canonicalization() {
        let p = pkt(1000);
        let fwd = FlowKey::of(&p).canonical();
        // The reverse direction canonicalizes to the same key, hence hash.
        let rev = FlowKey {
            protocol: fwd.protocol,
            src: fwd.dst,
            src_port: fwd.dst_port,
            dst: fwd.src,
            dst_port: fwd.src_port,
        }
        .canonical();
        assert_eq!(flow_hash(&fwd), flow_hash(&rev));
        // And distinct flows get distinct hashes.
        assert_ne!(flow_hash(&fwd), flow_hash(&FlowKey::of(&pkt(2000)).canonical()));
    }
}
