//! Figure 3: confusion quantities and the paper's ratio formulas.
//!
//! The paper defines, over transactions `T`, actual intrusions `A` and
//! IDS-detected intrusions `D`:
//!
//! ```text
//! False Positive Ratio = |D − A| / |T|
//! False Negative Ratio = |A − D| / |T|
//! ```
//!
//! The paper itself notes that "even the definition of an attack is not
//! always clear". We adopt the transaction ledger: a *transaction* is
//! either one attack instance (all packets a scenario emitted) or one
//! benign canonical flow. `D` is the set of transactions the IDS flagged
//! (an alert's trigger packet belongs to exactly one transaction), so
//! `|D − A|` counts benign flows falsely flagged and `|A − D|` counts
//! attack instances missed — the Venn regions of Figure 3.

use idse_ids::Alert;
use idse_net::trace::{AttackClass, Trace};
use idse_net::FlowKey;
use std::collections::{BTreeMap, BTreeSet};

/// The transaction universe of one test trace.
///
/// Every container here is ordered (`BTreeMap`/`BTreeSet`): these counts
/// feed the reported FP/FN ratios, and hash-seeded iteration order must
/// never be observable in a report path (the PR 1 `host_impact` bug class).
#[derive(Debug)]
pub struct TransactionLedger {
    /// Benign canonical flows.
    benign_flows: BTreeSet<FlowKey>,
    /// Attack instance ids with class.
    attacks: BTreeMap<u32, AttackClass>,
    /// Per-record lookup: record index → transaction.
    record_txn: Vec<Txn>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Txn {
    Benign(FlowKey),
    Attack(u32),
}

impl TransactionLedger {
    /// Build the ledger for a labeled trace.
    pub fn of(trace: &Trace) -> Self {
        let mut benign_flows = BTreeSet::new();
        let mut attacks = BTreeMap::new();
        let mut record_txn = Vec::with_capacity(trace.len());
        for rec in trace.records() {
            match rec.truth {
                Some(t) => {
                    attacks.insert(t.attack_id, t.class);
                    record_txn.push(Txn::Attack(t.attack_id));
                }
                None => {
                    let flow = FlowKey::of(&rec.packet).canonical();
                    benign_flows.insert(flow);
                    record_txn.push(Txn::Benign(flow));
                }
            }
        }
        Self { benign_flows, attacks, record_txn }
    }

    /// Total transactions `|T|`.
    pub fn total(&self) -> usize {
        self.benign_flows.len() + self.attacks.len()
    }

    /// Actual intrusions `|A|`.
    pub fn attack_count(&self) -> usize {
        self.attacks.len()
    }

    /// Benign transaction count.
    pub fn benign_count(&self) -> usize {
        self.benign_flows.len()
    }

    /// Score a run's alerts into confusion counts.
    pub fn score(&self, alerts: &[Alert]) -> ConfusionCounts {
        let mut detected_attacks: BTreeSet<u32> = BTreeSet::new();
        let mut flagged_benign: BTreeSet<FlowKey> = BTreeSet::new();
        for a in alerts {
            match self.record_txn.get(a.trigger) {
                Some(Txn::Attack(id)) => {
                    detected_attacks.insert(*id);
                }
                Some(Txn::Benign(flow)) => {
                    flagged_benign.insert(*flow);
                }
                None => {}
            }
        }
        let missed: Vec<(u32, AttackClass)> = self
            .attacks
            .iter()
            .filter(|(id, _)| !detected_attacks.contains(id))
            .map(|(&id, &c)| (id, c))
            .collect();

        let mut per_class: BTreeMap<AttackClass, (u32, u32)> = BTreeMap::new();
        for (&id, &class) in &self.attacks {
            let e = per_class.entry(class).or_insert((0, 0));
            e.1 += 1;
            if detected_attacks.contains(&id) {
                e.0 += 1;
            }
        }

        ConfusionCounts {
            transactions: self.total(),
            actual_attacks: self.attacks.len(),
            detected_attacks: detected_attacks.len(),
            false_positives: flagged_benign.len(),
            missed_attacks: missed,
            per_class,
            alert_count: alerts.len(),
        }
    }
}

/// The Figure 3 quantities for one run.
#[derive(Debug, Clone)]
pub struct ConfusionCounts {
    /// `|T|`: total transactions.
    pub transactions: usize,
    /// `|A|`: actual attack instances.
    pub actual_attacks: usize,
    /// `|A ∩ D|`: attack instances with at least one attributable alert.
    pub detected_attacks: usize,
    /// `|D − A|`: benign flows falsely flagged.
    pub false_positives: usize,
    /// The missed instances `A − D`, with class.
    pub missed_attacks: Vec<(u32, AttackClass)>,
    /// Per-class `(detected, total)` instance counts.
    pub per_class: BTreeMap<AttackClass, (u32, u32)>,
    /// Raw alert volume (operator workload).
    pub alert_count: usize,
}

impl ConfusionCounts {
    /// The paper's false positive ratio `|D − A| / |T|`.
    pub fn false_positive_ratio(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.transactions as f64
        }
    }

    /// The paper's false negative ratio `|A − D| / |T|`.
    pub fn false_negative_ratio(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.missed_attacks.len() as f64 / self.transactions as f64
        }
    }

    /// Detection rate over attack instances (recall), a convenient
    /// complement for the per-class table.
    pub fn detection_rate(&self) -> f64 {
        if self.actual_attacks == 0 {
            1.0
        } else {
            self.detected_attacks as f64 / self.actual_attacks as f64
        }
    }

    /// Detection rate for one class, `None` if the class was absent.
    pub fn class_detection_rate(&self, class: AttackClass) -> Option<f64> {
        self.per_class
            .get(&class)
            .map(|&(d, t)| if t == 0 { 1.0 } else { f64::from(d) / f64::from(t) })
    }
}

/// Aggregate alerts by detector name (diagnostics for noisy rules).
/// Ordered so serialized output is byte-stable across processes.
pub fn alerts_by_detector(alerts: &[Alert]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for a in alerts {
        *m.entry(a.detector.clone()).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_ids::alert::{DetectionSource, Severity};
    use idse_net::packet::{Ipv4Header, Packet, TcpFlags, TcpHeader};
    use idse_net::trace::GroundTruth;
    use idse_sim::SimTime;
    use std::net::Ipv4Addr;

    fn pkt(sport: u16) -> Packet {
        Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)),
            TcpHeader {
                src_port: sport,
                dst_port: 80,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 0,
            },
            Vec::new(),
        )
    }

    fn alert_on(trigger: usize) -> Alert {
        Alert {
            raised_at: SimTime::from_millis(1),
            observed_at: SimTime::ZERO,
            trigger,
            flow: FlowKey::of(&pkt(1)),
            class_guess: AttackClass::PortScan,
            severity: Severity::Warning,
            source: DetectionSource::Signature,
            sensor: 0,
            detector: "t".into(),
        }
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        // Two benign flows (two packets each), two attack instances.
        t.push_benign(SimTime::from_millis(0), pkt(1000));
        t.push_benign(SimTime::from_millis(1), pkt(1000));
        t.push_benign(SimTime::from_millis(2), pkt(2000));
        t.push_benign(SimTime::from_millis(3), pkt(2000));
        let g1 = GroundTruth { attack_id: 1, class: AttackClass::PortScan };
        let g2 = GroundTruth { attack_id: 2, class: AttackClass::SynFlood };
        t.push_attack(SimTime::from_millis(4), pkt(3000), g1);
        t.push_attack(SimTime::from_millis(5), pkt(3001), g1);
        t.push_attack(SimTime::from_millis(6), pkt(4000), g2);
        t
    }

    #[test]
    fn ledger_counts_transactions() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        assert_eq!(ledger.benign_count(), 2);
        assert_eq!(ledger.attack_count(), 2);
        assert_eq!(ledger.total(), 4);
    }

    #[test]
    fn perfect_detection() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        // Alerts on records 4 (attack 1) and 6 (attack 2).
        let c = ledger.score(&[alert_on(4), alert_on(6)]);
        assert_eq!(c.detected_attacks, 2);
        assert_eq!(c.false_positives, 0);
        assert_eq!(c.false_positive_ratio(), 0.0);
        assert_eq!(c.false_negative_ratio(), 0.0);
        assert_eq!(c.detection_rate(), 1.0);
    }

    #[test]
    fn miss_and_false_alarm() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        // One alert on a benign record, none on attacks.
        let c = ledger.score(&[alert_on(0)]);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.missed_attacks.len(), 2);
        assert!((c.false_positive_ratio() - 0.25).abs() < 1e-12); // 1/4
        assert!((c.false_negative_ratio() - 0.5).abs() < 1e-12); // 2/4
        assert_eq!(c.detection_rate(), 0.0);
    }

    #[test]
    fn duplicate_alerts_do_not_double_count() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        let c = ledger.score(&[alert_on(4), alert_on(5), alert_on(0), alert_on(1)]);
        // Records 4,5 are the same attack; 0,1 the same benign flow.
        assert_eq!(c.detected_attacks, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.alert_count, 4);
    }

    #[test]
    fn per_class_rates() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        let c = ledger.score(&[alert_on(4)]);
        assert_eq!(c.class_detection_rate(AttackClass::PortScan), Some(1.0));
        assert_eq!(c.class_detection_rate(AttackClass::SynFlood), Some(0.0));
        assert_eq!(c.class_detection_rate(AttackClass::Tunneling), None);
    }

    #[test]
    fn detector_histogram_is_byte_stable() {
        // Regression guard for the PR 1 bug class: with a HashMap, the
        // serialized histogram order depended on the per-instance hash
        // seed. Ordered aggregation must serialize byte-identically
        // regardless of alert arrival order.
        let mut forward = Vec::new();
        let mut reverse = Vec::new();
        for (i, name) in ["zeta", "alpha", "mid", "alpha", "zeta"].iter().enumerate() {
            let mut a = alert_on(i);
            a.detector = (*name).into();
            forward.push(a);
        }
        reverse.extend(forward.iter().rev().cloned());
        let fwd_json = serde_json::to_string(&alerts_by_detector(&forward)).expect("serializes");
        let rev_json = serde_json::to_string(&alerts_by_detector(&reverse)).expect("serializes");
        assert_eq!(fwd_json, rev_json);
        assert_eq!(fwd_json, r#"{"alpha":2,"mid":1,"zeta":2}"#);
    }

    #[test]
    fn confusion_counts_are_byte_stable_across_runs() {
        // Two independently built ledgers over the same trace must agree
        // byte-for-byte on every derived quantity, including the ordered
        // missed-attack list.
        let t = sample_trace();
        let alerts = [alert_on(0), alert_on(4)];
        let a = TransactionLedger::of(&t).score(&alerts);
        let b = TransactionLedger::of(&t).score(&alerts);
        assert_eq!(format!("{:?}", a.missed_attacks), format!("{:?}", b.missed_attacks));
        assert_eq!(format!("{:?}", a.per_class), format!("{:?}", b.per_class));
        assert_eq!(a.false_positive_ratio().to_bits(), b.false_positive_ratio().to_bits());
        assert_eq!(a.false_negative_ratio().to_bits(), b.false_negative_ratio().to_bits());
    }

    #[test]
    fn out_of_range_trigger_is_ignored() {
        let t = sample_trace();
        let ledger = TransactionLedger::of(&t);
        let c = ledger.score(&[alert_on(999)]);
        assert_eq!(c.false_positives, 0);
        assert_eq!(c.detected_attacks, 0);
    }
}
