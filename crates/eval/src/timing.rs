//! Timing metrics: induced traffic latency and timeliness (Table 3).
//!
//! *Induced Traffic Latency* comes straight from the pipeline's in-line
//! tap accounting. *Timeliness* — "average/maximal time between an
//! intrusion's occurrence and its being reported" — joins each alert's
//! visibility time back to its trigger record's injection time.

use idse_ids::pipeline::PipelineOutcome;
use idse_net::trace::Trace;
use idse_sim::stats::DurationSummary;
use idse_sim::SimDuration;
use serde::Serialize;

/// Timing measurements for one run.
#[derive(Debug, Clone, Serialize)]
pub struct TimingReport {
    /// Mean in-line delay per forwarded packet (zero for mirrored taps).
    pub induced_latency_mean: SimDuration,
    /// Maximum in-line delay.
    pub induced_latency_max: SimDuration,
    /// Mean intrusion-occurrence → report time over attributable alerts.
    pub timeliness_mean: SimDuration,
    /// Maximum intrusion-occurrence → report time.
    pub timeliness_max: SimDuration,
    /// Alerts that attributed to attack packets (the timeliness sample).
    pub attributable_alerts: u64,
}

/// Compute timing measurements from a run.
pub fn timing_report(trace: &Trace, outcome: &PipelineOutcome) -> TimingReport {
    let mut timeliness = DurationSummary::new();
    for alert in &outcome.alerts {
        if let Some(rec) = trace.records().get(alert.trigger) {
            if rec.truth.is_some() {
                timeliness.record(alert.raised_at.saturating_since(rec.at));
            }
        }
    }
    TimingReport {
        induced_latency_mean: outcome.induced_latency.mean(),
        induced_latency_max: outcome.induced_latency.max(),
        timeliness_mean: timeliness.mean(),
        timeliness_max: timeliness.max(),
        attributable_alerts: timeliness.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feeds::{FeedConfig, TestFeed};
    use idse_ids::pipeline::{PipelineRunner, RunConfig};
    use idse_ids::products::{IdsProduct, ProductId};
    use idse_ids::Sensitivity;

    fn feed() -> TestFeed {
        TestFeed::ecommerce(
            &FeedConfig::builder()
                .session_rate(15.0)
                .training_span(SimDuration::from_secs(10))
                .test_span(SimDuration::from_secs(30))
                .campaign_intensity(1)
                .seed(21)
                .build(),
        )
    }

    #[test]
    fn timeliness_is_positive_and_bounded() {
        let f = feed();
        let runner = PipelineRunner::new(
            IdsProduct::model(ProductId::NidSentry),
            RunConfig {
                sensitivity: Sensitivity::new(0.7),
                monitored_hosts: f.servers.clone(),
                ..RunConfig::default()
            },
        )
        .with_training(f.training.clone());
        let out = runner.run(&f.test);
        let t = timing_report(&f.test, &out);
        assert!(t.attributable_alerts > 0);
        assert!(t.timeliness_mean > SimDuration::ZERO);
        assert!(t.timeliness_max >= t.timeliness_mean);
        // NidSentry's notification delay is 200 ms; timeliness must be at
        // least that.
        assert!(t.timeliness_mean >= SimDuration::from_millis(200));
    }

    #[test]
    fn inline_vs_mirrored_latency() {
        let f = feed();
        let run = |id: ProductId| {
            let runner = PipelineRunner::new(
                IdsProduct::model(id),
                RunConfig { monitored_hosts: f.servers.clone(), ..RunConfig::default() },
            )
            .with_training(f.training.clone());
            let out = runner.run(&f.test);
            timing_report(&f.test, &out)
        };
        let inline = run(ProductId::FlowHunter);
        let mirrored = run(ProductId::NidSentry);
        assert!(inline.induced_latency_mean > SimDuration::ZERO);
        assert_eq!(mirrored.induced_latency_mean, SimDuration::ZERO);
    }
}
