//! Experiments X2–X4 and X7: the paper's lessons learned, reproduced,
//! plus the fault-injection survivability matrix over the Figure 2
//! cardinalities.

use crate::confusion::TransactionLedger;
use crate::feeds::{FeedConfig, TestFeed};
use crate::sweep::{sweep, ErrorCurve, SweepPlan, SweepPoint};
use idse_exec::Executor;
use idse_faults::{FaultComponent, FaultKind, FaultPlan, Survivability};
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::IdsProduct;
use idse_ids::Sensitivity;
use idse_net::trace::AttackClass;
use idse_sim::{SimDuration, SimTime};
use idse_traffic::generator::PayloadMode;
use idse_traffic::{ArrivalProcess, BackgroundGenerator, GeneratorConfig, SiteProfile};
use serde::Serialize;

/// X2 — payload realism. "A simple flooding of the network … with
/// meaningless data is not sufficient … the data portion of an IP packet
/// should have realistic content", because content-inspecting IDSes
/// behave differently under the two loads.
#[derive(Debug, Clone, Serialize)]
pub struct RealismRow {
    /// Product name.
    pub product: String,
    /// Alerts per 1000 packets under realistic payloads.
    pub alerts_per_kpkt_realistic: f64,
    /// Alerts per 1000 packets under random-byte payloads at identical
    /// timing and sizes.
    pub alerts_per_kpkt_random: f64,
    /// Mean per-packet inspection cost (ops) under realistic payloads.
    pub cost_realistic: f64,
    /// Mean per-packet inspection cost (ops) under random payloads.
    pub cost_random: f64,
}

/// Run X2 for the given products at one sensitivity. Products are probed
/// in parallel on `exec`; rows come back in input order.
pub fn payload_realism_experiment(
    products: &[IdsProduct],
    sensitivity: f64,
    seed: u64,
    exec: &Executor,
) -> Vec<RealismRow> {
    let span = SimDuration::from_secs(25);
    let rate = 25.0;
    let mk = |mode: PayloadMode, seed_off: u64| {
        let mut cfg = GeneratorConfig::new(
            SiteProfile::ecommerce_web(),
            ArrivalProcess::Poisson { rate },
            span,
            seed ^ seed_off,
        );
        cfg.payload_mode = mode;
        BackgroundGenerator::new(cfg).generate()
    };
    let training = mk(PayloadMode::Realistic, 0x7261);
    let realistic = mk(PayloadMode::Realistic, 0);
    let random = mk(PayloadMode::RandomBytes, 0);

    exec.par_map(products, |_, p| {
        let run = |trace: &idse_net::trace::Trace| {
            let config =
                RunConfig { sensitivity: Sensitivity::new(sensitivity), ..RunConfig::default() };
            PipelineRunner::new(p.clone(), config).with_training(training.clone()).run(trace)
        };
        let out_real = run(&realistic);
        let out_rand = run(&random);
        let mean_cost = |trace: &idse_net::trace::Trace| -> f64 {
            // Engine cost model, averaged over the trace.
            let mut sig = p
                .engines
                .signature
                .clone()
                .map(idse_ids::engine::signature::SignatureEngine::standard);
            let ano = p.engines.anomaly.clone().map(idse_ids::engine::anomaly::AnomalyEngine::new);
            let mut total = 0.0;
            for r in trace.records() {
                if let Some(e) = sig.as_mut() {
                    total += idse_ids::engine::DetectionEngine::cost_ops(e, &r.packet);
                }
                if let Some(e) = ano.as_ref() {
                    total += idse_ids::engine::DetectionEngine::cost_ops(e, &r.packet);
                }
            }
            total / trace.len().max(1) as f64
        };
        RealismRow {
            product: p.id.name().to_owned(),
            alerts_per_kpkt_realistic: 1000.0 * out_real.alerts.len() as f64
                / realistic.len() as f64,
            alerts_per_kpkt_random: 1000.0 * out_rand.alerts.len() as f64 / random.len() as f64,
            cost_realistic: mean_cost(&realistic),
            cost_random: mean_cost(&random),
        }
    })
}

/// X3 — site profile mismatch. "Commercial IDSs will often be geared
/// toward [e-commerce traffic] and not perform well in [the high-trust
/// cluster] situation. The best way to evaluate any IDS is to use real
/// traffic … from the site where the IDS is expected to be deployed."
#[derive(Debug, Clone, Serialize)]
pub struct SiteProfileRow {
    /// Product name.
    pub product: String,
    /// False-positive ratio on cluster traffic when trained/tuned on
    /// cluster traffic (the matched case).
    pub fp_matched: f64,
    /// False-positive ratio on cluster traffic when trained/tuned on
    /// e-commerce traffic (the mismatched, "commercial default" case).
    pub fp_mismatched: f64,
    /// Attack-instance detection rate in the matched case.
    pub detection_matched: f64,
    /// Attack-instance detection rate in the mismatched case.
    pub detection_mismatched: f64,
}

/// Run X3 for the given products at one sensitivity. Products are probed
/// in parallel on `exec`; rows come back in input order.
pub fn site_profile_experiment(
    products: &[IdsProduct],
    sensitivity: f64,
    seed: u64,
    exec: &Executor,
) -> Vec<SiteProfileRow> {
    let fc = site_profile_feed_config(seed);
    let cluster = TestFeed::realtime_cluster(&fc);
    let web = TestFeed::ecommerce(&fc);
    let ledger = TransactionLedger::of(&cluster.test);

    exec.par_map(products, |_, p| {
        let run = |training: &idse_net::trace::Trace| {
            let config = RunConfig {
                sensitivity: Sensitivity::new(sensitivity),
                monitored_hosts: cluster.servers.clone(),
                ..RunConfig::default()
            };
            let out = PipelineRunner::new(p.clone(), config)
                .with_training(training.clone())
                .run(&cluster.test);
            ledger.score(&out.alerts)
        };
        let matched = run(&cluster.training);
        let mismatched = run(&web.training);
        SiteProfileRow {
            product: p.id.name().to_owned(),
            fp_matched: matched.false_positive_ratio(),
            fp_mismatched: mismatched.false_positive_ratio(),
            detection_matched: matched.detection_rate(),
            detection_mismatched: mismatched.detection_rate(),
        }
    })
}

/// X4 — operating-point selection (§3.3). "Distributed systems … should
/// put emphasis on reducing the false negative ratio to the lowest
/// possible level accepting an increased false positive alert ratio."
/// The experiment compares the EER operating point against the
/// min-FN-within-FP-budget point, reporting what each buys on the
/// hardest class (trust exploitation).
#[derive(Debug, Clone, Serialize)]
pub struct OperatingPointReport {
    /// Product name.
    pub product: String,
    /// The full sweep the points come from.
    pub curve: ErrorCurve,
    /// The equal-error-rate point, if the curves cross.
    pub eer_point: Option<(f64, f64)>,
    /// The §3.3 distributed operating point.
    pub low_fn_point: Option<SweepPoint>,
    /// Trust-exploit detection rate at (approximately) the EER sensitivity.
    pub trust_detection_at_eer: Option<f64>,
    /// Trust-exploit detection rate at the low-FN point.
    pub trust_detection_at_low_fn: Option<f64>,
}

/// Run X4 for one product on the cluster feed. The nine-step sweep fans
/// out on `exec`; the two follow-up runs at the chosen points are serial.
pub fn operating_point_experiment(
    product: &IdsProduct,
    fp_budget: f64,
    seed: u64,
    exec: &Executor,
) -> OperatingPointReport {
    let fc = operating_point_feed_config(seed);
    let feed = TestFeed::realtime_cluster(&fc);
    let plan = SweepPlan::with_steps(9).with_fp_budget(fp_budget);
    let curve = sweep(product, &feed, &plan, exec);
    let eer_point = curve.equal_error_rate();
    let low_fn_point = curve.operating_point(&plan);

    let ledger = TransactionLedger::of(&feed.test);
    let trust_rate_at = |s: f64| -> Option<f64> {
        let config = RunConfig {
            sensitivity: Sensitivity::new(s),
            monitored_hosts: feed.servers.clone(),
            ..RunConfig::default()
        };
        let out = PipelineRunner::new(product.clone(), config)
            .with_training(feed.training.clone())
            .run(&feed.test);
        ledger.score(&out.alerts).class_detection_rate(AttackClass::TrustExploit)
    };

    let trust_detection_at_eer = eer_point.and_then(|(s, _)| trust_rate_at(s));
    let trust_detection_at_low_fn = low_fn_point.and_then(|p| trust_rate_at(p.sensitivity));

    OperatingPointReport {
        product: product.id.name().to_owned(),
        curve,
        eer_point,
        low_fn_point,
        trust_detection_at_eer,
        trust_detection_at_low_fn,
    }
}

/// X7 — one fault scenario of the survivability matrix: a named fault
/// plan plus the Figure 2 relation it stresses.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// Scenario name (stable; keys the matrix row).
    pub name: &'static str,
    /// The Figure 2 cardinality the scenario breaks — e.g. the
    /// LB 1c:M fan-out, or the Monitor 1:1c Manager link.
    pub relation: &'static str,
    /// The fault plan injected into the run.
    pub plan: FaultPlan,
}

/// The standard X7 scenario set: every Figure 2 relation gets at least
/// one kill-or-partition scenario, plus the degradation faults (CPU
/// steal, clock skew, lossy tap). Timings assume the standard 50 s test
/// span — each outage opens after the trace warms up and heals before it
/// ends, so recovery behavior (replay, reroute-back) is exercised too.
pub fn fault_scenarios() -> Vec<FaultScenario> {
    let at = SimTime::from_secs(5);
    let heal = Some(SimDuration::from_secs(20));
    let crash =
        |name: &'static str, relation: &'static str, component: FaultComponent| FaultScenario {
            name,
            relation,
            plan: FaultPlan::new(name)
                .with(at, FaultKind::Crash { component, restart_after: heal }),
        };
    vec![
        // The four Figure 2 cardinalities, each killed in turn.
        crash("lb-kill", "LB 1c:M Sensor", FaultComponent::LoadBalancer),
        crash("sensor-kill", "Sensor M:M Analyzer", FaultComponent::Sensor(0)),
        crash("analyzer-kill", "Sensor M:M Analyzer", FaultComponent::Analyzer(0)),
        crash("monitor-kill", "Analyzer M:1 Monitor", FaultComponent::Monitor),
        crash("manager-kill", "Monitor 1:1c Manager", FaultComponent::Manager),
        // Substrate degradations.
        FaultScenario {
            name: "tap-partition",
            relation: "Net 1:M Tap",
            plan: FaultPlan::new("tap-partition").with(
                SimTime::from_secs(10),
                FaultKind::LinkPartition { duration: SimDuration::from_secs(5) },
            ),
        },
        FaultScenario {
            name: "tap-degrade",
            relation: "Net 1:M Tap",
            plan: FaultPlan::new("tap-degrade").with(
                SimTime::from_secs(5),
                FaultKind::LinkDegrade {
                    loss_per_mille: 150,
                    extra_latency: SimDuration::from_millis(2),
                    duration: SimDuration::from_secs(30),
                },
            ),
        },
        FaultScenario {
            name: "cpu-squeeze",
            relation: "Host N:1 CPU",
            plan: FaultPlan::new("cpu-squeeze").with(
                at,
                FaultKind::CpuExhaustion {
                    steal_percent: 60,
                    duration: SimDuration::from_secs(30),
                },
            ),
        },
        FaultScenario {
            name: "clock-skew",
            relation: "Analyzer M:1 Monitor",
            plan: FaultPlan::new("clock-skew").with(
                at,
                FaultKind::ClockSkew {
                    component: FaultComponent::Monitor,
                    offset: SimDuration::from_millis(50),
                },
            ),
        },
        FaultScenario {
            name: "alert-drop",
            relation: "Monitor 1:1c Manager",
            plan: FaultPlan::new("alert-drop").with(
                SimTime::from_secs(10),
                FaultKind::AlertChannelDrop { duration: SimDuration::from_secs(10) },
            ),
        },
    ]
}

/// One cell of the X7 matrix: a product put through one fault scenario,
/// condensed against its own fault-free baseline.
#[derive(Debug, Clone, Serialize)]
pub struct FaultMatrixRow {
    /// Product name.
    pub product: String,
    /// Scenario name (see [`fault_scenarios`]).
    pub scenario: String,
    /// Figure 2 relation the scenario stresses.
    pub relation: String,
    /// The four survivability measures for this cell.
    pub survivability: Survivability,
    /// 0–4 rubric scores in catalog order: retention, alert loss,
    /// reroute time, recovery completeness.
    pub scores: [u8; 4],
    /// Work items re-routed around a dead component.
    pub rerouted: u64,
    /// Alerts lost outright (dropped channel, dead unbuffered stage,
    /// stranded replay buffers).
    pub lost_alerts: u64,
    /// Buffered items replayed after a restart.
    pub replayed: u64,
}

/// The X3 site-profile feed parameters. Exported so run provenance can
/// state the exact feed the mismatch experiment ran on.
pub fn site_profile_feed_config(seed: u64) -> FeedConfig {
    FeedConfig::builder()
        .session_rate(25.0)
        .training_span(SimDuration::from_secs(25))
        .test_span(SimDuration::from_secs(50))
        .campaign_intensity(1)
        .seed(seed)
        .build()
}

/// The X4 operating-point feed parameters. Exported so run provenance can
/// state the exact feed the sweep ran on.
pub fn operating_point_feed_config(seed: u64) -> FeedConfig {
    FeedConfig::builder()
        .session_rate(25.0)
        .training_span(SimDuration::from_secs(25))
        .test_span(SimDuration::from_secs(50))
        .campaign_intensity(2)
        .seed(seed)
        .build()
}

/// The standard X7 feed: the scenario timings in [`fault_scenarios`]
/// assume this 50 s test span. Exported so run provenance can state the
/// exact feed the matrix ran on.
pub fn fault_matrix_feed_config(seed: u64) -> FeedConfig {
    FeedConfig::builder()
        .session_rate(25.0)
        .training_span(SimDuration::from_secs(25))
        .test_span(SimDuration::from_secs(50))
        .campaign_intensity(1)
        .seed(seed)
        .build()
}

/// Run the X7 component × fault-type grid: every product crossed with
/// every scenario, in parallel on `exec`, each cell scored against that
/// product's fault-free baseline run on the identical feed.
///
/// Rows come back in (product-major, scenario-minor) input order, so the
/// matrix is byte-identical at any worker count.
pub fn fault_matrix_experiment(
    products: &[IdsProduct],
    scenarios: &[FaultScenario],
    sensitivity: f64,
    seed: u64,
    exec: &Executor,
) -> Vec<FaultMatrixRow> {
    let fc = fault_matrix_feed_config(seed);
    let feed = TestFeed::realtime_cluster(&fc);
    let true_alerts = |alerts: &[idse_ids::alert::Alert]| {
        alerts.iter().filter(|a| feed.test.records()[a.trigger].truth.is_some()).count() as u64
    };
    let run = |product: &IdsProduct, faults: Option<FaultPlan>| {
        let config = RunConfig {
            sensitivity: Sensitivity::new(sensitivity),
            monitored_hosts: feed.servers.clone(),
            faults,
            ..RunConfig::default()
        };
        PipelineRunner::new(product.clone(), config)
            .with_training(feed.training.clone())
            .run(&feed.test)
    };

    // Fault-free twins first: one baseline per product, reused by every
    // scenario in that product's row.
    let baselines = exec.par_map(products, |_, p| true_alerts(&run(p, None).alerts));

    let grid: Vec<(usize, usize)> =
        (0..products.len()).flat_map(|p| (0..scenarios.len()).map(move |s| (p, s))).collect();
    exec.par_map(&grid, |_, &(pi, si)| {
        let product = &products[pi];
        let scenario = &scenarios[si];
        let faulted = run(product, Some(scenario.plan.clone()));
        let s = Survivability::measure(
            baselines[pi],
            true_alerts(&faulted.alerts),
            faulted.alerts.len() as u64,
            &faulted.fault_stats,
        );
        let stats = faulted.fault_stats;
        FaultMatrixRow {
            product: product.id.name().to_owned(),
            scenario: scenario.name.to_owned(),
            relation: scenario.relation.to_owned(),
            survivability: s,
            scores: [
                crate::measure::score_detection_retention(s.detection_retention).value(),
                crate::measure::score_alert_loss(s.alert_loss_ratio).value(),
                crate::measure::score_reroute_time(s.mean_reroute, stats.rerouted > 0).value(),
                crate::measure::score_recovery_completeness(s.recovery_completeness).value(),
            ],
            rerouted: stats.rerouted,
            lost_alerts: stats.lost_alerts,
            replayed: stats.replayed,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_ids::products::ProductId;

    #[test]
    fn x2_realism_changes_behaviour() {
        let products =
            [IdsProduct::model(ProductId::NidSentry), IdsProduct::model(ProductId::FlowHunter)];
        let rows = payload_realism_experiment(&products, 0.8, 11, &Executor::new(2));
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                (r.alerts_per_kpkt_realistic - r.alerts_per_kpkt_random).abs() > 1e-9,
                "{}: payload realism must change alert behaviour: {r:?}",
                r.product
            );
        }
        // The anomaly product must alarm far MORE under a random-byte
        // flood (binary content on text ports everywhere).
        let fh = rows.iter().find(|r| r.product.contains("FlowHunter")).unwrap();
        assert!(
            fh.alerts_per_kpkt_random > fh.alerts_per_kpkt_realistic * 3.0,
            "random flood should drown the anomaly engine in alarms: {fh:?}"
        );
    }

    #[test]
    fn x3_mismatched_training_hurts() {
        let products = [IdsProduct::model(ProductId::FlowHunter)];
        let rows = site_profile_experiment(&products, 0.7, 13, &Executor::serial());
        let r = &rows[0];
        assert!(
            r.fp_mismatched > r.fp_matched,
            "training on the wrong site must raise false positives: {r:?}"
        );
    }

    #[test]
    fn x7_matrix_covers_every_relation_deterministically() {
        let products = [IdsProduct::model(ProductId::GuardSecure)];
        let scenarios = fault_scenarios();
        let rows = fault_matrix_experiment(&products, &scenarios, 0.7, 21, &Executor::new(4));
        assert_eq!(rows.len(), scenarios.len());
        for relation in [
            "LB 1c:M Sensor",
            "Sensor M:M Analyzer",
            "Analyzer M:1 Monitor",
            "Monitor 1:1c Manager",
        ] {
            assert!(
                rows.iter().any(|r| r.relation == relation),
                "Figure 2 relation {relation} has no scenario"
            );
        }
        for r in &rows {
            assert!(
                (0.0..=1.0).contains(&r.survivability.detection_retention)
                    && (0.0..=1.0).contains(&r.survivability.alert_loss_ratio),
                "measures out of range: {r:?}"
            );
            assert!(r.scores.iter().all(|&s| s <= 4), "rubric scores are 0-4: {r:?}");
        }
        let serial = fault_matrix_experiment(&products, &scenarios, 0.7, 21, &Executor::serial());
        assert_eq!(format!("{rows:?}"), format!("{serial:?}"), "worker count changed the matrix");
    }

    #[test]
    fn x4_low_fn_point_catches_more_trust_exploits() {
        let report = operating_point_experiment(
            &IdsProduct::model(ProductId::FlowHunter),
            0.2,
            17,
            &Executor::new(3),
        );
        let low_fn = report.low_fn_point.expect("a low-FN point exists");
        // The chosen point trades FP for FN per §3.3.
        if let Some((_, eer_rate)) = report.eer_point {
            assert!(low_fn.false_negative_ratio <= eer_rate + 1e-9);
        }
        if let (Some(at_eer), Some(at_low)) =
            (report.trust_detection_at_eer, report.trust_detection_at_low_fn)
        {
            assert!(
                at_low >= at_eer,
                "the distributed operating point must not catch fewer trust exploits"
            );
        }
    }
}
