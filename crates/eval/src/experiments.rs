//! Experiments X2–X4: the paper's lessons learned, reproduced.

use crate::confusion::TransactionLedger;
use crate::feeds::{FeedConfig, TestFeed};
use crate::sweep::{sweep, ErrorCurve, SweepPlan, SweepPoint};
use idse_exec::Executor;
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::IdsProduct;
use idse_ids::Sensitivity;
use idse_net::trace::AttackClass;
use idse_sim::SimDuration;
use idse_traffic::generator::PayloadMode;
use idse_traffic::{ArrivalProcess, BackgroundGenerator, GeneratorConfig, SiteProfile};
use serde::Serialize;

/// X2 — payload realism. "A simple flooding of the network … with
/// meaningless data is not sufficient … the data portion of an IP packet
/// should have realistic content", because content-inspecting IDSes
/// behave differently under the two loads.
#[derive(Debug, Clone, Serialize)]
pub struct RealismRow {
    /// Product name.
    pub product: String,
    /// Alerts per 1000 packets under realistic payloads.
    pub alerts_per_kpkt_realistic: f64,
    /// Alerts per 1000 packets under random-byte payloads at identical
    /// timing and sizes.
    pub alerts_per_kpkt_random: f64,
    /// Mean per-packet inspection cost (ops) under realistic payloads.
    pub cost_realistic: f64,
    /// Mean per-packet inspection cost (ops) under random payloads.
    pub cost_random: f64,
}

/// Run X2 for the given products at one sensitivity. Products are probed
/// in parallel on `exec`; rows come back in input order.
pub fn payload_realism_experiment(
    products: &[IdsProduct],
    sensitivity: f64,
    seed: u64,
    exec: &Executor,
) -> Vec<RealismRow> {
    let span = SimDuration::from_secs(25);
    let rate = 25.0;
    let mk = |mode: PayloadMode, seed_off: u64| {
        let mut cfg = GeneratorConfig::new(
            SiteProfile::ecommerce_web(),
            ArrivalProcess::Poisson { rate },
            span,
            seed ^ seed_off,
        );
        cfg.payload_mode = mode;
        BackgroundGenerator::new(cfg).generate()
    };
    let training = mk(PayloadMode::Realistic, 0x7261);
    let realistic = mk(PayloadMode::Realistic, 0);
    let random = mk(PayloadMode::RandomBytes, 0);

    exec.par_map(products, |_, p| {
        let run = |trace: &idse_net::trace::Trace| {
            let config =
                RunConfig { sensitivity: Sensitivity::new(sensitivity), ..RunConfig::default() };
            PipelineRunner::new(p.clone(), config).with_training(training.clone()).run(trace)
        };
        let out_real = run(&realistic);
        let out_rand = run(&random);
        let mean_cost = |trace: &idse_net::trace::Trace| -> f64 {
            // Engine cost model, averaged over the trace.
            let mut sig = p
                .engines
                .signature
                .clone()
                .map(idse_ids::engine::signature::SignatureEngine::standard);
            let ano = p.engines.anomaly.clone().map(idse_ids::engine::anomaly::AnomalyEngine::new);
            let mut total = 0.0;
            for r in trace.records() {
                if let Some(e) = sig.as_mut() {
                    total += idse_ids::engine::DetectionEngine::cost_ops(e, &r.packet);
                }
                if let Some(e) = ano.as_ref() {
                    total += idse_ids::engine::DetectionEngine::cost_ops(e, &r.packet);
                }
            }
            total / trace.len().max(1) as f64
        };
        RealismRow {
            product: p.id.name().to_owned(),
            alerts_per_kpkt_realistic: 1000.0 * out_real.alerts.len() as f64
                / realistic.len() as f64,
            alerts_per_kpkt_random: 1000.0 * out_rand.alerts.len() as f64 / random.len() as f64,
            cost_realistic: mean_cost(&realistic),
            cost_random: mean_cost(&random),
        }
    })
}

/// X3 — site profile mismatch. "Commercial IDSs will often be geared
/// toward [e-commerce traffic] and not perform well in [the high-trust
/// cluster] situation. The best way to evaluate any IDS is to use real
/// traffic … from the site where the IDS is expected to be deployed."
#[derive(Debug, Clone, Serialize)]
pub struct SiteProfileRow {
    /// Product name.
    pub product: String,
    /// False-positive ratio on cluster traffic when trained/tuned on
    /// cluster traffic (the matched case).
    pub fp_matched: f64,
    /// False-positive ratio on cluster traffic when trained/tuned on
    /// e-commerce traffic (the mismatched, "commercial default" case).
    pub fp_mismatched: f64,
    /// Attack-instance detection rate in the matched case.
    pub detection_matched: f64,
    /// Attack-instance detection rate in the mismatched case.
    pub detection_mismatched: f64,
}

/// Run X3 for the given products at one sensitivity. Products are probed
/// in parallel on `exec`; rows come back in input order.
pub fn site_profile_experiment(
    products: &[IdsProduct],
    sensitivity: f64,
    seed: u64,
    exec: &Executor,
) -> Vec<SiteProfileRow> {
    let fc = FeedConfig {
        session_rate: 25.0,
        training_span: SimDuration::from_secs(25),
        test_span: SimDuration::from_secs(50),
        campaign_intensity: 1,
        seed,
    };
    let cluster = TestFeed::realtime_cluster(&fc);
    let web = TestFeed::ecommerce(&fc);
    let ledger = TransactionLedger::of(&cluster.test);

    exec.par_map(products, |_, p| {
        let run = |training: &idse_net::trace::Trace| {
            let config = RunConfig {
                sensitivity: Sensitivity::new(sensitivity),
                monitored_hosts: cluster.servers.clone(),
                ..RunConfig::default()
            };
            let out = PipelineRunner::new(p.clone(), config)
                .with_training(training.clone())
                .run(&cluster.test);
            ledger.score(&out.alerts)
        };
        let matched = run(&cluster.training);
        let mismatched = run(&web.training);
        SiteProfileRow {
            product: p.id.name().to_owned(),
            fp_matched: matched.false_positive_ratio(),
            fp_mismatched: mismatched.false_positive_ratio(),
            detection_matched: matched.detection_rate(),
            detection_mismatched: mismatched.detection_rate(),
        }
    })
}

/// X4 — operating-point selection (§3.3). "Distributed systems … should
/// put emphasis on reducing the false negative ratio to the lowest
/// possible level accepting an increased false positive alert ratio."
/// The experiment compares the EER operating point against the
/// min-FN-within-FP-budget point, reporting what each buys on the
/// hardest class (trust exploitation).
#[derive(Debug, Clone, Serialize)]
pub struct OperatingPointReport {
    /// Product name.
    pub product: String,
    /// The full sweep the points come from.
    pub curve: ErrorCurve,
    /// The equal-error-rate point, if the curves cross.
    pub eer_point: Option<(f64, f64)>,
    /// The §3.3 distributed operating point.
    pub low_fn_point: Option<SweepPoint>,
    /// Trust-exploit detection rate at (approximately) the EER sensitivity.
    pub trust_detection_at_eer: Option<f64>,
    /// Trust-exploit detection rate at the low-FN point.
    pub trust_detection_at_low_fn: Option<f64>,
}

/// Run X4 for one product on the cluster feed. The nine-step sweep fans
/// out on `exec`; the two follow-up runs at the chosen points are serial.
pub fn operating_point_experiment(
    product: &IdsProduct,
    fp_budget: f64,
    seed: u64,
    exec: &Executor,
) -> OperatingPointReport {
    let fc = FeedConfig {
        session_rate: 25.0,
        training_span: SimDuration::from_secs(25),
        test_span: SimDuration::from_secs(50),
        campaign_intensity: 2,
        seed,
    };
    let feed = TestFeed::realtime_cluster(&fc);
    let plan = SweepPlan::with_steps(9).with_fp_budget(fp_budget);
    let curve = sweep(product, &feed, &plan, exec);
    let eer_point = curve.equal_error_rate();
    let low_fn_point = curve.operating_point(&plan);

    let ledger = TransactionLedger::of(&feed.test);
    let trust_rate_at = |s: f64| -> Option<f64> {
        let config = RunConfig {
            sensitivity: Sensitivity::new(s),
            monitored_hosts: feed.servers.clone(),
            ..RunConfig::default()
        };
        let out = PipelineRunner::new(product.clone(), config)
            .with_training(feed.training.clone())
            .run(&feed.test);
        ledger.score(&out.alerts).class_detection_rate(AttackClass::TrustExploit)
    };

    let trust_detection_at_eer = eer_point.and_then(|(s, _)| trust_rate_at(s));
    let trust_detection_at_low_fn = low_fn_point.and_then(|p| trust_rate_at(p.sensitivity));

    OperatingPointReport {
        product: product.id.name().to_owned(),
        curve,
        eer_point,
        low_fn_point,
        trust_detection_at_eer,
        trust_detection_at_low_fn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_ids::products::ProductId;

    #[test]
    fn x2_realism_changes_behaviour() {
        let products =
            [IdsProduct::model(ProductId::NidSentry), IdsProduct::model(ProductId::FlowHunter)];
        let rows = payload_realism_experiment(&products, 0.8, 11, &Executor::new(2));
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                (r.alerts_per_kpkt_realistic - r.alerts_per_kpkt_random).abs() > 1e-9,
                "{}: payload realism must change alert behaviour: {r:?}",
                r.product
            );
        }
        // The anomaly product must alarm far MORE under a random-byte
        // flood (binary content on text ports everywhere).
        let fh = rows.iter().find(|r| r.product.contains("FlowHunter")).unwrap();
        assert!(
            fh.alerts_per_kpkt_random > fh.alerts_per_kpkt_realistic * 3.0,
            "random flood should drown the anomaly engine in alarms: {fh:?}"
        );
    }

    #[test]
    fn x3_mismatched_training_hurts() {
        let products = [IdsProduct::model(ProductId::FlowHunter)];
        let rows = site_profile_experiment(&products, 0.7, 13, &Executor::serial());
        let r = &rows[0];
        assert!(
            r.fp_mismatched > r.fp_matched,
            "training on the wrong site must raise false positives: {r:?}"
        );
    }

    #[test]
    fn x4_low_fn_point_catches_more_trust_exploits() {
        let report = operating_point_experiment(
            &IdsProduct::model(ProductId::FlowHunter),
            0.2,
            17,
            &Executor::new(3),
        );
        let low_fn = report.low_fn_point.expect("a low-FN point exists");
        // The chosen point trades FP for FN per §3.3.
        if let Some((_, eer_rate)) = report.eer_point {
            assert!(low_fn.false_negative_ratio <= eer_rate + 1e-9);
        }
        if let (Some(at_eer), Some(at_low)) =
            (report.trust_detection_at_eer, report.trust_detection_at_low_fn)
        {
            assert!(
                at_low >= at_eer,
                "the distributed operating point must not catch fewer trust exploits"
            );
        }
    }
}
