//! Constant-memory streaming evaluation: chunked feeds, flow-key shards.
//!
//! The classic harness materializes the whole test trace before anything
//! runs — fine at 60 s spans, hopeless at the ROADMAP's million-flow
//! scale. This module drives the Figure-1 pipeline directly from the
//! `idse-traffic` [`RecordStream`]:
//!
//! * each shard consumes a lazily merged stream of its background chunk
//!   sequence and its slice of the (small, materialized) campaign, in the
//!   exact order `Trace::merge` would produce ([`ShardFeed`]);
//! * scoring happens incrementally through a [`StreamLedger`] plus the
//!   pipeline's own `alert_truths` / [`idse_ids::Alert::flow`] channels,
//!   so no record index over the full trace ever exists;
//! * one job per `(product, shard)` runs on the [`idse_exec::Executor`],
//!   and the shard outcomes merge in deterministic shard order — the
//!   resulting [`StreamScorecard`] is byte-identical at any
//!   [`EvaluationRequest::jobs`] setting and any chunk size.
//!
//! Shard count *is* part of the experiment identity (a sharded pipeline
//! sees only its shard's cross-flow context), so it is recorded in the
//! scorecard and in feed provenance; byte-identity is guaranteed across
//! worker counts and chunk sizes, not across shard counts.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::confusion::{ConfusionCounts, StreamLedger};
use crate::feeds::{FeedConfig, TestFeed};
use crate::harness::EvaluationRequest;
use idse_exec::{CancelToken, Cancelled, ExperimentPlan, JobKey};
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::IdsProduct;
use idse_ids::Sensitivity;
use idse_net::trace::{Trace, TraceRecord};
use idse_net::FlowKey;
use idse_sim::SimTime;
use idse_traffic::{flow_shard, RecordStream};
use serde::{Deserialize, Serialize};

/// One shard's lazily merged feed: the background [`RecordStream`] for
/// shard `s` merged in time order with shard `s`'s slice of the campaign.
/// Ties resolve background-first, matching the stable sort in
/// `Trace::merge`, so shard 0 of 1 reproduces the materialized test trace
/// byte for byte.
pub struct ShardFeed {
    bg: RecordStream,
    bg_buf: VecDeque<TraceRecord>,
    bg_done: bool,
    campaign: VecDeque<TraceRecord>,
    chunk_records: usize,
}

impl ShardFeed {
    /// The feed for `shard` of `config.shards`, over `profile`.
    pub fn new(profile: &idse_traffic::SiteProfile, config: &FeedConfig, shard: u32) -> Self {
        let stream_cfg =
            TestFeed::background_stream(profile, config).with_shard(shard, config.shards);
        let bg = RecordStream::new(stream_cfg).expect("poisson arrivals always stream");
        let campaign: VecDeque<TraceRecord> = TestFeed::campaign_trace(profile, config)
            .records()
            .iter()
            .filter(|r| flow_shard(r.packet.ip.src, r.packet.ip.dst, config.shards) == shard)
            .cloned()
            .collect();
        Self {
            bg,
            bg_buf: VecDeque::new(),
            bg_done: false,
            campaign,
            chunk_records: config.chunk_records.max(1),
        }
    }

    fn refill(&mut self) {
        while self.bg_buf.is_empty() && !self.bg_done {
            match self.bg.next() {
                Some(chunk) => self.bg_buf.extend(chunk),
                None => self.bg_done = true,
            }
        }
    }

    fn next_record(&mut self) -> Option<TraceRecord> {
        self.refill();
        match (self.bg_buf.front(), self.campaign.front()) {
            (Some(b), Some(c)) if b.at <= c.at => self.bg_buf.pop_front(),
            (Some(_), Some(_)) | (None, Some(_)) => self.campaign.pop_front(),
            (Some(_), None) => self.bg_buf.pop_front(),
            (None, None) => None,
        }
    }
}

impl Iterator for ShardFeed {
    type Item = Vec<TraceRecord>;

    /// The next chunk of up to `chunk_records` merged records.
    fn next(&mut self) -> Option<Vec<TraceRecord>> {
        let mut chunk = Vec::with_capacity(self.chunk_records);
        while chunk.len() < self.chunk_records {
            match self.next_record() {
                Some(rec) => chunk.push(rec),
                None => break,
            }
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }
}

/// What one `(product, shard)` job produced.
#[derive(Debug)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: u32,
    /// Incremental transaction ledger over this shard's records.
    pub ledger: StreamLedger,
    /// Attack ids with at least one alert.
    pub detected: BTreeSet<u32>,
    /// Distinct benign canonical flows falsely flagged.
    pub flagged: BTreeSet<FlowKey>,
    /// Raw alert count.
    pub alerts: u64,
    /// Packets offered to the deployment.
    pub offered: u64,
    /// Packets inspected by at least one engine.
    pub monitored: u64,
    /// Packets lost before inspection.
    pub lost: u64,
    /// `(attack, benign)` packets suppressed by automated blocking.
    pub blocked: (u64, u64),
    /// Peak live records in the pipeline window (the bounded-RSS figure).
    pub window_peak: usize,
    /// Virtual time the shard's run finished.
    pub finished_at: SimTime,
}

/// Run one shard of a product's streaming evaluation.
///
/// `training` is the (short, materialized) known-benign trace every shard
/// trains on; the test window itself is never materialized.
pub fn run_shard(
    product: &IdsProduct,
    profile: &idse_traffic::SiteProfile,
    config: &FeedConfig,
    training: &Trace,
    sensitivity: f64,
    shard: u32,
    telemetry: idse_telemetry::Telemetry,
) -> ShardOutcome {
    run_shard_cancellable(
        product,
        profile,
        config,
        training,
        sensitivity,
        shard,
        telemetry,
        &CancelToken::new(),
    )
    .expect("a fresh token never cancels")
}

/// [`run_shard`] with a cooperative cancellation point at every chunk
/// boundary.
///
/// The token is checked *between* chunks — never mid-chunk — so a
/// cancelled shard stops at a deterministic record boundary: everything
/// observed so far (including the `stream.chunk.records` progress
/// counters in `telemetry`) is a pure function of the feed and the
/// checkpoint count, and the partial telemetry is flushed by the plan's
/// cancellable reduce.
#[allow(clippy::too_many_arguments)]
pub fn run_shard_cancellable(
    product: &IdsProduct,
    profile: &idse_traffic::SiteProfile,
    config: &FeedConfig,
    training: &Trace,
    sensitivity: f64,
    shard: u32,
    telemetry: idse_telemetry::Telemetry,
    cancel: &CancelToken,
) -> Result<ShardOutcome, Cancelled> {
    let run_config = RunConfig {
        sensitivity: Sensitivity::new(sensitivity),
        monitored_hosts: TestFeed::server_hosts(profile),
        auto_response: true,
        telemetry: telemetry.clone(),
        ..RunConfig::default()
    };
    let runner = PipelineRunner::new(product.clone(), run_config).with_training(training.clone());
    // idse-lint: allow(transitive-unordered-iteration-in-report, reason = "pipeline-internal membership sets: contains/insert only, order never observed; all reported counts come from the ordered ledger below")
    let mut session = runner.session();
    let mut ledger = StreamLedger::new();
    for chunk in ShardFeed::new(profile, config, shard) {
        cancel.guard()?;
        ledger.observe_chunk(&chunk);
        let progress_at = chunk.last().map(|r| r.at.as_nanos()).unwrap_or(0);
        let records = chunk.len() as u64;
        session.push_chunk(chunk);
        telemetry.counter(progress_at, "stream.chunk.records", records);
    }
    let outcome = session.finish();

    let mut detected = BTreeSet::new();
    let mut flagged = BTreeSet::new();
    for (alert, truth) in outcome.alerts.iter().zip(outcome.alert_truths.iter()) {
        match truth {
            Some(g) => {
                detected.insert(g.attack_id);
            }
            None => {
                flagged.insert(alert.flow.canonical());
            }
        }
    }
    Ok(ShardOutcome {
        shard,
        ledger,
        detected,
        flagged,
        alerts: outcome.alerts.len() as u64,
        offered: outcome.offered,
        monitored: outcome.monitored,
        lost: outcome.missed,
        blocked: outcome.blocked,
        window_peak: outcome.window_peak,
        finished_at: outcome.finished_at,
    })
}

/// The merged, serializable result of one product's streaming run.
///
/// Serialization is byte-stable: every map is ordered, every number is
/// reduced in deterministic shard order, so `to_json` is the artifact CI
/// diffs across `--jobs` settings and chunk sizes.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct StreamScorecard {
    /// Product name.
    pub product: String,
    /// Master feed seed.
    pub seed: u64,
    /// Flow-key shard count the run used (part of experiment identity).
    pub shards: u32,
    /// Records generated across all shards.
    pub records: u64,
    /// Transactions `|T|` (distinct benign flows + attack instances).
    pub transactions: u64,
    /// Actual intrusions `|A|`.
    pub actual_attacks: u64,
    /// Attack instances with at least one alert.
    pub detected_attacks: u64,
    /// Benign flows falsely flagged `|D − A|`.
    pub false_positives: u64,
    /// Attack instances missed `|A − D|`.
    pub missed_attacks: u64,
    /// The paper's FP ratio `|D − A| / |T|`.
    pub false_positive_ratio: f64,
    /// The paper's FN ratio `|A − D| / |T|`.
    pub false_negative_ratio: f64,
    /// Detection rate over attack instances.
    pub detection_rate: f64,
    /// Raw alert volume.
    pub alerts: u64,
    /// Packets offered to the deployment.
    pub offered: u64,
    /// Packets inspected by at least one engine.
    pub monitored: u64,
    /// Packets lost before inspection.
    pub lost: u64,
    /// Attack packets suppressed by automated blocking.
    pub blocked_attack: u64,
    /// Benign packets suppressed by automated blocking.
    pub blocked_benign: u64,
    /// Latest virtual finish time across shards, in nanoseconds.
    pub finished_at_ns: u64,
    /// Per-class `(detected, total)` attack-instance counts.
    pub per_class: BTreeMap<String, (u32, u32)>,
}

impl StreamScorecard {
    /// Compact, byte-stable JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("scorecard serializes")
    }
}

/// One product's streaming evaluation: the scorecard plus the underlying
/// confusion counts.
#[derive(Debug)]
pub struct StreamEvaluation {
    /// The merged scorecard.
    pub scorecard: StreamScorecard,
    /// Figure 3 quantities backing it.
    pub confusion: ConfusionCounts,
    /// Max peak live records across shards — the bounded-RSS figure.
    /// Deliberately *not* part of the scorecard: it scales with the
    /// chunk size (pure batching), while the scorecard bytes must be
    /// identical at any chunk size.
    pub window_peak: usize,
}

impl EvaluationRequest {
    /// Evaluate products over the streamed real-time-cluster feed this
    /// request describes, at a fixed `sensitivity`.
    ///
    /// One job per `(product, shard)` runs on the request's executor;
    /// shard outcomes merge in shard order, so the returned scorecards
    /// are byte-identical for any [`EvaluationRequest::jobs`] setting and
    /// any `chunk_records`. Memory stays O(chunk + in-flight sessions +
    /// distinct-flow hashes) — the test window is never materialized.
    pub fn evaluate_stream(
        &self,
        products: &[IdsProduct],
        sensitivity: f64,
    ) -> Vec<StreamEvaluation> {
        self.evaluate_stream_cancellable(products, sensitivity, &CancelToken::new())
            .expect("a fresh token never cancels")
    }

    /// [`EvaluationRequest::evaluate_stream`] with cooperative
    /// cancellation: the token is polled at every chunk boundary of every
    /// `(product, shard)` job (see [`run_shard_cancellable`]) and between
    /// job claims on the executor.
    ///
    /// On cancellation the partial telemetry of every job that ran —
    /// including the per-chunk `stream.chunk.records` progress counters of
    /// the job that observed the cancel — is flushed into the request's
    /// sink in canonical job order before `Err(Cancelled)` is returned.
    pub fn evaluate_stream_cancellable(
        &self,
        products: &[IdsProduct],
        sensitivity: f64,
        cancel: &CancelToken,
    ) -> Result<Vec<StreamEvaluation>, Cancelled> {
        let exec = self.executor();
        let profile = TestFeed::realtime_cluster_profile(&self.feed);
        let training = RecordStream::new(TestFeed::training_stream(&profile, &self.feed))
            .expect("poisson arrivals always stream")
            .collect_trace();

        let mut plan: ExperimentPlan<(usize, u32)> = ExperimentPlan::new(self.feed.seed);
        for (index, product) in products.iter().enumerate() {
            for shard in 0..self.feed.shards {
                plan.push_scoped(
                    JobKey::new(product.id.name(), "shard", shard),
                    product.id.name(),
                    (index, shard),
                );
            }
        }
        let results =
            plan.run_cancellable(&exec, &self.telemetry, cancel, |ctx, &(index, shard)| {
                run_shard_cancellable(
                    &products[index],
                    &profile,
                    &self.feed,
                    &training,
                    sensitivity,
                    shard,
                    ctx.telemetry.clone(),
                    cancel,
                )
            })?;
        let mut outcomes: BTreeMap<JobKey, ShardOutcome> =
            results.into_iter().map(|r| (r.key, r.output)).collect();

        Ok(products
            .iter()
            .map(|product| {
                let name = product.id.name();
                let shard_outcomes: Vec<ShardOutcome> = (0..self.feed.shards)
                    .map(|s| {
                        outcomes
                            .remove(&JobKey::new(name, "shard", s))
                            .expect("every shard job completed under its key")
                    })
                    .collect();
                self.merge_shards(name, shard_outcomes)
            })
            .collect())
    }

    /// Deterministic reduce: fold shard outcomes (in shard order) into one
    /// scorecard.
    fn merge_shards(&self, product: &str, shard_outcomes: Vec<ShardOutcome>) -> StreamEvaluation {
        let mut ledger = StreamLedger::new();
        let mut detected: BTreeSet<u32> = BTreeSet::new();
        let mut flagged: BTreeSet<FlowKey> = BTreeSet::new();
        let (mut alerts, mut offered, mut monitored, mut lost) = (0u64, 0u64, 0u64, 0u64);
        let mut blocked = (0u64, 0u64);
        let mut window_peak = 0usize;
        let mut finished_at = SimTime::ZERO;
        for o in shard_outcomes {
            ledger.merge(o.ledger);
            detected.extend(o.detected);
            flagged.extend(o.flagged);
            alerts += o.alerts;
            offered += o.offered;
            monitored += o.monitored;
            lost += o.lost;
            blocked.0 += o.blocked.0;
            blocked.1 += o.blocked.1;
            window_peak = window_peak.max(o.window_peak);
            finished_at = finished_at.max(o.finished_at);
        }
        let records = ledger.records();
        let confusion = ledger.score(&detected, flagged.len(), alerts as usize);
        let per_class = confusion
            .per_class
            .iter()
            .map(|(class, &counts)| (format!("{class:?}"), counts))
            .collect();
        let scorecard = StreamScorecard {
            product: product.to_owned(),
            seed: self.feed.seed,
            shards: self.feed.shards,
            records,
            transactions: confusion.transactions as u64,
            actual_attacks: confusion.actual_attacks as u64,
            detected_attacks: confusion.detected_attacks as u64,
            false_positives: confusion.false_positives as u64,
            missed_attacks: confusion.missed_attacks.len() as u64,
            false_positive_ratio: confusion.false_positive_ratio(),
            false_negative_ratio: confusion.false_negative_ratio(),
            detection_rate: confusion.detection_rate(),
            alerts,
            offered,
            monitored,
            lost,
            blocked_attack: blocked.0,
            blocked_benign: blocked.1,
            finished_at_ns: finished_at.as_nanos(),
            per_class,
        };
        StreamEvaluation { scorecard, confusion, window_peak }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confusion::TransactionLedger;
    use idse_ids::products::ProductId;
    use idse_sim::SimDuration;

    fn small_config(shards: u32, chunk: usize) -> FeedConfig {
        FeedConfig::builder()
            .session_rate(12.0)
            .training_span(SimDuration::from_secs(10))
            .test_span(SimDuration::from_secs(20))
            .campaign_intensity(1)
            .seed(0x57e4)
            .chunk_records(chunk)
            .shards(shards)
            .build()
    }

    #[test]
    fn shard_feed_of_one_reproduces_the_materialized_test_trace() {
        let cfg = small_config(1, 97);
        let feed = TestFeed::realtime_cluster(&cfg);
        let streamed: Vec<TraceRecord> = ShardFeed::new(&feed.profile, &cfg, 0).flatten().collect();
        assert_eq!(streamed.len(), feed.test.len());
        for (a, b) in streamed.iter().zip(feed.test.records().iter()) {
            assert_eq!(a.at, b.at);
            assert_eq!(&a.packet, &b.packet);
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn shard_feeds_partition_the_test_trace() {
        let cfg = small_config(3, 256);
        let feed = TestFeed::realtime_cluster(&cfg);
        let mut total = 0usize;
        for s in 0..3 {
            for chunk in ShardFeed::new(&feed.profile, &cfg, s) {
                for rec in &chunk {
                    assert_eq!(flow_shard(rec.packet.ip.src, rec.packet.ip.dst, 3), s);
                    total += 1;
                }
            }
        }
        assert_eq!(total, feed.test.len());
    }

    #[test]
    fn unsharded_stream_run_matches_the_materialized_run() {
        let cfg = small_config(1, 512);
        let request = EvaluationRequest::new().with_feed(cfg.clone());
        let product = IdsProduct::model(ProductId::NidSentry);
        let eval =
            request.evaluate_stream(std::slice::from_ref(&product), 0.7).pop().expect("one eval");

        // Reference: the classic materialized path at the same sensitivity.
        let feed = TestFeed::realtime_cluster(&cfg);
        let run_config = RunConfig {
            sensitivity: Sensitivity::new(0.7),
            monitored_hosts: feed.servers.clone(),
            auto_response: true,
            ..RunConfig::default()
        };
        let outcome = PipelineRunner::new(product, run_config)
            .with_training(feed.training.clone())
            .run(&feed.test);
        let reference = TransactionLedger::of(&feed.test).score(&outcome.alerts);

        assert_eq!(eval.scorecard.alerts, outcome.alerts.len() as u64);
        assert_eq!(eval.scorecard.offered, outcome.offered);
        assert_eq!(eval.scorecard.monitored, outcome.monitored);
        assert_eq!(eval.scorecard.finished_at_ns, outcome.finished_at.as_nanos());
        assert_eq!(eval.scorecard.transactions, reference.transactions as u64);
        assert_eq!(eval.scorecard.actual_attacks, reference.actual_attacks as u64);
        assert_eq!(eval.scorecard.detected_attacks, reference.detected_attacks as u64);
        assert_eq!(eval.scorecard.false_positives, reference.false_positives as u64);
        assert_eq!(eval.scorecard.missed_attacks, reference.missed_attacks.len() as u64);
        assert_eq!(eval.confusion.per_class, reference.per_class);
    }

    #[test]
    fn jobs_and_chunk_size_never_change_the_scorecard_bytes() {
        let product = IdsProduct::model(ProductId::NidSentry);
        let render = |jobs: usize, chunk: usize| {
            EvaluationRequest::new()
                .with_feed(small_config(3, chunk))
                .with_jobs(jobs)
                .evaluate_stream(std::slice::from_ref(&product), 0.7)
                .pop()
                .expect("one eval")
                .scorecard
                .to_json()
        };
        let baseline = render(1, 512);
        assert_eq!(baseline, render(4, 512), "worker count changed the bytes");
        assert_eq!(baseline, render(2, 64), "chunk size changed the bytes");
        assert_eq!(baseline, render(8, 4096), "chunk size changed the bytes");
    }

    #[test]
    fn cancellation_stops_at_a_chunk_boundary_with_partial_telemetry_flushed() {
        use idse_telemetry::{MemorySink, Telemetry};
        let product = IdsProduct::model(ProductId::NidSentry);
        let run_cancelled = || {
            let sink = MemorySink::new(1 << 14);
            let request = EvaluationRequest::new()
                .with_feed(small_config(1, 128))
                .with_telemetry(Telemetry::new(sink.clone()));
            // The fuse trips on the third chunk-boundary checkpoint: two
            // chunks are processed, the third is never pushed.
            let token = CancelToken::after_checkpoints(3);
            let outcome =
                request.evaluate_stream_cancellable(std::slice::from_ref(&product), 0.7, &token);
            assert!(outcome.is_err(), "the armed fuse cancels the run");
            sink.events().iter().map(|e| e.to_jsonl()).collect::<Vec<_>>()
        };
        let events = run_cancelled();
        let chunks: Vec<&String> =
            events.iter().filter(|l| l.contains("stream.chunk.records")).collect();
        assert_eq!(chunks.len(), 2, "exactly the pre-cancel chunk progress is flushed");
        assert!(!events.is_empty(), "partial telemetry reaches the sink on cancellation");
        assert_eq!(events, run_cancelled(), "a cancelled run is still deterministic");
    }

    #[test]
    fn cancellable_stream_with_fresh_token_matches_evaluate_stream() {
        let product = IdsProduct::model(ProductId::NidSentry);
        let request = EvaluationRequest::new().with_feed(small_config(2, 256));
        let direct = request
            .evaluate_stream(std::slice::from_ref(&product), 0.7)
            .pop()
            .expect("one eval")
            .scorecard
            .to_json();
        let cancellable = request
            .evaluate_stream_cancellable(std::slice::from_ref(&product), 0.7, &CancelToken::new())
            .expect("never cancelled")
            .pop()
            .expect("one eval")
            .scorecard
            .to_json();
        assert_eq!(direct, cancellable);
    }

    #[test]
    fn with_stream_configures_the_feed() {
        let request = EvaluationRequest::new().with_stream(1024, 8);
        assert_eq!(request.feed.chunk_records, 1024);
        assert_eq!(request.feed.shards, 8);
        // Clamped to sane minimums.
        let request = EvaluationRequest::new().with_stream(0, 0);
        assert_eq!(request.feed.chunk_records, 1);
        assert_eq!(request.feed.shards, 1);
    }
}
