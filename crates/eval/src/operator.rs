//! The human dimension: an operator-attention model (paper §4 future
//! work: "we would like to expand the scorecard metrics to capture the
//! human dimension of IDS as well").
//!
//! The paper's monitoring section already states the mechanism: "Frequent
//! alerts on trivial or normal events result in a high false-positive rate
//! (Type I error) and lead to the IDS being ignored by the operators."
//! This module makes that concrete: an operator has a finite triage budget
//! (alerts per hour). When the alert stream exceeds it, triage is rationed
//! by severity — highest first — and untriaged alerts are *ignored*. An
//! attack whose every alert was ignored is effectively undetected, however
//! good the sensor was.
//!
//! The resulting **effective detection rate** is not monotone in
//! sensitivity: past the operator's saturation point, extra sensitivity
//! adds mostly low-severity noise that crowds out real alerts. That
//! maximum is the *human-constrained* operating point, which can sit well
//! below the machine-optimal one found by the Figure 4 sweep.

use crate::confusion::{ConfusionCounts, TransactionLedger};
use idse_ids::alert::Alert;
use idse_ids::Severity;
use serde::Serialize;

/// An operator's triage capacity.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OperatorModel {
    /// Alerts the operator can seriously investigate per hour.
    pub triage_per_hour: f64,
    /// Alerts below this severity are dropped first under pressure
    /// (tier-skipping: a flooded operator filters the console view).
    pub floor_under_pressure: Severity,
}

impl OperatorModel {
    /// A single watch-floor operator, 2002 tooling: roughly one serious
    /// investigation every 90 seconds, sustained.
    pub fn single_watchstander() -> Self {
        Self { triage_per_hour: 40.0, floor_under_pressure: Severity::Warning }
    }

    /// A staffed security operations floor.
    pub fn staffed_floor() -> Self {
        Self { triage_per_hour: 200.0, floor_under_pressure: Severity::Info }
    }

    /// Which alerts actually get triaged over a window of `hours`.
    ///
    /// Severity tiers are triaged top-down; within a tier, earliest first
    /// (the console sorts by severity, then time). Returns indices into
    /// `alerts`.
    pub fn triaged_indices(&self, alerts: &[Alert], hours: f64) -> Vec<usize> {
        let budget = (self.triage_per_hour * hours).floor() as usize;
        if alerts.len() <= budget {
            return (0..alerts.len()).collect();
        }
        let mut order: Vec<usize> = (0..alerts.len()).collect();
        // Highest severity first, then earliest.
        order.sort_by(|&a, &b| {
            alerts[b]
                .severity
                .cmp(&alerts[a].severity)
                .then(alerts[a].raised_at.cmp(&alerts[b].raised_at))
        });
        let mut chosen: Vec<usize> = order
            .into_iter()
            .filter(|&i| alerts[i].severity >= self.floor_under_pressure)
            .take(budget)
            .collect();
        chosen.sort_unstable();
        chosen
    }

    /// Confusion counts as the *operator* experiences them: only triaged
    /// alerts count as detections.
    pub fn effective_confusion(
        &self,
        ledger: &TransactionLedger,
        alerts: &[Alert],
        hours: f64,
    ) -> ConfusionCounts {
        let kept = self.triaged_indices(alerts, hours);
        let kept_alerts: Vec<Alert> = kept.into_iter().map(|i| alerts[i].clone()).collect();
        ledger.score(&kept_alerts)
    }
}

/// One row of the fatigue experiment: machine vs operator-effective
/// detection at a sensitivity setting.
#[derive(Debug, Clone, Serialize)]
pub struct FatigueRow {
    /// Sensitivity setting.
    pub sensitivity: f64,
    /// Alerts raised by the IDS.
    pub alerts: usize,
    /// Alerts the operator triaged.
    pub triaged: usize,
    /// Machine detection rate (every alert counted).
    pub machine_detection: f64,
    /// Operator-effective detection rate (triaged alerts only).
    pub effective_detection: f64,
}

/// Sweep a product and compare machine vs operator-effective detection.
///
/// `window_hours` is the wall-clock duration the test trace *represents* —
/// canned feeds are time-compressed samples, so the caller states how much
/// watch time the sample stands for (typically 1.0: one watch hour).
pub fn fatigue_sweep(
    product: &idse_ids::products::IdsProduct,
    feed: &crate::feeds::TestFeed,
    operator: OperatorModel,
    window_hours: f64,
    steps: usize,
) -> Vec<FatigueRow> {
    use idse_ids::pipeline::{PipelineRunner, RunConfig};
    let ledger = TransactionLedger::of(&feed.test);
    let hours = window_hours;
    let mut rows = Vec::with_capacity(steps);
    for k in 0..steps {
        let s = k as f64 / (steps - 1).max(1) as f64;
        let out = PipelineRunner::new(
            product.clone(),
            RunConfig {
                sensitivity: idse_ids::Sensitivity::new(s),
                monitored_hosts: feed.servers.clone(),
                ..RunConfig::default()
            },
        )
        .with_training(feed.training.clone())
        .run(&feed.test);
        let machine = ledger.score(&out.alerts);
        let effective = operator.effective_confusion(&ledger, &out.alerts, hours);
        rows.push(FatigueRow {
            sensitivity: s,
            alerts: out.alerts.len(),
            triaged: operator.triaged_indices(&out.alerts, hours).len(),
            machine_detection: machine.detection_rate(),
            effective_detection: effective.detection_rate(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_ids::alert::DetectionSource;
    use idse_net::packet::IpProtocol;
    use idse_net::trace::AttackClass;
    use idse_net::FlowKey;
    use idse_sim::SimTime;
    use std::net::Ipv4Addr;

    fn alert(trigger: usize, severity: Severity, ms: u64) -> Alert {
        Alert {
            raised_at: SimTime::from_millis(ms),
            observed_at: SimTime::from_millis(ms),
            trigger,
            flow: FlowKey {
                protocol: IpProtocol::Tcp,
                src: Ipv4Addr::new(1, 1, 1, 1),
                src_port: 1,
                dst: Ipv4Addr::new(2, 2, 2, 2),
                dst_port: 2,
            },
            class_guess: AttackClass::PortScan,
            severity,
            source: DetectionSource::Signature,
            sensor: 0,
            detector: "t".into(),
        }
    }

    #[test]
    fn under_budget_everything_is_triaged() {
        let op = OperatorModel { triage_per_hour: 100.0, floor_under_pressure: Severity::Info };
        let alerts: Vec<Alert> = (0..10).map(|i| alert(i, Severity::Info, i as u64)).collect();
        assert_eq!(op.triaged_indices(&alerts, 1.0).len(), 10);
    }

    #[test]
    fn over_budget_triage_prefers_severity() {
        let op = OperatorModel { triage_per_hour: 2.0, floor_under_pressure: Severity::Info };
        let alerts = vec![
            alert(0, Severity::Info, 0),
            alert(1, Severity::Critical, 10),
            alert(2, Severity::Info, 20),
            alert(3, Severity::High, 30),
        ];
        let kept = op.triaged_indices(&alerts, 1.0);
        assert_eq!(kept, vec![1, 3], "critical and high outrank the infos");
    }

    #[test]
    fn pressure_floor_drops_low_tiers_entirely() {
        let op = OperatorModel { triage_per_hour: 3.0, floor_under_pressure: Severity::Warning };
        let alerts = vec![
            alert(0, Severity::Info, 0),
            alert(1, Severity::Info, 5),
            alert(2, Severity::Warning, 10),
            alert(3, Severity::Info, 20),
            alert(4, Severity::Info, 30),
        ];
        let kept = op.triaged_indices(&alerts, 1.0);
        assert_eq!(kept, vec![2], "under pressure, infos never reach the operator");
    }

    #[test]
    fn ties_break_by_time_within_a_tier() {
        let op = OperatorModel { triage_per_hour: 2.0, floor_under_pressure: Severity::Info };
        let alerts = vec![
            alert(0, Severity::High, 30),
            alert(1, Severity::High, 10),
            alert(2, Severity::High, 20),
        ];
        let kept = op.triaged_indices(&alerts, 1.0);
        assert_eq!(kept, vec![1, 2], "earliest alerts within the tier win");
    }
}
