//! Shared run provenance and the bridge into `idse-store`.
//!
//! Two consumers need the same provenance document: the `evaluate --json`
//! report manifest and the persisted run header in the store. This module
//! holds the one [`Provenance`] struct both serialize, so the two can
//! never drift, plus the recording glue ([`record_evaluation`],
//! [`record_fault_matrix`], [`record_hybrid_taxonomy`]) that turns
//! harness results into store runs.
//!
//! Everything here follows the harness's determinism contract: the worker
//! count is deliberately *absent* (results are byte-identical at any
//! `--jobs N`, attested by [`JOBS_INDEPENDENCE`]), wall time never
//! appears, and timestamps only ride along as an opaque caller-supplied
//! stamp that is excluded from run identity.

use crate::experiments::{FaultMatrixRow, FaultScenario};
use crate::feeds::FeedConfig;
use crate::harness::{EvaluationRequest, ProductEvaluation};
use crate::sweep::SweepPlan;
use idse_faults::FaultPlan;
use idse_store::{fnv64, RunDraft, RunStore, StoreError, StoredRun};
use idse_telemetry::summary::summarize;
use idse_telemetry::Telemetry;
use serde::Serialize;
use serde_json::Value;
use std::path::PathBuf;

/// The jobs-independence attestation stamped into every run header: why
/// the worker count is not part of provenance.
pub const JOBS_INDEPENDENCE: &str = "scorecards, curves and telemetry are byte-identical at any \
                                     --jobs N; the worker count changes only wall time and is \
                                     deliberately excluded from provenance";

/// The timebase attestation: no measurement ever reads the wall clock.
pub const TIMEBASE: &str =
    "sim-time (deterministic virtual clock; wall time never enters a measurement)";

/// Feed parameters, flattened for the manifest.
#[derive(Debug, Clone, Serialize)]
pub struct FeedProvenance {
    /// Sessions per second of background traffic.
    pub session_rate: f64,
    /// Training span, seconds.
    pub training_span_s: f64,
    /// Test span, seconds.
    pub test_span_s: f64,
    /// Attack-campaign intensity.
    pub campaign_intensity: u32,
    /// Feed seed (the master seed of the run).
    pub seed: u64,
    /// Host-count override for scaled profiles (`None` = preset).
    pub hosts: Option<u32>,
    /// Stream chunk size. Pure batching — recorded for reproduction
    /// commands, but guaranteed not to affect any produced byte.
    pub chunk_records: usize,
    /// Flow-key shard count. Part of the experiment identity: a sharded
    /// pipeline sees only its shard's cross-flow context.
    pub shards: u32,
}

impl FeedProvenance {
    /// Capture a [`FeedConfig`].
    pub fn of(feed: &FeedConfig) -> Self {
        FeedProvenance {
            session_rate: feed.session_rate,
            training_span_s: feed.training_span.as_secs_f64(),
            test_span_s: feed.test_span.as_secs_f64(),
            campaign_intensity: feed.campaign_intensity,
            seed: feed.seed,
            hosts: feed.hosts,
            chunk_records: feed.chunk_records,
            shards: feed.shards,
        }
    }
}

/// How the operating sensitivity was chosen.
#[derive(Debug, Clone, Serialize)]
pub struct SensitivityPolicy {
    /// The selection rule, in words.
    pub rule: String,
    /// False-positive budget (budgeted sweeps only).
    pub fp_budget: Option<f64>,
    /// Sweep step count (budgeted sweeps only).
    pub sweep_steps: Option<usize>,
    /// Low end of the swept sensitivity range.
    pub sweep_low: Option<f64>,
    /// High end of the swept sensitivity range.
    pub sweep_high: Option<f64>,
    /// The pinned sensitivity (fixed-sensitivity experiments only).
    pub fixed_sensitivity: Option<f64>,
}

impl SensitivityPolicy {
    /// The harness's §3.3 policy: min false-negative ratio within the
    /// false-positive budget, over `plan`'s sweep ladder.
    pub fn budgeted(plan: &SweepPlan) -> Self {
        SensitivityPolicy {
            rule: "min false-negative ratio within the false-positive budget".to_owned(),
            fp_budget: Some(plan.fp_budget),
            sweep_steps: Some(plan.steps),
            sweep_low: Some(plan.sensitivity_range.0),
            sweep_high: Some(plan.sensitivity_range.1),
            fixed_sensitivity: None,
        }
    }

    /// A fixed operating sensitivity (the X7 fault matrix).
    pub fn fixed(sensitivity: f64) -> Self {
        SensitivityPolicy {
            rule: "fixed operating sensitivity".to_owned(),
            fp_budget: None,
            sweep_steps: None,
            sweep_low: None,
            sweep_high: None,
            fixed_sensitivity: Some(sensitivity),
        }
    }
}

/// Identity of one fault plan: label, event count, and a content hash so
/// two runs claiming the same plan can be checked without replaying it.
#[derive(Debug, Clone, Serialize)]
pub struct FaultPlanProvenance {
    /// The plan's label.
    pub label: String,
    /// Number of injected fault events.
    pub events: usize,
    /// FNV-1a over the plan's canonical JSON, 16 hex digits.
    pub hash: String,
}

impl FaultPlanProvenance {
    /// Capture one plan.
    pub fn of(plan: &FaultPlan) -> Self {
        let json = serde_json::to_string(plan).expect("a fault plan always serializes");
        FaultPlanProvenance {
            label: plan.label().to_owned(),
            events: plan.len(),
            hash: format!("{:016x}", fnv64(json.as_bytes())),
        }
    }
}

/// The provenance manifest: everything needed to reproduce a run, shared
/// verbatim between `evaluate --json` and the store's run headers.
#[derive(Debug, Clone, Serialize)]
pub struct Provenance {
    /// Workspace crate version.
    pub crate_version: &'static str,
    /// Master seed (equals the feed seed).
    pub seed: u64,
    /// Site profile name, when the caller selected one.
    pub profile: Option<String>,
    /// Weighting scheme name, when the caller selected one.
    pub weighting: Option<String>,
    /// Git revision of the working tree, when the caller passed one
    /// (never read from the environment — determinism).
    pub git_rev: Option<String>,
    /// Feed parameters.
    pub feed: FeedProvenance,
    /// Operating-sensitivity selection policy.
    pub sensitivity_policy: SensitivityPolicy,
    /// Every fault plan in play (empty for fault-free runs).
    pub fault_plans: Vec<FaultPlanProvenance>,
    /// Why the worker count is absent ([`JOBS_INDEPENDENCE`]).
    pub jobs_independence: &'static str,
    /// The timebase attestation ([`TIMEBASE`]).
    pub timebase: &'static str,
}

impl Provenance {
    /// Capture an [`EvaluationRequest`]'s reproducibility surface.
    pub fn for_request(request: &EvaluationRequest) -> Self {
        Provenance {
            crate_version: env!("CARGO_PKG_VERSION"),
            seed: request.feed.seed,
            profile: None,
            weighting: None,
            git_rev: None,
            feed: FeedProvenance::of(&request.feed),
            sensitivity_policy: SensitivityPolicy::budgeted(&request.sweep),
            fault_plans: request.fault_plan.iter().map(FaultPlanProvenance::of).collect(),
            jobs_independence: JOBS_INDEPENDENCE,
            timebase: TIMEBASE,
        }
    }

    /// This manifest with a site-profile name attached.
    pub fn with_profile(mut self, profile: impl Into<String>) -> Self {
        self.profile = Some(profile.into());
        self
    }

    /// This manifest with a weighting-scheme name attached.
    pub fn with_weighting(mut self, weighting: impl Into<String>) -> Self {
        self.weighting = Some(weighting.into());
        self
    }

    /// This manifest with a git revision attached (pass what your build
    /// system knows; nothing is read from the environment).
    pub fn with_git_rev(mut self, git_rev: Option<String>) -> Self {
        self.git_rev = git_rev;
        self
    }

    /// The manifest as a JSON value, field order fixed.
    pub fn to_value(&self) -> Value {
        serde_json::to_value(self).expect("provenance always serializes")
    }
}

/// Where (and how) a run should be recorded.
#[derive(Debug, Clone, Default)]
pub struct StoreSpec {
    /// The store directory (`runs/` by convention).
    pub dir: PathBuf,
    /// Opaque timestamp to annotate the run header with (excluded from
    /// run identity).
    pub stamp: Option<String>,
    /// Git revision to fold into provenance.
    pub git_rev: Option<String>,
    /// Site-profile name to fold into provenance.
    pub profile: Option<String>,
    /// Weighting-scheme name to fold into provenance.
    pub weighting: Option<String>,
}

impl StoreSpec {
    /// Record into `dir` with no annotations.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreSpec { dir: dir.into(), ..StoreSpec::default() }
    }

    /// This spec with a stamp.
    pub fn with_stamp(mut self, stamp: Option<String>) -> Self {
        self.stamp = stamp;
        self
    }

    /// This spec with a git revision.
    pub fn with_git_rev(mut self, git_rev: Option<String>) -> Self {
        self.git_rev = git_rev;
        self
    }

    /// This spec with a site-profile name.
    pub fn with_profile(mut self, profile: impl Into<String>) -> Self {
        self.profile = Some(profile.into());
        self
    }

    /// This spec with a weighting-scheme name.
    pub fn with_weighting(mut self, weighting: impl Into<String>) -> Self {
        self.weighting = Some(weighting.into());
        self
    }

    /// Apply this spec's annotations to a manifest.
    fn annotate(&self, mut provenance: Provenance) -> Provenance {
        if let Some(profile) = &self.profile {
            provenance = provenance.with_profile(profile.clone());
        }
        if let Some(weighting) = &self.weighting {
            provenance = provenance.with_weighting(weighting.clone());
        }
        provenance.with_git_rev(self.git_rev.clone())
    }
}

/// Fold a run's telemetry into the header annotation: sink-wide counts
/// plus one [`summarize`] report per product scope, keyed by product
/// name in sorted order. `None` when telemetry was disabled or streaming.
fn telemetry_annotation(telemetry: &Telemetry, products: &[&str]) -> Option<Value> {
    let mut events = telemetry.snapshot_events()?;
    events.sort_by_key(|e| e.scope);
    let dropped = telemetry.dropped_events();
    let mut sorted: Vec<&str> = products.to_vec();
    sorted.sort_unstable();
    let per_product: Vec<(String, Value)> = sorted
        .iter()
        .map(|name| {
            let scoped: Vec<idse_telemetry::Event> =
                events.iter().filter(|e| e.scope == *name).copied().collect();
            let mut summary = summarize(&scoped);
            // The ring buffer is shared across scopes: any eviction
            // anywhere truncates every per-product view.
            summary.dropped_events = dropped;
            let value =
                serde_json::to_value(&summary).expect("a telemetry summary always serializes");
            ((*name).to_owned(), value)
        })
        .collect();
    Some(Value::Object(vec![
        ("events_recorded".to_owned(), Value::U64(events.len() as u64)),
        ("events_dropped".to_owned(), Value::U64(dropped)),
        ("per_product".to_owned(), Value::Object(per_product)),
    ]))
}

/// Record one full evaluation (one record per product per metric: all 56
/// discrete scores with their notes, plus the continuous measurements)
/// into the store named by `spec`. Returns the committed run — identical
/// inputs commit to the identical run id, so re-recording is a no-op.
pub fn record_evaluation(
    spec: &StoreSpec,
    request: &EvaluationRequest,
    evals: &[ProductEvaluation],
) -> Result<StoredRun, StoreError> {
    let provenance = spec.annotate(Provenance::for_request(request));
    let mut draft = RunDraft::new("evaluate", provenance.to_value()).with_stamp(spec.stamp.clone());
    let names: Vec<&str> = evals.iter().map(|e| e.scorecard.system.as_str()).collect();
    if let Some(annotation) = telemetry_annotation(&request.telemetry, &names) {
        draft = draft.with_telemetry(annotation);
    }
    for eval in evals {
        let product = eval.scorecard.system.as_str();
        for (id, score) in eval.scorecard.iter() {
            let key = format!("{id:?}");
            match eval.scorecard.note(id) {
                Some(note) => draft.record_noted(product, &key, f64::from(score.value()), note)?,
                None => draft.record(product, &key, f64::from(score.value()))?,
            }
        }
        draft.record(product, "measure.operating_sensitivity", eval.operating_sensitivity)?;
        draft.record(product, "measure.fp_ratio", eval.confusion.false_positive_ratio())?;
        draft.record(product, "measure.fn_ratio", eval.confusion.false_negative_ratio())?;
        draft.record(product, "measure.detection_rate", eval.confusion.detection_rate())?;
        draft.record(product, "measure.zero_loss_pps", eval.throughput.zero_loss_pps)?;
        if let Some(pps) = eval.throughput.lethal_dose_pps {
            draft.record(product, "measure.lethal_dose_pps", pps)?;
        }
        draft.record(
            product,
            "measure.induced_latency_ms",
            eval.timing.induced_latency_mean.as_millis_f64(),
        )?;
        draft.record(
            product,
            "measure.timeliness_ms",
            eval.timing.timeliness_mean.as_millis_f64(),
        )?;
        draft.record(product, "measure.host_impact", eval.host_impact)?;
        draft.record(product, "measure.state_bytes", eval.state_bytes as f64)?;
        if let Some(s) = &eval.survivability {
            draft.record(product, "measure.detection_retention", s.detection_retention)?;
            draft.record(product, "measure.alert_loss_ratio", s.alert_loss_ratio)?;
            draft.record(product, "measure.mean_reroute_us", s.mean_reroute.as_micros_f64())?;
            draft.record(product, "measure.recovery_completeness", s.recovery_completeness)?;
        }
    }
    RunStore::open(&spec.dir)?.commit(draft)
}

/// Record an X7 fault-matrix run: one product per matrix cell, keyed
/// `product@scenario`, carrying the four survivability rubric scores and
/// the raw fault measurements. The provenance lists every scenario's
/// fault-plan hash.
pub fn record_fault_matrix(
    spec: &StoreSpec,
    scenarios: &[FaultScenario],
    rows: &[FaultMatrixRow],
    sensitivity: f64,
    seed: u64,
) -> Result<StoredRun, StoreError> {
    let feed = crate::experiments::fault_matrix_feed_config(seed);
    let provenance = spec.annotate(Provenance {
        crate_version: env!("CARGO_PKG_VERSION"),
        seed,
        profile: None,
        weighting: None,
        git_rev: None,
        feed: FeedProvenance::of(&feed),
        sensitivity_policy: SensitivityPolicy::fixed(sensitivity),
        fault_plans: scenarios.iter().map(|s| FaultPlanProvenance::of(&s.plan)).collect(),
        jobs_independence: JOBS_INDEPENDENCE,
        timebase: TIMEBASE,
    });
    let mut draft =
        RunDraft::new("fault-matrix", provenance.to_value()).with_stamp(spec.stamp.clone());
    for row in rows {
        let cell = format!("{}@{}", row.product, row.scenario);
        let note = format!("relation {}", row.relation);
        let discrete = [
            "DetectionRetentionUnderFailure",
            "AlertLossRatio",
            "MeanTimeToReroute",
            "RecoveryCompleteness",
        ];
        for (key, score) in discrete.iter().zip(row.scores) {
            draft.record_noted(&cell, key, f64::from(score), note.clone())?;
        }
        let s = &row.survivability;
        draft.record(&cell, "measure.detection_retention", s.detection_retention)?;
        draft.record(&cell, "measure.alert_loss_ratio", s.alert_loss_ratio)?;
        draft.record(&cell, "measure.mean_reroute_us", s.mean_reroute.as_micros_f64())?;
        draft.record(&cell, "measure.recovery_completeness", s.recovery_completeness)?;
        draft.record(&cell, "measure.rerouted", row.rerouted as f64)?;
        draft.record(&cell, "measure.lost_alerts", row.lost_alerts as f64)?;
        draft.record(&cell, "measure.replayed", row.replayed as f64)?;
    }
    RunStore::open(&spec.dir)?.commit(draft)
}

/// One mechanism row of the §2.1 taxonomy ablation: the confusion and
/// throughput measures for one engine suite run over the standard feed.
#[derive(Debug, Clone, Serialize)]
pub struct HybridTaxonomyRow {
    /// The mechanism label (`signature-only`, `anomaly-only`, …) — the
    /// product key the row's records are stored under.
    pub mechanism: String,
    /// Detection rate |D∩A|/|A|.
    pub detection_rate: f64,
    /// False-positive ratio |D−A|/|T|.
    pub fp_ratio: f64,
    /// Zero-loss throughput, packets per second.
    pub zero_loss_pps: f64,
    /// Raw alert count, noted on the detection-rate record.
    pub alerts: usize,
}

/// Record a §2.1 taxonomy-ablation run: one product key per detection
/// mechanism, carrying its confusion and throughput measures at the fixed
/// operating sensitivity. Same feed, same seed, three engine suites — so
/// `store history measure.zero_loss_pps --product "hybrid (parallel)"`
/// tracks the hybrid's inspection cost across commits.
pub fn record_hybrid_taxonomy(
    spec: &StoreSpec,
    request: &EvaluationRequest,
    sensitivity: f64,
    rows: &[HybridTaxonomyRow],
) -> Result<StoredRun, StoreError> {
    let provenance = spec.annotate(Provenance {
        crate_version: env!("CARGO_PKG_VERSION"),
        seed: request.feed.seed,
        profile: None,
        weighting: None,
        git_rev: None,
        feed: FeedProvenance::of(&request.feed),
        sensitivity_policy: SensitivityPolicy::fixed(sensitivity),
        fault_plans: Vec::new(),
        jobs_independence: JOBS_INDEPENDENCE,
        timebase: TIMEBASE,
    });
    let mut draft =
        RunDraft::new("hybrid-taxonomy", provenance.to_value()).with_stamp(spec.stamp.clone());
    for row in rows {
        let product = row.mechanism.as_str();
        draft.record_noted(
            product,
            "measure.detection_rate",
            row.detection_rate,
            format!("{} alerts", row.alerts),
        )?;
        draft.record(product, "measure.fp_ratio", row.fp_ratio)?;
        draft.record(product, "measure.zero_loss_pps", row.zero_loss_pps)?;
        draft.record(product, "measure.operating_sensitivity", sensitivity)?;
    }
    RunStore::open(&spec.dir)?.commit(draft)
}

/// Record an X1 host-overhead run: one product key per audit level per
/// production load (`{level}@load{load}`), carrying the measured CPU
/// shares and the surviving production rate. The experiment drives a
/// synthetic host event stream, not a traffic feed, so only the seed in
/// the feed provenance is meaningful.
pub fn record_host_overhead(
    spec: &StoreSpec,
    seed: u64,
    sections: &[(f64, Vec<crate::host_overhead::OverheadRow>)],
) -> Result<StoredRun, StoreError> {
    let provenance = spec.annotate(Provenance {
        crate_version: env!("CARGO_PKG_VERSION"),
        seed,
        profile: None,
        weighting: None,
        git_rev: None,
        feed: FeedProvenance::of(&FeedConfig::builder().seed(seed).build()),
        sensitivity_policy: SensitivityPolicy {
            rule: "not applicable (synthetic host load, no detection sweep)".to_owned(),
            fp_budget: None,
            sweep_steps: None,
            sweep_low: None,
            sweep_high: None,
            fixed_sensitivity: None,
        },
        fault_plans: Vec::new(),
        jobs_independence: JOBS_INDEPENDENCE,
        timebase: TIMEBASE,
    });
    let mut draft =
        RunDraft::new("host-overhead", provenance.to_value()).with_stamp(spec.stamp.clone());
    for (load, rows) in sections {
        for row in rows {
            let cell = format!("{}@load{load:.2}", row.level);
            draft.record(&cell, "measure.audit_share", row.audit_share)?;
            draft.record(&cell, "measure.agent_share", row.with_agent_share)?;
            draft.record(
                &cell,
                "measure.production_events_per_sec",
                row.production_events_per_sec,
            )?;
        }
    }
    RunStore::open(&spec.dir)?.commit(draft)
}

/// Record an X4 operating-point run: per product, an `@eer` cell (the
/// equal-error-rate crossing, when it exists) and an `@low-fn` cell (the
/// §3.3 distributed operating point within the FP budget), each with the
/// trust-exploit detection rate measured at that setting.
pub fn record_operating_point(
    spec: &StoreSpec,
    seed: u64,
    fp_budget: f64,
    reports: &[crate::experiments::OperatingPointReport],
) -> Result<StoredRun, StoreError> {
    let plan = SweepPlan::with_steps(9).with_fp_budget(fp_budget);
    let provenance = spec.annotate(Provenance {
        crate_version: env!("CARGO_PKG_VERSION"),
        seed,
        profile: None,
        weighting: None,
        git_rev: None,
        feed: FeedProvenance::of(&crate::experiments::operating_point_feed_config(seed)),
        sensitivity_policy: SensitivityPolicy::budgeted(&plan),
        fault_plans: Vec::new(),
        jobs_independence: JOBS_INDEPENDENCE,
        timebase: TIMEBASE,
    });
    let mut draft =
        RunDraft::new("operating-point", provenance.to_value()).with_stamp(spec.stamp.clone());
    for report in reports {
        if let Some((sensitivity, rate)) = report.eer_point {
            let cell = format!("{}@eer", report.product);
            draft.record(&cell, "measure.eer_sensitivity", sensitivity)?;
            draft.record(&cell, "measure.eer_rate", rate)?;
            if let Some(trust) = report.trust_detection_at_eer {
                draft.record(&cell, "measure.trust_detection", trust)?;
            }
        }
        if let Some(point) = &report.low_fn_point {
            let cell = format!("{}@low-fn", report.product);
            draft.record(&cell, "measure.operating_sensitivity", point.sensitivity)?;
            draft.record(&cell, "measure.fp_ratio", point.false_positive_ratio)?;
            draft.record(&cell, "measure.fn_ratio", point.false_negative_ratio)?;
            if let Some(trust) = report.trust_detection_at_low_fn {
                draft.record(&cell, "measure.trust_detection", trust)?;
            }
        }
    }
    RunStore::open(&spec.dir)?.commit(draft)
}

/// Record an operator-fatigue run: one cell per operator model per swept
/// sensitivity (`{operator}@s{sensitivity}`), carrying alert volume,
/// triage throughput, and the machine vs human-constrained detection
/// rates whose divergence is the experiment's point.
pub fn record_operator_fatigue(
    spec: &StoreSpec,
    request: &EvaluationRequest,
    sections: &[(String, Vec<crate::operator::FatigueRow>)],
) -> Result<StoredRun, StoreError> {
    let provenance = spec.annotate(Provenance::for_request(request));
    let mut draft =
        RunDraft::new("operator-fatigue", provenance.to_value()).with_stamp(spec.stamp.clone());
    for (operator, rows) in sections {
        for row in rows {
            let cell = format!("{operator}@s{:.2}", row.sensitivity);
            draft.record(&cell, "measure.alerts", row.alerts as f64)?;
            draft.record(&cell, "measure.triaged", row.triaged as f64)?;
            draft.record(&cell, "measure.detection_rate", row.machine_detection)?;
            draft.record(&cell, "measure.effective_detection", row.effective_detection)?;
        }
    }
    RunStore::open(&spec.dir)?.commit(draft)
}

/// Content statistics for one payload load in the X2 realism experiment.
#[derive(Debug, Clone, Serialize)]
pub struct PayloadStatsRow {
    /// Load label (`realistic`, `random bytes`) — stored under the
    /// product key `payload:{label}`.
    pub load: String,
    /// Shannon entropy over payload bytes, bits per byte.
    pub byte_entropy: f64,
    /// Fraction of printable ASCII bytes.
    pub printable_fraction: f64,
    /// The realism score the generator targets.
    pub realism_score: f64,
}

/// Record an X2 payload-realism run: content statistics per load
/// (`payload:{label}` cells) plus per-product `@realistic` / `@random`
/// cells carrying alert volume and inspection cost under each load.
pub fn record_payload_realism(
    spec: &StoreSpec,
    seed: u64,
    sensitivity: f64,
    stats: &[PayloadStatsRow],
    rows: &[crate::experiments::RealismRow],
) -> Result<StoredRun, StoreError> {
    let provenance = spec.annotate(Provenance {
        crate_version: env!("CARGO_PKG_VERSION"),
        seed,
        profile: None,
        weighting: None,
        git_rev: None,
        // X2 generates its two loads directly (identical timing and
        // sizes, different payload content); the session rate and span
        // here mirror that generator setup.
        feed: FeedProvenance::of(
            &FeedConfig::builder()
                .session_rate(25.0)
                .training_span(idse_sim::SimDuration::from_secs(25))
                .test_span(idse_sim::SimDuration::from_secs(25))
                .seed(seed)
                .build(),
        ),
        sensitivity_policy: SensitivityPolicy::fixed(sensitivity),
        fault_plans: Vec::new(),
        jobs_independence: JOBS_INDEPENDENCE,
        timebase: TIMEBASE,
    });
    let mut draft =
        RunDraft::new("payload-realism", provenance.to_value()).with_stamp(spec.stamp.clone());
    for stat in stats {
        let cell = format!("payload:{}", stat.load);
        draft.record(&cell, "measure.byte_entropy", stat.byte_entropy)?;
        draft.record(&cell, "measure.printable_fraction", stat.printable_fraction)?;
        draft.record(&cell, "measure.realism_score", stat.realism_score)?;
    }
    for row in rows {
        let realistic = format!("{}@realistic", row.product);
        draft.record(&realistic, "measure.alerts_per_kpkt", row.alerts_per_kpkt_realistic)?;
        draft.record(&realistic, "measure.ops_per_pkt", row.cost_realistic)?;
        let random = format!("{}@random", row.product);
        draft.record(&random, "measure.alerts_per_kpkt", row.alerts_per_kpkt_random)?;
        draft.record(&random, "measure.ops_per_pkt", row.cost_random)?;
    }
    RunStore::open(&spec.dir)?.commit(draft)
}

/// Record an X3 site-profile-mismatch run: per product, `@matched`
/// (trained on cluster traffic) and `@mismatched` (trained on e-commerce
/// traffic) cells, each carrying the false-positive ratio and detection
/// rate on the identical cluster test feed.
pub fn record_site_profile(
    spec: &StoreSpec,
    seed: u64,
    sensitivity: f64,
    rows: &[crate::experiments::SiteProfileRow],
) -> Result<StoredRun, StoreError> {
    let provenance = spec.annotate(Provenance {
        crate_version: env!("CARGO_PKG_VERSION"),
        seed,
        profile: None,
        weighting: None,
        git_rev: None,
        feed: FeedProvenance::of(&crate::experiments::site_profile_feed_config(seed)),
        sensitivity_policy: SensitivityPolicy::fixed(sensitivity),
        fault_plans: Vec::new(),
        jobs_independence: JOBS_INDEPENDENCE,
        timebase: TIMEBASE,
    });
    let mut draft =
        RunDraft::new("site-profile", provenance.to_value()).with_stamp(spec.stamp.clone());
    for row in rows {
        let matched = format!("{}@matched", row.product);
        draft.record(&matched, "measure.fp_ratio", row.fp_matched)?;
        draft.record(&matched, "measure.detection_rate", row.detection_matched)?;
        let mismatched = format!("{}@mismatched", row.product);
        draft.record(&mismatched, "measure.fp_ratio", row.fp_mismatched)?;
        draft.record(&mismatched, "measure.detection_rate", row.detection_mismatched)?;
    }
    RunStore::open(&spec.dir)?.commit(draft)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_sim::SimDuration;

    fn spec(name: &str) -> StoreSpec {
        let dir =
            std::env::temp_dir().join(format!("idse-eval-prov-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        StoreSpec::new(dir)
    }

    fn quick_request() -> EvaluationRequest {
        EvaluationRequest::new()
            .with_feed(
                FeedConfig::builder()
                    .session_rate(15.0)
                    .training_span(SimDuration::from_secs(12))
                    .test_span(SimDuration::from_secs(25))
                    .campaign_intensity(1)
                    .seed(42)
                    .build(),
            )
            .with_sweep_steps(4)
            .with_max_throughput_factor(32.0)
            .with_fp_budget(0.2)
    }

    #[test]
    fn provenance_round_trips_with_annotations() {
        let p = Provenance::for_request(&quick_request())
            .with_profile("cluster")
            .with_weighting("realtime")
            .with_git_rev(Some("abc123".into()));
        let v = p.to_value();
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("profile").and_then(Value::as_str), Some("cluster"));
        assert_eq!(v.get("git_rev").and_then(Value::as_str), Some("abc123"));
        assert_eq!(
            v.get("jobs_independence").and_then(Value::as_str),
            Some(JOBS_INDEPENDENCE),
            "the attestation is part of the manifest"
        );
        let policy = v.get("sensitivity_policy").expect("policy present");
        assert_eq!(policy.get("sweep_steps").and_then(Value::as_u64), Some(4));
        // Serialization is deterministic.
        assert_eq!(
            serde_json::to_string(&v).expect("serializes"),
            serde_json::to_string(&p.to_value()).expect("serializes")
        );
    }

    #[test]
    fn recorded_evaluation_covers_all_metrics_and_is_idempotent() {
        use idse_ids::products::{IdsProduct, ProductId};
        let spec = spec("eval");
        let request = quick_request();
        let feed = request.build_feed();
        let evals = vec![request.evaluate(&IdsProduct::model(ProductId::GuardSecure), &feed)];
        let run = record_evaluation(&spec, &request, &evals).expect("run records");
        assert!(run.created);
        // 56 discrete + 9 measures (no fault plan, lethal dose may add one).
        assert!(run.header.records >= 56 + 9, "records: {}", run.header.records);
        assert_eq!(run.header.context, "evaluate");
        let again = record_evaluation(&spec, &request, &evals).expect("re-record");
        assert!(!again.created, "identical results dedupe to the same run");
        assert_eq!(again.header.run_id, run.header.run_id);
    }

    #[test]
    fn hybrid_taxonomy_records_one_product_per_mechanism() {
        let spec = spec("taxonomy");
        let request = quick_request();
        let rows = vec![
            HybridTaxonomyRow {
                mechanism: "signature-only".to_owned(),
                detection_rate: 0.62,
                fp_ratio: 0.01,
                zero_loss_pps: 9000.0,
                alerts: 41,
            },
            HybridTaxonomyRow {
                mechanism: "hybrid (parallel)".to_owned(),
                detection_rate: 0.91,
                fp_ratio: 0.03,
                zero_loss_pps: 5200.0,
                alerts: 77,
            },
        ];
        let run = record_hybrid_taxonomy(&spec, &request, 0.8, &rows).expect("taxonomy records");
        assert_eq!(run.header.context, "hybrid-taxonomy");
        assert_eq!(run.header.products, vec!["hybrid (parallel)", "signature-only"]);
        assert_eq!(run.header.records, 8, "four measures per mechanism");
        let rate = run.get("signature-only", "measure.detection_rate").expect("recorded");
        assert_eq!(rate.note.as_deref(), Some("41 alerts"));
        assert_eq!(
            run.header.provenance.get("seed").and_then(Value::as_u64),
            Some(42),
            "feed provenance rides along"
        );
        let again = record_hybrid_taxonomy(&spec, &request, 0.8, &rows).expect("re-record");
        assert!(!again.created, "identical results dedupe to the same run");
    }

    #[test]
    fn experiment_recorders_commit_cell_keyed_runs() {
        use crate::experiments::{OperatingPointReport, RealismRow, SiteProfileRow};
        use crate::host_overhead::OverheadRow;
        use crate::operator::FatigueRow;
        use crate::sweep::{ErrorCurve, SweepPoint};

        let overhead = record_host_overhead(
            &spec("overhead"),
            42,
            &[(
                0.3,
                vec![OverheadRow {
                    level: "nominal",
                    audit_share: 0.04,
                    with_agent_share: 0.06,
                    production_events_per_sec: 28_000.0,
                }],
            )],
        )
        .expect("overhead records");
        assert_eq!(overhead.header.context, "host-overhead");
        assert_eq!(overhead.header.products, vec!["nominal@load0.30"]);
        assert_eq!(overhead.header.records, 3);

        let report = OperatingPointReport {
            product: "GuardSecure GS-5".to_owned(),
            curve: ErrorCurve { product: "GuardSecure GS-5".to_owned(), points: Vec::new() },
            eer_point: Some((0.55, 0.08)),
            low_fn_point: Some(SweepPoint {
                sensitivity: 0.85,
                false_positive_ratio: 0.15,
                false_negative_ratio: 0.02,
                alerts: 120,
            }),
            trust_detection_at_eer: Some(0.5),
            trust_detection_at_low_fn: Some(0.9),
        };
        let op = record_operating_point(&spec("op-point"), 42, 0.2, &[report])
            .expect("operating point records");
        assert_eq!(op.header.context, "operating-point");
        assert_eq!(op.header.products, vec!["GuardSecure GS-5@eer", "GuardSecure GS-5@low-fn"]);
        assert_eq!(op.header.records, 7);

        let fatigue = record_operator_fatigue(
            &spec("fatigue"),
            &quick_request(),
            &[(
                "single watchstander".to_owned(),
                vec![FatigueRow {
                    sensitivity: 0.5,
                    alerts: 80,
                    triaged: 40,
                    machine_detection: 0.8,
                    effective_detection: 0.4,
                }],
            )],
        )
        .expect("fatigue records");
        assert_eq!(fatigue.header.products, vec!["single watchstander@s0.50"]);
        assert_eq!(fatigue.header.records, 4);

        let realism = record_payload_realism(
            &spec("realism"),
            42,
            0.8,
            &[PayloadStatsRow {
                load: "realistic".to_owned(),
                byte_entropy: 5.1,
                printable_fraction: 0.93,
                realism_score: 0.9,
            }],
            &[RealismRow {
                product: "NidSentry NS-5".to_owned(),
                alerts_per_kpkt_realistic: 2.0,
                alerts_per_kpkt_random: 0.1,
                cost_realistic: 900.0,
                cost_random: 400.0,
            }],
        )
        .expect("realism records");
        assert_eq!(realism.header.context, "payload-realism");
        assert_eq!(realism.header.records, 3 + 4);
        assert!(realism.header.products.contains(&"payload:realistic".to_owned()));

        let site = record_site_profile(
            &spec("site"),
            42,
            0.7,
            &[SiteProfileRow {
                product: "FlowHunter FH-9".to_owned(),
                fp_matched: 0.01,
                fp_mismatched: 0.2,
                detection_matched: 0.8,
                detection_mismatched: 0.6,
            }],
        )
        .expect("site profile records");
        assert_eq!(site.header.products.len(), 2, "matched and mismatched cells");
        assert_eq!(site.header.records, 4);
    }

    #[test]
    fn fault_matrix_records_one_cell_per_row() {
        use idse_exec::Executor;
        use idse_ids::products::{IdsProduct, ProductId};
        let spec = spec("matrix");
        let products = [IdsProduct::model(ProductId::GuardSecure)];
        let scenarios: Vec<FaultScenario> =
            crate::experiments::fault_scenarios().into_iter().take(2).collect();
        let rows = crate::experiments::fault_matrix_experiment(
            &products,
            &scenarios,
            0.7,
            42,
            &Executor::new(2),
        );
        let run = record_fault_matrix(&spec, &scenarios, &rows, 0.7, 42).expect("matrix records");
        assert_eq!(run.header.context, "fault-matrix");
        assert_eq!(run.header.products.len(), rows.len(), "one product key per cell");
        assert!(run.header.products[0].contains('@'));
        let plans = run
            .header
            .provenance
            .get("fault_plans")
            .and_then(Value::as_array)
            .expect("plans listed");
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].get("hash").and_then(Value::as_str).map(str::len), Some(16));
    }
}
