//! # idse-eval — the evaluation harness
//!
//! Ties the testbed together: generates canned test feeds (background +
//! campaign), drives them through each simulated product's pipeline,
//! measures the paper's performance metrics, converts measurements and
//! vendor facts to discrete 0–4 scores through explicit rubrics, and fills
//! the `idse-core` scorecards.
//!
//! Experiment implementations map one-to-one onto DESIGN.md's experiment
//! index:
//!
//! * [`confusion`] — Figure 3's confusion quantities and the paper's ratio
//!   formulas `|D − A|/|T|`, `|A − D|/|T|`;
//! * [`sweep`] — Figure 4's error-rate curves and Equal Error Rate;
//! * [`throughput`] — zero-loss throughput and lethal-dose searches
//!   (Table 3);
//! * [`timing`] — induced latency and timeliness (Table 3);
//! * [`host_overhead`] — experiment X1 (§2.1's 3–5 % / 20 % audit costs);
//! * [`experiments`] — X2 payload realism, X3 site-profile swap, X4
//!   operating-point selection;
//! * [`vendor`] — logistical/architectural rubrics over vendor profiles;
//! * [`measure`] — performance rubrics over measured values;
//! * [`harness`] — the full per-product evaluation that fills a
//!   [`idse_core::Scorecard`];
//! * [`operator`] — the paper's future-work "human dimension": an
//!   operator-attention model showing where alert volume defeats
//!   sensitivity;
//! * [`evidence`] — alert-adjacent packet capture under a byte budget,
//!   with the forensic-coverage measure behind §3.3's "logging of
//!   historical traffic is also key";
//! * [`streaming`] — constant-memory chunked evaluation over
//!   `RecordStream` feeds, sharded by flow key across workers;
//! * [`service`] — serde job specs shared by the `evaluate` CLI and the
//!   evaluation daemon, so both entry points build identical requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;
pub mod evidence;
pub mod experiments;
pub mod feeds;
pub mod harness;
pub mod host_overhead;
pub mod measure;
pub mod operator;
pub mod provenance;
pub mod service;
pub mod streaming;
pub mod sweep;
pub mod throughput;
pub mod timing;
pub mod vendor;

pub use confusion::{ConfusionCounts, StreamLedger, TransactionLedger};
pub use feeds::{FeedConfig, FeedConfigBuilder, TestFeed};
pub use harness::{EvaluationRequest, ProductEvaluation};
pub use provenance::{record_evaluation, record_fault_matrix, Provenance, StoreSpec};
pub use service::{JobKind, JobSpec, SpecError, StoreRequest, STANDARD_SEED};
pub use streaming::{ShardOutcome, StreamEvaluation, StreamScorecard};
pub use sweep::SweepPlan;
