//! Test feeds: the canned datasets an evaluation replays.
//!
//! A feed is a `(training, test)` pair: a known-benign training trace for
//! baseline learning, and a test trace of background + campaign with
//! ground truth. Feeds are pure functions of `(profile, rates, seeds)` —
//! the reproducibility requirement — and the seeds for training, test
//! background, and campaign are all independent streams.

use idse_attacks::{Campaign, CampaignConfig};
use idse_net::trace::Trace;
use idse_sim::SimDuration;
use idse_traffic::{ArrivalProcess, BackgroundGenerator, GeneratorConfig, SiteProfile};
use std::net::Ipv4Addr;

/// A complete canned dataset.
#[derive(Debug, Clone)]
pub struct TestFeed {
    /// Site profile the feed models.
    pub profile: SiteProfile,
    /// Known-benign training trace.
    pub training: Trace,
    /// The benign background of the test window, before the campaign is
    /// merged in (the load-test replay source: realistic traffic, per the
    /// paper's lesson 1).
    pub background: Trace,
    /// Test trace: background merged with the labeled campaign.
    pub test: Trace,
    /// Server hosts (host-agent deployment points).
    pub servers: Vec<Ipv4Addr>,
}

/// Feed parameters.
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// Session arrivals per second in both traces.
    pub session_rate: f64,
    /// Training trace length.
    pub training_span: SimDuration,
    /// Test trace length.
    pub test_span: SimDuration,
    /// Campaign intensity (instances of each attack family).
    pub campaign_intensity: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        Self {
            session_rate: 25.0,
            training_span: SimDuration::from_secs(30),
            test_span: SimDuration::from_secs(60),
            campaign_intensity: 2,
            seed: 0x1d5e,
        }
    }
}

impl TestFeed {
    /// Build a feed for `profile` under `config`.
    pub fn build(profile: SiteProfile, config: &FeedConfig) -> Self {
        let training = BackgroundGenerator::new(GeneratorConfig::new(
            profile.clone(),
            ArrivalProcess::Poisson { rate: config.session_rate },
            config.training_span,
            config.seed ^ 0x7261_696e, // "rain" — training stream
        ))
        .generate();

        let background = BackgroundGenerator::new(GeneratorConfig::new(
            profile.clone(),
            ArrivalProcess::Poisson { rate: config.session_rate },
            config.test_span,
            config.seed ^ 0x7465_7374, // "test" — test background stream
        ))
        .generate();
        let mut test = background.clone();

        let ccfg = CampaignConfig {
            span: config.test_span,
            seed: config.seed ^ 0x6174_6b73, // "atks" — campaign stream
            intensity: config.campaign_intensity,
        };
        let campaign = Campaign::standard_mix(&profile, &ccfg);
        test.merge(campaign.generate(&ccfg));

        let servers = (1..=profile.server_hosts.min(8)).map(|i| profile.servers.host(i)).collect();

        Self { profile, training, background, test, servers }
    }

    /// The standard e-commerce feed.
    pub fn ecommerce(config: &FeedConfig) -> Self {
        Self::build(SiteProfile::ecommerce_web(), config)
    }

    /// The standard real-time cluster feed.
    pub fn realtime_cluster(config: &FeedConfig) -> Self {
        Self::build(SiteProfile::realtime_cluster(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_is_deterministic() {
        let cfg = FeedConfig { test_span: SimDuration::from_secs(20), ..FeedConfig::default() };
        let a = TestFeed::ecommerce(&cfg);
        let b = TestFeed::ecommerce(&cfg);
        assert_eq!(a.test.len(), b.test.len());
        assert_eq!(a.training.len(), b.training.len());
        assert_eq!(a.test.attack_packets(), b.test.attack_packets());
    }

    #[test]
    fn training_is_clean_test_is_mixed() {
        let cfg = FeedConfig { test_span: SimDuration::from_secs(20), ..FeedConfig::default() };
        let f = TestFeed::ecommerce(&cfg);
        assert_eq!(f.training.attack_packets(), 0);
        assert!(f.test.attack_packets() > 0);
        assert!(!f.servers.is_empty());
        // All nine attack classes present at intensity ≥ 1.
        let classes: std::collections::HashSet<_> =
            f.test.attack_instances().iter().map(|g| g.class).collect();
        assert_eq!(classes.len(), 9);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TestFeed::ecommerce(&FeedConfig {
            seed: 1,
            test_span: SimDuration::from_secs(10),
            ..FeedConfig::default()
        });
        let b = TestFeed::ecommerce(&FeedConfig {
            seed: 2,
            test_span: SimDuration::from_secs(10),
            ..FeedConfig::default()
        });
        assert_ne!(a.test.len(), b.test.len());
    }
}
