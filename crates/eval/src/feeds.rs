//! Test feeds: the canned datasets an evaluation replays.
//!
//! A feed is a `(training, test)` pair: a known-benign training trace for
//! baseline learning, and a test trace of background + campaign with
//! ground truth. Feeds are pure functions of `(profile, rates, seeds)` —
//! the reproducibility requirement — and the seeds for training, test
//! background, and campaign are all independent streams.
//!
//! Since the `RecordStream` redesign the background traces are produced by
//! streaming generation: [`TestFeed::build`] is literally a `collect()` of
//! the stream configs returned by [`TestFeed::training_stream`] and
//! [`TestFeed::background_stream`]. Constant-memory consumers use those
//! configs directly (see `crate::streaming`); the materialized feed and
//! the streamed feed are byte-identical by construction and by test.

use idse_attacks::{Campaign, CampaignConfig};
use idse_net::trace::Trace;
use idse_sim::SimDuration;
use idse_traffic::{
    ArrivalProcess, GeneratorConfig, RecordStream, SiteProfile, StreamConfig, DEFAULT_CHUNK_RECORDS,
};
use std::net::Ipv4Addr;

/// A complete canned dataset.
#[derive(Debug, Clone)]
pub struct TestFeed {
    /// Site profile the feed models.
    pub profile: SiteProfile,
    /// Known-benign training trace.
    pub training: Trace,
    /// The benign background of the test window, before the campaign is
    /// merged in (the load-test replay source: realistic traffic, per the
    /// paper's lesson 1).
    pub background: Trace,
    /// Test trace: background merged with the labeled campaign.
    pub test: Trace,
    /// Server hosts (host-agent deployment points).
    pub servers: Vec<Ipv4Addr>,
}

/// Feed parameters.
///
/// Construct with [`FeedConfig::builder`]; the struct is `#[non_exhaustive]`
/// so new knobs (streaming chunk size, shard count, host scaling) can grow
/// without breaking downstream literals.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FeedConfig {
    /// Session arrivals per second in both traces.
    pub session_rate: f64,
    /// Training trace length.
    pub training_span: SimDuration,
    /// Test trace length.
    pub test_span: SimDuration,
    /// Campaign intensity (instances of each attack family).
    pub campaign_intensity: u32,
    /// Master seed.
    pub seed: u64,
    /// Host-count override for scaling profiles (used by
    /// [`TestFeed::realtime_cluster`]); `None` keeps the preset profile.
    pub hosts: Option<u32>,
    /// Records per chunk when the feed is consumed as a stream. Pure
    /// batching: never changes the bytes produced.
    pub chunk_records: usize,
    /// Flow-key shard count for sharded streaming runs (1 = unsharded).
    /// Part of the experiment identity recorded in provenance.
    pub shards: u32,
}

impl Default for FeedConfig {
    fn default() -> Self {
        Self {
            session_rate: 25.0,
            training_span: SimDuration::from_secs(30),
            test_span: SimDuration::from_secs(60),
            campaign_intensity: 2,
            seed: 0x1d5e,
            hosts: None,
            chunk_records: DEFAULT_CHUNK_RECORDS,
            shards: 1,
        }
    }
}

impl FeedConfig {
    /// Start a builder seeded with the defaults.
    pub fn builder() -> FeedConfigBuilder {
        FeedConfigBuilder::default()
    }
}

/// Builder for [`FeedConfig`].
///
/// `transactions(n)` is sugar for sizing the test window: with a session
/// being one transaction (one benign canonical flow or one attack
/// instance), `test_span` is derived as `n / session_rate` when the config
/// is built, regardless of call order.
#[derive(Debug, Clone, Default)]
pub struct FeedConfigBuilder {
    config: FeedConfig,
    transactions: Option<u64>,
}

impl FeedConfigBuilder {
    /// Session arrivals per second.
    pub fn session_rate(mut self, rate: f64) -> Self {
        self.config.session_rate = rate;
        self
    }

    /// Training trace length.
    pub fn training_span(mut self, span: SimDuration) -> Self {
        self.config.training_span = span;
        self
    }

    /// Test trace length (overridden by [`Self::transactions`] if both are
    /// set).
    pub fn test_span(mut self, span: SimDuration) -> Self {
        self.config.test_span = span;
        self
    }

    /// Target transaction count for the test window; derives `test_span`
    /// as `n / session_rate` at build time.
    pub fn transactions(mut self, n: u64) -> Self {
        self.transactions = Some(n);
        self
    }

    /// Host-count override for scaling profiles.
    pub fn hosts(mut self, hosts: u32) -> Self {
        self.config.hosts = Some(hosts);
        self
    }

    /// Campaign intensity (instances of each attack family).
    pub fn campaign_intensity(mut self, n: u32) -> Self {
        self.config.campaign_intensity = n;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Records per chunk for streaming consumption (min 1).
    pub fn chunk_records(mut self, n: usize) -> Self {
        self.config.chunk_records = n.max(1);
        self
    }

    /// Flow-key shard count for sharded streaming runs (min 1).
    pub fn shards(mut self, n: u32) -> Self {
        self.config.shards = n.max(1);
        self
    }

    /// Finalize the config.
    pub fn build(self) -> FeedConfig {
        let mut c = self.config;
        if let Some(n) = self.transactions {
            c.test_span = SimDuration::from_secs_f64(n as f64 / c.session_rate.max(1e-9));
        }
        c
    }
}

impl TestFeed {
    /// Build a feed for `profile` under `config`.
    ///
    /// The background traces are `collect()`s of the corresponding stream
    /// configs — the materialized path is definitionally the streamed
    /// bytes (`stream_collect_matches_materialized` in `idse-traffic`
    /// proves chunking never changes them).
    pub fn build(profile: SiteProfile, config: &FeedConfig) -> Self {
        let training = RecordStream::new(Self::training_stream(&profile, config))
            .expect("poisson arrivals always stream")
            .collect_trace();
        let background = RecordStream::new(Self::background_stream(&profile, config))
            .expect("poisson arrivals always stream")
            .collect_trace();
        let mut test = background.clone();
        test.merge(Self::campaign_trace(&profile, config));

        let servers = Self::server_hosts(&profile);
        Self { profile, training, background, test, servers }
    }

    /// Stream config for the known-benign training window.
    pub fn training_stream(profile: &SiteProfile, config: &FeedConfig) -> StreamConfig {
        StreamConfig::new(GeneratorConfig::new(
            profile.clone(),
            ArrivalProcess::Poisson { rate: config.session_rate },
            config.training_span,
            config.seed ^ 0x7261_696e, // "rain" — training stream
        ))
        .with_chunk_records(config.chunk_records)
    }

    /// Stream config for the benign background of the test window. Sharded
    /// consumers call `.with_shard(s, config.shards)` on the result.
    pub fn background_stream(profile: &SiteProfile, config: &FeedConfig) -> StreamConfig {
        StreamConfig::new(GeneratorConfig::new(
            profile.clone(),
            ArrivalProcess::Poisson { rate: config.session_rate },
            config.test_span,
            config.seed ^ 0x7465_7374, // "test" — test background stream
        ))
        .with_chunk_records(config.chunk_records)
    }

    /// The labeled campaign trace merged over the background. Small
    /// (O(intensity)), so it stays materialized even in streaming runs.
    pub fn campaign_trace(profile: &SiteProfile, config: &FeedConfig) -> Trace {
        let ccfg = CampaignConfig {
            span: config.test_span,
            seed: config.seed ^ 0x6174_6b73, // "atks" — campaign stream
            intensity: config.campaign_intensity,
        };
        Campaign::standard_mix(profile, &ccfg).generate(&ccfg)
    }

    /// Host-agent deployment points for `profile`.
    pub fn server_hosts(profile: &SiteProfile) -> Vec<Ipv4Addr> {
        (1..=profile.server_hosts.min(8)).map(|i| profile.servers.host(i)).collect()
    }

    /// The standard e-commerce feed.
    pub fn ecommerce(config: &FeedConfig) -> Self {
        Self::build(SiteProfile::ecommerce_web(), config)
    }

    /// The standard real-time cluster feed. `config.hosts` scales the
    /// profile's host count (widening the address block as needed).
    pub fn realtime_cluster(config: &FeedConfig) -> Self {
        Self::build(Self::realtime_cluster_profile(config), config)
    }

    /// The profile [`Self::realtime_cluster`] would use for `config`.
    pub fn realtime_cluster_profile(config: &FeedConfig) -> SiteProfile {
        match config.hosts {
            Some(h) => SiteProfile::realtime_cluster_scaled(h),
            None => SiteProfile::realtime_cluster(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_is_deterministic() {
        let cfg = FeedConfig::builder().test_span(SimDuration::from_secs(20)).build();
        let a = TestFeed::ecommerce(&cfg);
        let b = TestFeed::ecommerce(&cfg);
        assert_eq!(a.test.len(), b.test.len());
        assert_eq!(a.training.len(), b.training.len());
        assert_eq!(a.test.attack_packets(), b.test.attack_packets());
    }

    #[test]
    fn training_is_clean_test_is_mixed() {
        let cfg = FeedConfig::builder().test_span(SimDuration::from_secs(20)).build();
        let f = TestFeed::ecommerce(&cfg);
        assert_eq!(f.training.attack_packets(), 0);
        assert!(f.test.attack_packets() > 0);
        assert!(!f.servers.is_empty());
        // All nine attack classes present at intensity ≥ 1.
        let classes: std::collections::HashSet<_> =
            f.test.attack_instances().iter().map(|g| g.class).collect();
        assert_eq!(classes.len(), 9);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TestFeed::ecommerce(
            &FeedConfig::builder().seed(1).test_span(SimDuration::from_secs(10)).build(),
        );
        let b = TestFeed::ecommerce(
            &FeedConfig::builder().seed(2).test_span(SimDuration::from_secs(10)).build(),
        );
        assert_ne!(a.test.len(), b.test.len());
    }

    #[test]
    fn builder_derives_span_from_transactions() {
        let cfg = FeedConfig::builder().session_rate(20.0).transactions(1000).build();
        assert!((cfg.test_span.as_secs_f64() - 50.0).abs() < 1e-9);
        // Order-independent: rate set after transactions gives the same span.
        let cfg2 = FeedConfig::builder().transactions(1000).session_rate(20.0).build();
        assert_eq!(cfg.test_span, cfg2.test_span);
    }

    #[test]
    fn materialized_feed_is_the_streamed_bytes() {
        // The feed's background must be exactly the collect() of the
        // advertised stream config — the adapter contract.
        let cfg = FeedConfig::builder().test_span(SimDuration::from_secs(10)).build();
        let f = TestFeed::realtime_cluster(&cfg);
        let streamed = RecordStream::new(TestFeed::background_stream(&f.profile, &cfg))
            .unwrap()
            .collect_trace();
        assert_eq!(f.background.len(), streamed.len());
        for (a, b) in f.background.records().iter().zip(streamed.records().iter()) {
            assert_eq!(a.at, b.at);
            assert_eq!(&a.packet, &b.packet);
        }
    }

    #[test]
    fn hosts_override_scales_the_cluster_profile() {
        let cfg = FeedConfig::builder().hosts(1000).test_span(SimDuration::from_secs(5)).build();
        let p = TestFeed::realtime_cluster_profile(&cfg);
        assert_eq!(p.client_hosts, 1000);
        let f = TestFeed::realtime_cluster(&cfg);
        assert_eq!(f.profile.client_hosts, 1000);
    }
}
