//! The full evaluation: every product, every metric, one scorecard each.
//!
//! This is the methodology end-to-end, split into the three phases the
//! executor makes explicit:
//!
//! 1. **Plan construction** — enumerate every independent experiment as a
//!    job: one per (product, sweep point), then one operating-point run
//!    and one throughput search per product.
//! 2. **Parallel execution** — run the jobs on an [`idse_exec::Executor`]
//!    sized by [`EvaluationRequest::jobs`]. Each job is a pure function of
//!    the feed and its key, with its own buffered telemetry recorder.
//! 3. **Deterministic reduce** — assemble curves, pick operating points,
//!    convert measurements through the `measure` rubrics, and fill one
//!    [`Scorecard`] per product, always in canonical job-key order.
//!
//! Because no phase ever observes scheduling, the scorecards, curves and
//! telemetry streams are byte-identical at any worker count — the serial
//! path is just `jobs = 1`.

use std::collections::BTreeMap;

use crate::confusion::{ConfusionCounts, TransactionLedger};
use crate::evidence::{EvidencePolicy, EvidenceStore};
use crate::feeds::{FeedConfig, TestFeed};
use crate::measure::{self, EnvironmentNeeds};
use crate::sweep::{measure_sweep_point, ErrorCurve, SweepPlan};
use crate::throughput::{throughput_search, ThroughputReport};
use crate::timing::{timing_report, TimingReport};
use crate::vendor::score_vendor_metrics;
use idse_core::{MetricId, Scorecard};
use idse_exec::{CancelToken, Cancelled, Executor, ExperimentPlan, JobKey};
use idse_faults::{FaultPlan, Survivability};
use idse_ids::pipeline::{PipelineOutcome, PipelineRunner, RunConfig};
use idse_ids::products::IdsProduct;
use idse_ids::Sensitivity;

/// A full evaluation request: what to measure, against which needs, and
/// how wide to run.
///
/// This is the front door of the harness. Build one with the `with_*`
/// methods (or struct update syntax off [`EvaluationRequest::default`]),
/// then call [`EvaluationRequest::evaluate`],
/// [`EvaluationRequest::evaluate_products`] or
/// [`EvaluationRequest::evaluate_all`].
///
/// ```no_run
/// use idse_eval::EvaluationRequest;
///
/// let request = EvaluationRequest::new().with_sweep_steps(5).with_jobs(4);
/// let feed = request.build_feed();
/// let evals = request.evaluate_all(&feed);
/// assert_eq!(evals.len(), 4);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EvaluationRequest {
    /// Feed parameters.
    pub feed: FeedConfig,
    /// Environment the rubrics compare against.
    pub needs: EnvironmentNeeds,
    /// Figure 4 sweep shape and the §3.3 operating-point budget.
    pub sweep: SweepPlan,
    /// Ceiling for the throughput searches (time-compression factor).
    pub max_throughput_factor: f64,
    /// Telemetry handle. Disabled by default. When enabled, each
    /// product's evaluation records into the shared sink under a scope
    /// named after the product, and the operating-point pipeline run is
    /// fully instrumented (per-stage spans, shed/alert counters).
    pub telemetry: idse_telemetry::Telemetry,
    /// Worker count for the parallel executor: `1` runs everything inline
    /// on the calling thread, `0` auto-sizes to the machine, any `N`
    /// produces byte-identical results.
    pub jobs: usize,
    /// Fault plan for the survivability probe. When set, every product
    /// additionally runs the operating point *under this plan* and the
    /// four survivability metrics are measured against the fault-free
    /// twin; when `None` they fall back to static architecture analysis.
    pub fault_plan: Option<FaultPlan>,
    /// Run store to record into. When set, every
    /// [`EvaluationRequest::evaluate_products`] call commits its results
    /// (all 56 discrete scores plus the continuous measurements, under a
    /// provenance-keyed header) to the store after the reduce. Recording
    /// failure degrades to a warning — observability never aborts a run.
    pub store: Option<crate::provenance::StoreSpec>,
}

impl Default for EvaluationRequest {
    fn default() -> Self {
        Self {
            feed: FeedConfig::default(),
            needs: EnvironmentNeeds::realtime_cluster(2_000.0),
            sweep: SweepPlan::default(),
            max_throughput_factor: 256.0,
            telemetry: idse_telemetry::Telemetry::disabled(),
            jobs: 1,
            fault_plan: None,
            store: None,
        }
    }
}

impl EvaluationRequest {
    /// The default request (serial, paper-default sweep and budget).
    pub fn new() -> Self {
        Self::default()
    }

    /// This request with different feed parameters.
    pub fn with_feed(mut self, feed: FeedConfig) -> Self {
        self.feed = feed;
        self
    }

    /// This request with different environment needs.
    pub fn with_needs(mut self, needs: EnvironmentNeeds) -> Self {
        self.needs = needs;
        self
    }

    /// This request with a different sweep plan.
    pub fn with_sweep(mut self, sweep: SweepPlan) -> Self {
        self.sweep = sweep;
        self
    }

    /// This request with a different sweep step count (range and budget
    /// unchanged).
    pub fn with_sweep_steps(mut self, steps: usize) -> Self {
        self.sweep.steps = steps;
        self
    }

    /// This request with a different false-positive budget for
    /// operating-point selection.
    pub fn with_fp_budget(mut self, fp_budget: f64) -> Self {
        self.sweep.fp_budget = fp_budget;
        self
    }

    /// This request with a different throughput-search ceiling.
    pub fn with_max_throughput_factor(mut self, factor: f64) -> Self {
        self.max_throughput_factor = factor;
        self
    }

    /// This request recording into `telemetry`.
    pub fn with_telemetry(mut self, telemetry: idse_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// This request running on `jobs` workers (`0` = one per core).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// This request consuming its feed as a chunked stream: records are
    /// generated `chunk_records` at a time and the run is sharded
    /// `shards` ways by flow key (see [`crate::streaming`]). Pure
    /// configuration sugar over the feed fields — chunk size never
    /// changes the bytes produced, and any [`EvaluationRequest::jobs`]
    /// setting yields byte-identical scorecards for a fixed shard count.
    pub fn with_stream(mut self, chunk_records: usize, shards: u32) -> Self {
        self.feed.chunk_records = chunk_records.max(1);
        self.feed.shards = shards.max(1);
        self
    }

    /// This request measuring survivability under `plan`.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// This request recording every evaluation into the run store at
    /// `dir` (see [`crate::provenance`]).
    pub fn with_store(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.with_store_spec(crate::provenance::StoreSpec::new(dir))
    }

    /// This request recording with a fully-annotated store spec (stamp,
    /// git rev, profile/weighting labels).
    pub fn with_store_spec(mut self, spec: crate::provenance::StoreSpec) -> Self {
        self.store = Some(spec);
        self
    }

    /// The executor this request's experiments run on.
    pub fn executor(&self) -> Executor {
        Executor::new(self.jobs)
    }

    /// Generate the real-time-cluster feed this request describes.
    pub fn build_feed(&self) -> TestFeed {
        TestFeed::realtime_cluster(&self.feed)
    }

    /// Evaluate one product against a feed.
    pub fn evaluate(&self, product: &IdsProduct, feed: &TestFeed) -> ProductEvaluation {
        self.evaluate_products(std::slice::from_ref(product), feed)
            .pop()
            .expect("one product in, one evaluation out")
    }

    /// Evaluate all four modeled products against one feed.
    pub fn evaluate_all(&self, feed: &TestFeed) -> Vec<ProductEvaluation> {
        self.evaluate_products(&IdsProduct::all_models(), feed)
    }

    /// Evaluate the given products against one feed.
    ///
    /// The returned evaluations are in input product order; every number
    /// in them — and every telemetry event recorded along the way — is
    /// byte-identical for any [`EvaluationRequest::jobs`] setting.
    pub fn evaluate_products(
        &self,
        products: &[IdsProduct],
        feed: &TestFeed,
    ) -> Vec<ProductEvaluation> {
        self.evaluate_products_cancellable(products, feed, &CancelToken::new())
            .expect("a fresh token never cancels")
    }

    /// [`EvaluationRequest::evaluate_products`] with cooperative
    /// cancellation.
    ///
    /// The batch path's safe points are job boundaries: the token is
    /// polled before each sweep point and each measured probe, and
    /// between the two phases. Telemetry recorded by jobs that ran before
    /// the cancel is flushed in canonical order; nothing is recorded to
    /// the run store unless the evaluation completes.
    pub fn evaluate_products_cancellable(
        &self,
        products: &[IdsProduct],
        feed: &TestFeed,
        cancel: &CancelToken,
    ) -> Result<Vec<ProductEvaluation>, Cancelled> {
        self.sweep.validate();
        let exec = self.executor();
        let ledger = TransactionLedger::of(&feed.test);

        // Phase 1+2a: the sweep fan-out — one job per (product, step).
        let mut sweep_jobs: ExperimentPlan<(usize, f64)> = ExperimentPlan::new(self.feed.seed);
        for product in products {
            for k in 0..self.sweep.steps {
                sweep_jobs.push_scoped(
                    JobKey::new(product.id.name(), "sweep", k as u32),
                    product.id.name(),
                    (k, self.sweep.sensitivity_at(k)),
                );
            }
        }
        let sweep_results =
            sweep_jobs.run_cancellable(&exec, &self.telemetry, cancel, |ctx, &(_, s)| {
                cancel.guard()?;
                let product = products
                    .iter()
                    .find(|p| p.id.name() == ctx.key.subject)
                    .expect("job subject names an input product");
                Ok(measure_sweep_point(product, feed, &ledger, s))
            })?;

        // Reduce 2a: assemble each product's curve (results arrive keyed
        // and ordered, so this is a grouping, not a sort) and pick the
        // §3.3 operating point.
        let mut curves: BTreeMap<&str, ErrorCurve> = BTreeMap::new();
        for r in sweep_results {
            let product = products
                .iter()
                .find(|p| p.id.name() == r.key.subject)
                .expect("job subject names an input product");
            curves
                .entry(product.id.name())
                .or_insert_with(|| ErrorCurve {
                    product: product.id.name().to_owned(),
                    points: Vec::with_capacity(self.sweep.steps),
                })
                .points
                .push(r.output);
        }
        let mut operating: BTreeMap<&str, f64> = BTreeMap::new();
        for product in products {
            let name = product.id.name();
            let curve = &curves[name];
            self.telemetry.with_scope(name).counter(
                0,
                "phase.sweep.points",
                curve.points.len() as u64,
            );
            let s = curve.operating_point(&self.sweep).map(|p| p.sensitivity).unwrap_or(0.5);
            operating.insert(name, s);
        }

        // Phase 1+2b: the measured probes — per product, one instrumented
        // operating-point run and one throughput search. The throughput
        // search is a sequential bisection per product (each probe depends
        // on the previous bracket), so the product is the unit of work.
        let mut probe_jobs: ExperimentPlan<ProbeJob> = ExperimentPlan::new(self.feed.seed);
        for (index, product) in products.iter().enumerate() {
            let name = product.id.name();
            probe_jobs.push_scoped(
                JobKey::new(name, "operate", 0),
                name,
                ProbeJob::Operate { index, sensitivity: operating[name] },
            );
            probe_jobs.push_scoped(
                JobKey::new(name, "throughput", 0),
                name,
                ProbeJob::Throughput { index },
            );
            if self.fault_plan.is_some() {
                probe_jobs.push_scoped(
                    JobKey::new(name, "survive", 0),
                    name,
                    ProbeJob::Survive { index, sensitivity: operating[name] },
                );
            }
        }
        cancel.guard()?;
        let probe_results =
            probe_jobs.run_cancellable(&exec, &self.telemetry, cancel, |ctx, job| {
                cancel.guard()?;
                Ok(match *job {
                    ProbeJob::Operate { index, sensitivity } => {
                        // The accuracy/response run at the operating point, with
                        // automated response armed so filter effectiveness is
                        // observable. Per-stage spans land in this job's buffer
                        // under the product's scope.
                        let run_config = RunConfig {
                            sensitivity: Sensitivity::new(sensitivity),
                            monitored_hosts: feed.servers.clone(),
                            auto_response: true,
                            telemetry: ctx.telemetry.clone(),
                            ..RunConfig::default()
                        };
                        let outcome = PipelineRunner::new(products[index].clone(), run_config)
                            .with_training(feed.training.clone())
                            .run(&feed.test);
                        ctx.telemetry.span(
                            0,
                            outcome.finished_at.as_nanos(),
                            "phase.operating_run",
                        );
                        ProbeOutput::Operate(Box::new(outcome))
                    }
                    ProbeJob::Throughput { index } => ProbeOutput::Throughput(throughput_search(
                        &products[index],
                        feed,
                        self.max_throughput_factor,
                    )),
                    ProbeJob::Survive { index, sensitivity } => {
                        // The operating-point run again, this time with the fault
                        // plan injected. Survivability falls out of comparing it
                        // to the fault-free twin in the reduce.
                        let run_config = RunConfig {
                            sensitivity: Sensitivity::new(sensitivity),
                            monitored_hosts: feed.servers.clone(),
                            auto_response: true,
                            telemetry: ctx.telemetry.clone(),
                            faults: self.fault_plan.clone(),
                            ..RunConfig::default()
                        };
                        let outcome = PipelineRunner::new(products[index].clone(), run_config)
                            .with_training(feed.training.clone())
                            .run(&feed.test);
                        ctx.telemetry.span(0, outcome.finished_at.as_nanos(), "phase.survive_run");
                        ProbeOutput::Survive(Box::new(outcome))
                    }
                })
            })?;
        let mut probes: BTreeMap<JobKey, ProbeOutput> =
            probe_results.into_iter().map(|r| (r.key, r.output)).collect();

        // Reduce 2b: fill the scorecards in input product order.
        let evaluations: Vec<ProductEvaluation> = products
            .iter()
            .map(|product| {
                let name = product.id.name();
                let outcome = probes
                    .remove(&JobKey::new(name, "operate", 0))
                    .and_then(ProbeOutput::into_operate)
                    .expect("operate probe completed under its key");
                let throughput = probes
                    .remove(&JobKey::new(name, "throughput", 0))
                    .and_then(ProbeOutput::into_throughput)
                    .expect("throughput probe completed under its key");
                let faulted = probes
                    .remove(&JobKey::new(name, "survive", 0))
                    .and_then(ProbeOutput::into_survive);
                self.telemetry.with_scope(name).gauge(
                    outcome.finished_at.as_nanos(),
                    "phase.throughput.zero_loss_pps",
                    throughput.zero_loss_pps,
                );
                let curve = curves.remove(name).expect("every product swept");
                self.fill_scorecard(
                    product,
                    feed,
                    &ledger,
                    curve,
                    operating[name],
                    *outcome,
                    throughput,
                    faulted.map(|b| *b),
                )
            })
            .collect();

        // Recording happens here, in the single-threaded reduce, so the
        // store bytes are independent of the worker count by construction.
        if let Some(spec) = &self.store {
            match crate::provenance::record_evaluation(spec, self, &evaluations) {
                Ok(run) => eprintln!(
                    "recorded run {} ({} records) in {}",
                    run.header.run_id,
                    run.header.records,
                    spec.dir.display()
                ),
                Err(e) => eprintln!("warning: run store recording failed: {e}"),
            }
        }
        Ok(evaluations)
    }

    /// The scorecard fill: convert one product's measurements through the
    /// `measure` rubrics. Pure aggregation — no simulation happens here.
    #[allow(clippy::too_many_arguments)]
    fn fill_scorecard(
        &self,
        product: &IdsProduct,
        feed: &TestFeed,
        ledger: &TransactionLedger,
        curve: ErrorCurve,
        operating_sensitivity: f64,
        outcome: PipelineOutcome,
        throughput: ThroughputReport,
        faulted: Option<PipelineOutcome>,
    ) -> ProductEvaluation {
        let confusion = ledger.score(&outcome.alerts);
        let timing = timing_report(&feed.test, &outcome);

        // Fill the scorecard: open-source rubrics, then measured rubrics.
        let mut card = Scorecard::new(product.id.name());
        score_vendor_metrics(product, &mut card);

        let needs = &self.needs;
        card.set_with_note(
            MetricId::ObservedFalsePositiveRatio,
            measure::score_false_positive_ratio(confusion.false_positive_ratio()),
            format!(
                "|D-A|/|T| = {:.4} at s={operating_sensitivity:.2}",
                confusion.false_positive_ratio()
            ),
        );
        card.set_with_note(
            MetricId::ObservedFalseNegativeRatio,
            measure::score_detection_rate(confusion.detection_rate()),
            format!(
                "|A-D|/|T| = {:.4}; detection rate {:.2}",
                confusion.false_negative_ratio(),
                confusion.detection_rate()
            ),
        );
        card.set_with_note(
            MetricId::SystemThroughput,
            measure::score_throughput(throughput.zero_loss_pps, needs),
            format!(
                "zero-loss {:.0} pps vs nominal {:.0}",
                throughput.zero_loss_pps, needs.nominal_pps
            ),
        );
        card.set_with_note(
            MetricId::MaximalThroughputZeroLoss,
            measure::score_throughput(throughput.zero_loss_pps, needs),
            format!("measured {:.0} pps", throughput.zero_loss_pps),
        );
        card.set_with_note(
            MetricId::NetworkLethalDose,
            measure::score_lethal_dose(throughput.lethal_dose_pps, needs),
            match throughput.lethal_dose_pps {
                Some(pps) => format!("failure at {pps:.0} pps"),
                None => "no failure provoked within search ceiling".to_owned(),
            },
        );
        card.set_with_note(
            MetricId::InducedTrafficLatency,
            measure::score_induced_latency(timing.induced_latency_mean, needs),
            format!("mean {}", timing.induced_latency_mean),
        );
        card.set_with_note(
            MetricId::Timeliness,
            measure::score_timeliness(timing.timeliness_mean, needs),
            format!("mean {} / max {}", timing.timeliness_mean, timing.timeliness_max),
        );
        card.set_with_note(
            MetricId::OperationalPerformanceImpact,
            measure::score_host_impact(outcome.host_impact),
            format!("{:.2}% of monitored-host CPU", 100.0 * outcome.host_impact),
        );
        card.set_with_note(
            MetricId::ErrorReportingAndRecovery,
            measure::score_error_recovery(product.architecture.failure),
            format!("{:?}", product.architecture.failure),
        );
        card.set_with_note(
            MetricId::DataStorage,
            measure::score_data_storage(outcome.state_bytes, feed.test.wire_bytes()),
            format!(
                "{} state bytes over {} source bytes",
                outcome.state_bytes,
                feed.test.wire_bytes()
            ),
        );
        card.set_with_note(
            MetricId::FirewallInteraction,
            measure::score_response_interaction(
                product.architecture.response.firewall,
                outcome.blocked.0,
                outcome.collateral_blocked_sources,
            ),
            format!(
                "blocked {} attack pkts, {} collateral sources",
                outcome.blocked.0, outcome.collateral_blocked_sources
            ),
        );
        card.set_with_note(
            MetricId::RouterInteraction,
            measure::score_response_interaction(
                product.architecture.response.router,
                outcome.blocked.0,
                outcome.collateral_blocked_sources,
            ),
            "router path shares the response plumbing",
        );
        // SNMP: count traps from a capability-probe interpretation of the run.
        let traps =
            if product.architecture.response.snmp { confusion.alert_count as u32 } else { 0 };
        card.set_with_note(
            MetricId::SnmpInteraction,
            measure::score_snmp(product.architecture.response.snmp, traps),
            format!("{traps} trap-eligible alerts"),
        );
        // Evidence collection, measured: the retention budget scales with the
        // product's storage posture (KB retained per MB of source data).
        let budget = (feed.test.wire_bytes() / 1_000_000).max(1)
            * u64::from(product.vendor.storage_kb_per_mb)
            * 1024;
        let policy = EvidencePolicy { byte_budget: budget, ..EvidencePolicy::alert_adjacent() };
        let store = EvidenceStore::collect(&feed.test, &outcome.alerts, policy);
        let detected_ids: Vec<u32> = {
            let mut ids: Vec<u32> = outcome
                .alerts
                .iter()
                .filter_map(|a| feed.test.records()[a.trigger].truth.map(|t| t.attack_id))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        let coverage = store.mean_coverage(&feed.test, &detected_ids);
        card.set_with_note(
            MetricId::EvidenceCollection,
            measure::score_evidence_coverage(coverage),
            format!(
                "forensic coverage {:.2} over {} detected instances ({} KiB retained, {} truncated)",
                coverage,
                detected_ids.len(),
                store.bytes_used / 1024,
                store.truncated_alerts
            ),
        );

        // The survivability family: measured from the faulted twin when a
        // fault plan ran, otherwise scored by static architecture analysis
        // (redundancy and failure behavior) so the card stays complete.
        let survivability = faulted.as_ref().map(|f| {
            let true_alerts = |o: &PipelineOutcome| {
                o.alerts.iter().filter(|a| feed.test.records()[a.trigger].truth.is_some()).count()
                    as u64
            };
            Survivability::measure(
                true_alerts(&outcome),
                true_alerts(f),
                f.alerts.len() as u64,
                &f.fault_stats,
            )
        });
        match (&survivability, &faulted) {
            (Some(s), Some(f)) => {
                let plan_label = self
                    .fault_plan
                    .as_ref()
                    .map(FaultPlan::label)
                    .unwrap_or("fault plan")
                    .to_owned();
                card.set_with_note(
                    MetricId::DetectionRetentionUnderFailure,
                    measure::score_detection_retention(s.detection_retention),
                    format!(
                        "retained {:.2} of true alerts under '{plan_label}'",
                        s.detection_retention
                    ),
                );
                card.set_with_note(
                    MetricId::AlertLossRatio,
                    measure::score_alert_loss(s.alert_loss_ratio),
                    format!(
                        "lost {} of {} alerts ({:.3}) under '{plan_label}'",
                        f.fault_stats.lost_alerts,
                        f.alerts.len() as u64 + f.fault_stats.lost_alerts,
                        s.alert_loss_ratio
                    ),
                );
                card.set_with_note(
                    MetricId::MeanTimeToReroute,
                    measure::score_reroute_time(s.mean_reroute, f.fault_stats.rerouted > 0),
                    format!("mean {} over {} reroutes", s.mean_reroute, f.fault_stats.rerouted),
                );
                card.set_with_note(
                    MetricId::RecoveryCompleteness,
                    measure::score_recovery_completeness(s.recovery_completeness),
                    format!(
                        "{} of {} crashes recovered, {} items replayed",
                        f.fault_stats.recoveries_seen,
                        f.fault_stats.crashes_seen,
                        f.fault_stats.replayed
                    ),
                );
            }
            _ => {
                let arch = &product.architecture;
                let redundant = arch.sensors > 1 || arch.analyzers > 1;
                let recovery = measure::score_error_recovery(arch.failure).value();
                let static_note = "static architecture analysis; run with a fault plan to measure";
                card.set_with_note(
                    MetricId::DetectionRetentionUnderFailure,
                    idse_core::DiscreteScore::new(match (redundant, recovery) {
                        (true, 4) => 3,
                        (true, _) => 2,
                        (false, 4) => 2,
                        (false, 2) => 1,
                        _ => 0,
                    }),
                    static_note,
                );
                card.set_with_note(
                    MetricId::AlertLossRatio,
                    idse_core::DiscreteScore::new(match recovery {
                        4 => 3,
                        2 => 2,
                        _ => 1,
                    }),
                    static_note,
                );
                card.set_with_note(
                    MetricId::MeanTimeToReroute,
                    idse_core::DiscreteScore::new(if redundant { 3 } else { 0 }),
                    static_note,
                );
                card.set_with_note(
                    MetricId::RecoveryCompleteness,
                    idse_core::DiscreteScore::new(recovery),
                    static_note,
                );
            }
        }

        card.set_with_note(
            MetricId::EffectivenessOfGeneratedFilters,
            measure::score_response_interaction(
                product.architecture.response.firewall || product.architecture.response.router,
                outcome.blocked.0,
                outcome.collateral_blocked_sources,
            ),
            "generated-filter surgical accuracy",
        );

        ProductEvaluation {
            product: product.clone(),
            scorecard: card,
            curve,
            operating_sensitivity,
            confusion,
            throughput,
            timing,
            host_impact: outcome.host_impact,
            state_bytes: outcome.state_bytes,
            survivability,
        }
    }
}

/// One measured probe: the unit of work in phase 2b.
#[derive(Debug, Clone, Copy)]
enum ProbeJob {
    /// The instrumented accuracy/response run at the operating point.
    Operate { index: usize, sensitivity: f64 },
    /// The zero-loss / lethal-dose throughput searches.
    Throughput { index: usize },
    /// The operating-point run under the request's fault plan.
    Survive { index: usize, sensitivity: f64 },
}

/// What a probe produced.
#[derive(Debug)]
enum ProbeOutput {
    Operate(Box<PipelineOutcome>),
    Throughput(ThroughputReport),
    Survive(Box<PipelineOutcome>),
}

impl ProbeOutput {
    fn into_operate(self) -> Option<Box<PipelineOutcome>> {
        match self {
            ProbeOutput::Operate(outcome) => Some(outcome),
            _ => None,
        }
    }

    fn into_throughput(self) -> Option<ThroughputReport> {
        match self {
            ProbeOutput::Throughput(report) => Some(report),
            _ => None,
        }
    }

    fn into_survive(self) -> Option<Box<PipelineOutcome>> {
        match self {
            ProbeOutput::Survive(outcome) => Some(outcome),
            _ => None,
        }
    }
}

/// Everything one product's evaluation produced.
#[derive(Debug)]
pub struct ProductEvaluation {
    /// The product.
    pub product: IdsProduct,
    /// The filled scorecard (all 56 metrics).
    pub scorecard: Scorecard,
    /// Figure 4 curve.
    pub curve: ErrorCurve,
    /// Chosen operating sensitivity (min-FN within the FP budget, falling
    /// back to the default midpoint).
    pub operating_sensitivity: f64,
    /// Confusion counts at the operating point.
    pub confusion: ConfusionCounts,
    /// Throughput searches.
    pub throughput: ThroughputReport,
    /// Timing measurements at the operating point.
    pub timing: TimingReport,
    /// Host CPU impact at the operating point.
    pub host_impact: f64,
    /// Engine state bytes at the end of the run.
    pub state_bytes: usize,
    /// Measured survivability, when the request carried a fault plan.
    pub survivability: Option<Survivability>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_ids::products::ProductId;
    use idse_sim::SimDuration;

    fn quick_request() -> EvaluationRequest {
        EvaluationRequest::new()
            .with_feed(
                FeedConfig::builder()
                    .session_rate(15.0)
                    .training_span(SimDuration::from_secs(12))
                    .test_span(SimDuration::from_secs(25))
                    .campaign_intensity(1)
                    .seed(42)
                    .build(),
            )
            .with_needs(EnvironmentNeeds::realtime_cluster(1_500.0))
            .with_sweep_steps(4)
            .with_max_throughput_factor(32.0)
            .with_fp_budget(0.2)
    }

    #[test]
    fn full_evaluation_fills_every_metric() {
        let request = quick_request();
        let feed = request.build_feed();
        let eval = request.evaluate(&IdsProduct::model(ProductId::GuardSecure), &feed);
        let unscored = eval.scorecard.unscored();
        assert!(unscored.is_empty(), "unscored metrics: {unscored:?}");
        assert_eq!(eval.scorecard.len(), 56);
    }

    #[test]
    fn evaluations_are_deterministic() {
        let request = quick_request();
        let feed = request.build_feed();
        let a = request.evaluate(&IdsProduct::model(ProductId::NidSentry), &feed);
        let b = request.evaluate(&IdsProduct::model(ProductId::NidSentry), &feed);
        for (id, s) in a.scorecard.iter() {
            assert_eq!(Some(s), b.scorecard.get(id), "{id:?} differs between runs");
        }
        assert_eq!(a.operating_sensitivity, b.operating_sensitivity);
    }

    #[test]
    fn parallel_evaluation_covers_all_products() {
        let request = quick_request().with_jobs(8);
        let feed = request.build_feed();
        let evals = request.evaluate_all(&feed);
        assert_eq!(evals.len(), 4);
        let names: std::collections::HashSet<String> =
            evals.iter().map(|e| e.scorecard.system.clone()).collect();
        assert_eq!(names.len(), 4);
        for e in &evals {
            assert_eq!(e.scorecard.len(), 56, "{}", e.scorecard.system);
        }
    }

    #[test]
    fn worker_count_never_changes_the_scores() {
        let feed = quick_request().build_feed();
        let render = |jobs: usize| {
            quick_request()
                .with_jobs(jobs)
                .evaluate_all(&feed)
                .iter()
                .map(|e| {
                    format!(
                        "{} s={} tp={} ld={:?} {:?}",
                        e.scorecard.system,
                        e.operating_sensitivity,
                        e.throughput.zero_loss_pps,
                        e.throughput.lethal_dose_pps,
                        e.scorecard.iter().collect::<Vec<_>>()
                    )
                })
                .collect::<Vec<_>>()
        };
        let serial = render(1);
        assert_eq!(serial, render(3));
        assert_eq!(serial, render(8));
    }

    #[test]
    fn fault_plan_measures_survivability() {
        use idse_faults::{FaultComponent, FaultKind, FaultPlan};
        let plan = FaultPlan::new("eval-monitor-blink").with(
            idse_sim::SimTime::from_secs(8),
            FaultKind::Crash {
                component: FaultComponent::Monitor,
                restart_after: Some(SimDuration::from_secs(6)),
            },
        );
        let request = quick_request().with_fault_plan(plan);
        let feed = request.build_feed();
        let eval = request.evaluate(&IdsProduct::model(ProductId::GuardSecure), &feed);
        let s = eval.survivability.expect("fault plan yields a measured survivability");
        assert!(s.detection_retention > 0.0, "recovered monitor keeps detections");
        assert!((0.0..=1.0).contains(&s.alert_loss_ratio));
        assert!((s.recovery_completeness - 1.0).abs() < 1e-12, "single crash recovers");
        assert!(eval.scorecard.unscored().is_empty());
        // The measured note replaces the static one.
        let note = eval.scorecard.note(MetricId::RecoveryCompleteness).unwrap_or_default();
        assert!(note.contains("crashes recovered"), "note: {note}");
        // Still deterministic with the plan in play.
        let again = request.evaluate(&IdsProduct::model(ProductId::GuardSecure), &feed);
        for (id, score) in eval.scorecard.iter() {
            assert_eq!(Some(score), again.scorecard.get(id), "{id:?} differs");
        }
    }
}
