//! The full evaluation: every product, every metric, one scorecard each.
//!
//! This is the methodology end-to-end: build the canned feed, run the
//! measured experiments (analysis method), apply the vendor rubrics
//! (open-source method), convert measurements through the `measure`
//! rubrics, and emit a complete [`Scorecard`] per product ready for any
//! weighting. Products evaluate in parallel (crossbeam scoped threads) —
//! each evaluation is independent and deterministic.

use crate::confusion::{ConfusionCounts, TransactionLedger};
use crate::evidence::{EvidencePolicy, EvidenceStore};
use crate::feeds::{FeedConfig, TestFeed};
use crate::measure::{self, EnvironmentNeeds};
use crate::sweep::{sweep_product, ErrorCurve};
use crate::throughput::{throughput_search, ThroughputReport};
use crate::timing::{timing_report, TimingReport};
use crate::vendor::score_vendor_metrics;
use idse_core::{MetricId, Scorecard};
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::IdsProduct;
use idse_ids::Sensitivity;

/// Evaluation parameters.
#[derive(Debug, Clone)]
pub struct EvaluationConfig {
    /// Feed parameters.
    pub feed: FeedConfig,
    /// Environment the rubrics compare against.
    pub needs: EnvironmentNeeds,
    /// Sensitivity steps in the Figure 4 sweep.
    pub sweep_steps: usize,
    /// Ceiling for the throughput searches (time-compression factor).
    pub max_throughput_factor: f64,
    /// False-positive budget for operating-point selection.
    pub fp_budget: f64,
    /// Telemetry handle. Disabled by default. When enabled, each
    /// product's evaluation records into the shared sink under a scope
    /// named after the product, and the operating-point pipeline run is
    /// fully instrumented (per-stage spans, shed/alert counters).
    pub telemetry: idse_telemetry::Telemetry,
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        Self {
            feed: FeedConfig::default(),
            needs: EnvironmentNeeds::realtime_cluster(2_000.0),
            sweep_steps: 7,
            max_throughput_factor: 256.0,
            fp_budget: 0.15,
            telemetry: idse_telemetry::Telemetry::disabled(),
        }
    }
}

/// Everything one product's evaluation produced.
#[derive(Debug)]
pub struct ProductEvaluation {
    /// The product.
    pub product: IdsProduct,
    /// The filled scorecard (all 52 metrics).
    pub scorecard: Scorecard,
    /// Figure 4 curve.
    pub curve: ErrorCurve,
    /// Chosen operating sensitivity (min-FN within the FP budget, falling
    /// back to the default midpoint).
    pub operating_sensitivity: f64,
    /// Confusion counts at the operating point.
    pub confusion: ConfusionCounts,
    /// Throughput searches.
    pub throughput: ThroughputReport,
    /// Timing measurements at the operating point.
    pub timing: TimingReport,
    /// Host CPU impact at the operating point.
    pub host_impact: f64,
    /// Engine state bytes at the end of the run.
    pub state_bytes: usize,
}

/// Evaluate one product against a feed.
pub fn evaluate_product(
    product: &IdsProduct,
    feed: &TestFeed,
    config: &EvaluationConfig,
) -> ProductEvaluation {
    let ledger = TransactionLedger::of(&feed.test);
    // All events from this product's evaluation carry its name, so four
    // concurrent evaluations stay separable in the shared sink.
    let telemetry = config.telemetry.with_scope(product.id.name());

    // Figure 4 sweep, then pick the §3.3 operating point.
    let curve = sweep_product(product, feed, config.sweep_steps);
    telemetry.counter(0, "phase.sweep.points", curve.points.len() as u64);
    let operating_sensitivity =
        curve.min_fn_within_fp_budget(config.fp_budget).map(|p| p.sensitivity).unwrap_or(0.5);

    // The accuracy/response run at the operating point, with automated
    // response armed so filter effectiveness is observable. This is the
    // instrumented run: per-stage spans land under this product's scope.
    let run_config = RunConfig {
        sensitivity: Sensitivity::new(operating_sensitivity),
        monitored_hosts: feed.servers.clone(),
        auto_response: true,
        telemetry: telemetry.clone(),
        ..RunConfig::default()
    };
    let outcome = PipelineRunner::new(product.clone(), run_config)
        .with_training(feed.training.clone())
        .run(&feed.test);
    telemetry.span(0, outcome.finished_at.as_nanos(), "phase.operating_run");
    let confusion = ledger.score(&outcome.alerts);
    let timing = timing_report(&feed.test, &outcome);

    // Throughput searches.
    let throughput = throughput_search(product, feed, config.max_throughput_factor);
    telemetry.gauge(
        outcome.finished_at.as_nanos(),
        "phase.throughput.zero_loss_pps",
        throughput.zero_loss_pps,
    );

    // Fill the scorecard: open-source rubrics, then measured rubrics.
    let mut card = Scorecard::new(product.id.name());
    score_vendor_metrics(product, &mut card);

    let needs = &config.needs;
    card.set_with_note(
        MetricId::ObservedFalsePositiveRatio,
        measure::score_false_positive_ratio(confusion.false_positive_ratio()),
        format!(
            "|D-A|/|T| = {:.4} at s={operating_sensitivity:.2}",
            confusion.false_positive_ratio()
        ),
    );
    card.set_with_note(
        MetricId::ObservedFalseNegativeRatio,
        measure::score_detection_rate(confusion.detection_rate()),
        format!(
            "|A-D|/|T| = {:.4}; detection rate {:.2}",
            confusion.false_negative_ratio(),
            confusion.detection_rate()
        ),
    );
    card.set_with_note(
        MetricId::SystemThroughput,
        measure::score_throughput(throughput.zero_loss_pps, needs),
        format!(
            "zero-loss {:.0} pps vs nominal {:.0}",
            throughput.zero_loss_pps, needs.nominal_pps
        ),
    );
    card.set_with_note(
        MetricId::MaximalThroughputZeroLoss,
        measure::score_throughput(throughput.zero_loss_pps, needs),
        format!("measured {:.0} pps", throughput.zero_loss_pps),
    );
    card.set_with_note(
        MetricId::NetworkLethalDose,
        measure::score_lethal_dose(throughput.lethal_dose_pps, needs),
        match throughput.lethal_dose_pps {
            Some(pps) => format!("failure at {pps:.0} pps"),
            None => "no failure provoked within search ceiling".to_owned(),
        },
    );
    card.set_with_note(
        MetricId::InducedTrafficLatency,
        measure::score_induced_latency(timing.induced_latency_mean, needs),
        format!("mean {}", timing.induced_latency_mean),
    );
    card.set_with_note(
        MetricId::Timeliness,
        measure::score_timeliness(timing.timeliness_mean, needs),
        format!("mean {} / max {}", timing.timeliness_mean, timing.timeliness_max),
    );
    card.set_with_note(
        MetricId::OperationalPerformanceImpact,
        measure::score_host_impact(outcome.host_impact),
        format!("{:.2}% of monitored-host CPU", 100.0 * outcome.host_impact),
    );
    card.set_with_note(
        MetricId::ErrorReportingAndRecovery,
        measure::score_error_recovery(product.architecture.failure),
        format!("{:?}", product.architecture.failure),
    );
    card.set_with_note(
        MetricId::DataStorage,
        measure::score_data_storage(outcome.state_bytes, feed.test.wire_bytes()),
        format!("{} state bytes over {} source bytes", outcome.state_bytes, feed.test.wire_bytes()),
    );
    card.set_with_note(
        MetricId::FirewallInteraction,
        measure::score_response_interaction(
            product.architecture.response.firewall,
            outcome.blocked.0,
            outcome.collateral_blocked_sources,
        ),
        format!(
            "blocked {} attack pkts, {} collateral sources",
            outcome.blocked.0, outcome.collateral_blocked_sources
        ),
    );
    card.set_with_note(
        MetricId::RouterInteraction,
        measure::score_response_interaction(
            product.architecture.response.router,
            outcome.blocked.0,
            outcome.collateral_blocked_sources,
        ),
        "router path shares the response plumbing",
    );
    // SNMP: count traps from a capability-probe interpretation of the run.
    let traps = if product.architecture.response.snmp { confusion.alert_count as u32 } else { 0 };
    card.set_with_note(
        MetricId::SnmpInteraction,
        measure::score_snmp(product.architecture.response.snmp, traps),
        format!("{traps} trap-eligible alerts"),
    );
    // Evidence collection, measured: the retention budget scales with the
    // product's storage posture (KB retained per MB of source data).
    let budget = (feed.test.wire_bytes() / 1_000_000).max(1)
        * u64::from(product.vendor.storage_kb_per_mb)
        * 1024;
    let policy = EvidencePolicy { byte_budget: budget, ..EvidencePolicy::alert_adjacent() };
    let store = EvidenceStore::collect(&feed.test, &outcome.alerts, policy);
    let detected_ids: Vec<u32> = {
        let mut ids: Vec<u32> = outcome
            .alerts
            .iter()
            .filter_map(|a| feed.test.records()[a.trigger].truth.map(|t| t.attack_id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    let coverage = store.mean_coverage(&feed.test, &detected_ids);
    card.set_with_note(
        MetricId::EvidenceCollection,
        measure::score_evidence_coverage(coverage),
        format!(
            "forensic coverage {:.2} over {} detected instances ({} KiB retained, {} truncated)",
            coverage,
            detected_ids.len(),
            store.bytes_used / 1024,
            store.truncated_alerts
        ),
    );

    card.set_with_note(
        MetricId::EffectivenessOfGeneratedFilters,
        measure::score_response_interaction(
            product.architecture.response.firewall || product.architecture.response.router,
            outcome.blocked.0,
            outcome.collateral_blocked_sources,
        ),
        "generated-filter surgical accuracy",
    );

    ProductEvaluation {
        product: product.clone(),
        scorecard: card,
        curve,
        operating_sensitivity,
        confusion,
        throughput,
        timing,
        host_impact: outcome.host_impact,
        state_bytes: outcome.state_bytes,
    }
}

/// Evaluate all four products in parallel against one feed.
pub fn evaluate_all(feed: &TestFeed, config: &EvaluationConfig) -> Vec<ProductEvaluation> {
    let products = IdsProduct::all_models();
    let mut results: Vec<Option<ProductEvaluation>> = (0..products.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (slot, product) in results.iter_mut().zip(products.iter()) {
            scope.spawn(move |_| {
                *slot = Some(evaluate_product(product, feed, config));
            });
        }
    })
    .expect("evaluation threads do not panic");
    results.into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_ids::products::ProductId;
    use idse_sim::SimDuration;

    fn quick_config() -> EvaluationConfig {
        EvaluationConfig {
            feed: FeedConfig {
                session_rate: 15.0,
                training_span: SimDuration::from_secs(12),
                test_span: SimDuration::from_secs(25),
                campaign_intensity: 1,
                seed: 42,
            },
            needs: EnvironmentNeeds::realtime_cluster(1_500.0),
            sweep_steps: 4,
            max_throughput_factor: 32.0,
            fp_budget: 0.2,
            telemetry: idse_telemetry::Telemetry::disabled(),
        }
    }

    #[test]
    fn full_evaluation_fills_every_metric() {
        let cfg = quick_config();
        let feed = TestFeed::realtime_cluster(&cfg.feed);
        let eval = evaluate_product(&IdsProduct::model(ProductId::GuardSecure), &feed, &cfg);
        let unscored = eval.scorecard.unscored();
        assert!(unscored.is_empty(), "unscored metrics: {unscored:?}");
        assert_eq!(eval.scorecard.len(), 52);
    }

    #[test]
    fn evaluations_are_deterministic() {
        let cfg = quick_config();
        let feed = TestFeed::realtime_cluster(&cfg.feed);
        let a = evaluate_product(&IdsProduct::model(ProductId::NidSentry), &feed, &cfg);
        let b = evaluate_product(&IdsProduct::model(ProductId::NidSentry), &feed, &cfg);
        for (id, s) in a.scorecard.iter() {
            assert_eq!(Some(s), b.scorecard.get(id), "{id:?} differs between runs");
        }
        assert_eq!(a.operating_sensitivity, b.operating_sensitivity);
    }

    #[test]
    fn parallel_evaluation_covers_all_products() {
        let cfg = quick_config();
        let feed = TestFeed::realtime_cluster(&cfg.feed);
        let evals = evaluate_all(&feed, &cfg);
        assert_eq!(evals.len(), 4);
        let names: std::collections::HashSet<String> =
            evals.iter().map(|e| e.scorecard.system.clone()).collect();
        assert_eq!(names.len(), 4);
        for e in &evals {
            assert_eq!(e.scorecard.len(), 52, "{}", e.scorecard.system);
        }
    }
}
