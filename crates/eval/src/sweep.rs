//! Figure 4: error-rate curves vs sensitivity, and the Equal Error Rate.
//!
//! "Users should look for systems where the IDS's monitoring sensitivity
//! can be adjusted so equality between false positive and false negative
//! error rates can be achieved." The sweep runs the same feed through a
//! product at a ladder of sensitivity settings, records both ratios, and
//! locates the crossover by linear interpolation.

use crate::confusion::TransactionLedger;
use crate::feeds::TestFeed;
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::IdsProduct;
use idse_ids::Sensitivity;
use serde::Serialize;

/// One sweep sample.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepPoint {
    /// Sensitivity setting.
    pub sensitivity: f64,
    /// `|D − A| / |T|`.
    pub false_positive_ratio: f64,
    /// `|A − D| / |T|`.
    pub false_negative_ratio: f64,
    /// Raw alert volume at this setting.
    pub alerts: usize,
}

/// A full error-rate curve for one product.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorCurve {
    /// Product name.
    pub product: String,
    /// Samples in increasing sensitivity order.
    pub points: Vec<SweepPoint>,
}

impl ErrorCurve {
    /// The Equal Error Rate operating point `(sensitivity, rate)`, found
    /// by interpolating the sign change of `fp − fn`. `None` when the
    /// curves never cross in the swept range.
    pub fn equal_error_rate(&self) -> Option<(f64, f64)> {
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            let da = a.false_positive_ratio - a.false_negative_ratio;
            let db = b.false_positive_ratio - b.false_negative_ratio;
            // idse-lint: allow(float-eq-comparison, reason = "exact-zero crossing: the EER point is returned verbatim only when the curves touch exactly; near-misses take the interpolation branch")
            if da == 0.0 {
                return Some((a.sensitivity, a.false_positive_ratio));
            }
            if da * db < 0.0 {
                // Interpolate the crossing.
                let t = da / (da - db);
                let s = a.sensitivity + t * (b.sensitivity - a.sensitivity);
                let rate =
                    a.false_positive_ratio + t * (b.false_positive_ratio - a.false_positive_ratio);
                return Some((s, rate));
            }
        }
        self.points.last().and_then(|p| {
            (p.false_positive_ratio == p.false_negative_ratio)
                .then_some((p.sensitivity, p.false_positive_ratio))
        })
    }

    /// The sensitivity minimizing the false-negative ratio subject to the
    /// false-positive ratio staying at or below `fp_budget` — the §3.3
    /// operating-point rule for distributed systems ("reduce the false
    /// negative ratio … accepting an increased false positive ratio").
    pub fn min_fn_within_fp_budget(&self, fp_budget: f64) -> Option<SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.false_positive_ratio <= fp_budget)
            .min_by(|a, b| {
                a.false_negative_ratio
                    .partial_cmp(&b.false_negative_ratio)
                    .expect("ratios are finite")
                    .then(
                        a.false_positive_ratio
                            .partial_cmp(&b.false_positive_ratio)
                            .expect("ratios are finite"),
                    )
            })
            .copied()
    }
}

/// Sweep one product over `steps` sensitivity settings in `[0, 1]`.
pub fn sweep_product(product: &IdsProduct, feed: &TestFeed, steps: usize) -> ErrorCurve {
    assert!(steps >= 2, "a sweep needs at least two settings");
    let ledger = TransactionLedger::of(&feed.test);
    let mut points = Vec::with_capacity(steps);
    for k in 0..steps {
        let s = k as f64 / (steps - 1) as f64;
        let config = RunConfig {
            sensitivity: Sensitivity::new(s),
            monitored_hosts: feed.servers.clone(),
            ..RunConfig::default()
        };
        let runner =
            PipelineRunner::new(product.clone(), config).with_training(feed.training.clone());
        let outcome = runner.run(&feed.test);
        let counts = ledger.score(&outcome.alerts);
        points.push(SweepPoint {
            sensitivity: s,
            false_positive_ratio: counts.false_positive_ratio(),
            false_negative_ratio: counts.false_negative_ratio(),
            alerts: counts.alert_count,
        });
    }
    ErrorCurve { product: product.id.name().to_owned(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feeds::FeedConfig;
    use idse_ids::products::ProductId;
    use idse_sim::SimDuration;

    fn small_feed() -> TestFeed {
        TestFeed::ecommerce(&FeedConfig {
            session_rate: 15.0,
            training_span: SimDuration::from_secs(15),
            test_span: SimDuration::from_secs(30),
            campaign_intensity: 1,
            seed: 7,
        })
    }

    #[test]
    fn fn_ratio_decreases_with_sensitivity() {
        let feed = small_feed();
        let curve = sweep_product(&IdsProduct::model(ProductId::NidSentry), &feed, 5);
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert!(
            last.false_negative_ratio <= first.false_negative_ratio,
            "higher sensitivity must not miss more: {first:?} -> {last:?}"
        );
        assert!(last.alerts >= first.alerts);
    }

    #[test]
    fn fp_ratio_increases_with_sensitivity() {
        let feed = small_feed();
        let curve = sweep_product(&IdsProduct::model(ProductId::GuardSecure), &feed, 5);
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert!(last.false_positive_ratio >= first.false_positive_ratio);
    }

    #[test]
    fn eer_interpolation_on_synthetic_curve() {
        let curve = ErrorCurve {
            product: "synthetic".into(),
            points: vec![
                SweepPoint {
                    sensitivity: 0.0,
                    false_positive_ratio: 0.0,
                    false_negative_ratio: 0.4,
                    alerts: 0,
                },
                SweepPoint {
                    sensitivity: 0.5,
                    false_positive_ratio: 0.1,
                    false_negative_ratio: 0.3,
                    alerts: 10,
                },
                SweepPoint {
                    sensitivity: 1.0,
                    false_positive_ratio: 0.5,
                    false_negative_ratio: 0.1,
                    alerts: 50,
                },
            ],
        };
        let (s, r) = curve.equal_error_rate().expect("curves cross");
        assert!(s > 0.5 && s < 1.0, "crossing between the last two samples, got {s}");
        assert!(r > 0.1 && r < 0.5);
    }

    #[test]
    fn no_crossing_yields_none() {
        let curve = ErrorCurve {
            product: "synthetic".into(),
            points: vec![
                SweepPoint {
                    sensitivity: 0.0,
                    false_positive_ratio: 0.0,
                    false_negative_ratio: 0.5,
                    alerts: 0,
                },
                SweepPoint {
                    sensitivity: 1.0,
                    false_positive_ratio: 0.1,
                    false_negative_ratio: 0.2,
                    alerts: 5,
                },
            ],
        };
        assert!(curve.equal_error_rate().is_none());
    }

    #[test]
    fn fp_budget_operating_point() {
        let curve = ErrorCurve {
            product: "synthetic".into(),
            points: vec![
                SweepPoint {
                    sensitivity: 0.0,
                    false_positive_ratio: 0.0,
                    false_negative_ratio: 0.5,
                    alerts: 0,
                },
                SweepPoint {
                    sensitivity: 0.5,
                    false_positive_ratio: 0.05,
                    false_negative_ratio: 0.2,
                    alerts: 9,
                },
                SweepPoint {
                    sensitivity: 1.0,
                    false_positive_ratio: 0.4,
                    false_negative_ratio: 0.05,
                    alerts: 80,
                },
            ],
        };
        let p = curve.min_fn_within_fp_budget(0.1).unwrap();
        assert_eq!(p.sensitivity, 0.5);
        // With a generous budget, the minimum-FN point wins.
        let p = curve.min_fn_within_fp_budget(1.0).unwrap();
        assert_eq!(p.sensitivity, 1.0);
        // With a zero budget only the first point qualifies.
        let p = curve.min_fn_within_fp_budget(0.0).unwrap();
        assert_eq!(p.sensitivity, 0.0);
    }
}
