//! Figure 4: error-rate curves vs sensitivity, and the Equal Error Rate.
//!
//! "Users should look for systems where the IDS's monitoring sensitivity
//! can be adjusted so equality between false positive and false negative
//! error rates can be achieved." The sweep runs the same feed through a
//! product at a ladder of sensitivity settings, records both ratios, and
//! locates the crossover by linear interpolation.

use crate::confusion::TransactionLedger;
use crate::feeds::TestFeed;
use idse_exec::{Executor, ExperimentPlan, JobKey};
use idse_ids::pipeline::{PipelineRunner, RunConfig};
use idse_ids::products::IdsProduct;
use idse_ids::Sensitivity;
use serde::Serialize;

/// Sweep configuration shared by the Figure 4 curve and operating-point
/// selection: how many settings to sample, over what sensitivity range,
/// and which false-positive budget the §3.3 rule applies.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepPlan {
    /// Number of sensitivity settings to sample (≥ 2).
    pub steps: usize,
    /// Inclusive sensitivity range swept, low to high.
    pub sensitivity_range: (f64, f64),
    /// False-positive budget for [`ErrorCurve::min_fn_within_fp_budget`].
    pub fp_budget: f64,
}

impl Default for SweepPlan {
    /// Seven steps over the full `[0, 1]` range with the paper-default
    /// 15 % false-positive budget.
    fn default() -> Self {
        SweepPlan { steps: 7, sensitivity_range: (0.0, 1.0), fp_budget: 0.15 }
    }
}

impl SweepPlan {
    /// A plan sampling `steps` settings over the default full range.
    pub fn with_steps(steps: usize) -> Self {
        SweepPlan { steps, ..SweepPlan::default() }
    }

    /// This plan with a different false-positive budget.
    pub fn with_fp_budget(mut self, fp_budget: f64) -> Self {
        self.fp_budget = fp_budget;
        self
    }

    /// The sensitivity of sample `k` (evenly spaced endpoints-inclusive).
    ///
    /// For the default `(0.0, 1.0)` range this reduces to exactly
    /// `k / (steps - 1)` — bit-identical to the historical sweep ladder.
    pub fn sensitivity_at(&self, k: usize) -> f64 {
        let (lo, hi) = self.sensitivity_range;
        lo + (k as f64 / (self.steps - 1) as f64) * (hi - lo)
    }

    /// Panics (via `assert!`) unless the plan is well-formed.
    pub fn validate(&self) {
        assert!(self.steps >= 2, "a sweep needs at least two settings");
        let (lo, hi) = self.sensitivity_range;
        assert!(lo <= hi, "sweep range must be ordered: {lo} > {hi}");
        assert!(self.fp_budget >= 0.0, "fp budget must be non-negative");
    }
}

/// One sweep sample.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepPoint {
    /// Sensitivity setting.
    pub sensitivity: f64,
    /// `|D − A| / |T|`.
    pub false_positive_ratio: f64,
    /// `|A − D| / |T|`.
    pub false_negative_ratio: f64,
    /// Raw alert volume at this setting.
    pub alerts: usize,
}

/// A full error-rate curve for one product.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorCurve {
    /// Product name.
    pub product: String,
    /// Samples in increasing sensitivity order.
    pub points: Vec<SweepPoint>,
}

impl ErrorCurve {
    /// The Equal Error Rate operating point `(sensitivity, rate)`, found
    /// by interpolating the sign change of `fp − fn`. `None` when the
    /// curves never cross in the swept range.
    pub fn equal_error_rate(&self) -> Option<(f64, f64)> {
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            let da = a.false_positive_ratio - a.false_negative_ratio;
            let db = b.false_positive_ratio - b.false_negative_ratio;
            // idse-lint: allow(float-eq-comparison, reason = "exact-zero crossing: the EER point is returned verbatim only when the curves touch exactly; near-misses take the interpolation branch")
            if da == 0.0 {
                return Some((a.sensitivity, a.false_positive_ratio));
            }
            if da * db < 0.0 {
                // Interpolate the crossing.
                let t = da / (da - db);
                let s = a.sensitivity + t * (b.sensitivity - a.sensitivity);
                let rate =
                    a.false_positive_ratio + t * (b.false_positive_ratio - a.false_positive_ratio);
                return Some((s, rate));
            }
        }
        self.points.last().and_then(|p| {
            (p.false_positive_ratio == p.false_negative_ratio)
                .then_some((p.sensitivity, p.false_positive_ratio))
        })
    }

    /// The operating point this curve's [`SweepPlan`] selects: the §3.3
    /// min-FN-within-budget rule under `plan.fp_budget`.
    pub fn operating_point(&self, plan: &SweepPlan) -> Option<SweepPoint> {
        self.min_fn_within_fp_budget(plan.fp_budget)
    }

    /// The sensitivity minimizing the false-negative ratio subject to the
    /// false-positive ratio staying at or below `fp_budget` — the §3.3
    /// operating-point rule for distributed systems ("reduce the false
    /// negative ratio … accepting an increased false positive ratio").
    pub fn min_fn_within_fp_budget(&self, fp_budget: f64) -> Option<SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.false_positive_ratio <= fp_budget)
            .min_by(|a, b| {
                a.false_negative_ratio
                    .partial_cmp(&b.false_negative_ratio)
                    .expect("ratios are finite")
                    .then(
                        a.false_positive_ratio
                            .partial_cmp(&b.false_positive_ratio)
                            .expect("ratios are finite"),
                    )
            })
            .copied()
    }
}

/// Measure one sweep sample: run the pipeline at `sensitivity` and score
/// the alerts against the ledger. Pure function of its arguments — the
/// unit of work one sweep job executes.
pub(crate) fn measure_sweep_point(
    product: &IdsProduct,
    feed: &TestFeed,
    ledger: &TransactionLedger,
    sensitivity: f64,
) -> SweepPoint {
    let config = RunConfig {
        sensitivity: Sensitivity::new(sensitivity),
        monitored_hosts: feed.servers.clone(),
        ..RunConfig::default()
    };
    let runner = PipelineRunner::new(product.clone(), config).with_training(feed.training.clone());
    let outcome = runner.run(&feed.test);
    let counts = ledger.score(&outcome.alerts);
    SweepPoint {
        sensitivity,
        false_positive_ratio: counts.false_positive_ratio(),
        false_negative_ratio: counts.false_negative_ratio(),
        alerts: counts.alert_count,
    }
}

/// Sweep one product over the plan's sensitivity ladder, sampling points
/// in parallel on `exec`. Points come back in ladder order regardless of
/// worker count, so the curve is byte-identical at any `--jobs N`.
pub fn sweep(
    product: &IdsProduct,
    feed: &TestFeed,
    plan: &SweepPlan,
    exec: &Executor,
) -> ErrorCurve {
    plan.validate();
    let ledger = TransactionLedger::of(&feed.test);
    // Sweep jobs are pure replays of the feed — they never draw from
    // ctx.seed — so the plan's master seed is immaterial.
    let mut jobs = ExperimentPlan::new(0);
    for k in 0..plan.steps {
        jobs.push(JobKey::new(product.id.name(), "sweep", k as u32), plan.sensitivity_at(k));
    }
    let points = jobs
        .run(exec, &idse_telemetry::Telemetry::disabled(), |_, &s| {
            measure_sweep_point(product, feed, &ledger, s)
        })
        .into_iter()
        .map(|r| r.output)
        .collect();
    ErrorCurve { product: product.id.name().to_owned(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feeds::FeedConfig;
    use idse_ids::products::ProductId;
    use idse_sim::SimDuration;

    fn small_feed() -> TestFeed {
        TestFeed::ecommerce(
            &FeedConfig::builder()
                .session_rate(15.0)
                .training_span(SimDuration::from_secs(15))
                .test_span(SimDuration::from_secs(30))
                .campaign_intensity(1)
                .seed(7)
                .build(),
        )
    }

    #[test]
    fn plan_ladder_matches_historical_spacing() {
        let plan = SweepPlan::with_steps(5);
        for k in 0..5 {
            assert_eq!(plan.sensitivity_at(k), k as f64 / 4.0);
        }
        let narrow = SweepPlan { steps: 3, sensitivity_range: (0.2, 0.6), fp_budget: 0.1 };
        assert_eq!(narrow.sensitivity_at(0), 0.2);
        assert_eq!(narrow.sensitivity_at(2), 0.6);
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let feed = small_feed();
        let product = IdsProduct::model(ProductId::NidSentry);
        let serial = sweep(&product, &feed, &SweepPlan::with_steps(4), &Executor::serial());
        let planned = sweep(&product, &feed, &SweepPlan::with_steps(4), &Executor::new(4));
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&planned).unwrap(),
            "parallel sweep must be byte-identical to the serial sweep"
        );
    }

    #[test]
    fn fn_ratio_decreases_with_sensitivity() {
        let feed = small_feed();
        let curve = sweep(
            &IdsProduct::model(ProductId::NidSentry),
            &feed,
            &SweepPlan::with_steps(5),
            &Executor::new(2),
        );
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert!(
            last.false_negative_ratio <= first.false_negative_ratio,
            "higher sensitivity must not miss more: {first:?} -> {last:?}"
        );
        assert!(last.alerts >= first.alerts);
    }

    #[test]
    fn fp_ratio_increases_with_sensitivity() {
        let feed = small_feed();
        let curve = sweep(
            &IdsProduct::model(ProductId::GuardSecure),
            &feed,
            &SweepPlan::with_steps(5),
            &Executor::serial(),
        );
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert!(last.false_positive_ratio >= first.false_positive_ratio);
    }

    #[test]
    fn eer_interpolation_on_synthetic_curve() {
        let curve = ErrorCurve {
            product: "synthetic".into(),
            points: vec![
                SweepPoint {
                    sensitivity: 0.0,
                    false_positive_ratio: 0.0,
                    false_negative_ratio: 0.4,
                    alerts: 0,
                },
                SweepPoint {
                    sensitivity: 0.5,
                    false_positive_ratio: 0.1,
                    false_negative_ratio: 0.3,
                    alerts: 10,
                },
                SweepPoint {
                    sensitivity: 1.0,
                    false_positive_ratio: 0.5,
                    false_negative_ratio: 0.1,
                    alerts: 50,
                },
            ],
        };
        let (s, r) = curve.equal_error_rate().expect("curves cross");
        assert!(s > 0.5 && s < 1.0, "crossing between the last two samples, got {s}");
        assert!(r > 0.1 && r < 0.5);
    }

    #[test]
    fn no_crossing_yields_none() {
        let curve = ErrorCurve {
            product: "synthetic".into(),
            points: vec![
                SweepPoint {
                    sensitivity: 0.0,
                    false_positive_ratio: 0.0,
                    false_negative_ratio: 0.5,
                    alerts: 0,
                },
                SweepPoint {
                    sensitivity: 1.0,
                    false_positive_ratio: 0.1,
                    false_negative_ratio: 0.2,
                    alerts: 5,
                },
            ],
        };
        assert!(curve.equal_error_rate().is_none());
    }

    #[test]
    fn fp_budget_operating_point() {
        let curve = ErrorCurve {
            product: "synthetic".into(),
            points: vec![
                SweepPoint {
                    sensitivity: 0.0,
                    false_positive_ratio: 0.0,
                    false_negative_ratio: 0.5,
                    alerts: 0,
                },
                SweepPoint {
                    sensitivity: 0.5,
                    false_positive_ratio: 0.05,
                    false_negative_ratio: 0.2,
                    alerts: 9,
                },
                SweepPoint {
                    sensitivity: 1.0,
                    false_positive_ratio: 0.4,
                    false_negative_ratio: 0.05,
                    alerts: 80,
                },
            ],
        };
        let p = curve.min_fn_within_fp_budget(0.1).unwrap();
        assert_eq!(p.sensitivity, 0.5);
        let via_plan =
            curve.operating_point(&SweepPlan { fp_budget: 0.1, ..SweepPlan::default() }).unwrap();
        assert_eq!(via_plan.sensitivity, p.sensitivity);
        // With a generous budget, the minimum-FN point wins.
        let p = curve.min_fn_within_fp_budget(1.0).unwrap();
        assert_eq!(p.sensitivity, 1.0);
        // With a zero budget only the first point qualifies.
        let p = curve.min_fn_within_fp_budget(0.0).unwrap();
        assert_eq!(p.sensitivity, 0.0);
    }
}
