// Negative: seeded, named streams in library code; ambient entropy only
// inside the test module, where it is allowed.
// Linted as crate `idse-traffic`, FileKind::Library.

pub fn jitter(seed: u64) -> f64 {
    let mut rng = RngStream::derive(seed, "traffic-jitter");
    rng.uniform()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_ambient_entropy() {
        let _rng = rand::thread_rng();
    }
}
