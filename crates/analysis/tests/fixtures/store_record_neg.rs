//! Negative twin for `impure-store-record`: the same ambient inputs
//! routed through `with_stamp`/`with_telemetry` — the annotation channels
//! the run-id hash deliberately excludes.

pub fn commit_run(args: &Args, store: &RunStore) -> u64 {
    let stamp = args.opt("--stamp");
    let draft = RunDraft::new("evaluate", "hybrid", "x7").with_stamp(stamp);
    store.commit(draft)
}

pub fn record_metrics(events: &Telemetry, draft: &mut RunDraft) {
    draft.record("detection.rate", 0.97);
    let summary = events.summarize();
    draft.with_telemetry(summary);
}
