//! Positive fixture for `hot-loop-rederive`: re-deriving seed state for
//! every record instead of hoisting the derivation per chunk.

pub fn emit(events: &[Event]) -> u64 {
    let mut acc = 0;
    for ev in events {
        let stream = RngStream::derive(ev.id, "emit");
        acc += stream.next_u64();
    }
    acc
}

pub fn mix(records: &[Record]) -> u64 {
    let mut acc = 0;
    for rec in records {
        acc ^= derive_seed(rec.seed, "mix", rec.idx);
    }
    acc
}
