//! Negative fixture for `per-byte-dispatch`: a table-driven per-byte
//! scan (no branchy decision), and a per-record loop where `match` is
//! fine — the rule is scoped to per-byte loops.

pub fn scan(haystack: &[u8], table: &[u8; 256]) -> u32 {
    let mut hits = 0;
    for &b in haystack {
        hits += u32::from(table[b as usize]);
    }
    hits
}

pub fn route(records: &[Record]) -> u32 {
    let mut n = 0;
    for rec in records {
        match rec.kind {
            0 => n += 1,
            _ => {}
        }
    }
    n
}
