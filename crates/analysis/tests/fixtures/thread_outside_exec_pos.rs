// Positive: raw threading and channel primitives outside idse-exec.
// Fires even inside the test module — scheduling-dependent tests encode
// nondeterminism as "expected" behavior.
// Linted as crate `idse-eval`, FileKind::Library.
use std::sync::mpsc;
use std::thread;

pub fn fan_out(items: Vec<u64>) -> Vec<u64> {
    let (tx, rx) = mpsc::channel();
    for item in items {
        let tx = tx.clone();
        thread::spawn(move || tx.send(item * 2));
    }
    drop(tx);
    rx.iter().collect() // completion order, not input order!
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_worker() {
        std::thread::scope(|s| {
            s.spawn(|| 1 + 1);
        });
    }
}
