// Negative: ordered containers in report code, and hash containers only
// inside test regions (scratch state whose order never reaches a report).
// Linted as crate `idse-eval`, FileKind::Library.
use std::collections::{BTreeMap, BTreeSet};

pub fn histogram(names: &[String]) -> BTreeMap<String, usize> {
    let mut h = BTreeMap::new();
    for n in names {
        *h.entry(n.clone()).or_insert(0) += 1;
    }
    h
}

pub fn flagged() -> BTreeSet<u32> {
    BTreeSet::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch_state_may_hash() {
        let mut seen: HashMap<u32, bool> = HashMap::new();
        seen.insert(1, true);
        assert!(seen[&1]);
    }
}
