//! Positive fixture for `seed-label-reuse`: one constant label at two
//! distinct construction sites — once as a string literal, once through a
//! shared `const` — so the two "independent" streams draw identical bits.

pub fn traffic_stream(master: u64) -> u64 {
    derive_seed(master, "stream")
}

pub fn attack_stream(master: u64) -> u64 {
    derive_seed(master, "stream")
}

const QUEUE_LABEL: &str = "queue";

pub fn ingress(master: u64) -> u64 {
    derive_seed(master, QUEUE_LABEL)
}

pub fn egress(master: u64) -> u64 {
    derive_seed(master, QUEUE_LABEL)
}
