// Positive: ambient entropy in non-test library code.
// Linted as crate `idse-traffic`, FileKind::Library.

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}

pub fn table() -> std::collections::hash_map::RandomState {
    Default::default()
}
