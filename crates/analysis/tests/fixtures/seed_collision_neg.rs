//! Negative twin for `seed-label-collision`: distinct labels with
//! distinct derivations — the ordinary case.

pub fn traffic_stream(master: u64) -> u64 {
    derive_seed(master, "traffic")
}

pub fn attack_stream(master: u64) -> u64 {
    derive_seed(master, "attacks")
}
