// Negative: recording and scheduling kept in separate statements on
// separate lines — observation stays observation-only.
// Linted as crate `idse-ids`, FileKind::Library.

pub fn alert_then_continue(tele: &mut Telemetry, queue: &mut EventQueue, ev: Event) {
    tele.counter("ids.alerts", 1);
    let verdict = classify(&ev);
    queue.schedule(next_event(verdict));
}
