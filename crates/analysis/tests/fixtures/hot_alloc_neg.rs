//! Negative fixture for `alloc-in-hot-loop`: the buffer is hoisted out of
//! the hot loop and reused; pre-sizing with `with_capacity` is the
//! blessed pattern. Test code is exempt.

pub fn label_records(records: &[Record]) -> u64 {
    let mut buf = Vec::with_capacity(64);
    let mut total = 0;
    for rec in records {
        buf.clear();
        buf.extend_from_slice(&rec.payload);
        total += buf.len() as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn alloc_in_test_loops_is_fine() {
        let records = vec![1u64, 2, 3];
        for rec in &records {
            let label = format!("rec-{rec}");
            assert!(!label.is_empty());
        }
    }
}
