//! Positive fixture for `quadratic-accumulation`: head insertion in a
//! loop, a `for` loop growing its own bound, and per-iteration slice
//! copies of the bound input (the vendored-serde_json bug class).

pub fn reverse_build(vals: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for v in vals {
        out.insert(0, *v);
    }
    out
}

pub fn echo_growth(items: &mut Vec<u64>) {
    for i in 0..items.len() {
        items.push(items[i]);
    }
}

pub fn prefix_copies(input: &str) -> String {
    let mut out = String::new();
    for i in 0..input.len() {
        out.push_str(&input[..i]);
    }
    out
}
