//! Negative twin for `materialized-feed-in-experiment`: the streaming
//! path (constant memory at any scale), plus an allowlisted deliberately
//! small materialized run.

fn main() {
    let request = EvaluationRequest::new().with_feed(FeedConfig::builder().build());
    let evals = request.evaluate_stream(&products(), 0.6);
    // idse-lint: allow(materialized-feed-in-experiment, reason = "canned 20-second demo feed: the sweep walkthrough needs the trace")
    let feed = request.build_feed();
    run(&evals, &feed);
}
