//! Positive fixture for `impure-store-record`: ambient inputs — the
//! `--stamp` CLI value and a telemetry summary — flowing into the
//! canonical-record path whose content the run-id hash covers.

pub fn commit_run(args: &Args, store: &RunStore) -> u64 {
    let stamp = args.opt("--stamp");
    let draft = RunDraft::new("evaluate", "hybrid", stamp);
    store.commit(draft)
}

pub fn record_metrics(events: &Telemetry, draft: &mut RunDraft) {
    let summary = events.summarize();
    draft.record("telemetry.events", summary);
}
