//! Positive fixture for `materialized-feed-in-experiment`: experiment
//! binaries building the whole test trace in memory — at scale this is
//! O(records), while the streaming path stays O(chunk).

fn main() {
    let request = EvaluationRequest::new().with_feed(FeedConfig::builder().build());
    let feed = request.build_feed();
    let direct = TestFeed::build(&SiteProfile::realtime_cluster(), &request.feed);
    run(&feed, &direct);
}
