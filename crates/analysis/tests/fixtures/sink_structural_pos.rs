// Positive, structural half: the telemetry crate referencing the
// simulator's scheduling machinery.
// Linted as crate `idse-telemetry`, FileKind::Library.
use idse_sim::event::EventQueue;

pub fn record_and_nudge(queue: &mut EventQueue) {
    queue.len();
}
