// Positive: wall-clock time in a simulation crate. Fires even inside the
// test module — timing assertions must also be in sim time.
// Linted as crate `idse-sim`, FileKind::Library.
use std::time::Instant;

pub fn measure() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_with_wall_clock() {
        let t = std::time::SystemTime::now();
        assert!(t.elapsed().is_ok());
    }
}
