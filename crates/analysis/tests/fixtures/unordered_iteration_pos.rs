// Positive: hash-ordered containers in a report-path library file.
// Linted as crate `idse-eval`, FileKind::Library.
use std::collections::HashMap;

pub fn histogram(names: &[String]) -> HashMap<String, usize> {
    let mut h = HashMap::new();
    for n in names {
        *h.entry(n.clone()).or_insert(0) += 1;
    }
    h
}

pub fn flagged() -> std::collections::HashSet<u32> {
    std::collections::HashSet::new()
}
