//! Positive fixture for `per-byte-dispatch`: a per-byte scan loop making
//! a branchy `match` decision for every input byte — the shape ROADMAP
//! item 2's table-driven DFA removes.

enum Class {
    Delim,
    Other,
}

fn classify(b: u8) -> Class {
    if b == b'/' || b == b' ' {
        Class::Delim
    } else {
        Class::Other
    }
}

pub fn scan(haystack: &[u8]) -> u32 {
    let mut hits = 0;
    for &b in haystack {
        match classify(b) {
            Class::Delim => hits += 1,
            Class::Other => {}
        }
    }
    hits
}
