// Negative: integer equality, tolerance comparison, range operators, and
// exact float compares inside tests (legitimate determinism assertions).
// Linted as crate `idse-eval`, FileKind::Library.

pub fn counts_match(a: usize, b: usize) -> bool {
    a == b
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9
}

pub fn in_band(x: f64) -> bool {
    x >= 0.25 && x <= 0.75
}

#[cfg(test)]
mod tests {
    use super::close;

    #[test]
    fn determinism_assertions_compare_exactly() {
        let run = 0.125_f64;
        assert!(run == 0.125);
        assert!(close(run, run));
    }
}
