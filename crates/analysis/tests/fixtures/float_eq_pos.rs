// Positive: exact equality against float operands in library code —
// a literal, and an `as f64` cast on the left-hand side.
// Linted as crate `idse-eval`, FileKind::Library.

pub fn is_zero(w: f64) -> bool {
    w == 0.0
}

pub fn drifted(n: usize, target: f64) -> bool {
    n as f64 != target
}
