// Negative: the sanctioned forms — Result returns, expect with an
// invariant message, unwrap_or defaults — and unwrap inside tests.
// Linted as crate `idse-sim` (Strict tier), FileKind::Library.

pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("caller guarantees a non-empty slice")
}

pub fn head_or_zero(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let xs = vec![1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
