//! Negative twin for `unordered-float-reduce`: the sanctioned patterns —
//! routing through `reduce_in_order` before accumulating, and integer
//! accumulation (associative, order-independent).

pub fn canonical_total(exec: &Executor, xs: &[f64]) -> f64 {
    let parts = exec.par_map(xs, |i, x| (i, x * 2.0));
    let ordered = reduce_in_order(parts, xs.len());
    let mut total = 0.0;
    for p in &ordered {
        total += *p;
    }
    total
}

pub fn integer_count(exec: &Executor, xs: &[u32]) -> u64 {
    let parts = exec.par_map(xs, |_, x| x + 1);
    let mut n = 0u64;
    for p in &parts {
        n += u64::from(*p);
    }
    n
}
