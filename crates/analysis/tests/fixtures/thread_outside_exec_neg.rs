// Negative: parallelism routed through the executor; thread tokens appear
// only inside a string literal, which the masked code channel hides.
// Linted as crate `idse-eval`, FileKind::Library.

pub fn fan_out(exec: &idse_exec::Executor, items: &[u64]) -> Vec<u64> {
    exec.par_map(items, |_, item| item * 2)
}

pub fn label() -> &'static str {
    "raw thread::spawn and mpsc::channel calls are banned here"
}
