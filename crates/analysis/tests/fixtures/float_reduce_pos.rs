//! Positive fixture for `unordered-float-reduce`: float accumulation over
//! `par_map` output without `reduce_in_order` — the total depends on
//! worker scheduling because float addition is not associative.

pub fn loop_accumulate(exec: &Executor, xs: &[f64]) -> f64 {
    let parts = exec.par_map(xs, |_, x| x * 2.0);
    let mut total = 0.0;
    for p in &parts {
        total += *p;
    }
    total
}

pub fn iterator_sum(exec: &Executor, xs: &[f64]) -> Result<f64, Error> {
    let parts = exec.try_par_map(xs, |_, x| Ok(x * 2.0))?;
    Ok(parts.iter().sum::<f64>())
}

pub fn fold_accumulate(exec: &Executor, xs: &[f64]) -> f64 {
    let parts = exec.par_map(xs, |_, x| x * 2.0);
    parts.iter().fold(0.0, |acc, x| acc + x)
}
