//! Negative twin for `literal-seed`: every stream seed is derived from
//! the master seed with a unique label, directly or through a binding.

pub fn streams(master: u64) -> u64 {
    let seed = derive_seed(master, "traffic");
    let rng = StdRng::seed_from_u64(seed);
    let other = StdRng::seed_from_u64(derive_seed(master, "attacks"));
    rng.next() + other.next()
}

fn scenario_seed(master: u64) -> u64 {
    derive_seed(master, "scenario")
}

pub fn via_helper(master: u64) -> u64 {
    let rng = StdRng::seed_from_u64(scenario_seed(master));
    rng.next()
}

#[cfg(test)]
mod tests {
    // Literal seeds are fine in test code: determinism of the product is
    // the invariant, not of ad-hoc test vectors.
    #[test]
    fn fixed_vector() {
        let rng = StdRng::seed_from_u64(12345);
        assert!(rng.next() > 0);
    }
}
