// A valid allow directive: known rule, non-empty reason, trailing the
// offending line. The finding is suppressed and the reason recorded.
// Linted as crate `idse-eval`, FileKind::Library.
use std::collections::HashMap; // idse-lint: allow(unordered-iteration-in-report, reason = "membership checks only; iteration order never reaches a report")

pub fn seen() -> HashMap<u32, bool> // idse-lint: allow(unordered-iteration-in-report, reason = "membership checks only; iteration order never reaches a report")
{
    HashMap::new() // idse-lint: allow(unordered-iteration-in-report, reason = "membership checks only; iteration order never reaches a report")
}
