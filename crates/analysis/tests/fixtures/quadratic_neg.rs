//! Negative fixture for `quadratic-accumulation`: linear fill-until-target
//! loops, tail pushes into a different container, and one-shot bulk
//! extends are all linear.

pub fn fill(target: usize) -> Vec<u64> {
    let mut chunk = Vec::with_capacity(target);
    while chunk.len() < target {
        chunk.push(chunk.len() as u64);
    }
    chunk
}

pub fn tail_copy(vals: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(vals.len());
    for v in vals {
        out.push(*v);
    }
    out
}

pub fn single_suffix(input: &str) -> String {
    let mut out = String::new();
    out.push_str(&input[1..]);
    out
}
