// A well-formed allow directive that suppresses nothing: flagged as
// unused-allow so stale suppressions get deleted when the code they
// excused is fixed. Linted as crate `idse-sim`, FileKind::Library.

// idse-lint: allow(wall-clock-in-sim, reason = "left over from a deleted benchmark")
pub fn advance(now_nanos: u64) -> u64 {
    now_nanos + 1
}
