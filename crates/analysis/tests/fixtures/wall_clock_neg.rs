// Negative: sim-time arithmetic only; `Instant` appears solely inside a
// string literal, which the masked code channel hides.
// Linted as crate `idse-sim`, FileKind::Library.

pub fn advance(now_nanos: u64, step_nanos: u64) -> u64 {
    now_nanos + step_nanos
}

pub fn label() -> &'static str {
    "wall-clock types like Instant are banned here"
}
