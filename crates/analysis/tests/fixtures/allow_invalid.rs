// Invalid allow directives: one missing its reason, one naming an
// unknown rule. Both are errors, and neither suppresses the underlying
// finding. Linted as crate `idse-eval`, FileKind::Library.

// idse-lint: allow(unordered-iteration-in-report)
use std::collections::HashMap;

// idse-lint: allow(no-such-rule, reason = "misremembered the rule name")
pub fn seen() -> HashMap<u32, bool> {
    HashMap::new()
}
