//! Positive fixture for `seed-label-collision`: two distinct labels whose
//! FNV-1a hashes (and therefore derive_seed values, SplitMix64 being a
//! bijection) collide — the streams are identical for every master seed.
//! The pair was found by birthday search over FNV-1a-64.

pub fn traffic_stream(master: u64) -> u64 {
    derive_seed(master, "L39218a36c129be09")
}

pub fn attack_stream(master: u64) -> u64 {
    derive_seed(master, "Lb29619b0f43f11e9")
}
