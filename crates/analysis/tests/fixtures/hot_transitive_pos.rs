//! Transitive-hotness fixture: the allocation sits two calls away from
//! the hot loop, and the finding's witness chain walks hot-root ->
//! call chain -> allocation site.

pub fn drive(events: &[Event]) -> u64 {
    let mut acc = 0;
    for ev in events {
        acc += admit(ev);
    }
    acc
}

fn admit(ev: &Event) -> u64 {
    stamp(ev)
}

fn stamp(ev: &Event) -> u64 {
    let label = ev.name.to_string();
    label.len() as u64
}
