//! Positive fixture for `collect-in-hot-path`: materializing an
//! intermediate `Vec` for every streamed flow.

pub fn batch(flows: &[Flow]) -> usize {
    let mut n = 0;
    for flow in flows {
        let owned: Vec<u16> = flow.ports.iter().copied().collect();
        n += owned.len();
    }
    n
}

pub fn widen(chunks: &[Chunk]) -> usize {
    let mut n = 0;
    for chunk in chunks {
        n += chunk.rows.iter().collect::<Vec<_>>().len();
    }
    n
}
