// Positive, call-site half: a telemetry record call sharing a statement
// with event scheduling.
// Linted as crate `idse-ids`, FileKind::Library.

pub fn alert_and_reschedule(tele: &mut Telemetry, queue: &mut EventQueue, ev: Event) {
    tele.counter("ids.alerts", 1); queue.schedule(ev);
}
