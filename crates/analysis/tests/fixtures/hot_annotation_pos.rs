//! Annotation fixture: the loop header names no streamed unit, so only
//! the explicit `// idse-lint: hot` directive makes it a hot root.

pub fn pump(work: &[Job]) -> u64 {
    let mut acc = 0;
    // idse-lint: hot
    for job in work {
        let copy = job.data.to_vec();
        acc += copy.len() as u64;
    }
    acc
}

pub fn pump_cold(work: &[Job]) -> u64 {
    let mut acc = 0;
    for job in work {
        let copy = job.data.to_vec();
        acc += copy.len() as u64;
    }
    acc
}
