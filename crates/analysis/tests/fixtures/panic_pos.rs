// Positive: panicking calls in non-test library code.
// Linted as crate `idse-sim` (Strict tier), FileKind::Library.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn unreachable_branch(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => panic!("unhandled"),
    }
}

pub fn later() -> u32 {
    todo!()
}
