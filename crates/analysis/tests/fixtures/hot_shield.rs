//! Shield fixture: one allow directive at the hot-root loop header
//! shields every downstream perf finding that root reaches — the same
//! composition the taint rules offer at a hazard source.

pub fn pump(work: &[Job]) -> u64 {
    let mut acc = 0;
    // idse-lint: hot
    for job in work { // idse-lint: allow(alloc-in-hot-loop, reason = "audited: jobs are tiny and the arena amortizes the copies")
        acc += expand(job);
    }
    acc
}

fn expand(job: &Job) -> u64 {
    let copy = job.data.to_vec();
    copy.len() as u64
}
