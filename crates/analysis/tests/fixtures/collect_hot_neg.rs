//! Negative fixture for `collect-in-hot-path`: lazy iteration inside the
//! hot loop, and a one-shot collect outside any hot context.

pub fn batch(flows: &[Flow]) -> usize {
    let mut n = 0;
    for flow in flows {
        n += flow.ports.iter().filter(|p| **p > 1024).count();
    }
    n
}

pub fn ids_once(all: &[Flow]) -> Vec<u32> {
    let ids: Vec<u32> = all.iter().map(|f| f.id).collect();
    ids
}
