//! Positive fixture for `literal-seed`: RNG streams constructed straight
//! from integer literals — directly, through a local binding, and through
//! a helper function — instead of a derive_seed(master, label) derivation.

pub fn direct() -> u64 {
    let rng = StdRng::seed_from_u64(42);
    rng.next()
}

pub fn via_let() -> u64 {
    let seed = 0xdead_beef;
    let rng = StdRng::seed_from_u64(seed);
    rng.next()
}

fn default_seed() -> u64 {
    7
}

pub fn via_fn() -> u64 {
    let rng = StdRng::seed_from_u64(default_seed());
    rng.next()
}
