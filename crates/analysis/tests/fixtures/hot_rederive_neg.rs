//! Negative fixture for `hot-loop-rederive`: the stream is derived once
//! per chunk and reused across records, and a `fn derive_seed` header is
//! a definition, not a call site.

pub fn derive_seed(seed: u64, label: &str, i: u64) -> u64 {
    seed ^ (label.len() as u64) ^ i
}

pub fn emit(events: &[Event], chunk_seed: u64) -> u64 {
    let stream = RngStream::derive(chunk_seed, "emit");
    let mut acc = 0;
    for ev in events {
        acc += stream.mix(ev.id);
    }
    acc
}
