use idse_ids::bucket_count;

pub fn summarize() -> usize {
    bucket_count()
}
