pub fn bucket_count() -> usize {
    // idse-lint: allow(transitive-unordered-iteration-in-report, reason = "size query only, order never observed")
    let buckets: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    buckets.len()
}
