pub fn step() -> u64 {
    now_ms()
}

fn now_ms() -> u64 {
    raw_clock()
}

fn raw_clock() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
