pub fn wrap() -> u64 {
    inner()
}

fn inner() -> u64 {
    static TICKS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    TICKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}
