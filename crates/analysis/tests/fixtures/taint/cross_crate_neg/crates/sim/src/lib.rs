pub fn step() -> u64 {
    idse_timeutil::wrap()
}
