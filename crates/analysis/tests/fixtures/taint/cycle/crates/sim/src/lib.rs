pub fn ping(n: u64) -> u64 {
    if n == 0 {
        idse_timeutil::clock()
    } else {
        pong(n - 1)
    }
}

pub fn pong(n: u64) -> u64 {
    ping(n)
}
