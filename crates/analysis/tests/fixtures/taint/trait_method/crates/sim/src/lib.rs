use idse_timeutil::SysClock;

pub fn advance(c: &SysClock) -> u64 {
    c.tick_wallclock()
}
