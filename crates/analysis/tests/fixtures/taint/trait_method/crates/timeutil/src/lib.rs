pub trait WallClock {
    fn tick_wallclock(&self) -> u64;
}

pub struct SysClock;

impl WallClock for SysClock {
    fn tick_wallclock(&self) -> u64 {
        let t = std::time::Instant::now();
        t.elapsed().as_millis() as u64
    }
}
