pub fn step() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
