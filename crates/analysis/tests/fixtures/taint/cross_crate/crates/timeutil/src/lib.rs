pub fn wrap() -> u64 {
    inner()
}

fn inner() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
