//! Negative twin for `seed-label-reuse`: every construction site has its
//! own label, and test code may reuse labels freely.

pub fn traffic_stream(master: u64) -> u64 {
    derive_seed(master, "traffic")
}

pub fn attack_stream(master: u64) -> u64 {
    derive_seed(master, "attacks")
}

const QUEUE_LABEL: &str = "queue";

pub fn ingress(master: u64) -> u64 {
    derive_seed(master, QUEUE_LABEL)
}

#[cfg(test)]
mod tests {
    #[test]
    fn reuse_in_tests_is_legal() {
        let a = derive_seed(0, "traffic");
        let b = derive_seed(0, "traffic");
        assert_eq!(a, b);
    }
}
