//! Positive fixture for `alloc-in-hot-loop`: per-record heap allocation
//! inside a heuristically hot loop (the header names the streamed unit).

pub fn label_records(records: &[Record]) -> u64 {
    let mut total = 0;
    for rec in records {
        let label = format!("rec-{}", rec.id);
        total += label.len() as u64;
    }
    total
}

pub fn copy_packets(packets: &[Packet]) -> usize {
    let mut n = 0;
    for packet in packets {
        let owned = packet.payload.to_vec();
        n += owned.len();
    }
    n
}
