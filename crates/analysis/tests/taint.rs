//! End-to-end tests for phase 2: each fixture under `tests/fixtures/taint/`
//! is a miniature on-disk workspace (crates with manifests), loaded through
//! the production [`idse_lint::load_workspace`] so `use` resolution, crate
//! naming, and the dependency-direction filter are all exercised exactly as
//! in a real run. Alongside the corpus: the `--jobs` byte-identity
//! guarantee, checked on the fixtures, on this repository's own workspace,
//! and property-tested across worker counts; and the `--fix` apply path in
//! a scratch workspace.

use idse_exec::Executor;
use idse_lint::rules::FileKind;
use idse_lint::{analyze, analyze_full, load_workspace, render_text, DirectiveState, Report};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn fixture_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/taint").join(case)
}

fn lint_case(case: &str) -> Report {
    let ws = load_workspace(&fixture_root(case))
        .unwrap_or_else(|e| panic!("fixture workspace {case} must load: {e}"));
    analyze(&ws, &Executor::serial())
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn direct_hazard_reports_once_with_no_transitive_echo() {
    let r = lint_case("direct");
    assert_eq!(rules_of(&r), vec!["wall-clock-in-sim"]);
}

#[test]
fn in_crate_chain_defers_to_the_direct_finding() {
    // step -> now_ms -> raw_clock, all in idse-sim: the direct finding at
    // raw_clock is the root-cause report and the chain stays silent.
    let r = lint_case("two_hop");
    assert_eq!(rules_of(&r), vec!["wall-clock-in-sim"]);
    assert!(r.findings[0].excerpt.contains("Instant"), "{:?}", r.findings);
}

#[test]
fn cross_crate_laundering_is_caught_with_the_full_chain() {
    // The clock lives in a tooling crate where the direct rule is silent;
    // the sim crate reaches it through two intermediates and must error
    // with the whole witness chain.
    let r = lint_case("cross_crate");
    assert_eq!(rules_of(&r), vec!["transitive-wall-clock-in-sim"], "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.severity, "error");
    assert_eq!(f.file, "crates/sim/src/lib.rs");
    assert_eq!(f.line, 2, "reported at step's call site");
    assert_eq!(
        f.chain,
        vec![
            "idse-sim::step",
            "idse-timeutil::wrap",
            "idse-timeutil::inner",
            "std::time::Instant::now"
        ]
    );
    assert!(f.message.contains("through 2 calls"), "{}", f.message);
}

#[test]
fn the_negative_twin_stays_clean() {
    // Same call shape, deterministic counter at the bottom: no findings.
    let r = lint_case("cross_crate_neg");
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
    assert!(r.suppressed.is_empty());
}

#[test]
fn allow_at_the_source_shields_the_report_crate() {
    let root = fixture_root("allow_at_source");
    let ws = load_workspace(&root).expect("fixture workspace loads");
    let a = analyze_full(&ws, &Executor::serial());
    assert!(a.report.findings.is_empty(), "{:?}", a.report.findings);
    assert_eq!(a.report.suppressed.len(), 1, "{:?}", a.report.suppressed);
    let s = &a.report.suppressed[0];
    assert_eq!(s.finding.file, "crates/ids/src/lib.rs", "suppression sits at the source");
    assert!(s.finding.message.contains("shields 1 in-scope function"), "{}", s.finding.message);
    assert_eq!(s.reason, "size query only, order never observed");
    assert!(a.directives.iter().all(|d| d.state == DirectiveState::Used), "{:?}", a.directives);
}

#[test]
fn recursive_cycle_terminates_and_reports_the_frontier_only() {
    // ping <-> pong recurse; ping also reaches the tooling-crate clock.
    // Propagation must terminate and exactly one function reports.
    let r = lint_case("cycle");
    assert_eq!(rules_of(&r), vec!["transitive-wall-clock-in-sim"], "{:?}", r.findings);
    let f = &r.findings[0];
    assert!(f.chain.iter().any(|s| s == "idse-timeutil::clock"), "{:?}", f.chain);
    assert!(f.message.contains("`ping`"), "{}", f.message);
}

#[test]
fn taint_flows_through_trait_method_calls() {
    let r = lint_case("trait_method");
    assert_eq!(rules_of(&r), vec!["transitive-wall-clock-in-sim"], "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.file, "crates/sim/src/lib.rs");
    assert!(f.chain.iter().any(|s| s.contains("SysClock::tick_wallclock")), "{:?}", f.chain);
}

/// All three output formats for a workspace under a given executor.
fn outputs(root: &Path, exec: &Executor) -> (String, String, String) {
    let ws = load_workspace(root).expect("workspace loads");
    let report = analyze(&ws, exec);
    let text = render_text(&report);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let sarif = idse_lint::sarif::to_sarif(&report);
    (text, json, sarif)
}

#[test]
fn parallel_scan_is_byte_identical_on_fixtures() {
    for case in [
        "direct",
        "two_hop",
        "cross_crate",
        "cross_crate_neg",
        "allow_at_source",
        "cycle",
        "trait_method",
    ] {
        let root = fixture_root(case);
        let serial = outputs(&root, &Executor::serial());
        for jobs in [1, 4, 0] {
            assert_eq!(serial, outputs(&root, &Executor::new(jobs)), "case {case}, jobs {jobs}");
        }
    }
}

#[test]
fn parallel_scan_is_byte_identical_on_the_live_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root exists")
        .to_path_buf();
    let serial = outputs(&root, &Executor::serial());
    for jobs in [1, 4, 0] {
        let parallel = outputs(&root, &Executor::new(jobs));
        assert_eq!(serial.0, parallel.0, "text differs at jobs {jobs}");
        assert_eq!(serial.1, parallel.1, "json differs at jobs {jobs}");
        assert_eq!(serial.2, parallel.2, "sarif differs at jobs {jobs}");
    }
}

proptest! {
    /// Any worker count produces the same bytes as serial, for every
    /// output format.
    #[test]
    fn any_worker_count_matches_serial(jobs in 1usize..=16) {
        let root = fixture_root("cross_crate");
        let serial = outputs(&root, &Executor::serial());
        prop_assert_eq!(serial, outputs(&root, &Executor::new(jobs)));
    }
}

// --- `--fix` apply path, in a scratch workspace under the target dir ---

fn write_scratch_workspace(dir: &Path, lib_rs: &str) {
    let src = dir.join("crates/sim/src");
    std::fs::create_dir_all(&src).expect("scratch dirs create");
    std::fs::write(
        dir.join("crates/sim/Cargo.toml"),
        "[package]\nname = \"idse-sim\"\n\n[dependencies]\n",
    )
    .expect("scratch manifest writes");
    std::fs::write(src.join("lib.rs"), lib_rs).expect("scratch lib writes");
}

#[test]
fn fix_write_cleans_directives_and_is_idempotent() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-fix-apply");
    let _ = std::fs::remove_dir_all(&dir);
    write_scratch_workspace(
        &dir,
        "// idse-lint: allow(wall-clock-in-sim, reason: boot only)\n\
         pub fn f() -> u64 { std::time::Instant::now().elapsed().as_millis() as u64 }\n\
         \n\
         // idse-lint: allow(unseeded-entropy, reason = \"stale\")\n\
         pub fn g() -> u64 { 7 }\n",
    );

    let ws = load_workspace(&dir).expect("scratch workspace loads");
    let a = analyze_full(&ws, &Executor::serial());
    // Before: the malformed allow is an error and suppresses nothing, so
    // the wall clock fires too; the stale allow is unused.
    assert!(a.report.findings.iter().any(|f| f.rule == "invalid-allow"));
    assert!(a.report.findings.iter().any(|f| f.rule == "wall-clock-in-sim"));
    assert!(a.report.findings.iter().any(|f| f.rule == "unused-allow"));

    let plan = idse_lint::fix::plan(&ws, &a);
    assert_eq!(plan.edits.len(), 2, "{}", plan.render());
    let applied = idse_lint::fix::apply(&plan, &dir).expect("fixes apply");
    assert_eq!(applied, 2);

    let fixed = std::fs::read_to_string(dir.join("crates/sim/src/lib.rs")).expect("lib reads");
    assert!(
        fixed.starts_with("// idse-lint: allow(wall-clock-in-sim, reason = \"boot only\")\n"),
        "{fixed}"
    );
    assert!(!fixed.contains("unseeded-entropy"), "{fixed}");

    // After: the normalized allow suppresses the clock, nothing is left to
    // fix, and a second plan is empty (idempotence).
    let ws2 = load_workspace(&dir).expect("scratch workspace reloads");
    let a2 = analyze_full(&ws2, &Executor::serial());
    assert!(a2.report.findings.is_empty(), "{:?}", a2.report.findings);
    assert_eq!(a2.report.suppressed.len(), 1);
    assert!(idse_lint::fix::plan(&ws2, &a2).is_empty());
}

#[test]
fn fixture_kinds_classify_as_library_code() {
    // The corpus must exercise library scope, not test scope — guard the
    // loader against fixture paths being misclassified.
    let ws = load_workspace(&fixture_root("direct")).expect("fixture workspace loads");
    assert!(ws.files.iter().all(|f| f.kind == FileKind::Library), "{:?}", ws.files);
}
