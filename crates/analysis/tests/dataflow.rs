//! End-to-end tests for phase 3, the value-dataflow rules: one positive
//! and one negative fixture per rule, witness chains, tier policy,
//! allow + shield composition, SARIF coverage — and the incremental
//! phase-1 cache: cold vs warm runs must emit byte-identical text, JSON,
//! and SARIF at any worker count, including after touching one file.

use idse_exec::Executor;
use idse_lint::cache::Cache;
use idse_lint::rules::FileKind;
use idse_lint::{
    analyze_full_with_cache, analyze_source, load_workspace, render_text, Report, Workspace,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn lint_fixture(name: &str, crate_name: &str, kind: FileKind) -> Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} must be readable: {e}"));
    analyze_source(name, crate_name, kind, &text)
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule.as_str()).collect()
}

// --- literal-seed ---

#[test]
fn literal_seed_positive() {
    let r = lint_fixture("seed_literal_pos.rs", "idse-sim", FileKind::Library);
    assert!(r.has_errors());
    assert_eq!(rules_of(&r), vec!["literal-seed"; 3], "{:?}", rules_of(&r));
    // Direct literal: owner and sink token in the chain.
    let direct = &r.findings[0];
    assert_eq!(direct.chain, vec!["idse-sim::seed_literal_pos::direct", "seed_from_u64(42)"]);
    // Through a local binding: the let step is the witness.
    let via_let = &r.findings[1];
    assert!(via_let.chain.iter().any(|s| s == "let seed = 0xdead_beef"), "{:?}", via_let.chain);
    // Through a helper function: the helper's literal body is the witness.
    let via_fn = &r.findings[2];
    assert!(
        via_fn.chain.iter().any(|s| s == "idse-sim::seed_literal_pos::default_seed -> 7"),
        "{:?}",
        via_fn.chain
    );
}

#[test]
fn literal_seed_negative() {
    let r = lint_fixture("seed_literal_neg.rs", "idse-sim", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn literal_seed_tier_policy() {
    // Standard-tier crates warn; tooling crates are out of scope.
    let r = lint_fixture("seed_literal_pos.rs", "idse-eval", FileKind::Library);
    assert!(!r.findings.is_empty());
    assert!(r.findings.iter().all(|f| f.severity == "warning"), "{:?}", r.findings);
    let r = lint_fixture("seed_literal_pos.rs", "idse-bench", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

// --- seed-label-reuse ---

#[test]
fn seed_label_reuse_positive() {
    let r = lint_fixture("seed_reuse_pos.rs", "idse-sim", FileKind::Library);
    assert!(r.has_errors());
    assert_eq!(rules_of(&r), vec!["seed-label-reuse"; 2], "{:?}", rules_of(&r));
    // Literal labels: the second site reports, naming the first.
    let lit = &r.findings[0];
    assert!(lit.message.contains("\"stream\""), "{}", lit.message);
    assert!(lit.message.contains("seed_reuse_pos.rs:6"), "{}", lit.message);
    assert_eq!(
        lit.chain,
        vec![
            "idse-sim::seed_reuse_pos::traffic_stream",
            "idse-sim::seed_reuse_pos::attack_stream",
            "label \"stream\""
        ]
    );
    // Const-resolved labels are caught the same way.
    let konst = &r.findings[1];
    assert!(konst.message.contains("\"queue\""), "{}", konst.message);
    assert_eq!(konst.chain[1], "idse-sim::seed_reuse_pos::egress");
}

#[test]
fn seed_label_reuse_negative() {
    let r = lint_fixture("seed_reuse_neg.rs", "idse-sim", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn seed_label_reuse_allow_at_first_site_shields_every_later_site() {
    let src =
        "// idse-lint: allow(seed-label-reuse, reason = \"twin streams, A/B determinism check\")\n\
               pub fn a(m: u64) -> u64 { derive_seed(m, \"s\") }\n\
               pub fn b(m: u64) -> u64 { derive_seed(m, \"s\") }\n\
               pub fn c(m: u64) -> u64 { derive_seed(m, \"s\") }\n";
    let r = analyze_source("x.rs", "idse-sim", FileKind::Library, src);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
    assert_eq!(r.suppressed.len(), 2, "{:?}", r.suppressed);
    assert!(r.suppressed.iter().all(|s| s.reason.contains("twin streams")));
}

#[test]
fn seed_label_reuse_allow_at_finding_line() {
    let src = "pub fn a(m: u64) -> u64 { derive_seed(m, \"s\") }\n\
               // idse-lint: allow(seed-label-reuse, reason = \"mirror stream on purpose\")\n\
               pub fn b(m: u64) -> u64 { derive_seed(m, \"s\") }\n";
    let r = analyze_source("x.rs", "idse-sim", FileKind::Library, src);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
    assert_eq!(r.suppressed.len(), 1);
}

// --- seed-label-collision ---

#[test]
fn seed_label_collision_positive() {
    let r = lint_fixture("seed_collision_pos.rs", "idse-sim", FileKind::Library);
    assert!(r.has_errors());
    assert_eq!(rules_of(&r), vec!["seed-label-collision"; 2], "{:?}", rules_of(&r));
    for f in &r.findings {
        assert_eq!(f.severity, "error");
        assert!(f.message.contains("L39218a36c129be09"), "{}", f.message);
        assert!(f.message.contains("Lb29619b0f43f11e9"), "{}", f.message);
        // The witness is the evaluated derivation, not a heuristic.
        assert!(
            f.chain.last().expect("chain is non-empty").starts_with("derive_seed -> 0x"),
            "{:?}",
            f.chain
        );
    }
}

#[test]
fn seed_label_collision_negative() {
    let r = lint_fixture("seed_collision_neg.rs", "idse-sim", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn seed_label_collision_fires_in_any_tier() {
    // Unlike reuse, a collision is an error even in tooling crates: the
    // derivation is broken wherever it runs.
    let r = lint_fixture("seed_collision_pos.rs", "idse-bench", FileKind::Library);
    assert!(r.has_errors(), "{:?}", rules_of(&r));
}

// --- unordered-float-reduce ---

#[test]
fn unordered_float_reduce_positive() {
    let r = lint_fixture("float_reduce_pos.rs", "idse-eval", FileKind::Library);
    assert!(r.has_errors());
    assert_eq!(rules_of(&r), vec!["unordered-float-reduce"; 3], "{:?}", rules_of(&r));
    // The loop accumulation carries the binding provenance in its chain.
    let looped = &r.findings[0];
    assert_eq!(looped.chain[0], "idse-eval::float_reduce_pos::loop_accumulate");
    assert!(looped.chain[1].starts_with("par_map output `parts`"), "{:?}", looped.chain);
    assert!(looped.excerpt.contains("+="), "{}", looped.excerpt);
    // Iterator sum and fold are both caught.
    assert!(r.findings.iter().any(|f| f.excerpt.contains("sum::<f64>")));
    assert!(r.findings.iter().any(|f| f.excerpt.contains(".fold(0.0")));
}

#[test]
fn unordered_float_reduce_negative() {
    let r = lint_fixture("float_reduce_neg.rs", "idse-eval", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn unordered_float_reduce_is_legal_inside_the_executor_crate() {
    // idse-exec owns the canonical-order merge; its internals are exempt.
    let r = lint_fixture("float_reduce_pos.rs", "idse-exec", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn unordered_float_reduce_shield_at_the_binding() {
    let src = "pub fn t(exec: &Executor, xs: &[f64]) -> f64 {\n\
               \x20   // idse-lint: allow(unordered-float-reduce, reason = \"abs-tolerance comparison downstream\")\n\
               \x20   let parts = exec.par_map(xs, |_, x| x * 2.0);\n\
               \x20   let a = parts.iter().sum::<f64>();\n\
               \x20   let b = parts.iter().fold(0.0, |acc, x| acc + x);\n\
               \x20   a + b\n\
               }\n";
    let r = analyze_source("x.rs", "idse-eval", FileKind::Library, src);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
    assert_eq!(r.suppressed.len(), 2, "one allow at the binding shields both reductions");
}

// --- impure-store-record ---

#[test]
fn impure_store_record_positive() {
    let r = lint_fixture("store_record_pos.rs", "idse-store", FileKind::Library);
    assert!(r.has_errors());
    assert_eq!(rules_of(&r), vec!["impure-store-record"; 2], "{:?}", rules_of(&r));
    let stamp = &r.findings[0];
    assert!(stamp.message.contains("--stamp"), "{}", stamp.message);
    assert_eq!(stamp.chain[0], "idse-store::store_record_pos::commit_run");
    assert!(stamp.chain[1].starts_with("--stamp CLI value `stamp`"), "{:?}", stamp.chain);
    assert_eq!(stamp.chain[2], "RunDraft::new(..)");
    let telemetry = &r.findings[1];
    assert!(telemetry.chain[1].starts_with("telemetry summary `summary`"), "{:?}", telemetry.chain);
    assert_eq!(telemetry.chain[2], "record(..)");
}

#[test]
fn impure_store_record_negative() {
    // Identical sources routed through with_stamp/with_telemetry — the
    // hash-excluded annotation channels — are sanctioned.
    let r = lint_fixture("store_record_neg.rs", "idse-store", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn impure_store_record_catches_wall_clock_values_in_any_tier() {
    let src = "pub fn ship(store: &RunStore) -> u64 {\n\
               \x20   let when = SystemTime::now();\n\
               \x20   let draft = RunDraft::new(\"exp\", \"m\", when);\n\
               \x20   store.commit(draft)\n\
               }\n";
    let r = analyze_source("x.rs", "idse-bench", FileKind::Library, src);
    assert_eq!(rules_of(&r), vec!["impure-store-record"], "{:?}", rules_of(&r));
    assert!(r.findings[0].chain[1].starts_with("wall-clock value `when`"));
}

// --- SARIF carries the new rules ---

#[test]
fn sarif_lists_the_dataflow_rules_and_their_findings() {
    let r = lint_fixture("seed_collision_pos.rs", "idse-sim", FileKind::Library);
    let sarif = idse_lint::sarif::to_sarif(&r);
    for rule in [
        "literal-seed",
        "seed-label-reuse",
        "seed-label-collision",
        "unordered-float-reduce",
        "impure-store-record",
    ] {
        assert!(sarif.contains(&format!("\"{rule}\"")), "rules table misses {rule}");
    }
    assert!(sarif.contains("derive_seed"), "finding message survives into SARIF");
}

// --- incremental cache: byte identity and invalidation ---

/// A scratch workspace with enough surface to exercise line rules, taint,
/// and every dataflow rule at once.
fn write_cache_workspace(dir: &Path) {
    let sim = dir.join("crates/sim/src");
    let eval = dir.join("crates/eval/src");
    std::fs::create_dir_all(&sim).expect("scratch dirs create");
    std::fs::create_dir_all(&eval).expect("scratch dirs create");
    std::fs::write(
        dir.join("crates/sim/Cargo.toml"),
        "[package]\nname = \"idse-sim\"\n\n[dependencies]\n",
    )
    .expect("manifest writes");
    std::fs::write(
        dir.join("crates/eval/Cargo.toml"),
        "[package]\nname = \"idse-eval\"\n\n[dependencies]\nidse-sim = { path = \"../sim\" }\n",
    )
    .expect("manifest writes");
    std::fs::write(
        sim.join("lib.rs"),
        "pub fn a(m: u64) -> u64 { derive_seed(m, \"stream\") }\n\
         pub fn b(m: u64) -> u64 { derive_seed(m, \"stream\") }\n\
         pub fn c() -> u64 { StdRng::seed_from_u64(9) }\n",
    )
    .expect("lib writes");
    std::fs::write(
        eval.join("lib.rs"),
        "pub fn t(exec: &Executor, xs: &[f64]) -> f64 {\n\
         \x20   let parts = exec.par_map(xs, |_, x| x * 2.0);\n\
         \x20   parts.iter().sum::<f64>()\n\
         }\n",
    )
    .expect("lib writes");
}

/// All three output formats plus cache stats for one run.
fn cached_outputs(
    root: &Path,
    exec: &Executor,
    cache: Option<&Cache>,
) -> (String, String, String, usize, usize) {
    let ws = load_workspace(root).expect("workspace loads");
    let (analysis, stats) = analyze_full_with_cache(&ws, exec, cache);
    let report = analysis.report;
    let text = render_text(&report);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let sarif = idse_lint::sarif::to_sarif(&report);
    (text, json, sarif, stats.hits, stats.misses)
}

#[test]
fn warm_cache_is_byte_identical_and_invalidates_per_file() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-cache-identity");
    let _ = std::fs::remove_dir_all(&dir);
    write_cache_workspace(&dir);
    let cache_dir = dir.join("cache");
    let cache = Cache::open(&cache_dir).expect("cache opens");

    // Cold: everything misses and the findings match an uncached run.
    let uncached = cached_outputs(&dir, &Executor::serial(), None);
    let cold = cached_outputs(&dir, &Executor::serial(), Some(&cache));
    assert_eq!(cold.4, 2, "two files analyzed cold");
    assert_eq!((&cold.0, &cold.1, &cold.2), (&uncached.0, &uncached.1, &uncached.2));
    assert!(cold.0.contains("seed-label-reuse"), "{}", cold.0);
    assert!(cold.0.contains("literal-seed"), "{}", cold.0);
    assert!(cold.0.contains("unordered-float-reduce"), "{}", cold.0);

    // Warm: everything hits, bytes identical, at any worker count.
    for exec in [Executor::serial(), Executor::new(1), Executor::new(4)] {
        let warm = cached_outputs(&dir, &exec, Some(&cache));
        assert_eq!((warm.3, warm.4), (2, 0), "warm run hits every file");
        assert_eq!((&warm.0, &warm.1, &warm.2), (&cold.0, &cold.1, &cold.2));
    }

    // Touch one file: exactly that file misses, and the output tracks the
    // edit — stale entries must not leak old findings.
    std::fs::write(
        dir.join("crates/eval/src/lib.rs"),
        "pub fn t(exec: &Executor, xs: &[f64]) -> f64 {\n\
         \x20   let parts = exec.par_map(xs, |i, x| (i, x * 2.0));\n\
         \x20   let ordered = reduce_in_order(parts, xs.len());\n\
         \x20   ordered.iter().fold(0.0, |acc, x| acc + x)\n\
         }\n",
    )
    .expect("edit writes");
    let touched = cached_outputs(&dir, &Executor::new(4), Some(&cache));
    assert_eq!((touched.3, touched.4), (1, 1), "one hit, one miss after the edit");
    let fresh = cached_outputs(&dir, &Executor::serial(), None);
    assert_eq!((&touched.0, &touched.1, &touched.2), (&fresh.0, &fresh.1, &fresh.2));
    assert!(!touched.0.contains("unordered-float-reduce"), "fixed file is clean: {}", touched.0);
    assert!(touched.0.contains("seed-label-reuse"), "untouched findings survive: {}", touched.0);
}

#[test]
fn corrupt_cache_entries_are_treated_as_misses() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-cache-corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    write_cache_workspace(&dir);
    let cache_dir = dir.join("cache");
    let cache = Cache::open(&cache_dir).expect("cache opens");
    let cold = cached_outputs(&dir, &Executor::serial(), Some(&cache));
    for entry in std::fs::read_dir(&cache_dir).expect("cache dir lists") {
        std::fs::write(entry.expect("entry").path(), "{ truncated").expect("corrupt writes");
    }
    let recovered = cached_outputs(&dir, &Executor::serial(), Some(&cache));
    assert_eq!((recovered.3, recovered.4), (0, 2), "corrupt entries re-analyze");
    assert_eq!((&recovered.0, &recovered.1, &recovered.2), (&cold.0, &cold.1, &cold.2));
}

/// The key an old cache format version would have used for this file:
/// same length-delimited FNV-1a, version field pinned to `version`.
fn versioned_key(version: u32, file_idx: usize, input: &idse_lint::FileInput) -> u64 {
    fn push(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100000001b3);
        }
        *h ^= bytes.len() as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
    let mut h: u64 = 0xcbf29ce484222325;
    push(&mut h, &version.to_le_bytes());
    push(&mut h, &(file_idx as u64).to_le_bytes());
    push(&mut h, input.path.as_bytes());
    push(&mut h, input.crate_name.as_bytes());
    push(&mut h, format!("{:?}", input.kind).as_bytes());
    push(&mut h, input.text.as_bytes());
    h
}

#[test]
fn stale_cache_version_entries_are_misses() {
    // v2 of the cache format added the loop model and hot directives; a
    // v1 entry must never deserialize into current-version structs. The
    // version is part of the key, so planted v1 entries — even ones that
    // would parse as JSON — read as misses and the run re-analyzes.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("lint-cache-stale-version");
    let _ = std::fs::remove_dir_all(&dir);
    write_cache_workspace(&dir);
    let cache_dir = dir.join("cache");
    let cache = Cache::open(&cache_dir).expect("cache opens");
    let ws = load_workspace(&dir).expect("workspace loads");
    assert_eq!(ws.files.len(), 2);
    for (idx, input) in ws.files.iter().enumerate() {
        let key = versioned_key(1, idx, input);
        std::fs::write(cache_dir.join(format!("{key:016x}.json")), "{\"pre_loop_model\":true}")
            .expect("stale entry writes");
    }
    let uncached = cached_outputs(&dir, &Executor::serial(), None);
    let run = cached_outputs(&dir, &Executor::serial(), Some(&cache));
    assert_eq!((run.3, run.4), (0, 2), "stale-version entries never hit");
    assert_eq!((&run.0, &run.1, &run.2), (&uncached.0, &uncached.1, &uncached.2));
    // The run stored current-version entries alongside the stale ones
    // (4 files total), and a second warm run hits only the new pair.
    let entries = std::fs::read_dir(&cache_dir)
        .expect("cache dir lists")
        .filter(|e| e.as_ref().is_ok_and(|e| e.path().extension().is_some_and(|x| x == "json")))
        .count();
    assert_eq!(entries, 4, "stale and fresh entries coexist under distinct keys");
    let warm = cached_outputs(&dir, &Executor::serial(), Some(&cache));
    assert_eq!((warm.3, warm.4), (2, 0), "fresh entries hit on the next run");
    assert_eq!((&warm.0, &warm.1, &warm.2), (&uncached.0, &uncached.1, &uncached.2));
}

// --- determinism across worker counts, fixtures in one workspace ---

fn dataflow_fixture_workspace() -> Workspace {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut ws = Workspace::default();
    for (name, crate_name) in [
        ("seed_literal_pos.rs", "idse-sim"),
        ("seed_reuse_pos.rs", "idse-sim"),
        ("seed_collision_pos.rs", "idse-sim"),
        ("float_reduce_pos.rs", "idse-eval"),
        ("store_record_pos.rs", "idse-store"),
        // Phase-4 coverage: direct hot-loop findings, a two-hop
        // transitive chain, and the hotness-independent quadratic rule.
        ("hot_alloc_pos.rs", "idse-sim"),
        ("hot_transitive_pos.rs", "idse-sim"),
        ("quadratic_pos.rs", "idse-eval"),
    ] {
        ws.files.push(idse_lint::FileInput {
            path: name.to_string(),
            crate_name: crate_name.to_string(),
            kind: FileKind::Library,
            text: std::fs::read_to_string(base.join(name)).expect("fixture reads"),
        });
    }
    ws
}

proptest! {
    /// Dataflow findings are a pure function of the workspace: any worker
    /// count emits the same bytes as serial for every output format.
    #[test]
    fn dataflow_findings_are_stable_across_worker_counts(jobs in 1usize..=16) {
        let ws = dataflow_fixture_workspace();
        let serial = idse_lint::analyze(&ws, &Executor::serial());
        let parallel = idse_lint::analyze(&ws, &Executor::new(jobs));
        prop_assert_eq!(render_text(&serial), render_text(&parallel));
        prop_assert_eq!(
            serde_json::to_string_pretty(&serial).expect("serializes"),
            serde_json::to_string_pretty(&parallel).expect("serializes")
        );
        prop_assert_eq!(
            idse_lint::sarif::to_sarif(&serial),
            idse_lint::sarif::to_sarif(&parallel)
        );
    }
}
