//! End-to-end tests for the lint engine: the fixture corpus (one positive
//! and one negative case per rule) plus the live-workspace gate — the
//! workspace this crate ships in must itself be lint-clean.

use idse_lint::rules::FileKind;
use idse_lint::{analyze_source, run_workspace, Report};
use std::path::Path;

/// Lint one fixture file under a given crate identity and file kind.
fn lint_fixture(name: &str, crate_name: &str, kind: FileKind) -> Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} must be readable: {e}"));
    analyze_source(name, crate_name, kind, &text)
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn unordered_iteration_positive() {
    let r = lint_fixture("unordered_iteration_pos.rs", "idse-eval", FileKind::Library);
    assert!(r.has_errors());
    assert!(!r.findings.is_empty());
    assert!(
        r.findings.iter().all(|f| f.rule == "unordered-iteration-in-report"),
        "{:?}",
        rules_of(&r)
    );
    // Both hash containers are caught.
    let excerpts: Vec<&str> = r.findings.iter().map(|f| f.excerpt.as_str()).collect();
    assert!(excerpts.iter().any(|e| e.contains("HashMap")));
    assert!(excerpts.iter().any(|e| e.contains("HashSet")));
}

#[test]
fn unordered_iteration_negative() {
    let r = lint_fixture("unordered_iteration_neg.rs", "idse-eval", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn unordered_iteration_is_scoped_to_report_crates() {
    // The same hash-container code is legal outside the report crates.
    let r = lint_fixture("unordered_iteration_pos.rs", "idse-traffic", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
    // And legal in integration tests even of report crates.
    let r = lint_fixture("unordered_iteration_pos.rs", "idse-eval", FileKind::IntegrationTest);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn wall_clock_positive_fires_even_in_tests() {
    let r = lint_fixture("wall_clock_pos.rs", "idse-sim", FileKind::Library);
    assert!(r.has_errors());
    assert!(r.findings.iter().all(|f| f.rule == "wall-clock-in-sim"), "{:?}", rules_of(&r));
    // The SystemTime use inside #[cfg(test)] is among the findings: sim
    // crates may not use wall clocks even in test code.
    assert!(r.findings.iter().any(|f| f.excerpt.contains("SystemTime")));
}

#[test]
fn wall_clock_negative_ignores_string_literals() {
    let r = lint_fixture("wall_clock_neg.rs", "idse-sim", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn wall_clock_is_scoped_to_sim_crates() {
    let r = lint_fixture("wall_clock_pos.rs", "idse-bench", FileKind::Library);
    assert!(r.findings.iter().all(|f| f.rule != "wall-clock-in-sim"), "{:?}", rules_of(&r));
}

#[test]
fn unseeded_entropy_positive() {
    let r = lint_fixture("unseeded_entropy_pos.rs", "idse-traffic", FileKind::Library);
    assert!(r.has_errors());
    assert!(r.findings.iter().all(|f| f.rule == "unseeded-entropy"), "{:?}", rules_of(&r));
    let excerpts: Vec<&str> = r.findings.iter().map(|f| f.excerpt.as_str()).collect();
    assert!(excerpts.iter().any(|e| e.contains("thread_rng")));
    assert!(excerpts.iter().any(|e| e.contains("RandomState")));
}

#[test]
fn unseeded_entropy_negative() {
    let r = lint_fixture("unseeded_entropy_neg.rs", "idse-traffic", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn panic_positive_is_tiered_by_crate() {
    // Strict tier: errors.
    let strict = lint_fixture("panic_pos.rs", "idse-sim", FileKind::Library);
    assert!(strict.has_errors());
    assert_eq!(strict.error_count(), 3, "{:?}", strict.findings);
    assert!(strict.findings.iter().all(|f| f.rule == "panic-in-library"));
    // Standard tier: same findings, warn severity.
    let standard = lint_fixture("panic_pos.rs", "idse-eval", FileKind::Library);
    assert!(!standard.has_errors());
    assert_eq!(standard.warning_count(), 3, "{:?}", standard.findings);
    // Tooling tier: rule does not apply.
    let tooling = lint_fixture("panic_pos.rs", "idse-bench", FileKind::Library);
    assert!(tooling.findings.is_empty(), "{:?}", rules_of(&tooling));
}

#[test]
fn panic_negative() {
    let r = lint_fixture("panic_neg.rs", "idse-sim", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn float_eq_positive() {
    let r = lint_fixture("float_eq_pos.rs", "idse-eval", FileKind::Library);
    assert!(!r.has_errors(), "float-eq is warn severity");
    assert_eq!(r.warning_count(), 2, "{:?}", r.findings);
    assert!(r.findings.iter().all(|f| f.rule == "float-eq-comparison"));
}

#[test]
fn float_eq_negative() {
    let r = lint_fixture("float_eq_neg.rs", "idse-eval", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn sink_side_effect_structural_positive() {
    let r = lint_fixture("sink_structural_pos.rs", "idse-telemetry", FileKind::Library);
    assert!(r.has_errors());
    assert!(r.findings.iter().all(|f| f.rule == "sink-side-effect"), "{:?}", rules_of(&r));
}

#[test]
fn sink_side_effect_callsite_positive() {
    let r = lint_fixture("sink_callsite_pos.rs", "idse-ids", FileKind::Library);
    assert!(r.has_errors());
    assert_eq!(r.error_count(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, "sink-side-effect");
}

#[test]
fn sink_side_effect_negative() {
    let r = lint_fixture("sink_side_effect_neg.rs", "idse-ids", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn thread_outside_exec_positive_fires_even_in_tests() {
    let r = lint_fixture("thread_outside_exec_pos.rs", "idse-eval", FileKind::Library);
    assert!(r.has_errors());
    assert!(r.findings.iter().all(|f| f.rule == "thread-outside-exec"), "{:?}", rules_of(&r));
    let excerpts: Vec<&str> = r.findings.iter().map(|f| f.excerpt.as_str()).collect();
    assert!(excerpts.iter().any(|e| e.contains("thread::spawn")));
    assert!(excerpts.iter().any(|e| e.contains("mpsc::channel")));
    // The thread::scope inside #[cfg(test)] is among the findings.
    assert!(excerpts.iter().any(|e| e.contains("thread::scope")));
    // Integration tests are no refuge either.
    let t = lint_fixture("thread_outside_exec_pos.rs", "idse-ids", FileKind::IntegrationTest);
    assert!(t.has_errors(), "{:?}", rules_of(&t));
}

#[test]
fn thread_outside_exec_negative_and_exemption() {
    let r = lint_fixture("thread_outside_exec_neg.rs", "idse-eval", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
    // The executor crate itself is the one legal home for these tokens.
    let exec = lint_fixture("thread_outside_exec_pos.rs", "idse-exec", FileKind::Library);
    assert!(exec.findings.iter().all(|f| f.rule != "thread-outside-exec"), "{:?}", rules_of(&exec));
}

#[test]
fn valid_allow_suppresses_and_keeps_reason() {
    let r = lint_fixture("allow_valid.rs", "idse-eval", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
    assert_eq!(r.suppressed.len(), 3, "{:?}", r.suppressed);
    for s in &r.suppressed {
        assert_eq!(s.finding.rule, "unordered-iteration-in-report");
        assert!(s.reason.contains("membership checks only"));
    }
}

#[test]
fn invalid_allow_is_an_error_and_suppresses_nothing() {
    let r = lint_fixture("allow_invalid.rs", "idse-eval", FileKind::Library);
    let invalid = r.findings.iter().filter(|f| f.rule == "invalid-allow").count();
    let underlying =
        r.findings.iter().filter(|f| f.rule == "unordered-iteration-in-report").count();
    assert_eq!(invalid, 2, "{:?}", rules_of(&r));
    assert_eq!(underlying, 3, "{:?}", rules_of(&r));
    assert!(r.suppressed.is_empty());
}

#[test]
fn unused_allow_is_flagged() {
    let r = lint_fixture("allow_unused.rs", "idse-sim", FileKind::Library);
    assert_eq!(rules_of(&r), vec!["unused-allow"]);
    assert!(!r.has_errors(), "unused-allow is warn severity");
}

#[test]
fn materialized_feed_positive() {
    let r = lint_fixture("materialized_feed_pos.rs", "idse-bench", FileKind::Bin);
    assert!(!r.has_errors(), "materialized-feed-in-experiment is warn severity");
    assert!(
        r.findings.iter().all(|f| f.rule == "materialized-feed-in-experiment"),
        "{:?}",
        rules_of(&r)
    );
    // Both the request helper and the direct constructor are caught.
    assert_eq!(r.findings.len(), 2, "{:?}", rules_of(&r));
}

#[test]
fn materialized_feed_negative() {
    let r = lint_fixture("materialized_feed_neg.rs", "idse-bench", FileKind::Bin);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
    // The deliberately small materialized run is suppressed with a reason.
    assert_eq!(r.suppressed.len(), 1);
    assert!(!r.suppressed[0].reason.trim().is_empty());
}

#[test]
fn materialized_feed_is_scoped_to_experiment_surfaces() {
    // Library code implements the materialized path; only bins/examples
    // (the experiment surface) are nudged toward the stream.
    let r = lint_fixture("materialized_feed_pos.rs", "idse-eval", FileKind::Library);
    assert!(
        r.findings.iter().all(|f| f.rule != "materialized-feed-in-experiment"),
        "{:?}",
        rules_of(&r)
    );
}

#[test]
fn fixture_reports_are_deterministic() {
    let run = || {
        let mut all = Report::default();
        for (name, crate_name) in [
            ("unordered_iteration_pos.rs", "idse-eval"),
            ("panic_pos.rs", "idse-sim"),
            ("allow_valid.rs", "idse-eval"),
        ] {
            all.absorb(lint_fixture(name, crate_name, FileKind::Library));
        }
        serde_json::to_string(&all.stats()).expect("stats serialize")
    };
    assert_eq!(run(), run());
}

/// The gate this whole crate exists for: the live workspace must be
/// lint-clean — zero errors, zero warnings — with every suppression
/// carrying a written reason.
#[test]
fn live_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run_workspace(&root).expect("workspace tree must be readable");
    assert!(report.files_scanned > 50, "walked only {} files — wrong root?", report.files_scanned);
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}[{}] {}:{} — {}", f.severity, f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean; fix or allowlist with a reason:\n{}",
        rendered.join("\n")
    );
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression at {}:{} has an empty reason",
            s.finding.file,
            s.finding.line
        );
    }
}
