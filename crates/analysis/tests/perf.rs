//! End-to-end tests for phase 4, the hot-path performance pass: one
//! positive and one negative fixture per rule, tier policy, the
//! `// idse-lint: hot` annotation channel, transitive hotness with a
//! two-hop witness chain, and allow/shield composition at the hot-root
//! loop header.

use idse_lint::rules::FileKind;
use idse_lint::{analyze_source, Report};
use std::path::Path;

fn lint_fixture(name: &str, crate_name: &str, kind: FileKind) -> Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} must be readable: {e}"));
    analyze_source(name, crate_name, kind, &text)
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule.as_str()).collect()
}

// --- alloc-in-hot-loop ---

#[test]
fn alloc_in_hot_loop_positive() {
    let r = lint_fixture("hot_alloc_pos.rs", "idse-sim", FileKind::Library);
    assert!(r.has_errors());
    assert_eq!(rules_of(&r), vec!["alloc-in-hot-loop"; 2], "{:?}", rules_of(&r));
    // The witness chain walks owner -> hot root -> allocation site
    // (string literals arrive masked from the lexer).
    let f = &r.findings[0];
    assert!(f.message.contains("`format!`"), "{}", f.message);
    assert!(f.message.contains("runs per record"), "{}", f.message);
    assert_eq!(
        f.chain,
        vec![
            "idse-sim::hot_alloc_pos::label_records",
            "hot loop `for rec in records` (hot_alloc_pos.rs:6)",
            "let label = format!(\"      \", rec.id);",
        ]
    );
    let g = &r.findings[1];
    assert!(g.message.contains("`to_vec`"), "{}", g.message);
    assert!(
        g.chain.iter().any(|s| s == "hot loop `for packet in packets` (hot_alloc_pos.rs:15)"),
        "{:?}",
        g.chain
    );
}

#[test]
fn alloc_in_hot_loop_negative() {
    // Hoisted buffer + with_capacity is the blessed pattern; test loops
    // are exempt even when they allocate per record.
    let r = lint_fixture("hot_alloc_neg.rs", "idse-sim", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn perf_tier_policy() {
    // Standard-tier crates warn; tooling crates are out of scope even
    // when the loop is red hot.
    let r = lint_fixture("hot_alloc_pos.rs", "idse-ids", FileKind::Library);
    assert!(!r.findings.is_empty());
    assert!(r.findings.iter().all(|f| f.severity == "warning"), "{:?}", r.findings);
    let r = lint_fixture("hot_alloc_pos.rs", "idse-bench", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

#[test]
fn hot_heuristic_needs_a_hot_crate() {
    // Without an annotation, per-record loops outside the hot-path
    // crates (idse-ids/sim/traffic/net) are not roots.
    let r = lint_fixture("hot_alloc_pos.rs", "idse-eval", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

// --- quadratic-accumulation ---

#[test]
fn quadratic_accumulation_positive() {
    let r = lint_fixture("quadratic_pos.rs", "idse-sim", FileKind::Library);
    assert!(r.has_errors());
    assert_eq!(rules_of(&r), vec!["quadratic-accumulation"; 3], "{:?}", rules_of(&r));
    // Head insertion: shifts the whole container per iteration.
    assert!(r.findings[0].message.contains("head insert/remove"), "{}", r.findings[0].message);
    assert!(r.findings[0].chain.iter().any(|s| s == "out.insert(0, *v);"));
    // Growing the loop's own bound.
    let own = &r.findings[1];
    assert!(own.message.contains("grows `items`"), "{}", own.message);
    assert!(
        own.chain.iter().any(|s| s == "loop `for i in 0..items.len()` (quadratic_pos.rs:14)"),
        "{:?}",
        own.chain
    );
    // Per-iteration slice copies of the bound input.
    assert!(
        r.findings[2].message.contains("copies a slice of `input`"),
        "{}",
        r.findings[2].message
    );
}

#[test]
fn quadratic_accumulation_negative() {
    // `while x.len() < target { x.push(..) }` is the linear fill idiom;
    // tail pushes into another container and one-shot extends are linear.
    let r = lint_fixture("quadratic_neg.rs", "idse-sim", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

// --- per-byte-dispatch ---

#[test]
fn per_byte_dispatch_positive() {
    let r = lint_fixture("per_byte_dispatch_pos.rs", "idse-ids", FileKind::Library);
    assert_eq!(rules_of(&r), vec!["per-byte-dispatch"], "{:?}", rules_of(&r));
    let f = &r.findings[0];
    assert_eq!(f.severity, "warning");
    assert!(f.message.contains("per input byte"), "{}", f.message);
    assert!(f.message.contains("table-driven DFA"), "{}", f.message);
    assert!(
        f.chain.iter().any(|s| s == "hot loop `for &b in haystack` (per_byte_dispatch_pos.rs:20)"),
        "{:?}",
        f.chain
    );
}

#[test]
fn per_byte_dispatch_negative() {
    // Table-driven scans carry no branchy decision, and `match` in a
    // per-record loop is out of the rule's (per-byte) scope.
    let r = lint_fixture("per_byte_dispatch_neg.rs", "idse-ids", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

// --- hot-loop-rederive ---

#[test]
fn hot_loop_rederive_positive() {
    let r = lint_fixture("hot_rederive_pos.rs", "idse-sim", FileKind::Library);
    assert!(r.has_errors());
    assert_eq!(rules_of(&r), vec!["hot-loop-rederive"; 2], "{:?}", rules_of(&r));
    assert!(r.findings[0].message.contains("`RngStream::derive`"), "{}", r.findings[0].message);
    assert!(r.findings[0].message.contains("per record"), "{}", r.findings[0].message);
    assert!(r.findings[1].message.contains("`derive_seed`"), "{}", r.findings[1].message);
}

#[test]
fn hot_loop_rederive_negative() {
    // A `fn derive_seed` definition header is not a call site, and a
    // per-chunk derivation hoisted above the loop is the fix.
    let r = lint_fixture("hot_rederive_neg.rs", "idse-sim", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

// --- collect-in-hot-path ---

#[test]
fn collect_in_hot_path_positive() {
    let r = lint_fixture("collect_hot_pos.rs", "idse-sim", FileKind::Library);
    assert!(r.has_errors());
    assert_eq!(rules_of(&r), vec!["collect-in-hot-path"; 2], "{:?}", rules_of(&r));
    assert!(r.findings[0].message.contains("intermediate Vec"), "{}", r.findings[0].message);
    assert!(r.findings[1].message.contains("`collect::<Vec<_>>`"), "{}", r.findings[1].message);
}

#[test]
fn collect_in_hot_path_negative() {
    // Lazy iteration in the hot loop and a one-shot collect outside any
    // hot context are both fine.
    let r = lint_fixture("collect_hot_neg.rs", "idse-sim", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
}

// --- transitive hotness ---

#[test]
fn transitive_hotness_walks_the_call_chain() {
    // The allocation sits two calls from the hot loop; the finding lands
    // at the allocation site with a chain hot root -> drive -> admit ->
    // stamp -> token.
    let r = lint_fixture("hot_transitive_pos.rs", "idse-sim", FileKind::Library);
    assert_eq!(rules_of(&r), vec!["alloc-in-hot-loop"], "{:?}", rules_of(&r));
    let f = &r.findings[0];
    assert_eq!(f.line, 18);
    assert!(f.message.contains("`stamp` allocates"), "{}", f.message);
    assert!(f.message.contains("through 2 calls"), "{}", f.message);
    assert_eq!(
        f.chain,
        vec![
            "hot loop `for ev in events` (hot_transitive_pos.rs:7)",
            "idse-sim::hot_transitive_pos::drive",
            "idse-sim::hot_transitive_pos::admit",
            "idse-sim::hot_transitive_pos::stamp",
            "to_string (hot_transitive_pos.rs:18)",
        ]
    );
}

// --- `// idse-lint: hot` annotation channel ---

#[test]
fn hot_annotation_marks_a_root_anywhere() {
    // The header names no streamed unit and the crate is not a hot-path
    // crate: only the annotated loop becomes a root.
    let r = lint_fixture("hot_annotation_pos.rs", "idse-eval", FileKind::Library);
    assert_eq!(rules_of(&r), vec!["alloc-in-hot-loop"], "{:?}", rules_of(&r));
    let f = &r.findings[0];
    assert_eq!((f.line, f.severity.as_str()), (8, "warning"));
    assert!(
        f.chain.iter().any(|s| s == "hot loop `for job in work` (hot_annotation_pos.rs:7)"),
        "{:?}",
        f.chain
    );
}

// --- allow/shield composition at the hot root ---

#[test]
fn allow_at_hot_root_shields_downstream_findings() {
    // One allow at the hot-root loop header suppresses the transitive
    // allocation finding it reaches — and counts as used, so no
    // unused-allow fires either.
    let r = lint_fixture("hot_shield.rs", "idse-sim", FileKind::Library);
    assert!(r.findings.is_empty(), "{:?}", rules_of(&r));
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);
    let s = &r.suppressed[0];
    assert_eq!(s.finding.rule, "alloc-in-hot-loop");
    assert_eq!(s.reason, "audited: jobs are tiny and the arena amortizes the copies");
}

// --- SARIF carries the perf rules ---

#[test]
fn sarif_covers_perf_rules() {
    use idse_exec::Executor;
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut ws = idse_lint::Workspace::default();
    for name in [
        "hot_alloc_pos.rs",
        "quadratic_pos.rs",
        "per_byte_dispatch_pos.rs",
        "hot_rederive_pos.rs",
        "collect_hot_pos.rs",
    ] {
        ws.files.push(idse_lint::FileInput {
            path: name.to_string(),
            crate_name: "idse-ids".to_string(),
            kind: FileKind::Library,
            text: std::fs::read_to_string(base.join(name)).expect("fixture reads"),
        });
    }
    let report = idse_lint::analyze(&ws, &Executor::serial());
    let sarif = idse_lint::sarif::to_sarif(&report);
    for rule in [
        "alloc-in-hot-loop",
        "quadratic-accumulation",
        "per-byte-dispatch",
        "hot-loop-rederive",
        "collect-in-hot-path",
    ] {
        assert!(sarif.contains(&format!("\"{rule}\"")), "rules table misses {rule}");
    }
}
