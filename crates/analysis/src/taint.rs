//! Phase-2 taint propagation over the assembled call graph.
//!
//! For each [`TaintLabel`], every function that carries a hazard token in
//! its body (or a hazard-typed field on its `Self` type) is a *seed*;
//! taint then flows backwards along call edges, so any function that can
//! reach a seed — at any depth, across crates — is tainted. A tainted
//! function in the label's scope ([`TaintLabel::applies`]) yields a
//! transitive finding carrying the full witness chain down to the token.
//!
//! Determinism is structural: seeds initialize in ascending function id,
//! the BFS frontier is processed in sorted order, reverse edges are
//! sorted, and the *first* writer of a function's witness wins. The same
//! graph therefore always produces the same witness for every function,
//! and the same chains in the same order — which is what lets the
//! parallel phase-1 scan feed a byte-identical phase 2.
//!
//! Reporting is *frontier-only*: if `a` calls `b` calls `c` and all three
//! are in scope, only the deepest in-scope function actually adjacent to
//! the hazard reports (with the chain showing the rest). Without this,
//! one tainted leaf would fire once per ancestor and drown the signal in
//! chain-length noise.

use crate::model::{Graph, SeedInfo};
use crate::rules::{Severity, TaintLabel};

/// Why a function is tainted: the first edge of its witness path and the
/// seed the path bottoms out in.
#[derive(Debug, Clone)]
pub struct Witness {
    /// `Some((callee, line, column))` when tainted through a call site;
    /// `None` when the function carries the seed itself.
    pub via: Option<(usize, usize, usize)>,
    /// Global id of the function that owns the seed.
    pub seed_owner: usize,
    /// The seed at the bottom of the witness path.
    pub seed: SeedInfo,
    /// Calls between this function and the seed owner (0 = self-seeded).
    pub depth: usize,
}

/// Propagate one label backwards from its active seeds; `seed_ok` decides
/// which seeds participate (the caller filters out allow-at-source
/// suppressions, or inverts the filter to measure what an allow is
/// suppressing). Returns one optional witness per function.
pub fn propagate(
    graph: &Graph,
    label: TaintLabel,
    seed_ok: &dyn Fn(usize, &SeedInfo) -> bool,
) -> Vec<Option<Witness>> {
    let n = graph.fns.len();
    let mut witness: Vec<Option<Witness>> = vec![None; n];

    // Reverse adjacency, sorted for deterministic visitation.
    let mut redges: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n];
    for (caller, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            redges[e.callee].push((caller, e.line, e.column));
        }
    }
    for r in &mut redges {
        r.sort();
        r.dedup();
    }

    let mut frontier: Vec<usize> = Vec::new();
    for (id, w) in witness.iter_mut().enumerate() {
        let seed = graph.seeds[id].iter().find(|s| s.label == label && seed_ok(id, s));
        if let Some(seed) = seed {
            *w = Some(Witness { via: None, seed_owner: id, seed: seed.clone(), depth: 0 });
            frontier.push(id);
        }
    }

    while !frontier.is_empty() {
        let mut next: Vec<usize> = Vec::new();
        for &t in &frontier {
            let (seed_owner, seed, depth) = {
                let w = witness[t].as_ref().expect("frontier entries are tainted");
                (w.seed_owner, w.seed.clone(), w.depth)
            };
            for &(caller, line, column) in &redges[t] {
                if witness[caller].is_none() {
                    witness[caller] = Some(Witness {
                        via: Some((t, line, column)),
                        seed_owner,
                        seed: seed.clone(),
                        depth: depth + 1,
                    });
                    next.push(caller);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }

    witness
}

/// A transitive finding before allow-directive resolution.
#[derive(Debug, Clone)]
pub struct TransitiveHit {
    /// Global id of the reporting function.
    pub fn_id: usize,
    /// Hazard class.
    pub label: TaintLabel,
    /// Severity from the shared scope predicate.
    pub severity: Severity,
    /// 0-based line of the witness call site in the reporter's file.
    pub line: usize,
    /// 0-based column of the witness call site.
    pub column: usize,
    /// Qualified names from the reporter down to the seed owner, then the
    /// hazard token itself.
    pub chain: Vec<String>,
    /// Human message.
    pub message: String,
}

fn hazard_phrase(label: TaintLabel) -> &'static str {
    match label {
        TaintLabel::UnorderedIter => "hash-container hazard",
        TaintLabel::WallClock => "wall-clock source",
        TaintLabel::Entropy => "ambient-entropy source",
        TaintLabel::MayPanic => "panicking call",
        TaintLabel::ThreadSpawn => "raw thread machinery",
    }
}

/// Generate the transitive findings for one label from its witnesses.
///
/// `direct_covered(id)` must report whether the *direct* rule already
/// fired at function `id`'s own seed location — the active direct finding
/// is then the root-cause report for that path.
///
/// Reporting is frontier-only along the witness tree: walking each path
/// from the seed upwards, the first function that is in scope and whose
/// path below is not already accounted for (by a direct finding or a
/// deeper transitive reporter) is the one that reports; everything above
/// it inherits "accounted" and stays silent. Witness depth strictly
/// decreases toward the seed, so one pass in ascending-depth order
/// settles every function after its callee.
pub fn transitive_hits(
    graph: &Graph,
    label: TaintLabel,
    witness: &[Option<Witness>],
    direct_covered: &dyn Fn(usize) -> bool,
) -> Vec<TransitiveHit> {
    let mut order: Vec<usize> = (0..witness.len()).filter(|&i| witness[i].is_some()).collect();
    order.sort_by_key(|&i| (witness[i].as_ref().map(|w| w.depth).unwrap_or_default(), i));
    let mut accounted = vec![false; witness.len()];
    let mut out = Vec::new();
    for id in order {
        let w = witness[id].as_ref().expect("order holds tainted fns only");
        let Some((callee, line, column)) = w.via else {
            accounted[id] = direct_covered(id);
            continue;
        };
        let f = &graph.fns[id];
        let scope = label.applies(&f.crate_name, f.kind, f.in_test);
        let reports = scope.is_some() && !accounted[callee];
        accounted[id] = accounted[callee] || reports;
        let Some(severity) = scope.filter(|_| reports) else { continue };
        let mut chain = vec![f.qual.clone()];
        let mut cur = id;
        while let Some((next, _, _)) = witness[cur].as_ref().and_then(|w| w.via) {
            chain.push(graph.fns[next].qual.clone());
            cur = next;
        }
        chain.push(w.seed.token.clone());
        let calls = if w.depth == 1 { "1 call".to_string() } else { format!("{} calls", w.depth) };
        let message = format!(
            "`{}` reaches {} `{}` through {}: {}",
            f.name,
            hazard_phrase(label),
            w.seed.token,
            calls,
            chain.join(" -> "),
        );
        out.push(TransitiveHit { fn_id: id, label, severity, line, column, chain, message });
    }
    out.sort_by_key(|h| h.fn_id);
    out
}

/// Function ids that are tainted *through a call* and sit in the label's
/// scope — i.e. the functions an allow-at-source directive is shielding.
/// Used to decide whether a source allow earned its keep.
pub fn in_scope_reachers(
    graph: &Graph,
    label: TaintLabel,
    witness: &[Option<Witness>],
) -> Vec<usize> {
    witness
        .iter()
        .enumerate()
        .filter_map(|(id, w)| {
            let w = w.as_ref()?;
            w.via?;
            let f = &graph.fns[id];
            label.applies(&f.crate_name, f.kind, f.in_test).map(|_| id)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{assemble, extract, FileMeta};
    use crate::rules::FileKind;
    use crate::source;
    use std::collections::BTreeMap;

    fn graph_of(files: &[(&str, &str, &str)]) -> Graph {
        let mut metas = Vec::new();
        let mut models = Vec::new();
        for (i, (path, crate_name, text)) in files.iter().enumerate() {
            let lines = source::mask(text);
            let flags = source::test_regions(&lines);
            metas.push(FileMeta {
                path: (*path).to_string(),
                crate_name: (*crate_name).to_string(),
                kind: FileKind::Library,
            });
            models.push(extract(path, crate_name, FileKind::Library, i, &lines, &flags));
        }
        assemble(&metas, &models, &BTreeMap::new())
    }

    #[test]
    fn two_hop_chain_reaches_the_seed() {
        let graph = graph_of(&[(
            "crates/sim/src/lib.rs",
            "idse-sim",
            "pub fn step() -> u64 { now_ms() }\n\
             fn now_ms() -> u64 { raw_clock() }\n\
             fn raw_clock() -> u64 { let t = std::time::Instant::now(); 0 }\n",
        )]);
        let w = propagate(&graph, TaintLabel::WallClock, &|_, _| true);
        assert!(w.iter().all(|x| x.is_some()), "all three fns tainted");
        assert_eq!(w[0].as_ref().map(|x| x.depth), Some(2));
        // When raw_clock's direct finding covers it, that finding is the
        // root-cause report and the whole chain stays silent.
        let covered = transitive_hits(&graph, TaintLabel::WallClock, &w, &|id| id == 2);
        assert!(covered.is_empty(), "{covered:?}");
        // When it is not covered (the laundering case), the deepest
        // in-scope caller reports with the full chain; step defers.
        let hits = transitive_hits(&graph, TaintLabel::WallClock, &w, &|_| false);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].fn_id, 1);
        assert_eq!(
            hits[0].chain,
            vec!["idse-sim::now_ms", "idse-sim::raw_clock", "std::time::Instant::now"]
        );
    }

    #[test]
    fn recursive_cycle_terminates_and_reports() {
        let graph = graph_of(&[(
            "crates/sim/src/lib.rs",
            "idse-sim",
            "pub fn ping(n: u64) -> u64 { if n == 0 { clock() } else { pong(n - 1) } }\n\
             pub fn pong(n: u64) -> u64 { ping(n) }\n\
             fn clock() -> u64 { let t = std::time::Instant::now(); 0 }\n",
        )]);
        let w = propagate(&graph, TaintLabel::WallClock, &|_, _| true);
        assert!(w[0].is_some() && w[1].is_some() && w[2].is_some());
        // With the seed uncovered, ping is the frontier; pong defers to
        // ping (an accounted path) even though the cycle points back.
        let hits = transitive_hits(&graph, TaintLabel::WallClock, &w, &|_| false);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].fn_id, 0);
    }

    #[test]
    fn seed_filter_removes_the_source() {
        let graph = graph_of(&[(
            "crates/sim/src/lib.rs",
            "idse-sim",
            "pub fn step() -> u64 { now_ms() }\n\
             fn now_ms() -> u64 { let t = std::time::Instant::now(); 0 }\n",
        )]);
        let w = propagate(&graph, TaintLabel::WallClock, &|_, _| false);
        assert!(w.iter().all(|x| x.is_none()));
    }

    #[test]
    fn out_of_scope_reachers_stay_silent() {
        // A bench-tier crate reaching a wall clock is fine; wall-clock
        // scope is the sim crates.
        let graph = graph_of(&[(
            "crates/bench/src/lib.rs",
            "idse-bench",
            "pub fn time_it() -> u64 { raw() }\n\
             fn raw() -> u64 { let t = std::time::Instant::now(); 0 }\n",
        )]);
        let w = propagate(&graph, TaintLabel::WallClock, &|_, _| true);
        assert!(w[0].is_some());
        let hits = transitive_hits(&graph, TaintLabel::WallClock, &w, &|_| false);
        assert!(hits.is_empty());
    }
}
