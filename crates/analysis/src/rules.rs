//! The rule set. Each rule is a line-level predicate over the masked
//! code channel, scoped by crate, file kind, and test-region flag, with
//! a severity that can be tiered per crate.
//!
//! Every rule here is grounded in a hazard this repo has actually hit or
//! must structurally prevent:
//!
//! - `unordered-iteration-in-report` — PR 1 shipped a real bug where a
//!   `HashMap` float-summation order leaked the hash seed into the
//!   reported `host_impact` ulp. Report paths (`idse-eval`, `idse-core`)
//!   must use ordered containers.
//! - `wall-clock-in-sim` — sim time is the only clock in `idse-sim`,
//!   `idse-ids`, `idse-net` (and `idse-telemetry`, which timestamps with
//!   sim nanos). `Instant`/`SystemTime` would make runs unrepeatable.
//! - `unseeded-entropy` — every random draw must come from a seeded,
//!   named `RngStream`; ambient entropy destroys reproducibility.
//! - `panic-in-library` — library code must not `unwrap()`/`panic!`;
//!   `expect("invariant message")` is the sanctioned form for true
//!   invariants. Severity is tiered: substrate crates error, harness
//!   crates warn.
//! - `float-eq-comparison` — exact `==`/`!=` on floats is almost always
//!   a latent ulp bug in a scoring pipeline; exact-zero sentinels must
//!   be allowlisted with a reason.
//! - `sink-side-effect` — telemetry is observation-only: the telemetry
//!   crate must never reach back into the simulator, and no record call
//!   may share a statement with event scheduling.
//! - `thread-outside-exec` — all parallelism flows through the
//!   `idse-exec` executor, whose canonical-order reduce is what makes
//!   `--jobs N` byte-identical. Ad-hoc `thread::spawn`/channel use
//!   anywhere else reintroduces scheduling-dependent behavior.

use serde::{Deserialize, Serialize};

/// Finding severity. Errors fail the build; warnings are debt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Reported, counted, but does not fail the run.
    Warn,
    /// Fails the run (nonzero exit).
    Error,
}

impl Severity {
    /// Lowercase label for display.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

/// Identity of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RuleId {
    /// HashMap/HashSet in `idse-eval`/`idse-core` report paths.
    UnorderedIterationInReport,
    /// `Instant`/`SystemTime` in simulation-clock crates.
    WallClockInSim,
    /// `thread_rng`/`from_entropy`/`RandomState`/`OsRng` outside tests.
    UnseededEntropy,
    /// `unwrap()`/`panic!`/`todo!`/`unimplemented!` in library code.
    PanicInLibrary,
    /// `==`/`!=` against a float operand.
    FloatEqComparison,
    /// Telemetry recording entangled with event scheduling.
    SinkSideEffect,
    /// Raw threads/channels anywhere but the executor crate.
    ThreadOutsideExec,
    /// Reaching a hash-container helper transitively from a report path.
    TransitiveUnorderedIteration,
    /// Reaching a wall-clock source transitively from a sim-clock crate.
    TransitiveWallClock,
    /// Reaching ambient entropy transitively from non-test code.
    TransitiveUnseededEntropy,
    /// Reaching a panicking helper transitively from library code.
    TransitivePanic,
    /// Reaching raw thread machinery transitively outside the executor.
    TransitiveThreadOutsideExec,
    /// `seed_from_u64`/`StdRng` construction from a literal instead of
    /// `derive_seed(master, label)`.
    LiteralSeed,
    /// One constant seed label used at two distinct construction sites in
    /// the same crate.
    SeedLabelReuse,
    /// Two distinct constant labels whose `derive_seed` values collide.
    SeedLabelCollision,
    /// Float accumulation over `par_map` output outside `reduce_in_order`.
    UnorderedFloatReduce,
    /// Telemetry/stamp/wall-clock value reaching the canonical-record path
    /// that feeds the store's run-id hash.
    ImpureStoreRecord,
    /// Materializing a whole test feed in experiment-surface code
    /// (bins/examples) instead of streaming it.
    MaterializedFeedInExperiment,
    /// Heap allocation inside a hot loop (per-record/per-byte path).
    AllocInHotLoop,
    /// Container growth inside a loop bounded by the grown input's length.
    QuadraticAccumulation,
    /// Match-on-enum or trait-object dispatch inside a per-byte scan loop.
    PerByteDispatch,
    /// Seed/hash-state re-derivation inside a per-record loop.
    HotLoopRederive,
    /// Materializing an intermediate `Vec` inside a hot function.
    CollectInHotPath,
    /// Malformed allow directive (unknown rule or missing reason).
    InvalidAllow,
    /// Allow directive that suppressed nothing.
    UnusedAllow,
}

impl RuleId {
    /// Every rule, in stable display order.
    pub const ALL: [RuleId; 25] = [
        RuleId::UnorderedIterationInReport,
        RuleId::WallClockInSim,
        RuleId::UnseededEntropy,
        RuleId::PanicInLibrary,
        RuleId::FloatEqComparison,
        RuleId::SinkSideEffect,
        RuleId::ThreadOutsideExec,
        RuleId::TransitiveUnorderedIteration,
        RuleId::TransitiveWallClock,
        RuleId::TransitiveUnseededEntropy,
        RuleId::TransitivePanic,
        RuleId::TransitiveThreadOutsideExec,
        RuleId::LiteralSeed,
        RuleId::SeedLabelReuse,
        RuleId::SeedLabelCollision,
        RuleId::UnorderedFloatReduce,
        RuleId::ImpureStoreRecord,
        RuleId::MaterializedFeedInExperiment,
        RuleId::AllocInHotLoop,
        RuleId::QuadraticAccumulation,
        RuleId::PerByteDispatch,
        RuleId::HotLoopRederive,
        RuleId::CollectInHotPath,
        RuleId::InvalidAllow,
        RuleId::UnusedAllow,
    ];

    /// Kebab-case rule name as written in allow directives.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnorderedIterationInReport => "unordered-iteration-in-report",
            RuleId::WallClockInSim => "wall-clock-in-sim",
            RuleId::UnseededEntropy => "unseeded-entropy",
            RuleId::PanicInLibrary => "panic-in-library",
            RuleId::FloatEqComparison => "float-eq-comparison",
            RuleId::SinkSideEffect => "sink-side-effect",
            RuleId::ThreadOutsideExec => "thread-outside-exec",
            RuleId::TransitiveUnorderedIteration => "transitive-unordered-iteration-in-report",
            RuleId::TransitiveWallClock => "transitive-wall-clock-in-sim",
            RuleId::TransitiveUnseededEntropy => "transitive-unseeded-entropy",
            RuleId::TransitivePanic => "transitive-panic-in-library",
            RuleId::TransitiveThreadOutsideExec => "transitive-thread-outside-exec",
            RuleId::LiteralSeed => "literal-seed",
            RuleId::SeedLabelReuse => "seed-label-reuse",
            RuleId::SeedLabelCollision => "seed-label-collision",
            RuleId::UnorderedFloatReduce => "unordered-float-reduce",
            RuleId::ImpureStoreRecord => "impure-store-record",
            RuleId::MaterializedFeedInExperiment => "materialized-feed-in-experiment",
            RuleId::AllocInHotLoop => "alloc-in-hot-loop",
            RuleId::QuadraticAccumulation => "quadratic-accumulation",
            RuleId::PerByteDispatch => "per-byte-dispatch",
            RuleId::HotLoopRederive => "hot-loop-rederive",
            RuleId::CollectInHotPath => "collect-in-hot-path",
            RuleId::InvalidAllow => "invalid-allow",
            RuleId::UnusedAllow => "unused-allow",
        }
    }

    /// Parse a rule name as written in an allow directive.
    pub fn parse(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line description for `--help`-style output.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::UnorderedIterationInReport => {
                "HashMap/HashSet in a report path: iteration order leaks the hash seed \
                 into reported values; use BTreeMap/BTreeSet or sort before reducing"
            }
            RuleId::WallClockInSim => {
                "wall-clock time in a simulation crate: sim time is the only clock; \
                 Instant/SystemTime make runs unrepeatable"
            }
            RuleId::UnseededEntropy => {
                "ambient entropy outside test code: draw from a seeded, named RngStream"
            }
            RuleId::PanicInLibrary => {
                "panicking call in library code: return Result, or use \
                 expect(\"invariant message\") for true invariants"
            }
            RuleId::FloatEqComparison => {
                "exact equality on a float operand: compare within a tolerance, or \
                 allowlist exact-zero sentinels with a reason"
            }
            RuleId::SinkSideEffect => {
                "telemetry entangled with event scheduling: observation must stay \
                 observation-only"
            }
            RuleId::ThreadOutsideExec => {
                "raw thread or channel use outside idse-exec: route parallelism \
                 through the executor so results merge in canonical job order"
            }
            RuleId::TransitiveUnorderedIteration => {
                "report-path function reaches a hash-container helper through the call \
                 graph: fix the helper or allow at the taint source"
            }
            RuleId::TransitiveWallClock => {
                "sim-crate function reaches a wall-clock source through the call graph: \
                 sim time is the only clock, at any call depth"
            }
            RuleId::TransitiveUnseededEntropy => {
                "non-test function reaches ambient entropy through the call graph: \
                 thread a seeded RngStream down instead"
            }
            RuleId::TransitivePanic => {
                "library function reaches a panicking helper through the call graph: \
                 tiered like panic-in-library"
            }
            RuleId::TransitiveThreadOutsideExec => {
                "function reaches raw thread machinery through the call graph without \
                 going through the idse-exec executor"
            }
            RuleId::LiteralSeed => {
                "RNG seeded from a literal value: every stream must derive its seed \
                 via derive_seed(master, label) so the master seed reaches it"
            }
            RuleId::SeedLabelReuse => {
                "constant seed label used at two distinct construction sites in one \
                 crate: identical labels yield identical, correlated streams"
            }
            RuleId::SeedLabelCollision => {
                "two distinct constant labels whose derive_seed values collide: the \
                 streams are identical even though the labels differ"
            }
            RuleId::UnorderedFloatReduce => {
                "float accumulation over par_map output outside reduce_in_order: \
                 addition order is not associative, so --jobs N changes the result"
            }
            RuleId::ImpureStoreRecord => {
                "stamp/telemetry/wall-clock value flows into a store record call: \
                 run ids hash canonical content, which must exclude ambient inputs"
            }
            RuleId::MaterializedFeedInExperiment => {
                "experiment code materializes the whole test feed: prefer the streaming \
                 path (evaluate_stream / ShardFeed), which is O(chunk) memory at any \
                 scale, or allowlist a deliberately small materialized run with a reason"
            }
            RuleId::AllocInHotLoop => {
                "heap allocation inside a hot loop: every record/byte pays the \
                 allocator; hoist the buffer out of the loop and reuse it \
                 (BENCH_hotpath.json prices the per-record cost)"
            }
            RuleId::QuadraticAccumulation => {
                "container grows inside a loop bounded by the same input's length: \
                 O(n\u{b2}) accumulation, the vendored-serde_json bug class; reserve \
                 up front or append at the tail"
            }
            RuleId::PerByteDispatch => {
                "per-byte scan loop dispatches through a match or trait object: one \
                 branchy decision per input byte; compile to a table-driven DFA \
                 (ROADMAP item 2) so each byte costs one load"
            }
            RuleId::HotLoopRederive => {
                "seed or hash-state derivation inside a per-record loop: \
                 derive_seed/RngStream::derive hash their label every call; hoist \
                 the derivation per chunk and reuse the stream"
            }
            RuleId::CollectInHotPath => {
                "hot-path function materializes an intermediate Vec: the streaming \
                 API suffices; iterate lazily so memory stays O(chunk) and the \
                 allocator stays off the per-record path"
            }
            RuleId::InvalidAllow => {
                "malformed idse-lint allow directive: unknown rule name or missing \
                 non-empty reason"
            }
            RuleId::UnusedAllow => "allow directive that suppressed no finding: delete it",
        }
    }
}

/// What part of a crate a file belongs to. Rules scope themselves by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileKind {
    /// `src/**` (excluding `src/bin`): the library proper.
    Library,
    /// `src/bin/**`: CLI entry points.
    Bin,
    /// `examples/**`.
    Example,
    /// `benches/**`.
    Bench,
    /// `tests/**`: integration tests (whole file is test code).
    IntegrationTest,
}

impl FileKind {
    pub(crate) fn is_test(self) -> bool {
        matches!(self, FileKind::IntegrationTest)
    }
}

/// Crate strictness tier for `panic-in-library`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Substrate crates: determinism and panic-freedom are load-bearing.
    Strict,
    /// Harness/model crates: same rules, warn severity for panics.
    Standard,
    /// Binaries-only crates (figures, benches): panic rules do not apply.
    Tooling,
}

/// Tier of a crate by package name.
pub fn crate_tier(crate_name: &str) -> Tier {
    match crate_name {
        "idse-sim" | "idse-net" | "idse-core" | "idse-telemetry" | "idse-lint" | "idse-exec"
        | "idse-faults" | "idse-store" | "idse-traffic" | "idse-daemon" => Tier::Strict,
        "idse-ids" | "idse-eval" | "idse-attacks" => Tier::Standard,
        _ => Tier::Tooling,
    }
}

/// Crates whose report paths must iterate deterministically.
const REPORT_CRATES: [&str; 2] = ["idse-eval", "idse-core"];
/// Crates where sim time is the only legal clock.
const SIM_CLOCK_CRATES: [&str; 7] = [
    "idse-sim",
    "idse-ids",
    "idse-net",
    "idse-telemetry",
    "idse-faults",
    "idse-store",
    "idse-daemon",
];

/// The hazard classes the taint pass propagates along the call graph.
///
/// Each label pairs a *direct* rule (the line-level check that fires where
/// the hazard token appears, when that location is in the rule's scope)
/// with a *transitive* rule (fires on an in-scope function that merely
/// *reaches* the hazard through calls). Both share one scope predicate —
/// [`TaintLabel::applies`] — so a wrapper function can never launder a
/// violation past the lint: the scope that bans the token also bans
/// reaching it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaintLabel {
    /// Hash-seeded container use (`HashMap`/`HashSet`).
    UnorderedIter,
    /// Wall-clock time (`Instant`/`SystemTime`/`UNIX_EPOCH`).
    WallClock,
    /// Ambient entropy (`thread_rng`/`from_entropy`/`RandomState`/`OsRng`).
    Entropy,
    /// Panicking calls (`panic!`/`todo!`/`unimplemented!`/`.unwrap()`).
    MayPanic,
    /// Raw thread/channel machinery outside the executor.
    ThreadSpawn,
}

impl TaintLabel {
    /// Every label, in stable order.
    pub const ALL: [TaintLabel; 5] = [
        TaintLabel::UnorderedIter,
        TaintLabel::WallClock,
        TaintLabel::Entropy,
        TaintLabel::MayPanic,
        TaintLabel::ThreadSpawn,
    ];

    /// Short kebab-case label name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            TaintLabel::UnorderedIter => "unordered-iter",
            TaintLabel::WallClock => "wall-clock",
            TaintLabel::Entropy => "entropy",
            TaintLabel::MayPanic => "may-panic",
            TaintLabel::ThreadSpawn => "thread-spawn",
        }
    }

    /// The line-level rule that fires where the hazard token appears.
    pub fn direct_rule(self) -> RuleId {
        match self {
            TaintLabel::UnorderedIter => RuleId::UnorderedIterationInReport,
            TaintLabel::WallClock => RuleId::WallClockInSim,
            TaintLabel::Entropy => RuleId::UnseededEntropy,
            TaintLabel::MayPanic => RuleId::PanicInLibrary,
            TaintLabel::ThreadSpawn => RuleId::ThreadOutsideExec,
        }
    }

    /// The call-graph rule that fires where the hazard is merely reached.
    pub fn transitive_rule(self) -> RuleId {
        match self {
            TaintLabel::UnorderedIter => RuleId::TransitiveUnorderedIteration,
            TaintLabel::WallClock => RuleId::TransitiveWallClock,
            TaintLabel::Entropy => RuleId::TransitiveUnseededEntropy,
            TaintLabel::MayPanic => RuleId::TransitivePanic,
            TaintLabel::ThreadSpawn => RuleId::TransitiveThreadOutsideExec,
        }
    }

    /// Word-boundary tokens whose presence in a function body seeds this
    /// label (see [`word_at`] semantics).
    pub fn seed_words(self) -> &'static [&'static str] {
        match self {
            TaintLabel::UnorderedIter => &["HashMap", "HashSet"],
            TaintLabel::WallClock => &["Instant", "SystemTime", "UNIX_EPOCH"],
            TaintLabel::Entropy => &["thread_rng", "from_entropy", "RandomState", "OsRng"],
            TaintLabel::MayPanic => &["panic!", "todo!", "unimplemented!"],
            TaintLabel::ThreadSpawn => &[],
        }
    }

    /// Raw substrings that seed this label (no word-boundary check).
    pub fn seed_substrings(self) -> &'static [&'static str] {
        match self {
            TaintLabel::MayPanic => &[".unwrap()"],
            TaintLabel::ThreadSpawn => &THREAD_TOKENS,
            _ => &[],
        }
    }

    /// Whether a taint seed may originate at this location at all.
    /// Thread tokens inside `idse-exec` are the sanctioned implementation
    /// of the executor, not a hazard; everything else seeds anywhere
    /// outside test code.
    pub fn seeds_in(self, crate_name: &str, in_test_code: bool) -> bool {
        if in_test_code {
            return false;
        }
        match self {
            TaintLabel::ThreadSpawn => crate_name != "idse-exec",
            _ => true,
        }
    }

    /// The shared scope predicate: does this label's rule pair apply to
    /// code at (crate, kind, test-region)? Returns the severity when it
    /// does. This is the *same* policy for the direct and the transitive
    /// rule — crate tiering included — which is what makes the transitive
    /// variants an extension of the line rules rather than a new regime.
    pub fn applies(self, crate_name: &str, kind: FileKind, in_test: bool) -> Option<Severity> {
        let in_test_code = in_test || kind.is_test();
        match self {
            TaintLabel::UnorderedIter => {
                (REPORT_CRATES.contains(&crate_name) && kind == FileKind::Library && !in_test_code)
                    .then_some(Severity::Error)
            }
            TaintLabel::WallClock => {
                SIM_CLOCK_CRATES.contains(&crate_name).then_some(Severity::Error)
            }
            TaintLabel::Entropy => (!in_test_code).then_some(Severity::Error),
            TaintLabel::MayPanic => {
                if kind != FileKind::Library || in_test_code {
                    return None;
                }
                match crate_tier(crate_name) {
                    Tier::Strict => Some(Severity::Error),
                    Tier::Standard => Some(Severity::Warn),
                    Tier::Tooling => None,
                }
            }
            TaintLabel::ThreadSpawn => (crate_name != "idse-exec").then_some(Severity::Error),
        }
    }
}

/// Context for one line of one file.
pub struct LineCtx<'a> {
    /// Package name of the owning crate (`workspace` for root tests/examples).
    pub crate_name: &'a str,
    /// File kind.
    pub kind: FileKind,
    /// Whether the line is inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Masked code channel of the line.
    pub code: &'a str,
}

/// A raw rule hit on one line (before allow-directive resolution).
#[derive(Debug, Clone)]
pub struct Hit {
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity after crate tiering.
    pub severity: Severity,
    /// Column (0-based char offset) of the offending token.
    pub column: usize,
    /// Human message.
    pub message: String,
}

pub(crate) fn word_at(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0
            || code[..at].chars().next_back().is_some_and(|c| !c.is_alphanumeric() && c != '_');
        let after = at + word.len();
        let after_ok = after >= code.len()
            || code[after..].chars().next().is_some_and(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = after;
    }
    None
}

fn first_word(code: &str, words: &'static [&'static str]) -> Option<(usize, &'static str)> {
    let mut best: Option<(usize, &'static str)> = None;
    for w in words {
        if let Some(at) = word_at(code, w) {
            if best.is_none_or(|(b, _)| at < b) {
                best = Some((at, w));
            }
        }
    }
    best
}

pub(crate) fn is_floatish_token(tok: &str) -> bool {
    if tok.is_empty() {
        return false;
    }
    if tok.ends_with("f64") || tok.ends_with("f32") {
        return true;
    }
    // A float literal: digits, underscores, exactly the chars of a number,
    // containing a decimal point.
    tok.contains('.')
        && tok.chars().all(|c| c.is_ascii_digit() || c == '.' || c == '_')
        && tok.chars().any(|c| c.is_ascii_digit())
}

fn operand_before(code: &str, op_at: usize) -> &str {
    let head = code[..op_at].trim_end();
    let start = head
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.' || c == ':'))
        .map_or(0, |p| p + 1);
    &head[start..]
}

fn operand_after(code: &str, after_op: usize) -> &str {
    let tail = code[after_op..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.' || c == ':'))
        .unwrap_or(tail.len());
    &tail[..end]
}

fn float_eq_hit(code: &str) -> Option<usize> {
    let mut from = 0;
    while from + 1 < code.len() {
        let rel = code[from..].find(['=', '!'])?;
        let at = from + rel;
        let two = code.get(at..at + 2).unwrap_or("");
        if two != "==" && two != "!=" {
            from = at + 1;
            continue;
        }
        // Exclude `<=`, `>=`, `=>`, `..=` style neighbors.
        let prev = code[..at].chars().next_back();
        let next2 = code.get(at + 2..at + 3).and_then(|s| s.chars().next());
        if matches!(prev, Some('<') | Some('>') | Some('=') | Some('!'))
            || matches!(next2, Some('='))
        {
            from = at + 2;
            continue;
        }
        if is_floatish_token(operand_before(code, at))
            || is_floatish_token(operand_after(code, at + 2))
        {
            return Some(at);
        }
        from = at + 2;
    }
    None
}

const TELEMETRY_RECORD_CALLS: [&str; 5] =
    [".span_enter(", ".span_exit(", ".span(", ".counter(", ".gauge("];

/// Threading/channel tokens that are only legal inside `idse-exec`.
const THREAD_TOKENS: [&str; 5] =
    ["thread::spawn", "thread::scope", "mpsc::channel", "mpsc::sync_channel", "crossbeam::thread"];

fn first_substring(code: &str, tokens: &'static [&'static str]) -> Option<(usize, &'static str)> {
    let mut best: Option<(usize, &'static str)> = None;
    for t in tokens {
        if let Some(at) = code.find(t) {
            if best.is_none_or(|(b, _)| at < b) {
                best = Some((at, t));
            }
        }
    }
    best
}

/// Run every applicable rule against one line.
pub fn check_line(ctx: &LineCtx<'_>) -> Vec<Hit> {
    let mut hits = Vec::new();
    let code = ctx.code;
    if code.trim().is_empty() {
        return hits;
    }
    let in_test_code = ctx.in_test || ctx.kind.is_test();
    let tier = crate_tier(ctx.crate_name);

    // unordered-iteration-in-report: library, non-test, report crates.
    if REPORT_CRATES.contains(&ctx.crate_name) && ctx.kind == FileKind::Library && !in_test_code {
        if let Some((at, w)) = first_word(code, &["HashMap", "HashSet"]) {
            hits.push(Hit {
                rule: RuleId::UnorderedIterationInReport,
                severity: Severity::Error,
                column: at,
                message: format!(
                    "`{w}` in a report path of `{}`: hash-seed iteration order can leak \
                     into reported values; use BTreeMap/BTreeSet or sort before reducing",
                    ctx.crate_name
                ),
            });
        }
    }

    // wall-clock-in-sim: every file of the sim-clock crates, tests included —
    // timing assertions there must also be expressed in sim time.
    if SIM_CLOCK_CRATES.contains(&ctx.crate_name) {
        if let Some((at, w)) = first_word(code, &["Instant", "SystemTime", "UNIX_EPOCH"]) {
            hits.push(Hit {
                rule: RuleId::WallClockInSim,
                severity: Severity::Error,
                column: at,
                message: format!(
                    "`{w}` in `{}`: sim time is the only clock in simulation crates",
                    ctx.crate_name
                ),
            });
        }
    }

    // unseeded-entropy: any non-test code in any crate.
    if !in_test_code {
        if let Some((at, w)) =
            first_word(code, &["thread_rng", "from_entropy", "RandomState", "OsRng"])
        {
            hits.push(Hit {
                rule: RuleId::UnseededEntropy,
                severity: Severity::Error,
                column: at,
                message: format!(
                    "`{w}` draws ambient entropy: derive a seeded RngStream instead so \
                     identical inputs yield byte-identical runs"
                ),
            });
        }
    }

    // panic-in-library: library code outside tests, tiered by crate.
    if ctx.kind == FileKind::Library && !in_test_code && tier != Tier::Tooling {
        let token = first_word(code, &["panic!", "todo!", "unimplemented!"])
            .or_else(|| code.find(".unwrap()").map(|at| (at, ".unwrap()")));
        if let Some((at, w)) = token {
            let severity = if tier == Tier::Strict { Severity::Error } else { Severity::Warn };
            hits.push(Hit {
                rule: RuleId::PanicInLibrary,
                severity,
                column: at,
                message: format!(
                    "`{w}` in library code: return Result, or use expect(\"invariant \
                     message\") for a true invariant"
                ),
            });
        }
    }

    // float-eq-comparison: library/bin code outside tests. Exact compares
    // are legitimate in tests (byte-identical determinism assertions).
    if matches!(ctx.kind, FileKind::Library | FileKind::Bin) && !in_test_code {
        if let Some(at) = float_eq_hit(code) {
            hits.push(Hit {
                rule: RuleId::FloatEqComparison,
                severity: Severity::Warn,
                column: at,
                message: "exact `==`/`!=` on a float operand: compare within a tolerance, \
                          or allowlist an exact-zero sentinel with a reason"
                    .to_string(),
            });
        }
    }

    // thread-outside-exec: every crate and file kind, tests included —
    // a test that spawns its own threads can observe (and then encode)
    // scheduling-dependent behavior. Only the executor crate, whose whole
    // job is the deterministic fan-out/reduce, may touch these.
    if ctx.crate_name != "idse-exec" {
        if let Some((at, w)) = first_substring(code, &THREAD_TOKENS) {
            hits.push(Hit {
                rule: RuleId::ThreadOutsideExec,
                severity: Severity::Error,
                column: at,
                message: format!(
                    "`{w}` outside idse-exec: route parallelism through the executor \
                     (Executor::par_map / ExperimentPlan::run) so results and telemetry \
                     merge in canonical job order"
                ),
            });
        }
    }

    // sink-side-effect, structural half: the telemetry crate must never
    // reference the simulator or scheduling machinery.
    if ctx.crate_name == "idse-telemetry" {
        if let Some((at, w)) = first_word(code, &["idse_sim", "EventQueue"]) {
            hits.push(Hit {
                rule: RuleId::SinkSideEffect,
                severity: Severity::Error,
                column: at,
                message: format!(
                    "`{w}` inside idse-telemetry: telemetry is observation-only and must \
                     not reach back into the simulator"
                ),
            });
        }
    }
    // sink-side-effect, call-site half: a record call entangled with
    // scheduling in one statement.
    if ctx.crate_name != "idse-telemetry" && !in_test_code {
        let records = TELEMETRY_RECORD_CALLS.iter().any(|t| code.contains(t));
        if records {
            if let Some(at) = code.find(".schedule(") {
                hits.push(Hit {
                    rule: RuleId::SinkSideEffect,
                    severity: Severity::Error,
                    column: at,
                    message: "telemetry record call entangled with event scheduling: \
                              observation must stay observation-only"
                        .to_string(),
                });
            }
        }
    }

    // materialized-feed-in-experiment: experiment-surface code (bins and
    // examples) building the whole test trace in memory. The streaming
    // path stays O(chunk) at any scale; a deliberately small materialized
    // run is fine, but must say so in an allow reason.
    if matches!(ctx.kind, FileKind::Bin | FileKind::Example) && !in_test_code {
        if let Some((at, w)) = first_substring(code, &["TestFeed::build(", ".build_feed()"]) {
            hits.push(Hit {
                rule: RuleId::MaterializedFeedInExperiment,
                severity: Severity::Warn,
                column: at,
                message: format!(
                    "`{w}` materializes the whole test feed in experiment code: prefer \
                     the streaming path (evaluate_stream / ShardFeed) for scale, or \
                     allowlist a deliberately small materialized run with a reason"
                ),
            });
        }
    }

    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx<'a>(crate_name: &'a str, code: &'a str) -> LineCtx<'a> {
        LineCtx { crate_name, kind: FileKind::Library, in_test: false, code }
    }

    #[test]
    fn rule_names_round_trip() {
        for r in RuleId::ALL {
            assert_eq!(RuleId::parse(r.name()), Some(r));
        }
        assert_eq!(RuleId::parse("no-such-rule"), None);
    }

    #[test]
    fn unordered_only_fires_in_report_crates() {
        let code = "use std::collections::HashMap;";
        assert!(check_line(&lib_ctx("idse-eval", code))
            .iter()
            .any(|h| h.rule == RuleId::UnorderedIterationInReport));
        assert!(check_line(&lib_ctx("idse-ids", code))
            .iter()
            .all(|h| h.rule != RuleId::UnorderedIterationInReport));
    }

    #[test]
    fn float_eq_detects_literals_and_casts() {
        assert!(float_eq_hit("if da == 0.0 {").is_some());
        assert!(float_eq_hit("while 1.5 != x {").is_some());
        assert!(float_eq_hit("a as f64 == b").is_some());
        assert!(float_eq_hit("n == 0").is_none());
        assert!(float_eq_hit("x.len() == 0").is_none());
        assert!(float_eq_hit("a <= 0.5").is_none());
        assert!(float_eq_hit("let y = t.0 == u;").is_none());
    }

    #[test]
    fn panic_severity_is_tiered() {
        let strict = check_line(&lib_ctx("idse-sim", "x.unwrap();"));
        assert_eq!(strict[0].severity, Severity::Error);
        let standard = check_line(&lib_ctx("idse-eval", "x.unwrap();"));
        assert_eq!(standard[0].severity, Severity::Warn);
        let tooling = check_line(&lib_ctx("idse-bench", "x.unwrap();"));
        assert!(tooling.is_empty());
    }

    #[test]
    fn threads_are_confined_to_the_executor_crate() {
        let code = "std::thread::spawn(move || work());";
        let hit = check_line(&lib_ctx("idse-eval", code));
        assert_eq!(hit[0].rule, RuleId::ThreadOutsideExec);
        assert_eq!(hit[0].severity, Severity::Error);
        assert!(check_line(&lib_ctx("idse-exec", code)).is_empty());
        // Fires even in test code: scheduling-dependent tests are how
        // nondeterminism gets encoded as "expected" behavior.
        let test_ctx = LineCtx {
            crate_name: "idse-ids",
            kind: FileKind::IntegrationTest,
            in_test: true,
            code: "let (tx, rx) = mpsc::channel();",
        };
        assert_eq!(check_line(&test_ctx)[0].rule, RuleId::ThreadOutsideExec);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(check_line(&lib_ctx("idse-sim", "x.unwrap_or(0);")).is_empty());
        assert!(check_line(&lib_ctx("idse-sim", "x.expect(\"invariant\");")).is_empty());
    }
}
