//! SARIF 2.1.0 output for CI code-scanning upload.
//!
//! One run, one driver (`idse-lint`), the full rule table from
//! [`RuleId::ALL`], and one result per finding. Transitive findings carry
//! their witness chain as a `codeFlows` thread flow; suppressed findings
//! are emitted as results with an `inSource` suppression whose
//! justification is the allow directive's written reason — so suppression
//! debt is visible in code-scanning UIs, not just in the stats table.
//!
//! The document is built on the insertion-ordered [`serde_json::Value`]
//! shim, so identical reports serialize to identical bytes — `--sarif` is
//! covered by the same `--jobs N` byte-identity guarantee as the text and
//! JSON outputs.

use crate::rules::RuleId;
use crate::{Finding, Report};
use serde_json::{json, Value};

const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

fn rule_index(rule: &str) -> u64 {
    RuleId::ALL.iter().position(|r| r.name() == rule).map(|i| i as u64).unwrap_or(0)
}

fn level(severity: &str) -> &'static str {
    if severity == "error" {
        "error"
    } else {
        "warning"
    }
}

fn location(f: &Finding) -> Value {
    json!({
        "physicalLocation": json!({
            "artifactLocation": json!({ "uri": f.file.clone() }),
            "region": json!({
                "startLine": f.line as u64,
                "startColumn": f.column as u64,
            }),
        }),
    })
}

fn result(f: &Finding, suppression: Option<&str>) -> Value {
    let mut obj: Vec<(String, Value)> = vec![
        ("ruleId".to_string(), Value::Str(f.rule.clone())),
        ("ruleIndex".to_string(), Value::U64(rule_index(&f.rule))),
        ("level".to_string(), Value::Str(level(&f.severity).to_string())),
        ("message".to_string(), json!({ "text": f.message.clone() })),
        ("locations".to_string(), Value::Array(vec![location(f)])),
    ];
    if !f.chain.is_empty() {
        let steps: Vec<Value> = f
            .chain
            .iter()
            .map(|step| {
                json!({
                    "location": json!({ "message": json!({ "text": step.clone() }) }),
                })
            })
            .collect();
        obj.push((
            "codeFlows".to_string(),
            Value::Array(vec![json!({
                "threadFlows": Value::Array(vec![json!({
                    "locations": Value::Array(steps),
                })]),
            })]),
        ));
    }
    if let Some(justification) = suppression {
        obj.push((
            "suppressions".to_string(),
            Value::Array(vec![json!({
                "kind": "inSource",
                "justification": justification.to_string(),
            })]),
        ));
    }
    Value::Object(obj)
}

/// Render a report as a SARIF 2.1.0 document (pretty-printed, no trailing
/// newline).
pub fn to_sarif(report: &Report) -> String {
    let rules: Vec<Value> = RuleId::ALL
        .iter()
        .map(|r| {
            json!({
                "id": r.name(),
                "shortDescription": json!({ "text": r.description() }),
            })
        })
        .collect();
    let mut results: Vec<Value> = report.findings.iter().map(|f| result(f, None)).collect();
    results.extend(report.suppressed.iter().map(|s| result(&s.finding, Some(&s.reason))));
    let doc = json!({
        "$schema": SCHEMA,
        "version": "2.1.0",
        "runs": Value::Array(vec![json!({
            "tool": json!({
                "driver": json!({
                    "name": "idse-lint",
                    "rules": Value::Array(rules),
                }),
            }),
            "results": Value::Array(results),
        })]),
    });
    serde_json::to_string_pretty(&doc).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_source;
    use crate::rules::FileKind;

    #[test]
    fn findings_become_results_with_rule_indexes() {
        let r = analyze_source(
            "crates/evalx/src/lib.rs",
            "idse-eval",
            FileKind::Library,
            "use std::collections::HashMap;\n",
        );
        let sarif = to_sarif(&r);
        let doc: Value = serde_json::from_str(&sarif).expect("sarif parses back");
        let Value::Object(top) = &doc else { panic!("not an object") };
        assert!(top.iter().any(|(k, v)| k == "version" && *v == Value::Str("2.1.0".into())));
        assert!(sarif.contains("\"ruleId\": \"unordered-iteration-in-report\""));
        assert!(sarif.contains("\"startLine\": 1"));
    }

    #[test]
    fn suppressions_carry_the_written_reason() {
        let src = "use std::collections::HashMap; // idse-lint: allow(unordered-iteration-in-report, reason = \"membership only\")\n";
        let r = analyze_source("x.rs", "idse-eval", FileKind::Library, src);
        let sarif = to_sarif(&r);
        assert!(sarif.contains("\"kind\": \"inSource\""));
        assert!(sarif.contains("\"justification\": \"membership only\""));
    }

    #[test]
    fn output_is_deterministic() {
        let run = || {
            let r =
                analyze_source("x.rs", "idse-sim", FileKind::Library, "let t = Instant::now();\n");
            to_sarif(&r)
        };
        assert_eq!(run(), run());
    }
}
