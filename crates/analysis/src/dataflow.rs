//! Phase-3 interprocedural value dataflow over the semantic model.
//!
//! The taint pass (phase 2) answers *reachability* questions — can this
//! function reach a wall clock? The rules here answer *value-flow*
//! questions the paper's reproducibility invariant depends on:
//!
//! * **Seed lineage** (`literal-seed`, `seed-label-reuse`,
//!   `seed-label-collision`) — every RNG stream must be constructed from
//!   `derive_seed(master, label)` with a label that is unique per stream
//!   *and* collision-free under the actual FNV-1a/SplitMix64 derivation,
//!   which this pass evaluates at lint time. Two labels that hash to the
//!   same 64-bit value produce byte-identical streams even though the
//!   source reads as if they were independent.
//! * **Reduction order** (`unordered-float-reduce`) — float addition is
//!   not associative, so accumulating `par_map` output in anything but
//!   canonical order makes the result a function of `--jobs N`. The
//!   sanctioned reduction is `reduce_in_order` (or staying inside
//!   `idse-exec`, whose whole job is the canonical-order merge).
//! * **Hash purity** (`impure-store-record`) — `idse-store` run ids hash
//!   the canonical record content. Stamps, telemetry summaries and wall
//!   clocks are *annotation* channels (`with_stamp`/`with_telemetry`,
//!   excluded from the hash); letting such a value flow into
//!   `RunDraft::new`/`record` arguments would make run identity depend on
//!   when or how a run was observed rather than what it computed.
//!
//! The pass is serial and deterministic: files in canonical order, sites
//! in (line, column) order, groupings in `BTreeMap`s. Like the taint
//! rules, every finding carries a witness chain and honors `allow(...)`
//! both at the finding line and at the chain's source line (the shield).

use crate::model::{FileMeta, FileModel};
use crate::rules::{self, RuleId, Severity, Tier};
use crate::source::Line;
use std::collections::BTreeMap;

/// Read-only view of one analyzed file, borrowed from phase-1 output.
pub struct FileView<'a> {
    /// Path/crate/kind metadata.
    pub meta: &'a FileMeta,
    /// The extracted semantic model.
    pub model: &'a FileModel,
    /// Masked lines (code + literals channels).
    pub lines: &'a [Line],
    /// Per-line `#[cfg(test)]` flags.
    pub test_flags: &'a [bool],
}

/// One dataflow finding before allow-directive resolution.
#[derive(Debug, Clone)]
pub struct DataflowHit {
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity after crate tiering.
    pub severity: Severity,
    /// File index of the reporting site.
    pub file: usize,
    /// 0-based line of the reporting site.
    pub line: usize,
    /// 0-based column of the reporting site.
    pub column: usize,
    /// Human message.
    pub message: String,
    /// Witness chain: origin → flow step(s) → sink token.
    pub chain: Vec<String>,
    /// `(file, line)` of the chain's origin, when distinct from the
    /// finding site: an allow there shields every downstream finding.
    pub source: Option<(usize, usize)>,
}

/// FNV-1a over a label, exactly as `idse_sim::rng::fnv1a`.
pub fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The exact seed derivation `RngStream::derive` performs, reimplemented
/// so collisions are judged by the real function, not a proxy. SplitMix64
/// is a bijection, so two labels collide under *any* master seed iff they
/// collide under master 0.
pub fn eval_derive_seed(master: u64, label: &str) -> u64 {
    splitmix64(master ^ fnv1a(label))
}

/// One parsed call argument: its (roughly reassembled) text and the first
/// string literal that lexes inside it, with the literal's location.
#[derive(Debug, Clone, Default)]
struct Arg {
    text: String,
    lit: Option<(String, usize, usize)>,
}

/// Parse the arguments of a call whose opening parenthesis sits at
/// `(start_line, open_col)` in the masked code. Joins up to 12 physical
/// lines until the parentheses balance; literal contents are substituted
/// back into the argument text so a constant label reads as `"label"`.
/// Returns `None` when the span does not close in the window.
fn call_args(lines: &[Line], start_line: usize, open_col: usize) -> Option<Vec<Arg>> {
    let mut args: Vec<Arg> = Vec::new();
    let mut depth = 0i32;
    for (li, line) in lines.iter().enumerate().take(start_line + 12).skip(start_line) {
        let from = if li == start_line { open_col } else { 0 };
        for (col, c) in line.code.chars().enumerate().skip(from) {
            match c {
                '(' | '[' | '{' => {
                    depth += 1;
                    if depth == 1 {
                        args.push(Arg::default());
                        continue;
                    }
                }
                ')' | ']' | '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(args);
                    }
                }
                ',' if depth == 1 => {
                    args.push(Arg::default());
                    continue;
                }
                '"' if depth >= 1 => {
                    if let Some(cur) = args.last_mut() {
                        if let Some((_, content)) = line.literals.iter().find(|(lc, _)| *lc == col)
                        {
                            if cur.lit.is_none() {
                                cur.lit = Some((content.clone(), li, col));
                            }
                            cur.text.push('"');
                            cur.text.push_str(content);
                            continue;
                        }
                    }
                }
                _ => {}
            }
            if depth >= 1 {
                if let Some(cur) = args.last_mut() {
                    cur.text.push(c);
                }
            }
        }
        if depth >= 1 {
            if let Some(cur) = args.last_mut() {
                cur.text.push(' ');
            }
        }
    }
    None
}

/// Every word-boundary occurrence of `word` in `code`, in order.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while from < code.len() {
        let Some(at) = rules::word_at(&code[from..], word) else { break };
        out.push(from + at);
        from = from + at + word.len();
    }
    out
}

fn is_int_literal(t: &str) -> bool {
    let t = t.trim().trim_end_matches("u64").trim_end_matches("u32").trim_end_matches('_');
    if let Some(hex) = t.strip_prefix("0x") {
        return !hex.is_empty() && hex.chars().all(|c| c.is_ascii_hexdigit() || c == '_');
    }
    !t.is_empty() && t.chars().all(|c| c.is_ascii_digit() || c == '_')
}

fn is_plain_ident(t: &str) -> bool {
    !t.is_empty()
        && t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
        && t.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// The qualified name of the function owning `line` in `view`, or a
/// `path:line` locator for top-level code.
fn owner_qual(view: &FileView<'_>, line: usize) -> String {
    view.model
        .line_owners
        .get(line)
        .copied()
        .flatten()
        .and_then(|local| view.model.fns.get(local))
        .map(|f| f.qual.clone())
        .unwrap_or_else(|| format!("{}:{}", view.meta.path, line + 1))
}

fn in_test(view: &FileView<'_>, line: usize) -> bool {
    view.test_flags.get(line).copied().unwrap_or(false) || view.meta.kind.is_test()
}

/// Tiered severity for the seed-lineage and reduction rules: substrate
/// crates error, harness crates warn (reuse/literal) or error (reduce),
/// tooling crates are out of scope.
fn lineage_severity(crate_name: &str) -> Option<Severity> {
    match rules::crate_tier(crate_name) {
        Tier::Strict => Some(Severity::Error),
        Tier::Standard => Some(Severity::Warn),
        Tier::Tooling => None,
    }
}

/// A constant-label stream-construction site.
#[derive(Debug, Clone)]
struct LabelSite {
    file: usize,
    line: usize,
    column: usize,
    crate_name: String,
    label: String,
    qual: String,
}

/// Resolve a same-file `const NAME: &str = "...";` to its literal value.
fn resolve_const(view: &FileView<'_>, ident: &str) -> Option<String> {
    for line in view.lines {
        if let Some(at) = rules::word_at(&line.code, "const") {
            let rest = &line.code[at + 5..];
            let rest = rest.trim_start();
            if rest.starts_with(ident)
                && rest[ident.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| !c.is_alphanumeric() && c != '_')
            {
                return line.literals.first().map(|(_, v)| v.clone());
            }
        }
    }
    None
}

/// Extract the constant label of a 2-argument derive call, if the second
/// argument is a string literal or a same-file string const. `format!`
/// labels and runtime expressions are non-constant and return `None`.
fn constant_label(view: &FileView<'_>, args: &[Arg]) -> Option<String> {
    if args.len() != 2 {
        return None;
    }
    let t = args[1].text.trim().trim_start_matches('&').trim_start();
    if t.starts_with('"') {
        return args[1].lit.as_ref().map(|(v, _, _)| v.clone());
    }
    let ident = t.trim_end();
    if is_plain_ident(ident) {
        return resolve_const(view, ident);
    }
    None
}

/// Collect every non-test construction site that uses a constant label:
/// `derive_seed(master, LABEL)` and `RngStream::derive(master, LABEL)`.
fn label_sites(files: &[FileView<'_>]) -> Vec<LabelSite> {
    let mut out = Vec::new();
    for (fi, view) in files.iter().enumerate() {
        for (li, line) in view.lines.iter().enumerate() {
            if in_test(view, li) {
                continue;
            }
            for at in word_positions(&line.code, "derive_seed") {
                let open = at + "derive_seed".len();
                if !line.code[open..].starts_with('(') {
                    continue;
                }
                // The defining `fn derive_seed` header is not a call site.
                if line.code[..at].trim_end().ends_with("fn") {
                    continue;
                }
                let Some(args) = call_args(view.lines, li, open) else { continue };
                if let Some(label) = constant_label(view, &args) {
                    out.push(LabelSite {
                        file: fi,
                        line: li,
                        column: at,
                        crate_name: view.meta.crate_name.clone(),
                        label,
                        qual: owner_qual(view, li),
                    });
                }
            }
            for at in word_positions(&line.code, "derive") {
                if !line.code[..at].ends_with("RngStream::") {
                    continue;
                }
                let open = at + "derive".len();
                if !line.code[open..].starts_with('(') {
                    continue;
                }
                let Some(args) = call_args(view.lines, li, open) else { continue };
                if let Some(label) = constant_label(view, &args) {
                    out.push(LabelSite {
                        file: fi,
                        line: li,
                        column: at,
                        crate_name: view.meta.crate_name.clone(),
                        label,
                        qual: owner_qual(view, li),
                    });
                }
            }
        }
    }
    out.sort_by_key(|a| (a.file, a.line, a.column));
    out.dedup_by(|a, b| (a.file, a.line, a.column) == (b.file, b.line, b.column));
    out
}

/// `seed-label-reuse`: one constant label at two distinct construction
/// sites in the same crate. The first site (in canonical order) is the
/// origin; later sites report, so an allow at the origin shields all.
fn check_label_reuse(files: &[FileView<'_>], sites: &[LabelSite], out: &mut Vec<DataflowHit>) {
    let mut by_key: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, s) in sites.iter().enumerate() {
        by_key.entry((s.crate_name.clone(), s.label.clone())).or_default().push(i);
    }
    for ((crate_name, label), idxs) in by_key {
        let Some(severity) = lineage_severity(&crate_name) else { continue };
        let mut distinct: Vec<usize> = Vec::new();
        for &i in &idxs {
            let s = &sites[i];
            if !distinct.iter().any(|&j| sites[j].file == s.file && sites[j].line == s.line) {
                distinct.push(i);
            }
        }
        if distinct.len() < 2 {
            continue;
        }
        let first = &sites[distinct[0]];
        for &i in &distinct[1..] {
            let s = &sites[i];
            out.push(DataflowHit {
                rule: RuleId::SeedLabelReuse,
                severity,
                file: s.file,
                line: s.line,
                column: s.column,
                message: format!(
                    "constant seed label \"{label}\" already used at {}:{}: the streams \
                     are identical, so the draws are correlated — give each \
                     construction site its own label",
                    files[first.file].meta.path,
                    first.line + 1,
                ),
                chain: vec![first.qual.clone(), s.qual.clone(), format!("label \"{label}\"")],
                source: Some((first.file, first.line)),
            });
        }
    }
}

/// `seed-label-collision`: two *distinct* constant labels whose
/// `derive_seed` values collide, judged by evaluating the real derivation.
fn check_label_collision(files: &[FileView<'_>], sites: &[LabelSite], out: &mut Vec<DataflowHit>) {
    let mut by_hash: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, s) in sites.iter().enumerate() {
        by_hash.entry(eval_derive_seed(0, &s.label)).or_default().push(i);
    }
    for (hash, idxs) in by_hash {
        let mut labels: Vec<&str> = idxs.iter().map(|&i| sites[i].label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        if labels.len() < 2 {
            continue;
        }
        for &i in &idxs {
            let s = &sites[i];
            let other = labels
                .iter()
                .find(|l| **l != s.label)
                .expect("collision groups hold at least two distinct labels");
            let other_site = idxs
                .iter()
                .map(|&j| &sites[j])
                .find(|o| o.label == **other)
                .expect("every grouped label has a site");
            out.push(DataflowHit {
                rule: RuleId::SeedLabelCollision,
                severity: Severity::Error,
                file: s.file,
                line: s.line,
                column: s.column,
                message: format!(
                    "labels \"{}\" and \"{}\" collide under derive_seed (both derive \
                     {hash:#018x} for every master seed): the streams are identical; \
                     rename one label ({}:{})",
                    s.label,
                    other,
                    files[other_site.file].meta.path,
                    other_site.line + 1,
                ),
                chain: vec![
                    format!("{} label \"{}\"", s.qual, s.label),
                    format!("{} label \"{}\"", other_site.qual, other),
                    format!("derive_seed -> {hash:#018x}"),
                ],
                source: None,
            });
        }
    }
}

/// How the seed argument of a `seed_from_u64` call originates.
enum SeedOrigin {
    /// Flows through `derive_seed(master, label)`: sanctioned.
    Derived,
    /// Bottoms out in an integer literal, with the flow steps taken.
    Literal { value: String, steps: Vec<String>, origin: Option<(usize, usize)> },
    /// Cannot be classified: stay silent (under-approximation).
    Unknown,
}

fn rhs_of_let(code: &str, ident: &str) -> Option<String> {
    let at = rules::word_at(code, "let")?;
    let rest = code[at + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    if !rest.starts_with(ident) {
        return None;
    }
    let after = &rest[ident.len()..];
    if after.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    let (_, rhs) = after.split_once('=')?;
    Some(rhs.trim().trim_end_matches(';').trim_end().to_string())
}

/// Classify the first argument of a `seed_from_u64` call within the body
/// of the owning function (`body` = 0-based lines owned by the same fn).
/// `view_idx` is `view`'s index in `files`, for origin coordinates.
fn classify_seed_expr(
    files: &[FileView<'_>],
    view: &FileView<'_>,
    view_idx: usize,
    body: &[usize],
    call_line: usize,
    expr: &str,
) -> SeedOrigin {
    let t = expr.trim();
    if word_positions(t, "derive_seed")
        .iter()
        .any(|&at| t[at + "derive_seed".len()..].trim_start().starts_with('('))
    {
        return SeedOrigin::Derived;
    }
    if is_int_literal(t) {
        return SeedOrigin::Literal { value: t.to_string(), steps: Vec::new(), origin: None };
    }
    if is_plain_ident(t) {
        // A local binding: find the defining `let` earlier in the body.
        for &li in body.iter().rev().filter(|&&li| li < call_line) {
            let Some(rhs) = rhs_of_let(&view.lines[li].code, t) else { continue };
            if word_positions(&rhs, "derive_seed")
                .iter()
                .any(|&at| rhs[at + "derive_seed".len()..].trim_start().starts_with('('))
            {
                return SeedOrigin::Derived;
            }
            if is_int_literal(&rhs) {
                return SeedOrigin::Literal {
                    value: rhs.clone(),
                    steps: vec![format!("let {t} = {rhs}")],
                    origin: Some((view_idx, li)),
                };
            }
            return SeedOrigin::Unknown;
        }
        return SeedOrigin::Unknown;
    }
    // A call to a same-crate free function: classify its body.
    if let Some(open) = t.find('(') {
        let name = &t[..open];
        if is_plain_ident(name) {
            let mut matches: Vec<(usize, usize)> = Vec::new();
            for (fi, v) in files.iter().enumerate() {
                if v.meta.crate_name != view.meta.crate_name {
                    continue;
                }
                for (local, f) in v.model.fns.iter().enumerate() {
                    if f.name == name && f.self_ty.is_none() {
                        matches.push((fi, local));
                    }
                }
            }
            if let [(fi, local)] = matches[..] {
                let v = &files[fi];
                let body_lines: Vec<usize> = v
                    .model
                    .line_owners
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| **o == Some(local))
                    .map(|(li, _)| li)
                    .collect();
                let derived = body_lines.iter().any(|&li| {
                    word_positions(&v.lines[li].code, "derive_seed")
                        .iter()
                        .any(|&at| v.lines[li].code[at + "derive_seed".len()..].starts_with('('))
                });
                if derived {
                    return SeedOrigin::Derived;
                }
                // A one-expression literal body: `fn f() -> u64 { 42 }`.
                for &li in &body_lines {
                    let code = v.lines[li].code.trim();
                    let tail = code.rsplit('{').next().unwrap_or(code);
                    let tail = tail.trim().trim_end_matches('}').trim();
                    let tail = tail.strip_prefix("return").unwrap_or(tail);
                    let tail = tail.trim().trim_end_matches(';').trim();
                    if is_int_literal(tail) && !tail.is_empty() {
                        let fn_qual = v.model.fns[local].qual.clone();
                        return SeedOrigin::Literal {
                            value: tail.to_string(),
                            steps: vec![format!("{fn_qual} -> {tail}")],
                            origin: Some((fi, li)),
                        };
                    }
                }
            }
        }
    }
    SeedOrigin::Unknown
}

/// `literal-seed`: an RNG constructed from a literal seed instead of a
/// `derive_seed(master, label)` derivation. Files that *define*
/// `derive_seed` are exempt — they are the sanctioned implementation.
fn check_literal_seed(files: &[FileView<'_>], out: &mut Vec<DataflowHit>) {
    for (fi, view) in files.iter().enumerate() {
        let Some(severity) = lineage_severity(&view.meta.crate_name) else { continue };
        if view.model.fns.iter().any(|f| f.name == "derive_seed") {
            continue;
        }
        for (li, line) in view.lines.iter().enumerate() {
            if in_test(view, li) {
                continue;
            }
            for at in word_positions(&line.code, "seed_from_u64") {
                let open = at + "seed_from_u64".len();
                if !line.code[open..].starts_with('(') {
                    continue;
                }
                let Some(args) = call_args(view.lines, li, open) else { continue };
                let Some(arg) = args.first() else { continue };
                let body: Vec<usize> = view
                    .model
                    .line_owners
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| **o == view.model.line_owners.get(li).copied().flatten())
                    .map(|(bl, _)| bl)
                    .collect();
                match classify_seed_expr(files, view, fi, &body, li, &arg.text) {
                    SeedOrigin::Literal { value, steps, origin } => {
                        let mut chain = vec![owner_qual(view, li)];
                        chain.extend(steps);
                        chain.push(format!("seed_from_u64({value})"));
                        out.push(DataflowHit {
                            rule: RuleId::LiteralSeed,
                            severity,
                            file: fi,
                            line: li,
                            column: at,
                            message: format!(
                                "RNG seeded from literal `{value}`: derive the seed via \
                                 derive_seed(master, label) so the run's master seed \
                                 reaches every stream"
                            ),
                            chain,
                            source: origin,
                        });
                    }
                    SeedOrigin::Derived | SeedOrigin::Unknown => {}
                }
            }
        }
    }
}

fn floatish(tok: &str) -> bool {
    rules::is_floatish_token(tok)
}

/// `unordered-float-reduce`: float accumulation over `par_map` output
/// outside a `reduce_in_order` callback or the executor crate.
fn check_float_reduce(files: &[FileView<'_>], out: &mut Vec<DataflowHit>) {
    for (fi, view) in files.iter().enumerate() {
        let crate_name = view.meta.crate_name.as_str();
        if crate_name == "idse-exec" || rules::crate_tier(crate_name) == Tier::Tooling {
            continue;
        }
        // Group lines by owning function.
        let mut by_fn: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (li, owner) in view.model.line_owners.iter().enumerate() {
            if let Some(local) = owner {
                if !in_test(view, li) {
                    by_fn.entry(*local).or_default().push(li);
                }
            }
        }
        for (local, body) in by_fn {
            let qual = view.model.fns[local].qual.clone();
            // par_map bindings in this body.
            let mut bindings: Vec<(String, usize)> = Vec::new();
            for &li in &body {
                let code = &view.lines[li].code;
                if !(code.contains(".par_map(") || code.contains(".try_par_map(")) {
                    continue;
                }
                // Inline reduce on the same statement is still unordered —
                // unless the statement routes through reduce_in_order.
                if code.contains("reduce_in_order(") {
                    continue;
                }
                if let Some(hit) = float_sum_column(code) {
                    out.push(float_reduce_hit(view, fi, li, hit, &qual, "par_map output", li));
                    continue;
                }
                let Some(at) = rules::word_at(code, "let") else { continue };
                let rest = code[at + 3..].trim_start();
                let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                let end =
                    rest.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(rest.len());
                let ident = &rest[..end];
                if is_plain_ident(ident) {
                    bindings.push((ident.to_string(), li));
                }
            }
            if bindings.is_empty() {
                continue;
            }
            // A binding handed to reduce_in_order is sanctioned outright.
            bindings.retain(|(ident, _)| {
                !body.iter().any(|&li| {
                    let code = &view.lines[li].code;
                    code.contains("reduce_in_order(") && rules::word_at(code, ident).is_some()
                })
            });
            for (ident, bind_line) in bindings {
                let mut loop_var: Option<String> = None;
                for &li in body.iter().filter(|&&li| li >= bind_line) {
                    let code = &view.lines[li].code;
                    if li > bind_line && rules::word_at(code, &ident).is_some() {
                        // Direct reductions over the binding.
                        if let Some(col) = float_sum_column(code) {
                            out.push(float_reduce_hit(view, fi, li, col, &qual, &ident, bind_line));
                        }
                        // A `for v in &binding` loop: remember the loop var.
                        if let Some(at) = rules::word_at(code, "for") {
                            let rest = code[at + 3..].trim_start();
                            let vend = rest
                                .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                                .unwrap_or(rest.len());
                            let v = &rest[..vend];
                            if is_plain_ident(v) && rules::word_at(&rest[vend..], "in").is_some() {
                                loop_var = Some(v.to_string());
                            }
                        }
                    }
                    if let Some(v) = loop_var.clone() {
                        if let Some(op_at) = code.find("+=") {
                            let rhs =
                                code[op_at + 2..].trim_start().trim_start_matches(['*', '&', '(']);
                            let rend = rhs
                                .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
                                .unwrap_or(rhs.len());
                            let rtok = &rhs[..rend];
                            let lhs_float = floatish(operand_head(&code[..op_at]));
                            if rtok == v
                                || rtok.starts_with(&format!("{v}."))
                                || floatish(rtok)
                                || lhs_float
                            {
                                out.push(float_reduce_hit(
                                    view, fi, li, op_at, &qual, &ident, bind_line,
                                ));
                                loop_var = None;
                            }
                        }
                    }
                }
            }
        }
    }
}

fn operand_head(head: &str) -> &str {
    let head = head.trim_end();
    let start =
        head.rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.')).map_or(0, |p| p + 1);
    &head[start..]
}

/// Column of an explicitly-float unordered reduction on this line:
/// `.sum::<f64>()`/`.sum::<f32>()` or `.fold(<float literal>, ...)`.
fn float_sum_column(code: &str) -> Option<usize> {
    for pat in [".sum::<f64", ".sum::<f32"] {
        if let Some(at) = code.find(pat) {
            return Some(at);
        }
    }
    if let Some(at) = code.find(".fold(") {
        let init = code[at + ".fold(".len()..].trim_start();
        let end = init
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '_'))
            .unwrap_or(init.len());
        if floatish(&init[..end]) {
            return Some(at);
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn float_reduce_hit(
    view: &FileView<'_>,
    file: usize,
    line: usize,
    column: usize,
    qual: &str,
    binding: &str,
    bind_line: usize,
) -> DataflowHit {
    DataflowHit {
        rule: RuleId::UnorderedFloatReduce,
        severity: Severity::Error,
        file,
        line,
        column,
        message: format!(
            "float accumulation over par_map output `{binding}` outside \
             reduce_in_order: float addition is not associative, so the result \
             depends on --jobs N; reduce in canonical job order"
        ),
        chain: vec![
            qual.to_string(),
            format!("par_map output `{binding}` ({}:{})", view.meta.path, bind_line + 1),
            view.lines.get(line).map(|l| l.code.trim().to_string()).unwrap_or_default(),
        ],
        source: Some((file, bind_line)),
    }
}

/// Taint source kinds for `impure-store-record`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PuritySource {
    Stamp,
    WallClock,
    Telemetry,
}

impl PuritySource {
    fn phrase(self) -> &'static str {
        match self {
            PuritySource::Stamp => "--stamp CLI value",
            PuritySource::WallClock => "wall-clock value",
            PuritySource::Telemetry => "telemetry summary",
        }
    }
}

const TELEMETRY_FNS: [&str; 4] =
    ["telemetry_annotation(", "summarize(", "snapshot_events(", "dropped_events("];

/// Binding introduced on this line: `let [mut] x =`, `if let Some(x) =`,
/// or `while let Some(x) =`.
fn bound_ident(code: &str) -> Option<(String, String)> {
    let at = rules::word_at(code, "let")?;
    let rest = code[at + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let rest = rest
        .strip_prefix("Some(")
        .or_else(|| rest.strip_prefix("Ok("))
        .unwrap_or(rest)
        .trim_start();
    let end = rest.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(rest.len());
    let ident = &rest[..end];
    if !is_plain_ident(ident) {
        return None;
    }
    let rhs = code.split_once('=').map(|(_, r)| r.to_string()).unwrap_or_default();
    Some((ident.to_string(), rhs))
}

/// `impure-store-record`: a value tainted by `--stamp`, a wall clock, or
/// a telemetry summary flows into the canonical-record path
/// (`RunDraft::new` / `.record(` / `.record_noted(`) whose content the
/// run id hashes. `with_stamp`/`with_telemetry` are the sanctioned,
/// hash-excluded annotation channels and are not sinks.
fn check_store_purity(files: &[FileView<'_>], out: &mut Vec<DataflowHit>) {
    const SINKS: [&str; 3] = ["RunDraft::new(", ".record(", ".record_noted("];
    for (fi, view) in files.iter().enumerate() {
        let mut by_fn: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (li, owner) in view.model.line_owners.iter().enumerate() {
            if let Some(local) = owner {
                if !in_test(view, li) {
                    by_fn.entry(*local).or_default().push(li);
                }
            }
        }
        for (local, body) in by_fn {
            // Pass 1: source bindings.
            let mut tainted: Vec<(String, PuritySource, usize)> = Vec::new();
            for &li in &body {
                let line = &view.lines[li];
                let Some((ident, rhs)) = bound_ident(&line.code) else { continue };
                let source =
                    if rhs.contains(".opt(") && line.literals.iter().any(|(_, v)| v == "--stamp") {
                        Some(PuritySource::Stamp)
                    } else if ["Instant", "SystemTime", "UNIX_EPOCH"]
                        .iter()
                        .any(|w| rules::word_at(&rhs, w).is_some())
                    {
                        Some(PuritySource::WallClock)
                    } else if TELEMETRY_FNS.iter().any(|f| rhs.contains(f)) {
                        Some(PuritySource::Telemetry)
                    } else {
                        None
                    };
                if let Some(source) = source {
                    tainted.push((ident, source, li));
                }
            }
            if tainted.is_empty() {
                continue;
            }
            // Pass 2: one round of local propagation through lets.
            let mut derived: Vec<(String, PuritySource, usize)> = Vec::new();
            for &li in &body {
                let Some((ident, rhs)) = bound_ident(&view.lines[li].code) else { continue };
                if tainted.iter().any(|(t, _, _)| t == &ident) {
                    continue;
                }
                if let Some((t, src, origin)) =
                    tainted.iter().find(|(t, _, _)| rules::word_at(&rhs, t).is_some())
                {
                    let _ = t;
                    derived.push((ident, *src, *origin));
                }
            }
            tainted.extend(derived);
            // Pass 3: sinks.
            for &li in &body {
                let code = &view.lines[li].code;
                for sink in SINKS {
                    let Some(at) = code.find(sink) else { continue };
                    let open = at + sink.len() - 1;
                    let Some(args) = call_args(view.lines, li, open) else { continue };
                    let hit = tainted.iter().find(|(ident, _, _)| {
                        args.iter().any(|a| rules::word_at(&a.text, ident).is_some())
                    });
                    let Some((ident, src, origin_line)) = hit else { continue };
                    let qual = view.model.fns[local].qual.clone();
                    let sink_name = sink.trim_start_matches('.').trim_end_matches('(');
                    out.push(DataflowHit {
                        rule: RuleId::ImpureStoreRecord,
                        severity: Severity::Error,
                        file: fi,
                        line: li,
                        column: at,
                        message: format!(
                            "{} `{ident}` flows into `{sink_name}`: run ids hash the \
                             canonical record content, which must exclude ambient \
                             inputs — use with_stamp/with_telemetry, the annotation \
                             channels the hash ignores",
                            src.phrase(),
                        ),
                        chain: vec![
                            qual,
                            format!(
                                "{} `{ident}` ({}:{})",
                                src.phrase(),
                                view.meta.path,
                                origin_line + 1
                            ),
                            format!("{sink_name}(..)"),
                        ],
                        source: Some((fi, *origin_line)),
                    });
                }
            }
        }
    }
}

/// Run every dataflow rule over the workspace. Findings come back in
/// deterministic (file, line, column, rule) order.
pub fn analyze(files: &[FileView<'_>]) -> Vec<DataflowHit> {
    let mut out = Vec::new();
    let sites = label_sites(files);
    check_label_reuse(files, &sites, &mut out);
    check_label_collision(files, &sites, &mut out);
    check_literal_seed(files, &mut out);
    check_float_reduce(files, &mut out);
    check_store_purity(files, &mut out);
    out.sort_by_key(|a| (a.file, a.line, a.column, a.rule));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_matches_the_sim_implementation() {
        // Pinned values: eval_derive_seed must track idse_sim::rng exactly
        // (the sim crate has its own equivalents; the constants are the
        // published FNV-1a / SplitMix64 parameters).
        assert_eq!(fnv1a(""), 0xcbf29ce484222325);
        assert_eq!(fnv1a("a"), 0xaf63dc4c8601ec8c);
        assert_ne!(eval_derive_seed(0, "x"), eval_derive_seed(0, "y"));
        assert_ne!(eval_derive_seed(0, "x"), eval_derive_seed(1, "x"));
    }

    #[test]
    fn known_fnv_collision_pair_collides() {
        // Found by Pollard rho over FNV-1a-64; the seed-label-collision
        // rule exists because such pairs are findable in practice.
        let a = "L39218a36c129be09";
        let b = "Lb29619b0f43f11e9";
        assert_eq!(fnv1a(a), fnv1a(b));
        assert_eq!(eval_derive_seed(7, a), eval_derive_seed(7, b));
    }

    #[test]
    fn int_literals_classify() {
        assert!(is_int_literal("42"));
        assert!(is_int_literal("0xdead_beef"));
        assert!(is_int_literal("1_000u64"));
        assert!(!is_int_literal("master"));
        assert!(!is_int_literal("derive_seed(0, \"x\")"));
    }
}
