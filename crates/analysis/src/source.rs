//! Line-level source model: a small lexer that separates *code* from
//! *strings* and *comments*, plus `#[cfg(test)]` region tracking and
//! `// idse-lint: allow(...)` directive parsing.
//!
//! The rule engine never looks at raw file text. It looks at the masked
//! `code` view (string and char literal contents blanked, comments
//! stripped) so a rule token appearing inside a string — say, the lint's
//! own rule table — can never fire, and at the `comment` view only to
//! find allow directives. This is what makes a line-level analyzer
//! honest: the classic failure mode of grep-based lint is matching
//! inside literals.

use serde::{Deserialize, Serialize};

/// One physical source line, split into its lexical channels.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Line {
    /// Code with string/char-literal contents masked to spaces and
    /// comments removed. Delimiting quotes are kept so token boundaries
    /// survive masking.
    pub code: String,
    /// Concatenated text of `//` line comments on this line (without the
    /// leading slashes). Block-comment text is dropped: allow directives
    /// are line comments by definition.
    pub comment: String,
    /// String literals that open *and* close on this line, as
    /// `(column, content)` where `column` is the char offset of the
    /// opening quote in the masked `code` channel and `content` is the
    /// literal text as written (escape sequences are not decoded).
    /// Multi-line literals are not recorded: the seed-label rules only
    /// consume constant labels, which are single-line by convention.
    pub literals: Vec<(usize, String)>,
}

enum LexState {
    Code,
    LineComment,
    /// `///` or `//!`: ends at newline like a line comment, but its text
    /// is discarded — documentation is not a directive channel.
    DocComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

fn is_raw_str_start(chars: &[char], i: usize) -> Option<u32> {
    // `r"`, `r#"`, `r##"`... (caller has already seen `r` or `br` at `i`).
    let mut j = i + 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Lex `text` into per-line code/comment channels.
pub fn mask(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut state = LexState::Code;
    let mut i = 0usize;
    // In-flight string literal: (line index, opening-quote column,
    // content so far). Dropped at close if the literal spanned lines.
    let mut lit: Option<(usize, usize, String)> = None;

    macro_rules! cur {
        () => {
            lines.last_mut().expect("lines starts non-empty and only grows")
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, LexState::LineComment | LexState::DocComment) {
                state = LexState::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        match state {
            LexState::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // Doc comments (`///`, `//!`) are documentation, not a
                    // channel for directives: drop their text so an allow
                    // example in rustdoc can never act as a real allow.
                    let doc = matches!(chars.get(i + 2), Some('/') | Some('!'));
                    state = if doc { LexState::DocComment } else { LexState::LineComment };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = LexState::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    lit = Some((lines.len() - 1, cur!().code.chars().count(), String::new()));
                    cur!().code.push('"');
                    state = LexState::Str;
                    i += 1;
                } else if c == 'r'
                    && !prev_is_ident(&lines, c)
                    && is_raw_str_start(&chars, i).is_some()
                {
                    let hashes = is_raw_str_start(&chars, i).unwrap_or(0);
                    lit = Some((lines.len() - 1, cur!().code.chars().count(), String::new()));
                    cur!().code.push('"');
                    state = LexState::RawStr(hashes);
                    i += 2 + hashes as usize; // r, hashes, opening quote
                } else if c == 'b' && next == Some('"') {
                    lit = Some((lines.len() - 1, cur!().code.chars().count(), String::new()));
                    cur!().code.push('"');
                    state = LexState::Str;
                    i += 2;
                } else if c == 'b' && next == Some('r') && is_raw_str_start(&chars, i + 1).is_some()
                {
                    let hashes = is_raw_str_start(&chars, i + 1).unwrap_or(0);
                    lit = Some((lines.len() - 1, cur!().code.chars().count(), String::new()));
                    cur!().code.push('"');
                    state = LexState::RawStr(hashes);
                    i += 3 + hashes as usize;
                } else if c == 'b' && next == Some('\'') {
                    cur!().code.push('\'');
                    state = LexState::CharLit;
                    i += 2;
                } else if c == '\'' {
                    // Char literal vs lifetime: a char literal is either an
                    // escape (`'\n'`) or exactly one char followed by `'`.
                    if next == Some('\\') || (chars.get(i + 2) == Some(&'\'') && next != Some('\''))
                    {
                        cur!().code.push('\'');
                        state = LexState::CharLit;
                        i += 1;
                    } else {
                        cur!().code.push('\'');
                        i += 1;
                    }
                } else {
                    cur!().code.push(c);
                    i += 1;
                }
            }
            LexState::LineComment => {
                cur!().comment.push(c);
                i += 1;
            }
            LexState::DocComment => {
                i += 1;
            }
            LexState::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = LexState::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state =
                        if depth == 1 { LexState::Code } else { LexState::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            LexState::Str => {
                if c == '\\' {
                    cur!().code.push(' ');
                    if let Some((_, _, buf)) = lit.as_mut() {
                        buf.push('\\');
                    }
                    // Skip the escaped char unless it's the newline of a
                    // line continuation (newlines must reach the top-level
                    // handler to keep line numbers honest).
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        if let Some((_, _, buf)) = lit.as_mut() {
                            buf.push(chars[i + 1]);
                        }
                        cur!().code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    if let Some((ln, col, content)) = lit.take() {
                        if ln + 1 == lines.len() {
                            cur!().literals.push((col, content));
                        }
                    }
                    cur!().code.push('"');
                    state = LexState::Code;
                    i += 1;
                } else {
                    if let Some((_, _, buf)) = lit.as_mut() {
                        buf.push(c);
                    }
                    cur!().code.push(' ');
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                if c == '"' {
                    let closes = (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                    if closes {
                        if let Some((ln, col, content)) = lit.take() {
                            if ln + 1 == lines.len() {
                                cur!().literals.push((col, content));
                            }
                        }
                        cur!().code.push('"');
                        state = LexState::Code;
                        i += 1 + hashes as usize;
                    } else {
                        if let Some((_, _, buf)) = lit.as_mut() {
                            buf.push(c);
                        }
                        cur!().code.push(' ');
                        i += 1;
                    }
                } else {
                    if let Some((_, _, buf)) = lit.as_mut() {
                        buf.push(c);
                    }
                    cur!().code.push(' ');
                    i += 1;
                }
            }
            LexState::CharLit => {
                if c == '\\' {
                    cur!().code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        cur!().code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    cur!().code.push('\'');
                    state = LexState::Code;
                    i += 1;
                } else {
                    cur!().code.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines
}

/// Whether the char before the current code position is identifier-like
/// (so `attr` in `attr"..."` is not mistaken for a raw-string prefix —
/// relevant for identifiers ending in `r` like `var` followed by `"`,
/// which cannot happen in valid Rust but keeps the lexer conservative).
fn prev_is_ident(lines: &[Line], _c: char) -> bool {
    lines
        .last()
        .and_then(|l| l.code.chars().last())
        .is_some_and(|p| p.is_alphanumeric() || p == '_')
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

fn is_cfg_test_attr(code: &str) -> bool {
    code.contains("#[cfg(test")
        || code.contains("#[cfg(all(test")
        || code.contains("#[cfg(any(test")
        || code.contains("#[test]")
}

/// Per-line flags: `true` when the line belongs to a `#[cfg(test)]`
/// (or `#[test]`) item — the attribute, the item header, and everything
/// through the item's closing brace (or terminating `;`).
pub fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut idx = 0usize;
    while idx < lines.len() {
        let code = &lines[idx].code;
        if is_cfg_test_attr(code) {
            let start_depth = depth;
            let mut opened = false;
            while idx < lines.len() {
                let line_code = &lines[idx].code;
                flags[idx] = true;
                if line_code.contains('{') {
                    opened = true;
                }
                depth += brace_delta(line_code);
                let attr_only = {
                    let t = line_code.trim();
                    !t.is_empty() && t.starts_with("#[") && t.ends_with(']')
                };
                let done = if opened {
                    depth <= start_depth
                } else {
                    !attr_only && line_code.contains(';') && depth <= start_depth
                };
                idx += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        depth += brace_delta(code);
        idx += 1;
    }
    flags
}

/// A parsed `// idse-lint: allow(rule, reason = "...")` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The rule name as written (validated by the engine).
    pub rule_name: String,
    /// The justification. `None` or empty is an `invalid-allow` finding.
    pub reason: Option<String>,
    /// Line (0-based) the directive was written on.
    pub on_line: usize,
    /// Line (0-based) the directive suppresses findings on.
    pub target_line: usize,
}

/// Extract allow directives from the lexed lines. A trailing directive
/// (sharing its line with code) targets its own line; a directive on a
/// comment-only line targets the next line.
pub fn allow_directives(lines: &[Line]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(parsed) = parse_allow_comment(&line.comment) else {
            continue;
        };
        let target_line = if line.code.trim().is_empty() {
            (i + 1).min(lines.len().saturating_sub(1))
        } else {
            i
        };
        out.push(AllowDirective { rule_name: parsed.0, reason: parsed.1, on_line: i, target_line });
    }
    out
}

/// A parsed `// idse-lint: hot` directive: the author asserts the
/// targeted loop is a hot path even though no heuristic marks it.
#[derive(Debug, Clone)]
pub struct HotDirective {
    /// Line (0-based) the directive was written on.
    pub on_line: usize,
    /// Line (0-based) of the loop header the directive marks.
    pub target_line: usize,
}

/// Extract `// idse-lint: hot` directives. Targeting works exactly like
/// allow directives: trailing → own line, comment-only line → next line.
pub fn hot_directives(lines: &[Line]) -> Vec<HotDirective> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(after_tag) = line.comment.split("idse-lint:").nth(1) else {
            continue;
        };
        let word = after_tag.trim();
        let tail_ok = |r: &str| !r.starts_with(|c: char| c.is_alphanumeric() || c == '_');
        if !word.strip_prefix("hot").is_some_and(|r| r.is_empty() || tail_ok(r)) {
            continue;
        }
        let target_line = if line.code.trim().is_empty() {
            (i + 1).min(lines.len().saturating_sub(1))
        } else {
            i
        };
        out.push(HotDirective { on_line: i, target_line });
    }
    out
}

fn parse_allow_comment(comment: &str) -> Option<(String, Option<String>)> {
    let after_tag = comment.split("idse-lint:").nth(1)?;
    let body = after_tag.trim_start().strip_prefix("allow(")?;
    let close = body.find(')')?;
    let inner = &body[..close];
    let mut parts = inner.splitn(2, ',');
    let rule_name = parts.next().unwrap_or("").trim().to_string();
    let reason = parts.next().and_then(|rest| {
        let rest = rest.trim().strip_prefix("reason")?.trim_start().strip_prefix('=')?;
        let rest = rest.trim_start().strip_prefix('"')?;
        let end = rest.find('"')?;
        Some(rest[..end].to_string())
    });
    Some((rule_name, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_masked_but_quotes_survive() {
        let lines = mask("let x = \"panic! inside\"; foo();");
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].code.contains('"'));
        assert!(lines[0].code.contains("foo()"));
    }

    #[test]
    fn raw_strings_are_masked() {
        let lines = mask("let x = r#\"unwrap() here\"#; bar();");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("bar()"));
    }

    #[test]
    fn comments_are_split_from_code() {
        let lines = mask("do_thing(); // HashMap mention\n/* block\nHashMap */ after();");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert!(!lines[1].code.contains("HashMap"));
        assert!(lines[2].code.contains("after()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = mask("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(lines[0].code.contains("<'a>"));
        assert!(!lines[0].code.contains("'x'"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let lines = mask("let s = \"line one\nline two\";\nnext();");
        assert_eq!(lines.len(), 3);
        assert!(lines[2].code.contains("next()"));
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "pub fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\npub fn more() {}\n";
        let lines = mask(src);
        let flags = test_regions(&lines);
        assert_eq!(flags, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn cfg_test_single_use_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\npub fn live() {}\n";
        let flags = test_regions(&mask(src));
        assert_eq!(flags[..3], [true, true, false]);
    }

    #[test]
    fn stacked_attributes_before_test_module() {
        let src =
            "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn x() {}\n}\nfn live() {}\n";
        let flags = test_regions(&mask(src));
        assert_eq!(flags[..6], [true, true, true, true, true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() {}\n";
        let flags = test_regions(&mask(src));
        assert_eq!(flags[..2], [false, false]);
    }

    #[test]
    fn allow_directive_trailing_and_preceding() {
        let src = "bad(); // idse-lint: allow(float-eq-comparison, reason = \"exact zero sentinel\")\n// idse-lint: allow(panic-in-library, reason = \"bootstrap\")\nother();\n";
        let lines = mask(src);
        let dirs = allow_directives(&lines);
        assert_eq!(dirs.len(), 2);
        assert_eq!(dirs[0].rule_name, "float-eq-comparison");
        assert_eq!(dirs[0].target_line, 0);
        assert_eq!(dirs[0].reason.as_deref(), Some("exact zero sentinel"));
        assert_eq!(dirs[1].rule_name, "panic-in-library");
        assert_eq!(dirs[1].target_line, 2);
    }

    #[test]
    fn single_line_literals_are_captured_with_columns() {
        let lines = mask("derive(master, \"traffic\");\nlet r = r#\"raw one\"#;\n");
        let lits: Vec<&str> = lines[0].literals.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(lits, vec!["traffic"]);
        let (col, _) = lines[0].literals[0];
        assert_eq!(lines[0].code.chars().nth(col), Some('"'));
        let raw: Vec<&str> = lines[1].literals.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(raw, vec!["raw one"]);
    }

    #[test]
    fn multi_line_literals_are_not_captured() {
        let lines = mask("let s = \"spans\nlines\";\nafter(\"ok\");\n");
        assert!(lines[0].literals.is_empty());
        assert!(lines[1].literals.is_empty());
        assert_eq!(lines[2].literals.len(), 1);
        assert_eq!(lines[2].literals[0].1, "ok");
    }

    #[test]
    fn escaped_content_is_recorded_as_written() {
        let lines = mask("f(\"a\\\"b\");\n");
        assert_eq!(lines[0].literals[0].1, "a\\\"b");
    }

    #[test]
    fn hot_directive_trailing_and_preceding() {
        let src = "for b in bytes { // idse-lint: hot\n}\n// idse-lint: hot (demux loop)\nwhile q.pop() {\n}\n// idse-lint: hotel\nx();\n";
        let dirs = hot_directives(&mask(src));
        assert_eq!(dirs.len(), 2, "{dirs:?}");
        assert_eq!(dirs[0].target_line, 0);
        assert_eq!(dirs[1].on_line, 2);
        assert_eq!(dirs[1].target_line, 3);
    }

    #[test]
    fn allow_directive_without_reason_parses_as_none() {
        let lines = mask("// idse-lint: allow(wall-clock-in-sim)\nx();\n");
        let dirs = allow_directives(&lines);
        assert_eq!(dirs.len(), 1);
        assert!(dirs[0].reason.is_none());
    }
}
