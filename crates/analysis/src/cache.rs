//! Incremental phase-1 cache: content-addressed per-file `FilePass`
//! storage under `target/idse-lint-cache/`.
//!
//! Phase 1 (lexing, line rules, directive validation, model extraction)
//! is a pure function of one file's text plus its workspace coordinates,
//! so its output can be cached under a key derived from exactly those
//! inputs: FNV-1a over the cache format version, the file's index, path,
//! crate, kind, and full text. Warm runs load the serialized pass and
//! skip re-lexing; any byte of drift — in the source, the lexer, the rule
//! set, or the model shape — changes the key (via `CACHE_VERSION`) and
//! forces a miss. Phases 2 and 3 always run, so a warm run's findings are
//! byte-identical to a cold run's by construction: they consume the same
//! `FilePass` values, only deserialized instead of recomputed.
//!
//! The cache is strictly best-effort: unreadable or stale entries are
//! misses, write failures are ignored, and entries are written atomically
//! (temp file + rename) so a concurrent reader never sees a torn entry.
//! Keys are unique per file, so parallel writers never collide.

use crate::{FileInput, FilePass};
use std::path::{Path, PathBuf};

/// Bump on ANY change to the lexer, line rules, allow-directive grammar,
/// the semantic model, or the serialized shape of [`FilePass`]. A stale
/// version must never deserialize into current-version structs.
///
/// v2: the v4 performance phase added `FileModel::loops` and the
/// `// idse-lint: hot` directive channel, so v1 entries (no loop model)
/// must read as misses.
pub const CACHE_VERSION: u32 = 2;

fn fnv_push(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
    // Length-delimit each field so ("ab","c") and ("a","bc") differ.
    *h ^= bytes.len() as u64;
    *h = h.wrapping_mul(0x100000001b3);
}

/// A directory of cached phase-1 passes.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
}

/// Hit/miss counts from one cache-aware analysis run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Files whose phase-1 pass was loaded from the cache.
    pub hits: usize,
    /// Files analyzed from scratch (and stored for next time).
    pub misses: usize,
}

impl Cache {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: &Path) -> std::io::Result<Cache> {
        std::fs::create_dir_all(dir)?;
        Ok(Cache { dir: dir.to_path_buf() })
    }

    fn key(&self, file_idx: usize, input: &FileInput) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        fnv_push(&mut h, &CACHE_VERSION.to_le_bytes());
        fnv_push(&mut h, &(file_idx as u64).to_le_bytes());
        fnv_push(&mut h, input.path.as_bytes());
        fnv_push(&mut h, input.crate_name.as_bytes());
        fnv_push(&mut h, format!("{:?}", input.kind).as_bytes());
        fnv_push(&mut h, input.text.as_bytes());
        h
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Load the cached pass for this file, if present and intact.
    pub(crate) fn load(&self, file_idx: usize, input: &FileInput) -> Option<FilePass> {
        let text = std::fs::read_to_string(self.entry_path(self.key(file_idx, input))).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Store a freshly computed pass. Failures are swallowed: the cache
    /// never makes a lint run fail, only faster.
    pub(crate) fn store(&self, file_idx: usize, input: &FileInput, pass: &FilePass) {
        let Ok(json) = serde_json::to_string(pass) else { return };
        let key = self.key(file_idx, input);
        let tmp = self.dir.join(format!("{key:016x}.tmp"));
        if std::fs::write(&tmp, json).is_ok() {
            let _ = std::fs::rename(&tmp, self.entry_path(key));
        }
    }
}
