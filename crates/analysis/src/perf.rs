//! Phase-4 hot-path performance analysis over the loop model.
//!
//! The paper's metrics are comparable only if every experiment pays the
//! same, predictable cost per record. ROADMAP item 2 names the two loops
//! every run multiplies — the signature engine's per-byte scan and the
//! DES kernel's per-event dispatch — and `BENCH_hotpath.json` prices
//! them. This phase keeps those paths clean *statically*:
//!
//! 1. **Loop model** — phase 1's brace tracker records every loop with
//!    its header text (bound provenance), nesting depth, and span
//!    ([`crate::model::LoopInfo`]).
//! 2. **Hot roots** — a loop is hot when it lives in library code of a
//!    hot-path crate (`idse-ids`, `idse-sim`, `idse-traffic`, `idse-net`)
//!    and its header names per-record or per-byte input, or when the
//!    author marks it with `// idse-lint: hot`.
//! 3. **Transitive hotness** — everything *reachable* from a hot loop
//!    over the phase-2 call graph is hot, forward-propagated with
//!    first-writer-wins witnesses (the mirror image of the backwards
//!    taint pass). A helper called per record cannot launder an
//!    allocation out of the loop body.
//!
//! On that model run five rules (`alloc-in-hot-loop`,
//! `quadratic-accumulation`, `per-byte-dispatch`, `hot-loop-rederive`,
//! `collect-in-hot-path`), each carrying a witness chain from the hot
//! root through the call chain to the offending site. Findings reuse the
//! phase-3 plumbing: an allow at the finding line suppresses one finding;
//! an allow at the *hot-root loop header* shields every downstream
//! finding it reaches, exactly like a taint-source shield.
//!
//! The pass is serial and deterministic: roots in (file, header-line)
//! order, propagation frontiers sorted, findings sorted by
//! (file, line, column, rule), all grouping in `BTreeMap`s.

use crate::dataflow::{DataflowHit, FileView};
use crate::model::{Graph, LoopInfo, LoopKind};
use crate::rules::{self, RuleId, Severity, Tier};
use crate::source;
use std::collections::BTreeSet;

/// Crates whose library loops are hot-root candidates by heuristic.
const HOT_CRATES: [&str; 4] = ["idse-ids", "idse-sim", "idse-traffic", "idse-net"];

/// Header words that mark a per-record loop (the unit the evaluation
/// streams: records, packets, events, flows, chunks, transactions).
const PER_RECORD_WORDS: [&str; 16] = [
    "record",
    "records",
    "rec",
    "recs",
    "packet",
    "packets",
    "event",
    "events",
    "flow",
    "flows",
    "chunk",
    "chunks",
    "transaction",
    "transactions",
    "alert",
    "alerts",
];

/// Header words that mark a per-byte scan loop (the signature engine's
/// innermost unit).
const PER_BYTE_WORDS: [&str; 4] = ["byte", "bytes", "payload", "haystack"];

/// What a hot loop iterates over — per-byte loops additionally enable
/// `per-byte-dispatch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Heat {
    PerRecord,
    PerByte,
}

impl Heat {
    fn unit(self) -> &'static str {
        match self {
            Heat::PerRecord => "record",
            Heat::PerByte => "byte",
        }
    }
}

/// One hot-root loop: `loop_idx` indexes `files[file].model.loops`.
#[derive(Debug, Clone)]
struct HotRoot {
    file: usize,
    loop_idx: usize,
    heat: Heat,
}

/// Why a function is hot: the root it is reached from and the call edge
/// that first marked it (None for the seed callees invoked directly from
/// the hot loop body — their `via` is the loop itself).
#[derive(Debug, Clone)]
struct HotWitness {
    root: usize,
    /// `(caller fn id, call line, call column)` of the marking edge, when
    /// the caller is itself a hot function (depth ≥ 2).
    via: Option<(usize, usize, usize)>,
    depth: usize,
}

/// Tiered severity for perf rules: substrate crates error, harness crates
/// warn, tooling crates are out of scope.
fn perf_severity(crate_name: &str) -> Option<Severity> {
    match rules::crate_tier(crate_name) {
        Tier::Strict => Some(Severity::Error),
        Tier::Standard => Some(Severity::Warn),
        Tier::Tooling => None,
    }
}

fn in_test(view: &FileView<'_>, line: usize) -> bool {
    view.test_flags.get(line).copied().unwrap_or(false) || view.meta.kind.is_test()
}

/// Heat of a loop header by its bound words, if any.
fn header_heat(head: &str) -> Option<Heat> {
    if PER_BYTE_WORDS.iter().any(|w| rules::word_at(head, w).is_some()) {
        return Some(Heat::PerByte);
    }
    if PER_RECORD_WORDS.iter().any(|w| rules::word_at(head, w).is_some()) {
        return Some(Heat::PerRecord);
    }
    None
}

/// Collect hot roots: heuristic roots in hot-crate library files, plus
/// every loop marked `// idse-lint: hot` (any non-test file, any crate).
fn hot_roots(files: &[FileView<'_>]) -> Vec<HotRoot> {
    let mut out = Vec::new();
    for (fi, view) in files.iter().enumerate() {
        let annotated: BTreeSet<usize> =
            source::hot_directives(view.lines).into_iter().map(|d| d.target_line).collect();
        let heuristic_file = HOT_CRATES.contains(&view.meta.crate_name.as_str())
            && matches!(view.meta.kind, rules::FileKind::Library);
        for (li, l) in view.model.loops.iter().enumerate() {
            if l.in_test {
                continue;
            }
            let heat = if annotated.contains(&l.line) {
                Some(header_heat(&l.head).unwrap_or(Heat::PerRecord))
            } else if heuristic_file {
                header_heat(&l.head)
            } else {
                None
            };
            if let Some(heat) = heat {
                out.push(HotRoot { file: fi, loop_idx: li, heat });
            }
        }
    }
    out
}

/// A performance token found on one line: `(column, display, rule)`.
type PerfToken = (usize, &'static str, RuleId);

/// Allocation tokens: every record/byte pays the allocator.
const ALLOC_TOKENS: [(&str, &str); 9] = [
    ("Vec::new(", "Vec::new"),
    ("vec!", "vec!"),
    ("String::new(", "String::new"),
    ("format!(", "format!"),
    ("Box::new(", "Box::new"),
    (".to_string(", "to_string"),
    (".to_owned(", "to_owned"),
    (".to_vec(", "to_vec"),
    (".clone(", "clone"),
];

/// Scan one masked code line for hot-path tokens (allocation, seed
/// re-derivation, Vec materialization), earliest occurrence per rule.
fn hot_line_tokens(code: &str) -> Vec<PerfToken> {
    let mut out: Vec<PerfToken> = Vec::new();
    let mut alloc: Option<(usize, &'static str)> = None;
    for (pat, display) in ALLOC_TOKENS {
        if let Some(at) = code.find(pat) {
            if alloc.is_none_or(|(b, _)| at < b) {
                alloc = Some((at, display));
            }
        }
    }
    if let Some((at, display)) = alloc {
        out.push((at, display, RuleId::AllocInHotLoop));
    }
    for pat in ["derive_seed(", "RngStream::derive("] {
        if let Some(at) = code.find(pat) {
            // The defining `fn derive_seed` header is not a call site.
            if !code[..at].trim_end().ends_with("fn") {
                out.push((at, pat.trim_end_matches('('), RuleId::HotLoopRederive));
            }
            break;
        }
    }
    if let Some(at) = code.find(".collect::<Vec") {
        out.push((at, "collect::<Vec<_>>", RuleId::CollectInHotPath));
    } else if let Some(at) = code.find(".collect(") {
        if code.contains("Vec<") {
            out.push((at, "collect", RuleId::CollectInHotPath));
        }
    }
    out.sort_by_key(|&(col, _, rule)| (col, rule));
    out
}

/// Dispatch token inside a per-byte scan loop: a `match` or trait-object
/// call, the branchy per-byte decision the ROADMAP item-2 DFA removes.
fn dispatch_token(code: &str) -> Option<(usize, &'static str)> {
    if let Some(at) = rules::word_at(code, "match") {
        return Some((at, "match"));
    }
    if let Some(at) = code.find("dyn ") {
        return Some((at, "dyn"));
    }
    None
}

/// The container a loop is bounded by: the receiver of `.len()` in the
/// header, or (for `for` loops) the first identifier of the iterated
/// expression.
fn bound_container(l: &LoopInfo) -> Option<String> {
    if let Some(at) = l.head.find(".len()") {
        let pre = &l.head[..at];
        let start = pre.rfind(|c: char| !(c.is_alphanumeric() || c == '_')).map_or(0, |p| p + 1);
        let x = &pre[start..];
        if !x.is_empty() {
            return Some(x.to_string());
        }
    }
    if l.kind != LoopKind::For {
        return None;
    }
    let at = rules::word_at(&l.head, "in")?;
    let rest = l.head[at + 2..].trim_start().trim_start_matches(['&', '(']).trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let end = rest.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(rest.len());
    let x = &rest[..end];
    (!x.is_empty() && x.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_'))
        .then(|| x.to_string())
}

/// Whether `code` calls a growth method (`push`/`push_str`/`insert`/
/// `extend`) *on* `x` itself — `x` must sit at a word boundary and not be
/// a field of some other receiver (`ws.files.push` does not grow `files`).
fn grows_receiver(code: &str, x: &str) -> bool {
    const GROW_CALLS: [&str; 4] = [".push(", ".push_str(", ".insert(", ".extend("];
    let mut from = 0;
    while let Some(rel) = code[from..].find(x) {
        let at = from + rel;
        let before_ok = code[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_' || c == '.'));
        let after = &code[at + x.len()..];
        if before_ok && GROW_CALLS.iter().any(|p| after.starts_with(p)) {
            return true;
        }
        from = at + x.len().max(1);
    }
    false
}

/// The qualified name of the function owning `line`, or a locator.
fn owner_qual(view: &FileView<'_>, line: usize) -> String {
    view.model
        .line_owners
        .get(line)
        .copied()
        .flatten()
        .and_then(|local| view.model.fns.get(local))
        .map(|f| f.qual.clone())
        .unwrap_or_else(|| format!("{}:{}", view.meta.path, line + 1))
}

fn loop_locator(view: &FileView<'_>, l: &LoopInfo) -> String {
    format!("hot loop `{}` ({}:{})", l.head, view.meta.path, l.line + 1)
}

/// Per-file offsets of global function ids, mirroring `assemble`'s
/// numbering (fns concatenated in file order).
fn fn_bases(files: &[FileView<'_>]) -> Vec<usize> {
    let mut base = vec![0usize; files.len()];
    let mut acc = 0usize;
    for (fi, v) in files.iter().enumerate() {
        base[fi] = acc;
        acc += v.model.fns.len();
    }
    base
}

/// Forward hotness propagation: seed every function called from a hot
/// loop body, then walk `graph.edges` forward, first-writer-wins, in
/// sorted frontier order — every function reachable from a hot loop gets
/// exactly one deterministic witness back to its root.
fn propagate_hot(
    files: &[FileView<'_>],
    graph: &Graph,
    roots: &[HotRoot],
    base: &[usize],
) -> Vec<Option<HotWitness>> {
    let mut hot: Vec<Option<HotWitness>> = vec![None; graph.fns.len()];
    let mut frontier: Vec<usize> = Vec::new();
    for (ri, root) in roots.iter().enumerate() {
        let view = &files[root.file];
        let l = &view.model.loops[root.loop_idx];
        let Some(owner_local) = l.fn_local else { continue };
        let owner = base[root.file] + owner_local;
        for e in &graph.edges[owner] {
            if e.line < l.line || e.line > l.end_line {
                continue;
            }
            let callee = &graph.fns[e.callee];
            if callee.in_test || hot[e.callee].is_some() {
                continue;
            }
            hot[e.callee] = Some(HotWitness { root: ri, via: None, depth: 1 });
            frontier.push(e.callee);
        }
    }
    frontier.sort_unstable();
    frontier.dedup();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &cur in &frontier {
            let (root, depth) = {
                let w = hot[cur].as_ref().expect("frontier entries are hot");
                (w.root, w.depth)
            };
            for e in &graph.edges[cur] {
                if graph.fns[e.callee].in_test || hot[e.callee].is_some() {
                    continue;
                }
                hot[e.callee] =
                    Some(HotWitness { root, via: Some((cur, e.line, e.column)), depth: depth + 1 });
                next.push(e.callee);
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    hot
}

/// `quadratic-accumulation` over the whole loop model — independent of
/// hotness: O(n²) growth is a bug at any temperature.
fn check_quadratic(files: &[FileView<'_>], out: &mut Vec<DataflowHit>) {
    for (fi, view) in files.iter().enumerate() {
        let Some(severity) = perf_severity(&view.meta.crate_name) else { continue };
        for l in &view.model.loops {
            if l.in_test {
                continue;
            }
            let bound = bound_container(l);
            for li in l.line..=l.end_line.min(view.lines.len().saturating_sub(1)) {
                if in_test(view, li) {
                    continue;
                }
                let code = &view.lines[li].code;
                let qual = owner_qual(view, li);
                let head_shift = code.find(".insert(0,").or_else(|| code.find(".remove(0)"));
                if let Some(at) = head_shift {
                    out.push(DataflowHit {
                        rule: RuleId::QuadraticAccumulation,
                        severity,
                        file: fi,
                        line: li,
                        column: at,
                        message: "head insert/remove inside a loop shifts the whole \
                                  container every iteration: O(n\u{b2}); work at the tail \
                                  and reverse once"
                            .to_string(),
                        chain: vec![
                            qual.clone(),
                            loop_chain_entry(view, l),
                            code.trim().to_string(),
                        ],
                        source: shield_source(fi, l, li),
                    });
                    continue;
                }
                let Some(x) = bound.as_deref() else { continue };
                // (a) a `for` loop growing the very container it iterates:
                // the bound is a moving target, so the walk re-covers old
                // ground. `while x.len() < target { x.push(..) }` is the
                // *linear* fill idiom and stays exempt.
                let self_growth = l.kind == LoopKind::For && grows_receiver(code, x);
                // (b) bulk growth copying a slice *of the bound input* per
                // iteration (the vendored-serde_json bug class): each turn
                // re-copies a prefix/suffix whose length tracks the bound.
                let slice_growth = (code.contains(".push_str(")
                    || code.contains(".extend(")
                    || code.contains("+="))
                    && code.contains(&format!("{x}["))
                    && code.contains("..");
                if self_growth || slice_growth {
                    let verb = if self_growth {
                        format!("grows `{x}`, the container its own bound `{}` walks", l.head)
                    } else {
                        format!("copies a slice of `{x}` per iteration of `{}`", l.head)
                    };
                    out.push(DataflowHit {
                        rule: RuleId::QuadraticAccumulation,
                        severity,
                        file: fi,
                        line: li,
                        column: 0,
                        message: format!(
                            "loop body {verb}: O(n\u{b2}) accumulation; reserve up front \
                             or append at the tail"
                        ),
                        chain: vec![qual, loop_chain_entry(view, l), code.trim().to_string()],
                        source: shield_source(fi, l, li),
                    });
                }
            }
        }
    }
}

fn loop_chain_entry(view: &FileView<'_>, l: &LoopInfo) -> String {
    format!("loop `{}` ({}:{})", l.head, view.meta.path, l.line + 1)
}

/// Shield origin for a loop-scoped finding: the loop header line, unless
/// the finding *is* the header line (then allow-at-line is the only hatch).
fn shield_source(fi: usize, l: &LoopInfo, finding_line: usize) -> Option<(usize, usize)> {
    (finding_line != l.line).then_some((fi, l.line))
}

/// Run the performance phase: hot roots, forward hotness propagation, and
/// the five perf rules. Findings come back in deterministic
/// (file, line, column, rule) order; `source` is the hot-root loop header
/// so one allow there shields every downstream finding.
pub fn analyze(files: &[FileView<'_>], graph: &Graph) -> Vec<DataflowHit> {
    let mut out: Vec<DataflowHit> = Vec::new();
    let roots = hot_roots(files);
    let base = fn_bases(files);
    let mut seen: BTreeSet<(usize, usize, usize, RuleId)> = BTreeSet::new();

    // Direct findings: scan every hot-loop span line for perf tokens.
    for root in &roots {
        let view = &files[root.file];
        let l = &view.model.loops[root.loop_idx];
        let Some(severity) = perf_severity(&view.meta.crate_name) else { continue };
        for li in l.line..=l.end_line.min(view.lines.len().saturating_sub(1)) {
            if in_test(view, li) {
                continue;
            }
            let code = &view.lines[li].code;
            let mut tokens = hot_line_tokens(code);
            if root.heat == Heat::PerByte && view.meta.crate_name == "idse-ids" {
                if let Some((col, tok)) = dispatch_token(code) {
                    tokens.push((col, tok, RuleId::PerByteDispatch));
                }
            }
            for (col, tok, rule) in tokens {
                if !seen.insert((root.file, li, col, rule)) {
                    continue;
                }
                let unit = root.heat.unit();
                let message = match rule {
                    RuleId::AllocInHotLoop => format!(
                        "heap allocation `{tok}` inside hot loop `{}`: runs per {unit}; \
                         hoist the buffer out of the loop and reuse it",
                        l.head
                    ),
                    RuleId::HotLoopRederive => format!(
                        "`{tok}` inside hot loop `{}`: re-derives seed state per {unit}; \
                         hoist the derivation per chunk and reuse the stream",
                        l.head
                    ),
                    RuleId::PerByteDispatch => format!(
                        "per-byte scan loop `{}` dispatches through `{tok}`: one branchy \
                         decision per input byte; compile to a table-driven DFA \
                         (ROADMAP item 2)",
                        l.head
                    ),
                    _ => format!(
                        "`{tok}` inside hot loop `{}`: materializes an intermediate Vec \
                         per {unit}; iterate lazily so memory stays O(chunk)",
                        l.head
                    ),
                };
                out.push(DataflowHit {
                    rule,
                    severity,
                    file: root.file,
                    line: li,
                    column: col,
                    message,
                    chain: vec![
                        owner_qual(view, l.line),
                        loop_locator(view, l),
                        code.trim().to_string(),
                    ],
                    source: shield_source(root.file, l, li),
                });
            }
        }
    }

    // Transitive findings: every function reachable from a hot loop is
    // hot; scan its whole body, chain the witness back to the root.
    let hot = propagate_hot(files, graph, &roots, &base);
    for (fi, view) in files.iter().enumerate() {
        let Some(severity) = perf_severity(&view.meta.crate_name) else { continue };
        for (local, f) in view.model.fns.iter().enumerate() {
            let id = base[fi] + local;
            let Some(w) = &hot[id] else { continue };
            let root = &roots[w.root];
            let root_view = &files[root.file];
            let root_loop = &root_view.model.loops[root.loop_idx];
            // Walk the witness back to the root's owner for the chain.
            let mut ids = vec![id];
            let mut cur = id;
            while let Some((caller, _, _)) = hot[cur].as_ref().and_then(|w| w.via) {
                ids.push(caller);
                cur = caller;
            }
            if let Some(owner_local) = root_loop.fn_local {
                ids.push(base[root.file] + owner_local);
            }
            ids.reverse();
            let fn_chain: Vec<String> = ids.iter().map(|&i| graph.fns[i].qual.clone()).collect();
            for (li, owner) in view.model.line_owners.iter().enumerate() {
                if *owner != Some(local) || in_test(view, li) {
                    continue;
                }
                let code = &view.lines[li].code;
                for (col, tok, rule) in hot_line_tokens(code) {
                    if !seen.insert((fi, li, col, rule)) {
                        continue;
                    }
                    let mut chain = vec![loop_locator(root_view, root_loop)];
                    chain.extend(fn_chain.iter().cloned());
                    chain.push(format!("{tok} ({}:{})", view.meta.path, li + 1));
                    let what = match rule {
                        RuleId::AllocInHotLoop => "allocates",
                        RuleId::HotLoopRederive => "re-derives seed state",
                        _ => "materializes an intermediate Vec",
                    };
                    out.push(DataflowHit {
                        rule,
                        severity,
                        file: fi,
                        line: li,
                        column: col,
                        message: format!(
                            "`{}` {what} (`{tok}`) on a hot path: reached from hot loop \
                             `{}` ({}:{}) through {} call{}",
                            f.name,
                            root_loop.head,
                            root_view.meta.path,
                            root_loop.line + 1,
                            w.depth,
                            if w.depth == 1 { "" } else { "s" },
                        ),
                        chain,
                        source: Some((root.file, root_loop.line)),
                    });
                }
            }
        }
    }

    check_quadratic(files, &mut out);
    out.sort_by_key(|a| (a.file, a.line, a.column, a.rule));
    out.dedup_by_key(|a| (a.file, a.line, a.column, a.rule));
    out
}
