//! # idse-lint — workspace static analysis for determinism and real-time safety
//!
//! A self-contained, line-level static-analysis pass over the workspace
//! source. No rustc plugin, no network dependencies — the same vendored-shim
//! philosophy as `third_party/`: a small lexer (see [`source`]) feeds a rule
//! engine (see [`rules`]) that enforces the properties the paper's scorecard
//! methodology depends on. Identical inputs must yield byte-identical
//! scores; these rules make the hazard classes that broke that property in
//! PR 1 (hash-seeded iteration order) unrepresentable going forward.
//!
//! ## Escape hatch
//!
//! A finding can be suppressed with an allow comment that *requires* a
//! written reason, either trailing the offending line or on the line above:
//!
//! ```text
//! // idse-lint: allow(float-eq-comparison, reason = "exact-zero sentinel")
//! if weight == 0.0 { continue; }
//! ```
//!
//! A directive with an unknown rule name or a missing/empty reason is
//! itself an error (`invalid-allow`), and a directive that suppresses
//! nothing is flagged (`unused-allow`) so stale suppressions get deleted.
//!
//! ## Determinism of the lint itself
//!
//! The lint practices what it enforces: the workspace walk is sorted, all
//! aggregation uses ordered containers, and two runs over the same tree
//! emit byte-identical JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod source;

use rules::{FileKind, LineCtx, RuleId, Severity};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One reported finding.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Rule name (kebab-case, as used in allow directives).
    pub rule: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// Owning crate package name (`workspace` for root tests/examples).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// Human-readable message.
    pub message: String,
    /// The offending source line (masked code channel), trimmed.
    pub excerpt: String,
}

impl Finding {
    fn severity(&self) -> Severity {
        if self.severity == "error" {
            Severity::Error
        } else {
            Severity::Warn
        }
    }
}

/// A finding suppressed by a valid allow directive.
#[derive(Debug, Clone, Serialize)]
pub struct Suppressed {
    /// The finding that would have been reported.
    pub finding: Finding,
    /// The written justification from the allow directive.
    pub reason: String,
}

/// Result of analyzing one file or a whole workspace.
#[derive(Debug, Default, Serialize)]
pub struct Report {
    /// Active findings (not suppressed), in file/line order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by allow directives, with their reasons.
    pub suppressed: Vec<Suppressed>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether any active finding is error severity.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity() == Severity::Error)
    }

    /// Count of active error findings.
    pub fn error_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity() == Severity::Error).count()
    }

    /// Count of active warning findings.
    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    /// Merge another report into this one.
    pub fn absorb(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.suppressed.extend(other.suppressed);
        self.files_scanned += other.files_scanned;
    }

    /// Per-crate, per-rule counts: the suppression-debt ledger.
    pub fn stats(&self) -> Stats {
        let mut per_crate: BTreeMap<String, BTreeMap<String, RuleCounts>> = BTreeMap::new();
        fn slot<'m>(
            per_crate: &'m mut BTreeMap<String, BTreeMap<String, RuleCounts>>,
            crate_name: &str,
            rule: &str,
        ) -> &'m mut RuleCounts {
            per_crate
                .entry(crate_name.to_string())
                .or_default()
                .entry(rule.to_string())
                .or_default()
        }
        for f in &self.findings {
            let c = slot(&mut per_crate, &f.crate_name, &f.rule);
            match f.severity() {
                Severity::Error => c.errors += 1,
                Severity::Warn => c.warnings += 1,
            }
        }
        for s in &self.suppressed {
            slot(&mut per_crate, &s.finding.crate_name, &s.finding.rule).suppressed += 1;
        }
        let mut totals = RuleCounts::default();
        for counts in per_crate.values().flat_map(|m| m.values()) {
            totals.errors += counts.errors;
            totals.warnings += counts.warnings;
            totals.suppressed += counts.suppressed;
        }
        Stats { files_scanned: self.files_scanned, per_crate, totals }
    }
}

/// Error/warning/suppression counts for one (crate, rule) cell.
#[derive(Debug, Default, Clone, Copy, Serialize)]
pub struct RuleCounts {
    /// Active error findings.
    pub errors: usize,
    /// Active warning findings.
    pub warnings: usize,
    /// Findings suppressed by allow directives (the debt to track).
    pub suppressed: usize,
}

/// The `--stats` / baseline payload: per-crate rule-hit counts.
#[derive(Debug, Serialize)]
pub struct Stats {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// crate → rule → counts, both levels sorted.
    pub per_crate: BTreeMap<String, BTreeMap<String, RuleCounts>>,
    /// Workspace-wide totals.
    pub totals: RuleCounts,
}

impl Stats {
    /// Render the fixed-width table `--stats` prints.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:<32} {:>6} {:>6} {:>10}",
            "crate", "rule", "err", "warn", "suppressed"
        );
        for (crate_name, rules) in &self.per_crate {
            for (rule, c) in rules {
                let _ = writeln!(
                    out,
                    "{:<16} {:<32} {:>6} {:>6} {:>10}",
                    crate_name, rule, c.errors, c.warnings, c.suppressed
                );
            }
        }
        let _ = writeln!(
            out,
            "{:<16} {:<32} {:>6} {:>6} {:>10}",
            "TOTAL", "", self.totals.errors, self.totals.warnings, self.totals.suppressed
        );
        out
    }
}

/// Analyze one file's text. `file` is the workspace-relative display path.
pub fn analyze_source(file: &str, crate_name: &str, kind: FileKind, text: &str) -> Report {
    let lines = source::mask(text);
    let test_flags = source::test_regions(&lines);
    let directives = source::allow_directives(&lines);

    let mut report = Report { files_scanned: 1, ..Report::default() };

    // Validate directives first: bad ones are findings in their own right
    // and never suppress anything.
    let mut valid: Vec<(usize, RuleId, String, bool)> = Vec::new(); // (target, rule, reason, used)
    for d in &directives {
        match (RuleId::parse(&d.rule_name), &d.reason) {
            (Some(rule), Some(reason)) if !reason.trim().is_empty() => {
                valid.push((d.target_line, rule, reason.clone(), false));
            }
            (None, _) => report.findings.push(finding_at(
                RuleId::InvalidAllow,
                Severity::Error,
                crate_name,
                file,
                d.on_line,
                0,
                format!("allow directive names unknown rule `{}`", d.rule_name),
                &lines,
            )),
            (Some(_), _) => report.findings.push(finding_at(
                RuleId::InvalidAllow,
                Severity::Error,
                crate_name,
                file,
                d.on_line,
                0,
                "allow directive requires a non-empty reason: \
                 idse-lint: allow(rule, reason = \"...\")"
                    .to_string(),
                &lines,
            )),
        }
    }

    for (i, line) in lines.iter().enumerate() {
        let ctx = LineCtx {
            crate_name,
            kind,
            in_test: test_flags.get(i).copied().unwrap_or(false),
            code: &line.code,
        };
        for hit in rules::check_line(&ctx) {
            let f = finding_at(
                hit.rule,
                hit.severity,
                crate_name,
                file,
                i,
                hit.column,
                hit.message,
                &lines,
            );
            match valid.iter_mut().find(|(target, rule, _, _)| *target == i && *rule == hit.rule) {
                Some((_, _, reason, used)) => {
                    *used = true;
                    report.suppressed.push(Suppressed { finding: f, reason: reason.clone() });
                }
                None => report.findings.push(f),
            }
        }
    }

    for (target, rule, _, used) in &valid {
        if !used {
            report.findings.push(finding_at(
                RuleId::UnusedAllow,
                Severity::Warn,
                crate_name,
                file,
                *target,
                0,
                format!("allow({}) suppressed no finding: delete it", rule.name()),
                &lines,
            ));
        }
    }

    report
}

#[allow(clippy::too_many_arguments)]
fn finding_at(
    rule: RuleId,
    severity: Severity,
    crate_name: &str,
    file: &str,
    line0: usize,
    column0: usize,
    message: String,
    lines: &[source::Line],
) -> Finding {
    Finding {
        rule: rule.name().to_string(),
        severity: severity.label().to_string(),
        crate_name: crate_name.to_string(),
        file: file.to_string(),
        line: line0 + 1,
        column: column0 + 1,
        message,
        excerpt: lines.get(line0).map(|l| l.code.trim().to_string()).unwrap_or_default(),
    }
}

/// Classify a file path (relative to its crate root) into a [`FileKind`].
fn classify(rel_in_crate: &Path) -> FileKind {
    let mut components = rel_in_crate.components().filter_map(|c| c.as_os_str().to_str());
    match components.next() {
        Some("tests") => FileKind::IntegrationTest,
        Some("benches") => FileKind::Bench,
        Some("examples") => FileKind::Example,
        Some("src") => {
            if components.next() == Some("bin") {
                FileKind::Bin
            } else {
                FileKind::Library
            }
        }
        _ => FileKind::Library,
    }
}

/// Read the `name = "..."` field of a crate's Cargo.toml; falls back to the
/// directory name.
fn crate_package_name(crate_dir: &Path) -> String {
    let manifest = crate_dir.join("Cargo.toml");
    if let Ok(text) = std::fs::read_to_string(&manifest) {
        for line in text.lines() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("name") {
                if let Some(v) = rest.trim_start().strip_prefix('=') {
                    return v.trim().trim_matches('"').to_string();
                }
            }
        }
    }
    crate_dir.file_name().and_then(|n| n.to_str()).unwrap_or("unknown").to_string()
}

fn walk_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // Fixture corpora are violation samples by design, never
            // workspace code.
            if path.file_name().and_then(|n| n.to_str()) == Some("fixtures") {
                continue;
            }
            walk_rust_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn analyze_tree(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    crate_root: &Path,
    report: &mut Report,
) -> std::io::Result<()> {
    let mut files = Vec::new();
    walk_rust_files(dir, &mut files)?;
    for path in files {
        let rel_in_crate = path.strip_prefix(crate_root).unwrap_or(&path);
        let kind = classify(rel_in_crate);
        let display = path.strip_prefix(root).unwrap_or(&path).display().to_string();
        let text = std::fs::read_to_string(&path)?;
        report.absorb(analyze_source(&display, crate_name, kind, &text));
    }
    Ok(())
}

/// Run the full pass over a workspace rooted at `root`: every crate under
/// `crates/` (its `src/`, `tests/`, `benches/`), plus the root `examples/`
/// and `tests/` trees. `third_party/` shims and fixture corpora are out of
/// scope by construction.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> =
        std::fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs.into_iter().filter(|p| p.is_dir()) {
        let name = crate_package_name(&crate_dir);
        for sub in ["src", "tests", "benches"] {
            analyze_tree(root, &crate_dir.join(sub), &name, &crate_dir, &mut report)?;
        }
    }
    for sub in ["examples", "tests"] {
        analyze_tree(root, &root.join(sub), "workspace", root, &mut report)?;
    }

    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, &a.rule).cmp(&(&b.file, b.line, b.column, &b.rule))
    });
    report
        .suppressed
        .sort_by(|a, b| (&a.finding.file, a.finding.line).cmp(&(&b.finding.file, b.finding.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify(Path::new("src/lib.rs")), FileKind::Library);
        assert_eq!(classify(Path::new("src/bin/lint.rs")), FileKind::Bin);
        assert_eq!(classify(Path::new("tests/engine.rs")), FileKind::IntegrationTest);
        assert_eq!(classify(Path::new("benches/scorecard.rs")), FileKind::Bench);
    }

    #[test]
    fn allow_suppresses_and_records_reason() {
        let src = "use std::collections::HashMap; // idse-lint: allow(unordered-iteration-in-report, reason = \"membership only, order never observed\")\n";
        let r = analyze_source("x.rs", "idse-eval", FileKind::Library, src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "membership only, order never observed");
    }

    #[test]
    fn allow_without_reason_is_invalid() {
        let src =
            "// idse-lint: allow(unordered-iteration-in-report)\nuse std::collections::HashMap;\n";
        let r = analyze_source("x.rs", "idse-eval", FileKind::Library, src);
        assert!(r.findings.iter().any(|f| f.rule == "invalid-allow"));
        // The underlying finding still fires: an invalid allow suppresses nothing.
        assert!(r.findings.iter().any(|f| f.rule == "unordered-iteration-in-report"));
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// idse-lint: allow(wall-clock-in-sim, reason = \"speculative\")\nlet x = 1;\n";
        let r = analyze_source("x.rs", "idse-sim", FileKind::Library, src);
        assert!(r.findings.iter().any(|f| f.rule == "unused-allow"));
    }

    #[test]
    fn stats_counts_by_crate_and_rule() {
        let mut r = analyze_source(
            "a.rs",
            "idse-eval",
            FileKind::Library,
            "use std::collections::HashMap;\n",
        );
        r.absorb(analyze_source(
            "b.rs",
            "idse-sim",
            FileKind::Library,
            "let t = Instant::now();\n",
        ));
        let stats = r.stats();
        assert_eq!(stats.totals.errors, 2);
        assert_eq!(stats.per_crate["idse-eval"]["unordered-iteration-in-report"].errors, 1);
        assert_eq!(stats.per_crate["idse-sim"]["wall-clock-in-sim"].errors, 1);
    }

    #[test]
    fn json_report_is_deterministic() {
        let run = || {
            let r = analyze_source(
                "a.rs",
                "idse-eval",
                FileKind::Library,
                "use std::collections::HashMap;\nlet x = y == 0.5;\n",
            );
            serde_json::to_string(&r.stats()).expect("stats serialize")
        };
        assert_eq!(run(), run());
    }
}
