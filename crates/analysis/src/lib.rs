//! # idse-lint — workspace static analysis for determinism and real-time safety
//!
//! A self-contained, two-phase static-analysis pass over the workspace
//! source. No rustc plugin, no network dependencies — the same vendored-shim
//! philosophy as `third_party/`: a small lexer (see [`source`]) feeds a rule
//! engine (see [`rules`]) that enforces the properties the paper's scorecard
//! methodology depends on. Identical inputs must yield byte-identical
//! scores; these rules make the hazard classes that broke that property in
//! PR 1 (hash-seeded iteration order) unrepresentable going forward.
//!
//! **Phase 1** scans each file independently — line rules, allow-directive
//! validation, and extraction of a lightweight semantic model (see
//! [`model`]): `fn`/`impl`/`mod` definitions, `use` imports, call-site
//! tokens, and taint seeds. Files are independent, so this phase fans out
//! through [`idse_exec::Executor::par_map`] and merges in submission order.
//!
//! **Phase 3** runs value dataflow (see [`dataflow`]) over the same
//! models: seed lineage (`literal-seed`, `seed-label-reuse`,
//! `seed-label-collision` — the last judged by *evaluating* the real
//! `derive_seed` at lint time), reduction order over `par_map` output
//! (`unordered-float-reduce`), and run-id hash purity
//! (`impure-store-record`). Phase 1 results can be cached per file (see
//! [`cache`]), so warm runs skip re-lexing unchanged files while staying
//! byte-identical to cold runs.
//!
//! **Phase 4** is the performance pass (see [`perf`]): phase 1's loop
//! model (header text, bound provenance, nesting, spans) marks hot roots
//! — per-record/per-byte loops in the hot-path crates, or any loop
//! annotated `// idse-lint: hot` — and hotness propagates *forward* over
//! the phase-2 call graph, so helpers called per record inherit the
//! loop's temperature. Five rules fire on hot code
//! (`alloc-in-hot-loop`, `quadratic-accumulation`, `per-byte-dispatch`,
//! `hot-loop-rederive`, `collect-in-hot-path`), each with a witness
//! chain hot-root → call chain → site, priced by `BENCH_hotpath.json`.
//!
//! **Phase 2** assembles the per-file models into a workspace call graph
//! and propagates taint labels (see [`taint`]) backwards from every hazard
//! token, so a function that merely *reaches* a wall clock, ambient
//! entropy, a hash container, a panicking helper, or raw threads — at any
//! depth, across crates — is flagged with the full call chain:
//!
//! ```text
//! error[transitive-wall-clock-in-sim] crates/sim/src/lib.rs:4:24 — `step`
//!   reaches wall-clock source `std::time::Instant::now` through 2 calls:
//!   idse-sim::step -> idse-sim::util::now_ms -> std::time::Instant::now
//! ```
//!
//! ## Escape hatch
//!
//! A finding can be suppressed with an allow comment that *requires* a
//! written reason, either trailing the offending line or on the line above:
//!
//! ```text
//! // idse-lint: allow(float-eq-comparison, reason = "exact-zero sentinel")
//! if weight == 0.0 { continue; }
//! ```
//!
//! Transitive rules honor allows **at the taint source**: one directive on
//! the hazard line (naming the transitive rule) shields every downstream
//! caller, so an audited helper never needs N call-site suppressions. A
//! directive with an unknown rule name or a missing/empty reason is itself
//! an error (`invalid-allow`), and a directive that suppresses nothing is
//! flagged (`unused-allow`) so stale suppressions get deleted.
//!
//! ## Determinism of the lint itself
//!
//! The lint practices what it enforces: the workspace walk is sorted, all
//! aggregation uses ordered containers, the parallel scan merges in
//! canonical order, and `--jobs N` output is byte-identical to serial for
//! text, JSON, and SARIF alike.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dataflow;
pub mod fix;
pub mod model;
pub mod perf;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod taint;

use idse_exec::Executor;
use rules::{FileKind, LineCtx, RuleId, Severity, TaintLabel};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One reported finding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    /// Rule name (kebab-case, as used in allow directives).
    pub rule: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// Owning crate package name (`workspace` for root tests/examples).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// Human-readable message.
    pub message: String,
    /// The offending source line (masked code channel), trimmed.
    pub excerpt: String,
    /// For transitive findings: qualified names from the reporter down to
    /// the taint source, ending with the hazard token. Empty for line
    /// findings.
    pub chain: Vec<String>,
}

impl Finding {
    fn severity(&self) -> Severity {
        if self.severity == "error" {
            Severity::Error
        } else {
            Severity::Warn
        }
    }
}

/// A finding suppressed by a valid allow directive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Suppressed {
    /// The finding that would have been reported.
    pub finding: Finding,
    /// The written justification from the allow directive.
    pub reason: String,
}

/// Result of analyzing one file or a whole workspace.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// Active findings (not suppressed), in file/line order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by allow directives, with their reasons.
    pub suppressed: Vec<Suppressed>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether any active finding is error severity.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity() == Severity::Error)
    }

    /// Count of active error findings.
    pub fn error_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity() == Severity::Error).count()
    }

    /// Count of active warning findings.
    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    /// Merge another report into this one.
    pub fn absorb(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.suppressed.extend(other.suppressed);
        self.files_scanned += other.files_scanned;
    }

    /// Per-crate, per-rule counts: the suppression-debt ledger.
    pub fn stats(&self) -> Stats {
        let mut per_crate: BTreeMap<String, BTreeMap<String, RuleCounts>> = BTreeMap::new();
        fn slot<'m>(
            per_crate: &'m mut BTreeMap<String, BTreeMap<String, RuleCounts>>,
            crate_name: &str,
            rule: &str,
        ) -> &'m mut RuleCounts {
            per_crate
                .entry(crate_name.to_string())
                .or_default()
                .entry(rule.to_string())
                .or_default()
        }
        for f in &self.findings {
            let c = slot(&mut per_crate, &f.crate_name, &f.rule);
            match f.severity() {
                Severity::Error => c.errors += 1,
                Severity::Warn => c.warnings += 1,
            }
        }
        for s in &self.suppressed {
            slot(&mut per_crate, &s.finding.crate_name, &s.finding.rule).suppressed += 1;
        }
        let mut totals = RuleCounts::default();
        for counts in per_crate.values().flat_map(|m| m.values()) {
            totals.errors += counts.errors;
            totals.warnings += counts.warnings;
            totals.suppressed += counts.suppressed;
        }
        Stats { files_scanned: self.files_scanned, per_crate, totals }
    }
}

/// Error/warning/suppression counts for one (crate, rule) cell.
#[derive(Debug, Default, Clone, Copy, Serialize)]
pub struct RuleCounts {
    /// Active error findings.
    pub errors: usize,
    /// Active warning findings.
    pub warnings: usize,
    /// Findings suppressed by allow directives (the debt to track).
    pub suppressed: usize,
}

/// The `--stats` / baseline payload: per-crate rule-hit counts.
#[derive(Debug, Serialize)]
pub struct Stats {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// crate → rule → counts, both levels sorted.
    pub per_crate: BTreeMap<String, BTreeMap<String, RuleCounts>>,
    /// Workspace-wide totals.
    pub totals: RuleCounts,
}

impl Stats {
    /// Render the fixed-width table `--stats` prints.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:<32} {:>6} {:>6} {:>10}",
            "crate", "rule", "err", "warn", "suppressed"
        );
        for (crate_name, rules) in &self.per_crate {
            for (rule, c) in rules {
                let _ = writeln!(
                    out,
                    "{:<16} {:<32} {:>6} {:>6} {:>10}",
                    crate_name, rule, c.errors, c.warnings, c.suppressed
                );
            }
        }
        let _ = writeln!(
            out,
            "{:<16} {:<32} {:>6} {:>6} {:>10}",
            "TOTAL", "", self.totals.errors, self.totals.warnings, self.totals.suppressed
        );
        out
    }
}

/// Render the human findings listing plus the one-line summary, exactly as
/// the `lint` binary prints it (and as CI diffs across `--jobs` values).
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{}[{}] {}:{}:{} — {}",
            f.severity, f.rule, f.file, f.line, f.column, f.message
        );
        if !f.excerpt.is_empty() {
            let _ = writeln!(out, "    | {}", f.excerpt);
        }
    }
    let _ = writeln!(
        out,
        "lint: {} files scanned, {} errors, {} warnings, {} suppressed by allow",
        report.files_scanned,
        report.error_count(),
        report.warning_count(),
        report.suppressed.len()
    );
    out
}

/// One file of workspace input.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-relative display path.
    pub path: String,
    /// Owning crate package name (`workspace` for root tests/examples).
    pub crate_name: String,
    /// File kind.
    pub kind: FileKind,
    /// Full file text.
    pub text: String,
}

/// The unit phase 2 operates on: every file plus the workspace dependency
/// direction (crate → direct deps), which bounds cross-crate call edges.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Files in canonical (sorted-walk) order.
    pub files: Vec<FileInput>,
    /// Crate package name → direct dependency package names. A crate
    /// absent from the map is unconstrained (fixture corpora, the root
    /// `workspace` pseudo-crate).
    pub deps: BTreeMap<String, BTreeSet<String>>,
}

/// Lifecycle state of an allow directive after a full analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DirectiveState {
    /// Suppressed at least one finding (directly or as a taint-source
    /// shield).
    Used,
    /// Valid but suppressed nothing: `unused-allow` fires, `--fix`
    /// deletes it.
    Unused,
    /// Failed validation: `invalid-allow` fires, `--fix` normalizes it
    /// when the intent is recoverable.
    Malformed,
}

/// Post-analysis status of one allow directive, for `lint --fix`.
#[derive(Debug, Clone, Serialize)]
pub struct DirectiveStatus {
    /// Workspace-relative path of the file containing the directive.
    pub file: String,
    /// 0-based line the directive comment sits on.
    pub on_line: usize,
    /// Rule name as written (possibly unknown for malformed directives).
    pub rule_name: String,
    /// The written reason, when one parsed.
    pub reason: Option<String>,
    /// Lifecycle state.
    pub state: DirectiveState,
}

/// Full analysis output: the report plus per-directive lifecycle, which
/// `--fix` consumes.
#[derive(Debug)]
pub struct Analysis {
    /// The findings report.
    pub report: Report,
    /// Every allow directive in the workspace with its resolved state,
    /// sorted by (file, line).
    pub directives: Vec<DirectiveStatus>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ValidDirective {
    target: usize,
    on_line: usize,
    rule: RuleId,
    reason: String,
    used: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct FilePass {
    report: Report,
    valid: Vec<ValidDirective>,
    malformed: Vec<(usize, String)>,
    model: model::FileModel,
    lines: Vec<source::Line>,
    test_flags: Vec<bool>,
}

/// Phase 1 for one file: line rules, directive validation, model
/// extraction. Pure function of the input — safe to fan out.
fn analyze_file(file_idx: usize, input: &FileInput) -> FilePass {
    let lines = source::mask(&input.text);
    let test_flags = source::test_regions(&lines);
    let directives = source::allow_directives(&lines);
    let crate_name = input.crate_name.as_str();
    let kind = input.kind;

    let mut report = Report { files_scanned: 1, ..Report::default() };
    let mut valid: Vec<ValidDirective> = Vec::new();
    let mut malformed: Vec<(usize, String)> = Vec::new();

    // Validate directives first: bad ones are findings in their own right
    // and never suppress anything.
    for d in &directives {
        match (RuleId::parse(&d.rule_name), &d.reason) {
            (Some(rule), Some(reason)) if !reason.trim().is_empty() => {
                valid.push(ValidDirective {
                    target: d.target_line,
                    on_line: d.on_line,
                    rule,
                    reason: reason.clone(),
                    used: false,
                });
            }
            (None, _) => {
                malformed.push((d.on_line, d.rule_name.clone()));
                report.findings.push(finding_at(
                    RuleId::InvalidAllow,
                    Severity::Error,
                    crate_name,
                    &input.path,
                    d.on_line,
                    0,
                    format!("allow directive names unknown rule `{}`", d.rule_name),
                    &lines,
                ));
            }
            (Some(_), _) => {
                malformed.push((d.on_line, d.rule_name.clone()));
                report.findings.push(finding_at(
                    RuleId::InvalidAllow,
                    Severity::Error,
                    crate_name,
                    &input.path,
                    d.on_line,
                    0,
                    "allow directive requires a non-empty reason: \
                     idse-lint: allow(rule, reason = \"...\")"
                        .to_string(),
                    &lines,
                ));
            }
        }
    }

    for (i, line) in lines.iter().enumerate() {
        let ctx = LineCtx {
            crate_name,
            kind,
            in_test: test_flags.get(i).copied().unwrap_or(false),
            code: &line.code,
        };
        for hit in rules::check_line(&ctx) {
            let f = finding_at(
                hit.rule,
                hit.severity,
                crate_name,
                &input.path,
                i,
                hit.column,
                hit.message,
                &lines,
            );
            match valid.iter_mut().find(|d| d.target == i && d.rule == hit.rule) {
                Some(d) => {
                    d.used = true;
                    report.suppressed.push(Suppressed { finding: f, reason: d.reason.clone() });
                }
                None => report.findings.push(f),
            }
        }
    }

    let model = model::extract(&input.path, crate_name, kind, file_idx, &lines, &test_flags);
    FilePass { report, valid, malformed, model, lines, test_flags }
}

/// How an allow-at-source directive kills a taint seed.
enum SeedKill {
    /// Directive at the seed line names the transitive rule.
    BySourceAllow(usize),
    /// Directive at the seed line names the direct rule and already
    /// suppressed the direct finding there.
    ByDirectAllow,
}

fn seed_kill(passes: &[FilePass], label: TaintLabel, s: &model::SeedInfo) -> Option<SeedKill> {
    let pass = passes.get(s.file)?;
    for (di, d) in pass.valid.iter().enumerate() {
        if d.target != s.line {
            continue;
        }
        if d.rule == label.transitive_rule() {
            return Some(SeedKill::BySourceAllow(di));
        }
        if d.rule == label.direct_rule() && d.used {
            return Some(SeedKill::ByDirectAllow);
        }
    }
    None
}

/// Analyze a workspace and also report directive lifecycle (for `--fix`).
pub fn analyze_full(ws: &Workspace, exec: &Executor) -> Analysis {
    analyze_full_with_cache(ws, exec, None).0
}

/// [`analyze_full`] with an optional phase-1 cache. Cached files skip
/// re-lexing; phases 2 and 3 always run, so the output is byte-identical
/// to an uncached run. Returns the analysis plus hit/miss counts.
pub fn analyze_full_with_cache(
    ws: &Workspace,
    exec: &Executor,
    file_cache: Option<&cache::Cache>,
) -> (Analysis, cache::CacheStats) {
    // Phase 1: per-file, embarrassingly parallel, merged in submission
    // order by par_map — the scan is byte-identical at any worker count.
    // Cache keys are unique per file, so parallel stores never collide.
    let results: Vec<(FilePass, bool)> = exec.par_map(&ws.files, |i, input| match file_cache {
        Some(c) => match c.load(i, input) {
            Some(pass) => (pass, true),
            None => {
                let pass = analyze_file(i, input);
                c.store(i, input, &pass);
                (pass, false)
            }
        },
        None => (analyze_file(i, input), false),
    });
    let mut cache_stats = cache::CacheStats::default();
    let mut passes: Vec<FilePass> = Vec::with_capacity(results.len());
    for (pass, hit) in results {
        if hit {
            cache_stats.hits += 1;
        } else {
            cache_stats.misses += 1;
        }
        passes.push(pass);
    }

    // Phase 2: whole-workspace call graph and taint propagation (serial —
    // the graph is one shared structure and the pass is cheap).
    let metas: Vec<model::FileMeta> = ws
        .files
        .iter()
        .map(|f| model::FileMeta {
            path: f.path.clone(),
            crate_name: f.crate_name.clone(),
            kind: f.kind,
        })
        .collect();
    let models: Vec<model::FileModel> = passes.iter().map(|p| p.model.clone()).collect();
    let graph = model::assemble(&metas, &models, &ws.deps);

    let mut extra_findings: Vec<Finding> = Vec::new();
    let mut extra_suppressed: Vec<Suppressed> = Vec::new();

    for label in TaintLabel::ALL {
        // Live propagation: seeds not shielded by an allow at the source.
        let live = taint::propagate(&graph, label, &|_, s| seed_kill(&passes, label, s).is_none());
        let hits = {
            let direct_covered = |id: usize| -> bool {
                let Some(w) = &live[id] else { return false };
                let s = &w.seed;
                let meta = &metas[s.file];
                let in_test = passes[s.file].test_flags.get(s.line).copied().unwrap_or(false);
                label.applies(&meta.crate_name, meta.kind, in_test).is_some()
            };
            taint::transitive_hits(&graph, label, &live, &direct_covered)
        };
        for hit in hits {
            let f = &graph.fns[hit.fn_id];
            let file_idx = f.file;
            let finding = Finding {
                rule: label.transitive_rule().name().to_string(),
                severity: hit.severity.label().to_string(),
                crate_name: f.crate_name.clone(),
                file: metas[file_idx].path.clone(),
                line: hit.line + 1,
                column: hit.column + 1,
                message: hit.message,
                excerpt: passes[file_idx]
                    .lines
                    .get(hit.line)
                    .map(|l| l.code.trim().to_string())
                    .unwrap_or_default(),
                chain: hit.chain,
            };
            // A call-site allow naming the transitive rule suppresses the
            // individual finding (source allows are preferred, but the
            // escape hatch composes either way).
            let dir = passes[file_idx]
                .valid
                .iter_mut()
                .find(|d| d.target == hit.line && d.rule == label.transitive_rule());
            match dir {
                Some(d) => {
                    d.used = true;
                    extra_suppressed.push(Suppressed { finding, reason: d.reason.clone() });
                }
                None => extra_findings.push(finding),
            }
        }

        // Shield accounting: a source allow earns "used" iff some in-scope
        // function actually reaches its seed — otherwise it is stale and
        // `unused-allow` fires.
        let shielded = taint::propagate(&graph, label, &|_, s| {
            matches!(seed_kill(&passes, label, s), Some(SeedKill::BySourceAllow(_)))
        });
        let reachers = taint::in_scope_reachers(&graph, label, &shielded);
        let mut shield_uses: BTreeMap<(usize, usize), (Severity, model::SeedInfo, usize)> =
            BTreeMap::new();
        for id in reachers {
            let w = shielded[id].as_ref().expect("reachers are tainted");
            let Some(SeedKill::BySourceAllow(di)) = seed_kill(&passes, label, &w.seed) else {
                continue;
            };
            let f = &graph.fns[id];
            let severity = label
                .applies(&f.crate_name, f.kind, f.in_test)
                .expect("in_scope_reachers filters by scope");
            shield_uses.entry((w.seed.file, di)).and_modify(|e| e.2 += 1).or_insert((
                severity,
                w.seed.clone(),
                1,
            ));
        }
        for ((file_idx, di), (severity, s, n)) in shield_uses {
            let excerpt = passes[file_idx]
                .lines
                .get(s.line)
                .map(|l| l.code.trim().to_string())
                .unwrap_or_default();
            let plural = if n == 1 { "" } else { "s" };
            let d = &mut passes[file_idx].valid[di];
            d.used = true;
            extra_suppressed.push(Suppressed {
                finding: Finding {
                    rule: label.transitive_rule().name().to_string(),
                    severity: severity.label().to_string(),
                    crate_name: metas[file_idx].crate_name.clone(),
                    file: metas[file_idx].path.clone(),
                    line: s.line + 1,
                    column: s.column + 1,
                    message: format!(
                        "taint source `{}` allowed here: shields {n} in-scope function{plural} \
                         from {}",
                        s.token,
                        label.transitive_rule().name(),
                    ),
                    excerpt,
                    chain: Vec::new(),
                },
                reason: d.reason.clone(),
            });
        }
    }

    // Phase 3: value dataflow over the same models — seed lineage,
    // reduction order, store-record purity. Phase 4: hot-path
    // performance over the loop model and the phase-2 call graph. Both
    // serial and deterministic; their hits share one reporting path
    // (allow at the finding line, shield at the chain's origin).
    let dataflow_hits = {
        let views: Vec<dataflow::FileView<'_>> = metas
            .iter()
            .zip(passes.iter())
            .map(|(meta, pass)| dataflow::FileView {
                meta,
                model: &pass.model,
                lines: &pass.lines,
                test_flags: &pass.test_flags,
            })
            .collect();
        let mut hits = dataflow::analyze(&views);
        hits.extend(perf::analyze(&views, &graph));
        hits
    };
    for hit in dataflow_hits {
        let finding = Finding {
            rule: hit.rule.name().to_string(),
            severity: hit.severity.label().to_string(),
            crate_name: metas[hit.file].crate_name.clone(),
            file: metas[hit.file].path.clone(),
            line: hit.line + 1,
            column: hit.column + 1,
            message: hit.message,
            excerpt: passes[hit.file]
                .lines
                .get(hit.line)
                .map(|l| l.code.trim().to_string())
                .unwrap_or_default(),
            chain: hit.chain,
        };
        // An allow at the finding line suppresses the individual finding;
        // an allow at the chain's origin (the binding, first label site,
        // or taint source) shields every downstream finding — the same
        // composition the taint rules offer.
        if let Some(d) =
            passes[hit.file].valid.iter_mut().find(|d| d.target == hit.line && d.rule == hit.rule)
        {
            d.used = true;
            extra_suppressed.push(Suppressed { finding, reason: d.reason.clone() });
            continue;
        }
        let shield =
            hit.source.filter(|&(sf, sl)| (sf, sl) != (hit.file, hit.line)).and_then(|(sf, sl)| {
                passes[sf].valid.iter_mut().find(|d| d.target == sl && d.rule == hit.rule)
            });
        match shield {
            Some(d) => {
                d.used = true;
                extra_suppressed.push(Suppressed { finding, reason: d.reason.clone() });
            }
            None => extra_findings.push(finding),
        }
    }

    // Unused-allow sweep runs after phase 2: a directive may earn its keep
    // only as a taint-source shield.
    for (fi, pass) in passes.iter().enumerate() {
        for d in &pass.valid {
            if !d.used {
                extra_findings.push(Finding {
                    rule: RuleId::UnusedAllow.name().to_string(),
                    severity: Severity::Warn.label().to_string(),
                    crate_name: metas[fi].crate_name.clone(),
                    file: metas[fi].path.clone(),
                    line: d.target + 1,
                    column: 1,
                    message: format!("allow({}) suppressed no finding: delete it", d.rule.name()),
                    excerpt: pass
                        .lines
                        .get(d.target)
                        .map(|l| l.code.trim().to_string())
                        .unwrap_or_default(),
                    chain: Vec::new(),
                });
            }
        }
    }

    // Directive lifecycle for --fix.
    let mut directives: Vec<DirectiveStatus> = Vec::new();
    for (fi, pass) in passes.iter().enumerate() {
        for d in &pass.valid {
            directives.push(DirectiveStatus {
                file: metas[fi].path.clone(),
                on_line: d.on_line,
                rule_name: d.rule.name().to_string(),
                reason: Some(d.reason.clone()),
                state: if d.used { DirectiveState::Used } else { DirectiveState::Unused },
            });
        }
        for (on_line, rule_name) in &pass.malformed {
            directives.push(DirectiveStatus {
                file: metas[fi].path.clone(),
                on_line: *on_line,
                rule_name: rule_name.clone(),
                reason: None,
                state: DirectiveState::Malformed,
            });
        }
    }
    directives.sort_by(|a, b| (&a.file, a.on_line).cmp(&(&b.file, b.on_line)));

    // Merge in canonical file order, then sort: the final report is a
    // pure function of the workspace, independent of scheduling.
    let mut report = Report::default();
    for pass in passes {
        report.absorb(pass.report);
    }
    report.findings.extend(extra_findings);
    report.suppressed.extend(extra_suppressed);
    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, &a.rule).cmp(&(&b.file, b.line, b.column, &b.rule))
    });
    report.suppressed.sort_by(|a, b| {
        (&a.finding.file, a.finding.line, a.finding.column, &a.finding.rule).cmp(&(
            &b.finding.file,
            b.finding.line,
            b.finding.column,
            &b.finding.rule,
        ))
    });

    (Analysis { report, directives }, cache_stats)
}

/// Analyze a workspace: the two-phase pass, report only.
pub fn analyze(ws: &Workspace, exec: &Executor) -> Report {
    analyze_full(ws, exec).report
}

/// Analyze one file's text. `file` is the workspace-relative display path.
/// Single-file convenience over [`analyze`]: the call graph is built from
/// this file alone.
pub fn analyze_source(file: &str, crate_name: &str, kind: FileKind, text: &str) -> Report {
    let ws = Workspace {
        files: vec![FileInput {
            path: file.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            text: text.to_string(),
        }],
        deps: BTreeMap::new(),
    };
    analyze(&ws, &Executor::serial())
}

#[allow(clippy::too_many_arguments)]
fn finding_at(
    rule: RuleId,
    severity: Severity,
    crate_name: &str,
    file: &str,
    line0: usize,
    column0: usize,
    message: String,
    lines: &[source::Line],
) -> Finding {
    Finding {
        rule: rule.name().to_string(),
        severity: severity.label().to_string(),
        crate_name: crate_name.to_string(),
        file: file.to_string(),
        line: line0 + 1,
        column: column0 + 1,
        message,
        excerpt: lines.get(line0).map(|l| l.code.trim().to_string()).unwrap_or_default(),
        chain: Vec::new(),
    }
}

/// Classify a file path (relative to its crate root) into a [`FileKind`].
fn classify(rel_in_crate: &Path) -> FileKind {
    let mut components = rel_in_crate.components().filter_map(|c| c.as_os_str().to_str());
    match components.next() {
        Some("tests") => FileKind::IntegrationTest,
        Some("benches") => FileKind::Bench,
        Some("examples") => FileKind::Example,
        Some("src") => {
            if components.next() == Some("bin") {
                FileKind::Bin
            } else {
                FileKind::Library
            }
        }
        _ => FileKind::Library,
    }
}

/// Read the `name = "..."` field of a crate's Cargo.toml; falls back to the
/// directory name.
fn crate_package_name(crate_dir: &Path) -> String {
    let manifest = crate_dir.join("Cargo.toml");
    if let Ok(text) = std::fs::read_to_string(&manifest) {
        for line in text.lines() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("name") {
                if let Some(v) = rest.trim_start().strip_prefix('=') {
                    return v.trim().trim_matches('"').to_string();
                }
            }
        }
    }
    crate_dir.file_name().and_then(|n| n.to_str()).unwrap_or("unknown").to_string()
}

/// Dependency keys from the `[dependencies]`/`[dev-dependencies]`/
/// `[build-dependencies]` sections of a manifest. For this workspace the
/// key *is* the package name.
fn manifest_deps(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_deps = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            let section = t.trim_matches(['[', ']']);
            in_deps = matches!(section, "dependencies" | "dev-dependencies" | "build-dependencies");
            if !in_deps {
                for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                    if let Some(name) = section.strip_prefix(prefix) {
                        out.insert(name.trim_matches('"').to_string());
                    }
                }
            }
            continue;
        }
        if in_deps {
            if let Some((key, _)) = t.split_once('=') {
                let k = key.trim().trim_matches('"');
                if !k.is_empty() {
                    out.insert(k.to_string());
                }
            }
        }
    }
    out
}

fn walk_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // Fixture corpora are violation samples by design, never
            // workspace code.
            if path.file_name().and_then(|n| n.to_str()) == Some("fixtures") {
                continue;
            }
            walk_rust_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn load_tree(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    crate_root: &Path,
    ws: &mut Workspace,
) -> std::io::Result<()> {
    let mut files = Vec::new();
    walk_rust_files(dir, &mut files)?;
    for path in files {
        let rel_in_crate = path.strip_prefix(crate_root).unwrap_or(&path);
        let kind = classify(rel_in_crate);
        let display = path.strip_prefix(root).unwrap_or(&path).display().to_string();
        let text = std::fs::read_to_string(&path)?;
        ws.files.push(FileInput { path: display, crate_name: crate_name.to_string(), kind, text });
    }
    Ok(())
}

/// Load a workspace rooted at `root` into memory: every crate under
/// `crates/` (its `src/`, `tests/`, `benches/`), plus the root `examples/`
/// and `tests/` trees, and the dependency direction from each crate's
/// manifest. `third_party/` shims and fixture corpora are out of scope by
/// construction.
pub fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let mut ws = Workspace::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> =
        std::fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs.into_iter().filter(|p| p.is_dir()) {
        let name = crate_package_name(&crate_dir);
        if let Ok(manifest) = std::fs::read_to_string(crate_dir.join("Cargo.toml")) {
            ws.deps.insert(name.clone(), manifest_deps(&manifest));
        }
        for sub in ["src", "tests", "benches"] {
            load_tree(root, &crate_dir.join(sub), &name, &crate_dir, &mut ws)?;
        }
    }
    for sub in ["examples", "tests"] {
        load_tree(root, &root.join(sub), "workspace", root, &mut ws)?;
    }
    Ok(ws)
}

/// Run the full pass over a workspace rooted at `root`, serially.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    run_workspace_with(root, &Executor::serial())
}

/// Run the full pass over a workspace rooted at `root` on the given
/// executor. Byte-identical to [`run_workspace`] at any worker count.
pub fn run_workspace_with(root: &Path, exec: &Executor) -> std::io::Result<Report> {
    Ok(analyze(&load_workspace(root)?, exec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify(Path::new("src/lib.rs")), FileKind::Library);
        assert_eq!(classify(Path::new("src/bin/lint.rs")), FileKind::Bin);
        assert_eq!(classify(Path::new("tests/engine.rs")), FileKind::IntegrationTest);
        assert_eq!(classify(Path::new("benches/scorecard.rs")), FileKind::Bench);
    }

    #[test]
    fn allow_suppresses_and_records_reason() {
        let src = "use std::collections::HashMap; // idse-lint: allow(unordered-iteration-in-report, reason = \"membership only, order never observed\")\n";
        let r = analyze_source("x.rs", "idse-eval", FileKind::Library, src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].reason, "membership only, order never observed");
    }

    #[test]
    fn allow_without_reason_is_invalid() {
        let src =
            "// idse-lint: allow(unordered-iteration-in-report)\nuse std::collections::HashMap;\n";
        let r = analyze_source("x.rs", "idse-eval", FileKind::Library, src);
        assert!(r.findings.iter().any(|f| f.rule == "invalid-allow"));
        // The underlying finding still fires: an invalid allow suppresses nothing.
        assert!(r.findings.iter().any(|f| f.rule == "unordered-iteration-in-report"));
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// idse-lint: allow(wall-clock-in-sim, reason = \"speculative\")\nlet x = 1;\n";
        let r = analyze_source("x.rs", "idse-sim", FileKind::Library, src);
        assert!(r.findings.iter().any(|f| f.rule == "unused-allow"));
    }

    #[test]
    fn manifest_deps_reads_section_keys() {
        let toml = "[package]\nname = \"idse-eval\"\n\n[dependencies]\n\
                    idse-sim = { workspace = true }\nserde = { workspace = true }\n\n\
                    [dev-dependencies]\nproptest = { workspace = true }\n";
        let deps = manifest_deps(toml);
        assert!(deps.contains("idse-sim"));
        assert!(deps.contains("proptest"));
        assert!(!deps.contains("name"));
    }

    #[test]
    fn stats_counts_by_crate_and_rule() {
        let mut r = analyze_source(
            "a.rs",
            "idse-eval",
            FileKind::Library,
            "use std::collections::HashMap;\n",
        );
        r.absorb(analyze_source(
            "b.rs",
            "idse-sim",
            FileKind::Library,
            "let t = Instant::now();\n",
        ));
        let stats = r.stats();
        assert_eq!(stats.totals.errors, 2);
        assert_eq!(stats.per_crate["idse-eval"]["unordered-iteration-in-report"].errors, 1);
        assert_eq!(stats.per_crate["idse-sim"]["wall-clock-in-sim"].errors, 1);
    }

    #[test]
    fn json_report_is_deterministic() {
        let run = || {
            let r = analyze_source(
                "a.rs",
                "idse-eval",
                FileKind::Library,
                "use std::collections::HashMap;\nlet x = y == 0.5;\n",
            );
            serde_json::to_string(&r.stats()).expect("stats serialize")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn transitive_finding_carries_the_chain() {
        // The seed lives in a tooling crate where the direct wall-clock
        // rule does not apply: without the taint pass this launders the
        // clock straight into the sim crate.
        let ws = Workspace {
            files: vec![
                FileInput {
                    path: "crates/simx/src/lib.rs".to_string(),
                    crate_name: "idse-sim".to_string(),
                    kind: FileKind::Library,
                    text: "pub fn step() -> u64 { now_ms() }\n\
                           fn now_ms() -> u64 { idse_timeutil::raw_clock() }\n"
                        .to_string(),
                },
                FileInput {
                    path: "crates/timeutil/src/lib.rs".to_string(),
                    crate_name: "idse-timeutil".to_string(),
                    kind: FileKind::Library,
                    text: "pub fn raw_clock() -> u64 { let t = std::time::Instant::now(); 0 }\n"
                        .to_string(),
                },
            ],
            deps: BTreeMap::new(),
        };
        let r = analyze(&ws, &Executor::serial());
        let direct: Vec<_> = r.findings.iter().filter(|f| f.rule == "wall-clock-in-sim").collect();
        let trans: Vec<_> =
            r.findings.iter().filter(|f| f.rule == "transitive-wall-clock-in-sim").collect();
        assert!(direct.is_empty(), "{:?}", r.findings);
        assert_eq!(trans.len(), 1, "{:?}", r.findings);
        assert_eq!(
            trans[0].chain,
            vec!["idse-sim::now_ms", "idse-timeutil::raw_clock", "std::time::Instant::now"]
        );
        assert_eq!(trans[0].file, "crates/simx/src/lib.rs");
        assert_eq!(trans[0].line, 2, "reported at now_ms's call site");
    }

    #[test]
    fn allow_at_source_shields_downstream_and_is_used() {
        // The hazard lives outside the report crates (no direct finding);
        // a report-crate function reaches it; one allow at the source
        // shields the downstream caller and counts as used.
        let ws = Workspace {
            files: vec![
                FileInput {
                    path: "crates/evalx/src/lib.rs".to_string(),
                    crate_name: "idse-eval".to_string(),
                    kind: FileKind::Library,
                    text: "use idse_ids::bucket_count;\n\
                           pub fn summarize() -> usize { bucket_count() }\n"
                        .to_string(),
                },
                FileInput {
                    path: "crates/idsx/src/lib.rs".to_string(),
                    crate_name: "idse-ids".to_string(),
                    kind: FileKind::Library,
                    text: "// idse-lint: allow(transitive-unordered-iteration-in-report, reason = \"size query only, order never observed\")\n\
                           pub fn bucket_count() -> usize { std::collections::HashMap::<u32, u32>::new().len() }\n"
                        .to_string(),
                },
            ],
            deps: BTreeMap::new(),
        };
        let a = analyze_full(&ws, &Executor::serial());
        assert!(a.report.findings.is_empty(), "{:?}", a.report.findings);
        assert_eq!(a.report.suppressed.len(), 1, "{:?}", a.report.suppressed);
        assert!(a.report.suppressed[0].finding.message.contains("shields 1 in-scope function"));
        assert!(a.directives.iter().all(|d| d.state == DirectiveState::Used), "{:?}", a.directives);
    }
}
