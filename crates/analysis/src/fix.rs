//! `lint --fix`: mechanical cleanup of allow directives.
//!
//! Two fixes, both derived from the directive lifecycle the analysis
//! already computes ([`crate::DirectiveStatus`]):
//!
//! * **unused** directives are deleted — the whole line when the comment
//!   stands alone, just the trailing comment when it shares a line with
//!   code;
//! * **malformed** directives whose intent is recoverable (a known rule
//!   name and a non-empty reason, however mangled the syntax) are
//!   rewritten to the canonical form
//!   `// idse-lint: allow(rule, reason = "...")`. Unrecoverable ones are
//!   left alone so the `invalid-allow` error keeps pointing at them.
//!
//! Planning is pure (workspace in, edit list out); [`apply`] touches the
//! filesystem and is only reached through `--fix --write` — the default
//! `--fix` run prints the plan and changes nothing.

use crate::rules::RuleId;
use crate::{Analysis, DirectiveState, Workspace};
use std::collections::BTreeMap;
use std::path::Path;

/// How one line changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditKind {
    /// Remove the line entirely (directive-only line).
    DeleteLine,
    /// Strip a trailing directive comment, keeping the code.
    StripComment(String),
    /// Rewrite the line (malformed directive normalized in place).
    ReplaceLine(String),
}

/// One planned edit.
#[derive(Debug, Clone)]
pub struct Edit {
    /// Workspace-relative path.
    pub file: String,
    /// 0-based line index in the current file contents.
    pub line: usize,
    /// What happens to the line.
    pub kind: EditKind,
    /// Human description for the dry run.
    pub note: String,
}

/// The full fix plan for a workspace.
#[derive(Debug, Default)]
pub struct FixPlan {
    /// Edits in (file, line) order.
    pub edits: Vec<Edit>,
}

impl FixPlan {
    /// Whether there is nothing to do.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Render the dry-run listing, one line per edit.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.edits {
            let verb = match &e.kind {
                EditKind::DeleteLine => "delete line",
                EditKind::StripComment(_) => "strip trailing comment",
                EditKind::ReplaceLine(_) => "normalize",
            };
            out.push_str(&format!("{}:{}: {} — {}\n", e.file, e.line + 1, verb, e.note));
        }
        out
    }
}

/// Where the directive comment starts in a raw source line: the byte
/// offset of the `//` that introduces the `idse-lint:` marker. Block
/// comments are not auto-fixed.
fn comment_start(raw: &str) -> Option<usize> {
    let marker = raw.find("idse-lint:")?;
    raw[..marker].rfind("//")
}

/// Relaxed re-parse of a mangled directive comment: recover (rule, reason)
/// when the rule name is known and some reason text exists, whatever the
/// punctuation around them.
fn recover(comment: &str) -> Option<(RuleId, String)> {
    let after = comment.split("idse-lint:").nth(1)?.trim_start();
    let body = after.strip_prefix("allow")?.trim_start();
    let body = body.strip_prefix('(').unwrap_or(body);
    let inner = body.split(')').next().unwrap_or(body);
    let (rule_part, reason_part) = inner.split_once(',')?;
    let rule = RuleId::parse(rule_part.trim())?;
    let mut r = reason_part.trim();
    r = r.strip_prefix("reason").unwrap_or(r).trim_start();
    r = r.strip_prefix(':').or_else(|| r.strip_prefix('=')).unwrap_or(r).trim();
    let r = r.trim_matches('"').trim();
    if r.is_empty() {
        return None;
    }
    Some((rule, r.to_string()))
}

/// Build the fix plan from a completed analysis of `ws`.
pub fn plan(ws: &Workspace, analysis: &Analysis) -> FixPlan {
    let by_path: BTreeMap<&str, &str> =
        ws.files.iter().map(|f| (f.path.as_str(), f.text.as_str())).collect();
    let mut plan = FixPlan::default();
    for d in &analysis.directives {
        if d.state == DirectiveState::Used {
            continue;
        }
        let Some(text) = by_path.get(d.file.as_str()) else { continue };
        let Some(raw) = text.lines().nth(d.on_line) else { continue };
        let Some(at) = comment_start(raw) else { continue };
        let prefix = &raw[..at];
        match d.state {
            DirectiveState::Unused => {
                let (kind, verb) = if prefix.trim().is_empty() {
                    (EditKind::DeleteLine, "unused directive on its own line")
                } else {
                    (
                        EditKind::StripComment(prefix.trim_end().to_string()),
                        "unused directive trailing code",
                    )
                };
                plan.edits.push(Edit {
                    file: d.file.clone(),
                    line: d.on_line,
                    kind,
                    note: format!("allow({}) suppressed nothing ({verb})", d.rule_name),
                });
            }
            DirectiveState::Malformed => {
                let Some((rule, reason)) = recover(&raw[at..]) else { continue };
                let indent: String = if prefix.trim().is_empty() {
                    prefix.to_string()
                } else {
                    format!("{} ", prefix.trim_end())
                };
                let fixed =
                    format!("{indent}// idse-lint: allow({}, reason = \"{reason}\")", rule.name());
                if fixed == raw {
                    continue;
                }
                plan.edits.push(Edit {
                    file: d.file.clone(),
                    line: d.on_line,
                    kind: EditKind::ReplaceLine(fixed),
                    note: format!("rewrite malformed allow({}) to canonical form", rule.name()),
                });
            }
            DirectiveState::Used => {}
        }
    }
    plan.edits.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    plan
}

/// Apply a plan to the files under `root`. Edits within a file are applied
/// bottom-up so earlier line numbers stay valid. Returns the number of
/// edits applied.
pub fn apply(plan: &FixPlan, root: &Path) -> std::io::Result<usize> {
    let mut by_file: BTreeMap<&str, Vec<&Edit>> = BTreeMap::new();
    for e in &plan.edits {
        by_file.entry(e.file.as_str()).or_default().push(e);
    }
    let mut applied = 0usize;
    for (file, mut edits) in by_file {
        edits.sort_by_key(|e| std::cmp::Reverse(e.line));
        let path = root.join(file);
        let text = std::fs::read_to_string(&path)?;
        let had_trailing_newline = text.ends_with('\n');
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        for e in edits {
            if e.line >= lines.len() {
                continue;
            }
            match &e.kind {
                EditKind::DeleteLine => {
                    lines.remove(e.line);
                }
                EditKind::StripComment(code) | EditKind::ReplaceLine(code) => {
                    lines[e.line] = code.clone();
                }
            }
            applied += 1;
        }
        let mut out = lines.join("\n");
        if had_trailing_newline {
            out.push('\n');
        }
        std::fs::write(&path, out)?;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;
    use crate::{analyze_full, FileInput};
    use idse_exec::Executor;
    use std::collections::BTreeMap;

    fn ws_of(text: &str) -> Workspace {
        Workspace {
            files: vec![FileInput {
                path: "crates/simx/src/lib.rs".to_string(),
                crate_name: "idse-sim".to_string(),
                kind: FileKind::Library,
                text: text.to_string(),
            }],
            deps: BTreeMap::new(),
        }
    }

    #[test]
    fn unused_directive_on_own_line_is_deleted() {
        let ws = ws_of(
            "// idse-lint: allow(wall-clock-in-sim, reason = \"speculative\")\npub fn f() {}\n",
        );
        let a = analyze_full(&ws, &Executor::serial());
        let p = plan(&ws, &a);
        assert_eq!(p.edits.len(), 1, "{}", p.render());
        assert_eq!(p.edits[0].kind, EditKind::DeleteLine);
        assert_eq!(p.edits[0].line, 0);
    }

    #[test]
    fn unused_trailing_directive_strips_the_comment_only() {
        let ws = ws_of("pub fn f() {} // idse-lint: allow(unseeded-entropy, reason = \"stale\")\n");
        let a = analyze_full(&ws, &Executor::serial());
        let p = plan(&ws, &a);
        assert_eq!(p.edits.len(), 1, "{}", p.render());
        assert_eq!(p.edits[0].kind, EditKind::StripComment("pub fn f() {}".to_string()));
    }

    #[test]
    fn malformed_with_recoverable_intent_is_normalized() {
        // Wrong reason punctuation (colon instead of `= "..."`).
        let ws = ws_of(
            "// idse-lint: allow(wall-clock-in-sim, reason: startup banner)\n\
             pub fn f() -> u64 { let t = Instant::now(); 0 }\n",
        );
        let a = analyze_full(&ws, &Executor::serial());
        let p = plan(&ws, &a);
        assert_eq!(p.edits.len(), 1, "{}", p.render());
        assert_eq!(
            p.edits[0].kind,
            EditKind::ReplaceLine(
                "// idse-lint: allow(wall-clock-in-sim, reason = \"startup banner\")".to_string()
            )
        );
    }

    #[test]
    fn unknown_rule_is_left_for_the_human() {
        let ws = ws_of("// idse-lint: allow(no-such-rule, reason = \"hm\")\npub fn f() {}\n");
        let a = analyze_full(&ws, &Executor::serial());
        let p = plan(&ws, &a);
        assert!(p.is_empty(), "{}", p.render());
    }

    #[test]
    fn used_directives_are_never_touched() {
        let ws = ws_of(
            "// idse-lint: allow(wall-clock-in-sim, reason = \"boot only\")\n\
             pub fn f() -> u64 { let t = Instant::now(); 0 }\n",
        );
        let a = analyze_full(&ws, &Executor::serial());
        assert!(a.report.findings.is_empty(), "{:?}", a.report.findings);
        let p = plan(&ws, &a);
        assert!(p.is_empty(), "{}", p.render());
    }
}
