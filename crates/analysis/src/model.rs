//! Phase-1 semantic model: a lightweight, per-file item table built on the
//! masked line view of [`crate::source`], assembled into a whole-workspace
//! call graph.
//!
//! The extractor is a brace-depth state machine over the code channel. It
//! tracks `mod`/`impl`/`trait`/`struct` scopes, records every `fn`
//! definition with its module path and (for methods) `Self` type, collects
//! `use` imports, and scans function bodies for *call sites* and *taint
//! seeds* (the hazard tokens of [`TaintLabel`]). Assembly resolves call
//! tokens to workspace definitions — through the file's imports,
//! `crate::`/`self::`/`super::` prefixes, underscore crate names, and
//! same-module/same-crate fallbacks — and filters every edge by the
//! workspace dependency direction so a call can never resolve into a crate
//! the caller does not depend on.
//!
//! Deliberate approximations, chosen to stay deterministic and honest:
//!
//! * method calls (`.observe(...)`) resolve only when the method name is
//!   defined exactly once across the workspace and is not a common std
//!   method name — an under-approximation that avoids false edges through
//!   `len`/`get`/`insert` lookalikes;
//! * unresolved paths (std, external crates) produce no edge: external
//!   hazards are caught where their *tokens* appear, as seeds;
//! * a struct field of a hazard type (say `buckets: HashMap<..>`) seeds
//!   every method of that type in the same crate — type-level taint, so
//!   constructors are not the only carriers.

use crate::rules::{self, FileKind, TaintLabel};
use crate::source::Line;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One function (or method) definition in the workspace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FnDef {
    /// Display-qualified name: `crate::module::[Type::]name`.
    pub qual: String,
    /// Bare function name (last segment).
    pub name: String,
    /// `Self` type name when defined inside an `impl`/`trait` block.
    pub self_ty: Option<String>,
    /// Owning crate package name.
    pub crate_name: String,
    /// Module path within the crate (file module + inline `mod` scopes).
    pub module: Vec<String>,
    /// Index of the defining file in the analyzed file list.
    pub file: usize,
    /// 0-based line of the definition header.
    pub line: usize,
    /// File kind of the defining file.
    pub kind: FileKind,
    /// Whether the definition sits in a `#[cfg(test)]` region or test file.
    pub in_test: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CalleeRef {
    /// Free or associated call written as a path: `foo(..)`, `a::b::f(..)`.
    Path(Vec<String>),
    /// Method call: `recv.name(..)`.
    Method(String),
}

/// One call site inside a function body (caller is file-local until
/// assembly renumbers it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CallSite {
    /// File-local index of the calling function.
    pub caller: usize,
    /// The callee as written.
    pub callee: CalleeRef,
    /// 0-based line of the call token.
    pub line: usize,
    /// 0-based column of the call token.
    pub column: usize,
}

/// A taint seed found inside a function body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalSeed {
    /// File-local index of the owning function.
    pub fn_local: usize,
    /// Hazard class.
    pub label: TaintLabel,
    /// The token as it appears in source (path-expanded for display).
    pub token: String,
    /// 0-based line of the token.
    pub line: usize,
    /// 0-based column of the token.
    pub column: usize,
}

/// The three loop forms the extractor distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopKind {
    /// `for pat in expr { .. }` — the bound is the iterated expression.
    For,
    /// `while cond { .. }` (including `while let`).
    While,
    /// Bare `loop { .. }` — unbounded until `break`.
    Loop,
}

/// One loop scope inside a file: the performance phase's unit of hotness.
///
/// `head` is the whitespace-normalized header text (`for rec in records`),
/// which is the loop's *bound provenance*: the performance phase reads it
/// to decide whether the loop walks per-record/per-byte input and whether
/// its bound names the same collection a body accumulation grows with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopInfo {
    /// File-local index of the innermost enclosing function, if any.
    pub fn_local: Option<usize>,
    /// Loop form.
    pub kind: LoopKind,
    /// Whitespace-normalized header text preceding the `{`.
    pub head: String,
    /// 0-based line of the header.
    pub line: usize,
    /// Nesting depth among *loops* in the same function (0 = outermost).
    pub depth: usize,
    /// 0-based line of the closing `}` (== `line` for one-line loops).
    pub end_line: usize,
    /// Whether the loop sits in a `#[cfg(test)]` region or test file.
    pub in_test: bool,
}

/// A taint seed found in a type declaration (struct/enum field of a hazard
/// type): taints every method of the type in the same crate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeSeed {
    /// The struct/enum name.
    pub type_name: String,
    /// Hazard class.
    pub label: TaintLabel,
    /// The token as it appears in source.
    pub token: String,
    /// 0-based line of the token.
    pub line: usize,
    /// 0-based column of the token.
    pub column: usize,
}

/// Everything phase 1 learns about one file.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FileModel {
    /// Functions defined in the file, in definition order.
    pub fns: Vec<FnDef>,
    /// Call sites, `caller` indexing into `fns`.
    pub calls: Vec<CallSite>,
    /// Function-body taint seeds.
    pub seeds: Vec<LocalSeed>,
    /// Loop scopes, in header order — the performance phase's loop model.
    #[serde(default)]
    pub loops: Vec<LoopInfo>,
    /// Type-declaration taint seeds.
    pub type_seeds: Vec<TypeSeed>,
    /// `use` imports: visible name → full path segments.
    pub imports: BTreeMap<String, Vec<String>>,
    /// Per-line owning function (index into `fns`): the innermost `fn`
    /// active on each line. The dataflow phase walks function bodies
    /// through this map.
    pub line_owners: Vec<Option<usize>>,
}

/// Module path of a file from its workspace-relative path: `src/lib.rs`
/// and `src/main.rs` are the crate root, `src/a/b.rs` is `a::b`,
/// `src/a/mod.rs` is `a`, `src/bin/x.rs` is `bin::x` (kept distinct from
/// the library namespace), and `tests/`/`benches/`/`examples/` files are
/// their own roots named after the tree and file stem.
pub fn module_path_of(path: &str) -> Vec<String> {
    let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
    let anchor = parts
        .iter()
        .rposition(|p| matches!(*p, "src" | "tests" | "benches" | "examples"))
        .map(|i| (parts[i], i));
    let (tree, rel): (&str, &[&str]) = match anchor {
        Some((tree, i)) => (tree, &parts[i + 1..]),
        None => ("src", &parts[parts.len().saturating_sub(1)..]),
    };
    let mut out: Vec<String> = Vec::new();
    if tree != "src" {
        out.push(tree.to_string());
    }
    for (i, part) in rel.iter().enumerate() {
        let last = i + 1 == rel.len();
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if !(matches!(stem, "lib" | "main" | "mod") && tree == "src" && rel.len() == 1)
                && stem != "mod"
            {
                out.push(stem.to_string());
            }
        } else {
            out.push(part.to_string());
        }
    }
    out
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ScopeKind {
    Mod(String),
    Impl(Option<String>),
    Trait(String),
    TypeDecl(String),
    Fn(usize),
    /// A loop body; the index points into `FileModel::loops`.
    Loop(usize),
    Block,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    /// Brace depth at which the scope's `{` appeared.
    depth: i64,
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "in", "as", "let", "fn", "move",
    "break", "continue", "where", "unsafe", "await", "yield", "dyn", "ref", "mut", "pub", "use",
    "mod", "impl", "trait", "struct", "enum", "union", "const", "static", "type", "crate", "self",
    "Self", "super",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// First word-boundary occurrence of `word` in `s` at or after `from`.
fn word_pos(s: &str, word: &str) -> Option<usize> {
    rules::word_at(s, word)
}

/// The identifier immediately following byte position `after` (skipping
/// whitespace), if any.
fn ident_after(s: &str, after: usize) -> Option<String> {
    let rest = s[after..].trim_start();
    let end = rest.find(|c: char| !is_ident_char(c)).unwrap_or(rest.len());
    let ident = &rest[..end];
    (!ident.is_empty() && ident.chars().next().is_some_and(is_ident_start))
        .then(|| ident.to_string())
}

/// Classify the statement text preceding a `{` into a scope kind.
fn classify_header(stmt: &str) -> ScopeKind {
    // The earliest item keyword wins: `fn f(x: impl T)` is a fn even
    // though `impl` appears later in the header.
    let mut best: Option<(usize, &str)> = None;
    for kw in ["fn", "mod", "impl", "trait", "struct", "enum", "union"] {
        if let Some(at) = word_pos(stmt, kw) {
            let named = match kw {
                "impl" => true,
                _ => ident_after(stmt, at + kw.len()).is_some(),
            };
            if named && best.is_none_or(|(b, _)| at < b) {
                best = Some((at, kw));
            }
        }
    }
    match best {
        Some((at, "fn")) => {
            // Placeholder index; the caller fills in the real FnDef.
            let _ = at;
            ScopeKind::Fn(usize::MAX)
        }
        Some((at, "mod")) => {
            ScopeKind::Mod(ident_after(stmt, at + 3).expect("classify_header only picks named mod"))
        }
        Some((at, "trait")) => ScopeKind::Trait(
            ident_after(stmt, at + 5).expect("classify_header only picks named trait"),
        ),
        Some((at, kw @ ("struct" | "enum" | "union"))) => ScopeKind::TypeDecl(
            ident_after(stmt, at + kw.len()).expect("classify_header only picks named types"),
        ),
        Some((at, "impl")) => ScopeKind::Impl(impl_type_name(&stmt[at + 4..])),
        // No item keyword: a loop keyword makes this a loop body. Item
        // detection runs first, so `impl Iterator for Chunks` stays Impl.
        _ => match loop_header(stmt) {
            Some(_) => ScopeKind::Loop(usize::MAX),
            None => ScopeKind::Block,
        },
    }
}

/// Detect a loop header: the earliest word-boundary `for`/`while`/`loop`
/// keyword, with its byte position. Method chains (`.for_each`) and
/// capitalized enum variants do not match at a word boundary.
fn loop_header(stmt: &str) -> Option<(usize, LoopKind)> {
    let mut best: Option<(usize, LoopKind)> = None;
    for (kw, kind) in [("for", LoopKind::For), ("while", LoopKind::While), ("loop", LoopKind::Loop)]
    {
        if let Some(at) = word_pos(stmt, kw) {
            if best.is_none_or(|(b, _)| at < b) {
                best = Some((at, kind));
            }
        }
    }
    best
}

/// Extract the `Self` type name from an `impl` header tail (everything
/// after the `impl` keyword): `<T> Trait for Type<T>` → `Type`.
fn impl_type_name(tail: &str) -> Option<String> {
    // Prefer the segment after the last top-level `for` (not `for<'a>`).
    let mut target = tail;
    let mut from = 0;
    let mut last_for: Option<usize> = None;
    while let Some(rel) = target[from..].find("for") {
        let at = from + rel;
        let before_ok =
            at == 0 || target[..at].chars().next_back().is_some_and(|c| !is_ident_char(c));
        let after = &target[at + 3..];
        let after_ok = after.chars().next().is_none_or(|c| !is_ident_char(c) && c != '<');
        if before_ok && after_ok {
            last_for = Some(at);
        }
        from = at + 3;
    }
    if let Some(at) = last_for {
        target = &target[at + 3..];
    } else {
        // Skip leading generics directly after `impl`.
        let t = target.trim_start();
        if let Some(rest) = t.strip_prefix('<') {
            let mut depth = 1i32;
            let mut cut = rest.len();
            for (i, c) in rest.char_indices() {
                match c {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            cut = i + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            target = &rest[cut.min(rest.len())..];
        } else {
            target = t;
        }
    }
    let t = target.trim_start().trim_start_matches(['&', '(']).trim_start();
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    let end = t.find(|c: char| !is_ident_char(c) && c != ':').unwrap_or(t.len());
    let path = &t[..end];
    let name = path.rsplit("::").next().unwrap_or(path);
    (!name.is_empty() && name.chars().next().is_some_and(is_ident_start)).then(|| name.to_string())
}

/// Parse the body of a `use` statement (text between `use` and `;`) into
/// the per-file import map. Handles nested groups, `as` renames, and
/// `self` leaves; glob imports are skipped.
fn parse_use(body: &str, imports: &mut BTreeMap<String, Vec<String>>) {
    fn split_top_commas(s: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        let mut start = 0;
        for (i, c) in s.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                ',' if depth == 0 => {
                    out.push(&s[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        out.push(&s[start..]);
        out
    }
    fn walk(prefix: &[String], item: &str, imports: &mut BTreeMap<String, Vec<String>>) {
        let item = item.trim();
        if item.is_empty() || item == "*" {
            return;
        }
        if let Some(open) = item.find('{') {
            let head = item[..open].trim().trim_end_matches("::");
            let inner = item[open + 1..].trim_end().trim_end_matches('}');
            let mut prefix = prefix.to_vec();
            prefix.extend(head.split("::").filter(|s| !s.is_empty()).map(|s| s.trim().to_string()));
            for part in split_top_commas(inner) {
                walk(&prefix, part, imports);
            }
            return;
        }
        let (path_part, alias) = match item.split_once(" as ") {
            Some((p, a)) => (p.trim(), Some(a.trim().to_string())),
            None => (item, None),
        };
        let mut segs: Vec<String> = prefix.to_vec();
        segs.extend(path_part.split("::").map(|s| s.trim().to_string()).filter(|s| !s.is_empty()));
        if segs.last().is_some_and(|s| s == "self") {
            segs.pop();
        }
        if segs.last().is_some_and(|s| s == "*") {
            return;
        }
        let Some(last) = segs.last().cloned() else { return };
        let name = alias.unwrap_or(last);
        imports.insert(name, segs);
    }
    for part in split_top_commas(body) {
        walk(&[], part, imports);
    }
}

/// Strip a `pub`/`pub(...)` prefix and detect a `use` statement; returns
/// the text after the `use` keyword.
fn use_stmt(stmt: &str) -> Option<&str> {
    let mut t = stmt.trim_start();
    if let Some(rest) = t.strip_prefix("pub") {
        let rest = rest.trim_start();
        t = rest
            .strip_prefix('(')
            .map_or(rest, |r| r.split_once(')').map_or(r, |(_, tail)| tail.trim_start()));
    }
    let rest = t.strip_prefix("use")?;
    rest.starts_with([' ', '\t']).then(|| rest.trim_start())
}

/// Scan one line of code for call tokens; returns `(column, callee)`
/// pairs in order of appearance. Columns are char offsets.
fn scan_calls(code: &str) -> Vec<(usize, CalleeRef)> {
    let chars: Vec<char> = code.chars().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        if !is_ident_start(chars[i]) || (i > 0 && is_ident_char(chars[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        let mut segs: Vec<String> = Vec::new();
        loop {
            let seg_start = i;
            while i < n && is_ident_char(chars[i]) {
                i += 1;
            }
            segs.push(chars[seg_start..i].iter().collect());
            if i + 2 < n && chars[i] == ':' && chars[i + 1] == ':' && is_ident_start(chars[i + 2]) {
                i += 2;
            } else {
                break;
            }
        }
        let mut j = i;
        // Turbofish: `::<...>` between the path and the call parens.
        if j + 2 < n && chars[j] == ':' && chars[j + 1] == ':' && chars[j + 2] == '<' {
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < n {
                match chars[k] {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            if k < n {
                j = k + 1;
            }
        }
        if j >= n || chars[j] != '(' {
            i = i.max(j);
            continue;
        }
        // Macro invocation (`name!(..)`) is not a call token.
        if i < n && chars[i] == '!' {
            i += 1;
            continue;
        }
        // Context of the char before the path.
        let mut p = start;
        while p > 0 && chars[p - 1] == ' ' {
            p -= 1;
        }
        let prev = (p > 0).then(|| chars[p - 1]);
        let is_range = p >= 2 && chars[p - 1] == '.' && chars[p - 2] == '.';
        if prev == Some('.') && !is_range {
            let name = segs.last().cloned().unwrap_or_default();
            out.push((start, CalleeRef::Method(name)));
            i = j;
            continue;
        }
        // Skip the defined name in `fn name(...)`.
        let head: String = chars[..start].iter().collect();
        let head = head.trim_end();
        if head.ends_with("fn")
            && head[..head.len() - 2].chars().next_back().is_none_or(|c| !is_ident_char(c))
        {
            i = j;
            continue;
        }
        if segs.len() == 1 {
            let only = segs[0].as_str();
            if KEYWORDS.contains(&only) || only.chars().next().is_some_and(|c| c.is_uppercase()) {
                i = j;
                continue;
            }
        }
        out.push((start, CalleeRef::Path(segs)));
        i = j;
    }
    out
}

/// Expand a matched token to the full path-ish text around it, for chain
/// display: matching `Instant` in `std::time::Instant::now()` yields
/// `std::time::Instant::now`.
fn expand_token(code: &str, at: usize, len: usize) -> String {
    let bytes = code.as_bytes();
    let is_pathish = |b: u8| b.is_ascii_alphanumeric() || b == b'_' || b == b':';
    let mut lo = at;
    while lo > 0 && is_pathish(bytes[lo - 1]) {
        lo -= 1;
    }
    let mut hi = at + len;
    while hi < bytes.len() && is_pathish(bytes[hi]) {
        hi += 1;
    }
    code[lo..hi].trim_matches(':').to_string()
}

/// Scan one line for taint seeds: `(label, display token, column)`.
fn scan_seeds(
    crate_name: &str,
    code: &str,
    in_test_code: bool,
) -> Vec<(TaintLabel, String, usize)> {
    let mut out = Vec::new();
    for label in TaintLabel::ALL {
        if !label.seeds_in(crate_name, in_test_code) {
            continue;
        }
        let mut best: Option<(usize, String)> = None;
        for w in label.seed_words() {
            if let Some(at) = rules::word_at(code, w) {
                let token = match label {
                    TaintLabel::UnorderedIter | TaintLabel::WallClock | TaintLabel::Entropy => {
                        expand_token(code, at, w.len())
                    }
                    _ => (*w).to_string(),
                };
                if best.as_ref().is_none_or(|(b, _)| at < *b) {
                    best = Some((at, token));
                }
            }
        }
        for s in label.seed_substrings() {
            if let Some(at) = code.find(s) {
                if best.as_ref().is_none_or(|(b, _)| at < *b) {
                    best = Some((at, (*s).to_string()));
                }
            }
        }
        if let Some((at, token)) = best {
            out.push((label, token, at));
        }
    }
    out
}

/// Build the semantic model of one file from its masked lines.
pub fn extract(
    path: &str,
    crate_name: &str,
    kind: FileKind,
    file_idx: usize,
    lines: &[Line],
    test_flags: &[bool],
) -> FileModel {
    let file_module = module_path_of(path);
    let mut model = FileModel::default();
    let mut stack: Vec<Scope> = Vec::new();
    let mut depth: i64 = 0;
    let mut stmt = String::new();
    let mut stmt_line: Option<usize> = None;
    let mut in_use = false;
    // Innermost fn / type-decl owning each line (for call/seed scanning).
    let mut line_fn: Vec<Option<usize>> = vec![None; lines.len()];
    let mut line_ty: Vec<Option<String>> = vec![None; lines.len()];

    for (li, line) in lines.iter().enumerate() {
        for c in line.code.chars() {
            if in_use {
                if c == ';' {
                    if let Some(body) = use_stmt(&stmt) {
                        parse_use(body, &mut model.imports);
                    }
                    stmt.clear();
                    stmt_line = None;
                    in_use = false;
                } else {
                    stmt.push(c);
                }
                continue;
            }
            match c {
                '{' => {
                    let mut kind_of = classify_header(&stmt);
                    if let ScopeKind::Fn(_) = kind_of {
                        let def_line = stmt_line.unwrap_or(li);
                        let at = word_pos(&stmt, "fn").unwrap_or(0);
                        let name = ident_after(&stmt, at + 2).unwrap_or_default();
                        let mut module = file_module.clone();
                        module.extend(stack.iter().filter_map(|s| match &s.kind {
                            ScopeKind::Mod(m) => Some(m.clone()),
                            _ => None,
                        }));
                        let self_ty = stack.iter().rev().find_map(|s| match &s.kind {
                            ScopeKind::Impl(t) => Some(t.clone()),
                            ScopeKind::Trait(t) => Some(Some(t.clone())),
                            _ => None,
                        });
                        let self_ty = self_ty.flatten();
                        let mut qual = String::new();
                        qual.push_str(crate_name);
                        for m in &module {
                            qual.push_str("::");
                            qual.push_str(m);
                        }
                        if let Some(t) = &self_ty {
                            qual.push_str("::");
                            qual.push_str(t);
                        }
                        qual.push_str("::");
                        qual.push_str(&name);
                        let local = model.fns.len();
                        model.fns.push(FnDef {
                            qual,
                            name,
                            self_ty,
                            crate_name: crate_name.to_string(),
                            module,
                            file: file_idx,
                            line: def_line,
                            kind,
                            in_test: test_flags.get(def_line).copied().unwrap_or(false)
                                || kind.is_test(),
                        });
                        kind_of = ScopeKind::Fn(local);
                    }
                    if let ScopeKind::Loop(_) = kind_of {
                        let head_line = stmt_line.unwrap_or(li);
                        let (at, lk) =
                            loop_header(&stmt).expect("classify_header only picks loop headers");
                        let fn_local = stack.iter().rev().find_map(|s| match s.kind {
                            ScopeKind::Fn(local) => Some(local),
                            _ => None,
                        });
                        let ldepth =
                            stack.iter().filter(|s| matches!(s.kind, ScopeKind::Loop(_))).count();
                        let idx = model.loops.len();
                        model.loops.push(LoopInfo {
                            fn_local,
                            kind: lk,
                            head: stmt[at..].split_whitespace().collect::<Vec<_>>().join(" "),
                            line: head_line,
                            depth: ldepth,
                            end_line: head_line,
                            in_test: test_flags.get(head_line).copied().unwrap_or(false)
                                || kind.is_test(),
                        });
                        kind_of = ScopeKind::Loop(idx);
                    }
                    stack.push(Scope { kind: kind_of, depth });
                    depth += 1;
                    stmt.clear();
                    stmt_line = None;
                }
                '}' => {
                    depth -= 1;
                    while stack.last().is_some_and(|s| s.depth >= depth) {
                        if let Some(scope) = stack.pop() {
                            if let ScopeKind::Loop(idx) = scope.kind {
                                if let Some(l) = model.loops.get_mut(idx) {
                                    l.end_line = li;
                                }
                            }
                        }
                    }
                    stmt.clear();
                    stmt_line = None;
                }
                ';' => {
                    stmt.clear();
                    stmt_line = None;
                }
                _ => {
                    if !c.is_whitespace() && stmt_line.is_none() {
                        stmt_line = Some(li);
                    }
                    stmt.push(c);
                    if !in_use && use_stmt(&stmt).is_some() {
                        in_use = true;
                    }
                }
            }
        }
        // Record per-line owners: the innermost fn/type active on (or
        // opened during) this line.
        for s in stack.iter().rev() {
            match &s.kind {
                ScopeKind::Fn(local) => {
                    line_fn[li] = Some(*local);
                    break;
                }
                ScopeKind::TypeDecl(t) => {
                    line_ty[li] = Some(t.clone());
                    break;
                }
                _ => {}
            }
        }
        if line_fn[li].is_none() {
            // A one-line `fn f() { .. }` opens and closes within the line;
            // the freshest def whose header line is this line owns it.
            if let Some((local, _)) = model.fns.iter().enumerate().rev().find(|(_, f)| f.line == li)
            {
                if lines[li].code.contains('{') {
                    line_fn[li] = Some(local);
                }
            }
        }
    }

    // Second pass: calls and seeds per line, attributed to owners.
    for (li, line) in lines.iter().enumerate() {
        let code = &line.code;
        if code.trim().is_empty() {
            continue;
        }
        let in_test_code = test_flags.get(li).copied().unwrap_or(false) || kind.is_test();
        if let Some(owner) = line_fn[li] {
            for (col, callee) in scan_calls(code) {
                model.calls.push(CallSite { caller: owner, callee, line: li, column: col });
            }
            for (label, token, col) in scan_seeds(crate_name, code, in_test_code) {
                model.seeds.push(LocalSeed {
                    fn_local: owner,
                    label,
                    token,
                    line: li,
                    column: col,
                });
            }
        } else if let Some(ty) = &line_ty[li] {
            for (label, token, col) in scan_seeds(crate_name, code, in_test_code) {
                model.type_seeds.push(TypeSeed {
                    type_name: ty.clone(),
                    label,
                    token,
                    line: li,
                    column: col,
                });
            }
        }
    }

    model.line_owners = line_fn;
    model
}

/// A resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Global index of the callee.
    pub callee: usize,
    /// 0-based call-site line in the caller's file.
    pub line: usize,
    /// 0-based call-site column.
    pub column: usize,
}

/// A taint seed attached to a global function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeedInfo {
    /// Hazard class.
    pub label: TaintLabel,
    /// Display token.
    pub token: String,
    /// File index of the token (the *type's* file for type seeds).
    pub file: usize,
    /// 0-based line of the token.
    pub line: usize,
    /// 0-based column of the token.
    pub column: usize,
}

/// The assembled whole-workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All function definitions, globally numbered in file order.
    pub fns: Vec<FnDef>,
    /// Outgoing edges per function, sorted and deduplicated.
    pub edges: Vec<Vec<Edge>>,
    /// Taint seeds per function, sorted.
    pub seeds: Vec<Vec<SeedInfo>>,
}

/// Method names too generic to resolve by uniqueness: resolving these by
/// name would wire std-container calls to coincidentally-named workspace
/// methods.
const METHOD_DENYLIST: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_ref",
    "as_str",
    "chain",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "flat_map",
    "flatten",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "map_err",
    "max",
    "min",
    "new",
    "next",
    "ok_or",
    "or_else",
    "parse",
    "pop",
    "position",
    "push",
    "push_str",
    "read",
    "remove",
    "retain",
    "rev",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "write",
    "zip",
];

/// Per-file metadata assembly needs alongside the [`FileModel`].
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative display path.
    pub path: String,
    /// Owning crate package name.
    pub crate_name: String,
    /// File kind.
    pub kind: FileKind,
}

/// Assemble per-file models into the workspace call graph.
///
/// `deps` maps crate package names to their *direct* workspace
/// dependencies; the transitive closure is computed here and every edge
/// must respect it (a crate absent from the map is unconstrained, which
/// is what fixture corpora and the root `workspace` pseudo-crate use).
pub fn assemble(
    metas: &[FileMeta],
    models: &[FileModel],
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> Graph {
    let mut graph = Graph::default();
    let mut base = vec![0usize; models.len()];
    for (fi, model) in models.iter().enumerate() {
        base[fi] = graph.fns.len();
        graph.fns.extend(model.fns.iter().cloned());
    }
    let nfns = graph.fns.len();
    graph.edges = vec![Vec::new(); nfns];
    graph.seeds = vec![Vec::new(); nfns];

    // Transitive dependency closure.
    let closure = dep_closure(deps);

    // Indexes.
    let mut free_by_crate_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut crate_names: BTreeSet<&str> = BTreeSet::new();
    for (id, f) in graph.fns.iter().enumerate() {
        crate_names.insert(f.crate_name.as_str());
        by_crate.entry(f.crate_name.as_str()).or_default().push(id);
        if f.self_ty.is_none() {
            free_by_crate_name
                .entry((f.crate_name.as_str(), f.name.as_str()))
                .or_default()
                .push(id);
        } else {
            methods_by_name.entry(f.name.as_str()).or_default().push(id);
        }
    }
    let underscore: BTreeMap<String, &str> =
        crate_names.iter().map(|c| (c.replace('-', "_"), *c)).collect();

    let edge_allowed = |caller: &str, callee: &str| -> bool {
        caller == callee
            || match closure.get(caller) {
                Some(set) => set.contains(callee),
                None => true,
            }
    };

    // Resolve one written path from the context of `caller`.
    let resolve_path =
        |caller: &FnDef, imports: &BTreeMap<String, Vec<String>>, segs: &[String]| -> Vec<usize> {
            let mut segs: Vec<String> = segs.to_vec();
            // Import expansion (bounded: an import path can itself start with
            // an aliased name only through re-exports, which one extra round
            // covers).
            for _ in 0..2 {
                let Some(first) = segs.first() else { return Vec::new() };
                let Some(full) = imports.get(first) else { break };
                if full.first() == Some(first) && full.len() == 1 {
                    break;
                }
                let mut expanded = full.clone();
                expanded.extend(segs.into_iter().skip(1));
                segs = expanded;
            }
            let Some(first) = segs.first().cloned() else { return Vec::new() };
            if segs.len() == 1 {
                // Bare name: same module first, then unique within the crate.
                let name = first.as_str();
                if let Some(ids) = free_by_crate_name.get(&(caller.crate_name.as_str(), name)) {
                    let same_module: Vec<usize> = ids
                        .iter()
                        .copied()
                        .filter(|&id| graph.fns[id].module == caller.module)
                        .collect();
                    if !same_module.is_empty() {
                        return same_module;
                    }
                    return ids.clone();
                }
                return Vec::new();
            }
            let (crate_name, rel): (&str, Vec<String>) = match first.as_str() {
                "crate" => (caller.crate_name.as_str(), segs[1..].to_vec()),
                "self" => {
                    let mut rel = caller.module.clone();
                    rel.extend(segs[1..].iter().cloned());
                    (caller.crate_name.as_str(), rel)
                }
                "super" => {
                    let mut module = caller.module.clone();
                    let mut rest = &segs[1..];
                    module.pop();
                    while rest.first().is_some_and(|s| s == "super") {
                        module.pop();
                        rest = &rest[1..];
                    }
                    let mut rel = module;
                    rel.extend(rest.iter().cloned());
                    (caller.crate_name.as_str(), rel)
                }
                "std" | "core" | "alloc" => return Vec::new(),
                other => match underscore.get(other) {
                    Some(c) => (c, segs[1..].to_vec()),
                    None => (caller.crate_name.as_str(), segs.clone()),
                },
            };
            if rel.is_empty() {
                return Vec::new();
            }
            let suffix = format!("::{}", rel.join("::"));
            let exact = format!("{crate_name}{suffix}");
            let Some(ids) = by_crate.get(crate_name) else { return Vec::new() };
            let exact_hits: Vec<usize> =
                ids.iter().copied().filter(|&id| graph.fns[id].qual == exact).collect();
            if !exact_hits.is_empty() {
                return exact_hits;
            }
            ids.iter().copied().filter(|&id| graph.fns[id].qual.ends_with(&suffix)).collect()
        };

    for (fi, model) in models.iter().enumerate() {
        for call in &model.calls {
            let caller = base[fi] + call.caller;
            let caller_def = graph.fns[caller].clone();
            let candidates: Vec<usize> = match &call.callee {
                CalleeRef::Path(segs) => resolve_path(&caller_def, &model.imports, segs),
                CalleeRef::Method(name) => {
                    if METHOD_DENYLIST.contains(&name.as_str()) {
                        Vec::new()
                    } else {
                        match methods_by_name.get(name.as_str()) {
                            Some(ids) if ids.len() == 1 => ids.clone(),
                            _ => Vec::new(),
                        }
                    }
                }
            };
            for callee in candidates {
                if edge_allowed(&caller_def.crate_name, &graph.fns[callee].crate_name) {
                    graph.edges[caller].push(Edge { callee, line: call.line, column: call.column });
                }
            }
        }
        for seed in &model.seeds {
            graph.seeds[base[fi] + seed.fn_local].push(SeedInfo {
                label: seed.label,
                token: seed.token.clone(),
                file: fi,
                line: seed.line,
                column: seed.column,
            });
        }
        for ts in &model.type_seeds {
            let crate_name = metas[fi].crate_name.as_str();
            for (id, f) in graph.fns.iter().enumerate() {
                if f.crate_name == crate_name && f.self_ty.as_deref() == Some(&ts.type_name) {
                    graph.seeds[id].push(SeedInfo {
                        label: ts.label,
                        token: ts.token.clone(),
                        file: fi,
                        line: ts.line,
                        column: ts.column,
                    });
                }
            }
        }
    }

    for edges in &mut graph.edges {
        edges.sort();
        edges.dedup();
    }
    for seeds in &mut graph.seeds {
        seeds.sort();
        seeds.dedup();
    }
    graph
}

/// Transitive closure of the direct-dependency map.
fn dep_closure(deps: &BTreeMap<String, BTreeSet<String>>) -> BTreeMap<String, BTreeSet<String>> {
    let mut closure = deps.clone();
    loop {
        let mut grew = false;
        let snapshot = closure.clone();
        for (_, set) in closure.iter_mut() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for dep in set.iter() {
                if let Some(trans) = snapshot.get(dep) {
                    for t in trans {
                        if !set.contains(t) {
                            add.insert(t.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                set.extend(add);
                grew = true;
            }
        }
        if !grew {
            return closure;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source;

    fn model_of(path: &str, crate_name: &str, text: &str) -> FileModel {
        let lines = source::mask(text);
        let flags = source::test_regions(&lines);
        extract(path, crate_name, FileKind::Library, 0, &lines, &flags)
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_path_of("crates/sim/src/lib.rs"), Vec::<String>::new());
        assert_eq!(module_path_of("crates/ids/src/engine/stateful.rs"), vec!["engine", "stateful"]);
        assert_eq!(module_path_of("crates/ids/src/engine/mod.rs"), vec!["engine"]);
        assert_eq!(module_path_of("crates/bench/src/bin/lint.rs"), vec!["bin", "lint"]);
        assert_eq!(module_path_of("crates/sim/tests/determinism.rs"), vec!["tests", "determinism"]);
    }

    #[test]
    fn extracts_fns_methods_and_calls() {
        let src = "pub fn top() { helper(); other::leaf(); }\n\
                   fn helper() {}\n\
                   struct W;\n\
                   impl W {\n    pub fn observe(&mut self) { helper(); }\n}\n";
        let m = model_of("crates/x/src/lib.rs", "idse-x", src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["top", "helper", "observe"]);
        assert_eq!(m.fns[2].self_ty.as_deref(), Some("W"));
        assert_eq!(m.fns[2].qual, "idse-x::W::observe");
        // top calls helper + other::leaf; observe calls helper.
        assert_eq!(m.calls.len(), 3);
    }

    #[test]
    fn use_imports_parse_groups_and_renames() {
        let src = "use idse_sim::stats::{Summary, mean as avg};\nuse crate::util::now_ms;\n\
                   fn f() {}\n";
        let m = model_of("crates/x/src/lib.rs", "idse-x", src);
        assert_eq!(m.imports["Summary"], vec!["idse_sim", "stats", "Summary"]);
        assert_eq!(m.imports["avg"], vec!["idse_sim", "stats", "mean"]);
        assert_eq!(m.imports["now_ms"], vec!["crate", "util", "now_ms"]);
    }

    #[test]
    fn seeds_found_in_fn_bodies_and_type_decls() {
        let src = "pub fn now() -> u64 { std::time::Instant::now(); 0 }\n\
                   struct T {\n    map: std::collections::HashMap<u32, u32>,\n}\n\
                   impl T {\n    fn get_map(&self) -> usize { 1 }\n}\n";
        let m = model_of("crates/x/src/lib.rs", "idse-x", src);
        assert_eq!(m.seeds.len(), 1);
        assert_eq!(m.seeds[0].label, TaintLabel::WallClock);
        assert_eq!(m.seeds[0].token, "std::time::Instant::now");
        assert_eq!(m.type_seeds.len(), 1);
        assert_eq!(m.type_seeds[0].type_name, "T");
        assert_eq!(m.type_seeds[0].label, TaintLabel::UnorderedIter);
    }

    #[test]
    fn test_regions_produce_no_seeds() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f() { let x = std::time::Instant::now(); }\n}\n";
        let m = model_of("crates/x/src/lib.rs", "idse-x", src);
        assert!(m.seeds.is_empty(), "{:?}", m.seeds);
        assert!(m.fns[0].in_test);
    }

    #[test]
    fn loops_are_modeled_with_bounds_and_nesting() {
        let src = "pub fn scan(records: &[u32]) -> u32 {\n    let mut acc = 0;\n    \
                   for rec in records {\n        while acc < *rec {\n            acc += 1;\n        \
                   }\n    }\n    acc\n}\n";
        let m = model_of("crates/x/src/lib.rs", "idse-x", src);
        assert_eq!(m.loops.len(), 2, "{:?}", m.loops);
        assert_eq!(m.loops[0].kind, LoopKind::For);
        assert_eq!(m.loops[0].head, "for rec in records");
        assert_eq!(m.loops[0].depth, 0);
        assert_eq!(m.loops[0].fn_local, Some(0));
        assert_eq!((m.loops[0].line, m.loops[0].end_line), (2, 6));
        assert_eq!(m.loops[1].kind, LoopKind::While);
        assert_eq!(m.loops[1].depth, 1);
        assert_eq!((m.loops[1].line, m.loops[1].end_line), (3, 5));
    }

    #[test]
    fn impl_trait_for_type_is_not_a_loop() {
        let src = "struct C;\nimpl Iterator for C {\n    type Item = u8;\n    \
                   fn next(&mut self) -> Option<u8> { None }\n}\n";
        let m = model_of("crates/x/src/lib.rs", "idse-x", src);
        assert!(m.loops.is_empty(), "{:?}", m.loops);
        assert_eq!(m.fns.len(), 1);
    }

    #[test]
    fn assemble_resolves_cross_crate_imports() {
        let metas = vec![
            FileMeta {
                path: "crates/a/src/lib.rs".into(),
                crate_name: "idse-a".into(),
                kind: FileKind::Library,
            },
            FileMeta {
                path: "crates/b/src/util.rs".into(),
                crate_name: "idse-b".into(),
                kind: FileKind::Library,
            },
        ];
        let lines_a = source::mask("use idse_b::util::leaf;\npub fn top() { leaf(); }\n");
        let flags_a = source::test_regions(&lines_a);
        let a = extract("crates/a/src/lib.rs", "idse-a", FileKind::Library, 0, &lines_a, &flags_a);
        let lines_b = source::mask("pub fn leaf() {}\n");
        let flags_b = source::test_regions(&lines_b);
        let b = extract("crates/b/src/util.rs", "idse-b", FileKind::Library, 1, &lines_b, &flags_b);
        let graph = assemble(&metas, &[a, b], &BTreeMap::new());
        assert_eq!(graph.fns.len(), 2);
        assert_eq!(graph.edges[0], vec![Edge { callee: 1, line: 1, column: 15 }]);
    }

    #[test]
    fn dependency_direction_filters_edges() {
        let lines_a = source::mask("use idse_b::leaf;\npub fn top() { leaf(); }\n");
        let flags_a = source::test_regions(&lines_a);
        let a = extract("crates/a/src/lib.rs", "idse-a", FileKind::Library, 0, &lines_a, &flags_a);
        let lines_b = source::mask("pub fn leaf() {}\n");
        let flags_b = source::test_regions(&lines_b);
        let b = extract("crates/b/src/lib.rs", "idse-b", FileKind::Library, 1, &lines_b, &flags_b);
        let metas = vec![
            FileMeta {
                path: "crates/a/src/lib.rs".into(),
                crate_name: "idse-a".into(),
                kind: FileKind::Library,
            },
            FileMeta {
                path: "crates/b/src/lib.rs".into(),
                crate_name: "idse-b".into(),
                kind: FileKind::Library,
            },
        ];
        // idse-a declares no dependency on idse-b: the edge is dropped.
        let mut deps = BTreeMap::new();
        deps.insert("idse-a".to_string(), BTreeSet::new());
        deps.insert("idse-b".to_string(), BTreeSet::new());
        let graph = assemble(&metas, &[a.clone(), b.clone()], &deps);
        assert!(graph.edges[0].is_empty());
        // With the dependency declared, the edge resolves.
        let mut deps = BTreeMap::new();
        deps.insert("idse-a".to_string(), ["idse-b".to_string()].into_iter().collect());
        let graph = assemble(&metas, &[a, b], &deps);
        assert_eq!(graph.edges[0].len(), 1);
    }
}
