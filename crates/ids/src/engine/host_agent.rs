//! Host-based sensing: agents on the monitored hosts themselves.
//!
//! "An IDS that monitors a host typically examines information available
//! on the host such as log files" (§2.1). The agent sees only traffic
//! terminating at (or originating from) its own host, but it sees it
//! *post-reassembly* — the host stack has already undone fragmentation —
//! so network-level evasion does not blind it. The price is the §2.1
//! resource bill: every inspected event costs the monitored host CPU,
//! which the pipeline charges via [`idse_sim::HostCpu`].
//!
//! Detectors are log-flavoured: authentication outcomes, privileged file
//! access, and indicators of an already-successful compromise (the
//! *Analysis of Compromise* metric in Table 3).

use crate::alert::{DetectionSource, Severity};
use crate::engine::stateful::{Cooldown, RateCounter};
use crate::engine::{Detection, DetectionEngine, Sensitivity};
use idse_net::frag::{OverlapPolicy, Reassembler};
use idse_net::trace::{AttackClass, Trace};
use idse_net::Packet;
use idse_sim::{SimDuration, SimTime};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Host-agent configuration.
#[derive(Debug, Clone)]
pub struct HostAgentConfig {
    /// The hosts this agent set monitors.
    pub monitored: Vec<Ipv4Addr>,
}

/// A set of host agents (one logical engine covering all monitored hosts).
pub struct HostAgentEngine {
    config: HostAgentConfig,
    monitored: HashSet<Ipv4Addr>,
    sensitivity: Sensitivity,
    /// Origins that legitimately logged into each monitored host.
    known_login_sources: HashSet<Ipv4Addr>,
    trained: bool,
    failed_logins: RateCounter<(Ipv4Addr, Ipv4Addr)>,
    cooldown: Cooldown<(&'static str, Ipv4Addr)>,
    /// The host stack's reassembly view (LastWins, like most victims).
    reassembler: Reassembler,
}

impl std::fmt::Debug for HostAgentEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostAgentEngine")
            .field("monitored", &self.monitored.len())
            .field("trained", &self.trained)
            .finish()
    }
}

/// Privileged file markers a 2002-era host integrity monitor watches.
const PRIVILEGED_MARKERS: &[&[u8]] = &[b"authorized_keys", b".rhosts", b"shadow", b"/etc/passwd"];

impl HostAgentEngine {
    /// Create agents for the given hosts.
    pub fn new(config: HostAgentConfig) -> Self {
        let monitored = config.monitored.iter().copied().collect();
        Self {
            config,
            monitored,
            sensitivity: Sensitivity::DEFAULT,
            known_login_sources: HashSet::new(),
            trained: false,
            failed_logins: RateCounter::new(),
            cooldown: Cooldown::new(SimDuration::from_secs(2)),
            reassembler: Reassembler::new(OverlapPolicy::LastWins),
        }
    }

    /// Hosts under monitoring.
    pub fn monitored_hosts(&self) -> &[Ipv4Addr] {
        &self.config.monitored
    }

    fn concerns_us(&self, packet: &Packet) -> bool {
        self.monitored.contains(&packet.ip.dst) || self.monitored.contains(&packet.ip.src)
    }
}

impl DetectionEngine for HostAgentEngine {
    fn name(&self) -> &'static str {
        "host-agent"
    }

    fn set_sensitivity(&mut self, s: Sensitivity) {
        self.sensitivity = s;
    }

    fn train(&mut self, benign: &Trace) {
        for rec in benign.records() {
            let p = &rec.packet;
            if self.monitored.contains(&p.ip.dst) && crate::aho::contains(&p.payload, b"login: ") {
                self.known_login_sources.insert(p.ip.src);
            }
        }
        self.trained = true;
    }

    fn inspect(&mut self, now: SimTime, packet: &Packet) -> Vec<Detection> {
        let mut out = Vec::new();
        if !self.concerns_us(packet) {
            return out;
        }
        // The host stack reassembles before the agent reads its logs.
        let whole;
        let packet: &Packet = if packet.ip.is_fragment() {
            match self.reassembler.push(packet) {
                Some(p) => {
                    whole = p;
                    &whole
                }
                None => return out,
            }
        } else {
            packet
        };

        let to_us = self.monitored.contains(&packet.ip.dst);
        let from_us = self.monitored.contains(&packet.ip.src);
        let src = packet.ip.src;

        // Failed-login log watching (per victim host, per source).
        if to_us && crate::aho::contains(&packet.payload, b"Login incorrect") {
            let fails = f64::from(self.failed_logins.record(now, (packet.ip.dst, src)));
            let th = self.sensitivity.threshold(20.0, 3.0);
            if fails >= th && self.cooldown.try_fire(now, ("bruteforce", src)) {
                out.push(Detection {
                    class: AttackClass::BruteForceLogin,
                    severity: Severity::High,
                    source: DetectionSource::HostAgent,
                    detector: "host-failed-logins",
                });
            }
        }

        // Successful login from an unknown origin (wtmp-style analysis).
        if to_us
            && self.trained
            && self.sensitivity.value() >= 0.3
            && crate::aho::contains(&packet.payload, b"Last login")
            && !self.known_login_sources.contains(&src)
            && self.cooldown.try_fire(now, ("origin", src))
        {
            out.push(Detection {
                class: AttackClass::Masquerade,
                severity: Severity::High,
                source: DetectionSource::HostAgent,
                detector: "host-login-origin",
            });
        }

        // Privileged-file access (file-integrity flavoured).
        if to_us {
            let hit = PRIVILEGED_MARKERS.iter().any(|m| crate::aho::contains(&packet.payload, m));
            if hit && self.cooldown.try_fire(now, ("privfile", src)) {
                out.push(Detection {
                    class: AttackClass::TrustExploit,
                    severity: Severity::Critical,
                    source: DetectionSource::HostAgent,
                    detector: "host-privileged-file",
                });
            }
        }

        // Compromise indicator leaving one of our hosts.
        if from_us
            && crate::aho::contains(&packet.payload, b"uid=0(root)")
            && self.cooldown.try_fire(now, ("compromise", packet.ip.src))
        {
            out.push(Detection {
                class: AttackClass::PayloadExploit,
                severity: Severity::Critical,
                source: DetectionSource::HostAgent,
                detector: "host-compromise-indicator",
            });
        }

        out
    }

    fn cost_ops(&self, packet: &Packet) -> f64 {
        if self.concerns_us(packet) {
            // Userspace log/audit processing is far costlier per event than
            // an in-kernel packet tap — this is why §2.1 prices host-based
            // monitoring in whole percents of the host.
            400.0 + 1.0 * packet.payload.len() as f64
        } else {
            0.0
        }
    }

    fn state_bytes(&self) -> usize {
        self.known_login_sources.len() * 8 + self.monitored.len() * 8 + 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_net::packet::{Ipv4Header, TcpFlags, TcpHeader};

    fn agent() -> HostAgentEngine {
        HostAgentEngine::new(HostAgentConfig {
            monitored: vec![Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 1, 2)],
        })
    }

    fn packet_to(dst: Ipv4Addr, payload: &[u8]) -> Packet {
        Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(66, 1, 1, 1), dst),
            TcpHeader {
                src_port: 31000,
                dst_port: 23,
                seq: 1,
                ack: 1,
                flags: TcpFlags::PSH_ACK,
                window: 512,
            },
            payload.to_vec(),
        )
    }

    #[test]
    fn ignores_unmonitored_hosts() {
        let mut a = agent();
        a.set_sensitivity(Sensitivity::new(1.0));
        let p = packet_to(Ipv4Addr::new(10, 0, 9, 9), b"Login incorrect");
        assert!(a.inspect(SimTime::ZERO, &p).is_empty());
        assert_eq!(a.cost_ops(&p), 0.0);
    }

    #[test]
    fn brute_force_on_monitored_host() {
        let mut a = agent();
        a.set_sensitivity(Sensitivity::new(1.0)); // threshold 3/s
        let victim = Ipv4Addr::new(10, 0, 1, 1);
        let mut hit = false;
        for i in 0..5 {
            let d = a.inspect(
                SimTime::from_millis(i * 100),
                &packet_to(victim, b"login: admin\r\nLogin incorrect\r\n"),
            );
            hit |= d.iter().any(|d| d.class == AttackClass::BruteForceLogin);
        }
        assert!(hit);
    }

    #[test]
    fn masquerade_detected_after_training() {
        let mut a = agent();
        a.set_sensitivity(Sensitivity::new(0.5));
        // Train: only 10.0.5.5 logs into our hosts.
        let mut benign = idse_net::Trace::new();
        let known = Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(10, 0, 5, 5), Ipv4Addr::new(10, 0, 1, 1)),
            TcpHeader {
                src_port: 2000,
                dst_port: 23,
                seq: 0,
                ack: 0,
                flags: TcpFlags::PSH_ACK,
                window: 512,
            },
            b"login: ops\r\nLast login: yesterday\r\n".to_vec(),
        );
        benign.push_benign(SimTime::ZERO, known.clone());
        a.train(&benign);

        // Same credentials from a foreign host.
        let foreign =
            packet_to(Ipv4Addr::new(10, 0, 1, 1), b"login: ops\r\nLast login: yesterday\r\n");
        let d = a.inspect(SimTime::from_secs(1), &foreign);
        assert!(d.iter().any(|d| d.class == AttackClass::Masquerade));

        // The known host stays clean.
        let mut a2 = agent();
        a2.set_sensitivity(Sensitivity::new(0.5));
        a2.train(&benign);
        assert!(a2.inspect(SimTime::from_secs(1), &known).is_empty());
    }

    #[test]
    fn privileged_file_access_fires() {
        let mut a = agent();
        let p = packet_to(Ipv4Addr::new(10, 0, 1, 2), b"WRITE /export/.ssh/authorized_keys");
        let d = a.inspect(SimTime::ZERO, &p);
        assert!(d
            .iter()
            .any(|d| d.class == AttackClass::TrustExploit && d.severity == Severity::Critical));
    }

    #[test]
    fn compromise_indicator_from_monitored_host() {
        let mut a = agent();
        let p = Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(66, 1, 1, 1)),
            TcpHeader {
                src_port: 80,
                dst_port: 31000,
                seq: 1,
                ack: 1,
                flags: TcpFlags::PSH_ACK,
                window: 512,
            },
            b"uid=0(root) gid=0(root)\r\n".to_vec(),
        );
        let d = a.inspect(SimTime::ZERO, &p);
        assert!(d.iter().any(|d| d.detector == "host-compromise-indicator"));
    }

    #[test]
    fn sees_through_fragmentation() {
        use idse_net::frag::fragment;
        let exploit = packet_to(
            Ipv4Addr::new(10, 0, 1, 1),
            b"WRITE-TO /export/.ssh/authorized_keys NOW PLEASE",
        );
        let frags = fragment(&exploit, 32);
        assert!(frags.len() > 1);
        let mut a = agent();
        let mut hit = false;
        for (i, f) in frags.iter().enumerate() {
            let d = a.inspect(SimTime::from_millis(i as u64), f);
            hit |= d.iter().any(|d| d.class == AttackClass::TrustExploit);
        }
        assert!(hit, "host stack reassembles before the agent looks");
    }
}
