//! Windowed, keyed counters shared by the stateful detectors.
//!
//! Scan, sweep, flood and brute-force detection are all "too many X per
//! key per second" questions. These counters use one-second tumbling
//! buckets (O(1) per observation, bounded state) plus a per-key cooldown so
//! a sustained attack raises one alert per cooldown period instead of one
//! per packet — real consoles rate-limit exactly this way, and without it
//! the monitor stage would melt during floods.

use idse_sim::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// A per-key event-rate counter over one-second tumbling buckets.
#[derive(Debug, Clone)]
pub struct RateCounter<K: Eq + Hash + Clone> {
    buckets: HashMap<K, (u64, u32)>, // key -> (bucket epoch-second, count)
}

impl<K: Eq + Hash + Clone> Default for RateCounter<K> {
    fn default() -> Self {
        Self { buckets: HashMap::new() }
    }
}

impl<K: Eq + Hash + Clone> RateCounter<K> {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event for `key` at `now`; returns the count within the
    /// current one-second bucket (including this event).
    pub fn record(&mut self, now: SimTime, key: K) -> u32 {
        let second = now.as_nanos() / 1_000_000_000;
        let entry = self.buckets.entry(key).or_insert((second, 0));
        if entry.0 != second {
            *entry = (second, 0);
        }
        entry.1 += 1;
        entry.1
    }

    /// Number of tracked keys (state accounting).
    pub fn keys(&self) -> usize {
        self.buckets.len()
    }
}

/// A per-key distinct-value counter over one-second tumbling buckets
/// (e.g. distinct destination ports per source — the port-scan signal).
#[derive(Debug, Clone)]
pub struct DistinctCounter<K: Eq + Hash + Clone, V: Eq + Hash> {
    buckets: HashMap<K, (u64, HashSet<V>)>,
}

impl<K: Eq + Hash + Clone, V: Eq + Hash> Default for DistinctCounter<K, V> {
    fn default() -> Self {
        Self { buckets: HashMap::new() }
    }
}

impl<K: Eq + Hash + Clone, V: Eq + Hash> DistinctCounter<K, V> {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` for `key` at `now`; returns the distinct-value count
    /// within the current one-second bucket.
    pub fn record(&mut self, now: SimTime, key: K, value: V) -> u32 {
        let second = now.as_nanos() / 1_000_000_000;
        let entry = self.buckets.entry(key).or_insert_with(|| (second, HashSet::new()));
        if entry.0 != second {
            entry.0 = second;
            entry.1.clear();
        }
        entry.1.insert(value);
        entry.1.len() as u32
    }

    /// Number of tracked keys.
    pub fn keys(&self) -> usize {
        self.buckets.len()
    }

    /// Approximate retained bytes (rough: 64 per key + 16 per value).
    pub fn approx_bytes(&self) -> usize {
        self.buckets.values().map(|(_, set)| 64 + set.len() * 16).sum()
    }
}

/// Per-(detector, key) cooldown gate.
#[derive(Debug, Clone)]
pub struct Cooldown<K: Eq + Hash + Clone> {
    last_fire: HashMap<K, SimTime>,
    period: SimDuration,
}

impl<K: Eq + Hash + Clone> Cooldown<K> {
    /// A gate that allows one firing per `period` per key.
    pub fn new(period: SimDuration) -> Self {
        Self { last_fire: HashMap::new(), period }
    }

    /// Returns true (and arms the cooldown) if `key` may fire at `now`.
    pub fn try_fire(&mut self, now: SimTime, key: K) -> bool {
        match self.last_fire.get(&key) {
            Some(&t) if now.saturating_since(t) < self.period && now >= t => false,
            _ => {
                self.last_fire.insert(key, now);
                true
            }
        }
    }

    /// Number of tracked keys.
    pub fn keys(&self) -> usize {
        self.last_fire.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_counter_buckets_by_second() {
        let mut c = RateCounter::new();
        let k = "src";
        assert_eq!(c.record(SimTime::from_millis(100), k), 1);
        assert_eq!(c.record(SimTime::from_millis(900), k), 2);
        // New second: bucket resets.
        assert_eq!(c.record(SimTime::from_millis(1100), k), 1);
    }

    #[test]
    fn rate_counter_keys_are_independent() {
        let mut c = RateCounter::new();
        c.record(SimTime::ZERO, "a");
        c.record(SimTime::ZERO, "a");
        assert_eq!(c.record(SimTime::ZERO, "b"), 1);
        assert_eq!(c.keys(), 2);
    }

    #[test]
    fn distinct_counter_counts_uniques() {
        let mut c = DistinctCounter::new();
        let k = "scanner";
        assert_eq!(c.record(SimTime::ZERO, k, 80u16), 1);
        assert_eq!(c.record(SimTime::ZERO, k, 80u16), 1);
        assert_eq!(c.record(SimTime::ZERO, k, 81u16), 2);
        assert_eq!(c.record(SimTime::from_secs(2), k, 81u16), 1);
        assert!(c.approx_bytes() > 0);
    }

    #[test]
    fn cooldown_limits_firing() {
        let mut g = Cooldown::new(SimDuration::from_secs(2));
        assert!(g.try_fire(SimTime::ZERO, "k"));
        assert!(!g.try_fire(SimTime::from_millis(500), "k"));
        assert!(!g.try_fire(SimTime::from_millis(1999), "k"));
        assert!(g.try_fire(SimTime::from_secs(2), "k"));
        assert!(g.try_fire(SimTime::from_millis(100), "other"));
    }
}
