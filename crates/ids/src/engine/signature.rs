//! The signature (knowledge-based) engine.
//!
//! "A signature-based IDS attempts to detect patterns in network traffic
//! that are characteristic of known attacks … it will only detect
//! previously known attacks" (§2.1). The engine is a rule database —
//! header predicates plus payload patterns compiled into one Aho–Corasick
//! automaton — fronted by Snort-style stateful preprocessors for scans,
//! sweeps, floods and login brute force.
//!
//! Structural behaviour the evaluation depends on:
//!
//! * exploits absent from the database (`in_signature_dbs: false` in the
//!   attack corpus) can never match — the engine's intrinsic false
//!   negatives;
//! * fragmentation evasion is only caught if the engine is configured with
//!   a reassembler whose overlap policy matches the victim's;
//! * the *noisy rule tier* (cleartext credentials, failed logins) only
//!   arms at high sensitivity — the engine's false-positive source.

use crate::aho::AhoCorasick;
use crate::alert::{DetectionSource, Severity};
use crate::engine::stateful::{Cooldown, DistinctCounter, RateCounter};
use crate::engine::{Detection, DetectionEngine, Sensitivity};
use idse_net::frag::{OverlapPolicy, Reassembler};
use idse_net::trace::AttackClass;
use idse_net::Packet;
use idse_sim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// One signature rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable rule name.
    pub name: &'static str,
    /// Payload pattern the rule keys on.
    pub pattern: &'static [u8],
    /// Destination-port predicate (`None` = any port).
    pub dst_port: Option<u16>,
    /// Class the rule attributes matches to.
    pub class: AttackClass,
    /// Severity of a match.
    pub severity: Severity,
    /// Noisy rules arm only at the high-sensitivity tier.
    pub noisy: bool,
}

/// The 2002-era commercial rule database the simulated signature products
/// share. It covers exactly the corpus exploits flagged
/// `in_signature_dbs: true` (plus generic shellcode/recon indicators), and
/// deliberately *not* the novel variants — reproducing the knowledge-based
/// blind spot the paper describes.
pub fn standard_rule_db() -> Vec<Rule> {
    vec![
        Rule {
            name: "http-cgi-phf",
            pattern: b"/cgi-bin/phf?",
            dst_port: Some(80),
            class: AttackClass::PayloadExploit,
            severity: Severity::Critical,
            noisy: false,
        },
        Rule {
            name: "http-iis-unicode",
            pattern: b"..%c0%af..",
            dst_port: Some(80),
            class: AttackClass::PayloadExploit,
            severity: Severity::Critical,
            noisy: false,
        },
        Rule {
            name: "http-cmdexe",
            pattern: b"cmd.exe",
            dst_port: Some(80),
            class: AttackClass::PayloadExploit,
            severity: Severity::High,
            noisy: false,
        },
        Rule {
            name: "ftp-site-exec",
            pattern: b"SITE EXEC",
            dst_port: Some(21),
            class: AttackClass::PayloadExploit,
            severity: Severity::Critical,
            noisy: false,
        },
        Rule {
            name: "generic-nop-sled",
            pattern: b"\x90\x90\x90\x90\x90\x90\x90\x90",
            dst_port: None,
            class: AttackClass::PayloadExploit,
            severity: Severity::High,
            noisy: false,
        },
        Rule {
            name: "generic-binsh",
            pattern: b"/bin/sh",
            dst_port: None,
            class: AttackClass::PayloadExploit,
            severity: Severity::High,
            noisy: false,
        },
        Rule {
            name: "generic-format-string",
            pattern: b"%n%n%n",
            dst_port: None,
            class: AttackClass::PayloadExploit,
            severity: Severity::High,
            noisy: false,
        },
        Rule {
            name: "generic-etc-passwd",
            pattern: b"/etc/passwd",
            dst_port: None,
            class: AttackClass::PayloadExploit,
            severity: Severity::High,
            noisy: false,
        },
        Rule {
            name: "compromise-uid-root",
            pattern: b"uid=0(root)",
            dst_port: None,
            class: AttackClass::PayloadExploit,
            severity: Severity::Critical,
            noisy: false,
        },
        // Noisy tier: informational rules that also match benign traffic.
        Rule {
            name: "info-failed-login",
            pattern: b"Login incorrect",
            dst_port: Some(23),
            class: AttackClass::BruteForceLogin,
            severity: Severity::Info,
            noisy: true,
        },
        Rule {
            name: "info-cleartext-pass",
            pattern: b"PASS ",
            dst_port: Some(21),
            class: AttackClass::BruteForceLogin,
            severity: Severity::Info,
            noisy: true,
        },
        Rule {
            name: "info-rpc-call",
            pattern: b"\x00\x01\x86\xb8",
            dst_port: None,
            class: AttackClass::PayloadExploit,
            severity: Severity::Info,
            noisy: true,
        },
    ]
}

/// Signature engine configuration.
#[derive(Debug, Clone)]
pub struct SignatureConfig {
    /// IP-fragment reassembly policy, or `None` for no reassembly (the
    /// engine then inspects fragment payloads in isolation).
    pub reassembly: Option<OverlapPolicy>,
    /// Whether the stateful scan/flood preprocessors run.
    pub preprocessors: bool,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        Self { reassembly: Some(OverlapPolicy::FirstWins), preprocessors: true }
    }
}

/// The signature engine.
pub struct SignatureEngine {
    rules: Vec<Rule>,
    automaton: AhoCorasick,
    sensitivity: Sensitivity,
    config: SignatureConfig,
    reassembler: Option<Reassembler>,
    scan_ports: DistinctCounter<Ipv4Addr, u16>,
    sweep_hosts: DistinctCounter<Ipv4Addr, Ipv4Addr>,
    syn_rate: RateCounter<Ipv4Addr>,
    failed_logins: RateCounter<Ipv4Addr>,
    preproc_cooldown: Cooldown<(&'static str, Ipv4Addr)>,
    rule_cooldown: Cooldown<(usize, Ipv4Addr)>,
}

impl std::fmt::Debug for SignatureEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignatureEngine")
            .field("rules", &self.rules.len())
            .field("sensitivity", &self.sensitivity)
            .finish()
    }
}

impl SignatureEngine {
    /// Build the engine over a rule database.
    pub fn new(rules: Vec<Rule>, config: SignatureConfig) -> Self {
        let automaton = AhoCorasick::new(&rules.iter().map(|r| r.pattern).collect::<Vec<_>>());
        Self {
            rules,
            automaton,
            sensitivity: Sensitivity::DEFAULT,
            reassembler: config.reassembly.map(Reassembler::new),
            config,
            scan_ports: DistinctCounter::new(),
            sweep_hosts: DistinctCounter::new(),
            syn_rate: RateCounter::new(),
            failed_logins: RateCounter::new(),
            preproc_cooldown: Cooldown::new(SimDuration::from_secs(2)),
            rule_cooldown: Cooldown::new(SimDuration::from_secs(1)),
        }
    }

    /// The engine with the standard database and default config.
    pub fn standard(config: SignatureConfig) -> Self {
        Self::new(standard_rule_db(), config)
    }

    /// Number of rules loaded.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    fn run_preprocessors(&mut self, now: SimTime, packet: &Packet, out: &mut Vec<Detection>) {
        let src = packet.ip.src;
        if packet.is_syn() {
            let dst_port = packet.tcp_header().map(|t| t.dst_port).unwrap_or(0);
            let ports = self.scan_ports.record(now, src, dst_port);
            let scan_th = self.sensitivity.threshold(60.0, 8.0);
            if f64::from(ports) >= scan_th && self.preproc_cooldown.try_fire(now, ("portscan", src))
            {
                out.push(Detection {
                    class: AttackClass::PortScan,
                    severity: Severity::Warning,
                    source: DetectionSource::Signature,
                    detector: "preproc-portscan",
                });
            }
            let hosts = self.sweep_hosts.record(now, src, packet.ip.dst);
            let sweep_th = self.sensitivity.threshold(40.0, 6.0);
            if f64::from(hosts) >= sweep_th
                && self.preproc_cooldown.try_fire(now, ("hostsweep", src))
            {
                out.push(Detection {
                    class: AttackClass::HostSweep,
                    severity: Severity::Warning,
                    source: DetectionSource::Signature,
                    detector: "preproc-hostsweep",
                });
            }
            let syns = self.syn_rate.record(now, packet.ip.dst);
            let flood_th = self.sensitivity.threshold(3000.0, 400.0);
            if f64::from(syns) >= flood_th
                && self.preproc_cooldown.try_fire(now, ("synflood", packet.ip.dst))
            {
                out.push(Detection {
                    class: AttackClass::SynFlood,
                    severity: Severity::High,
                    source: DetectionSource::Signature,
                    detector: "preproc-synflood",
                });
            }
        }
        // Brute-force: repeated failed logins from one source.
        if crate::aho::contains(&packet.payload, b"Login incorrect") {
            let fails = self.failed_logins.record(now, src);
            let bf_th = self.sensitivity.threshold(30.0, 3.0);
            if f64::from(fails) >= bf_th && self.preproc_cooldown.try_fire(now, ("bruteforce", src))
            {
                out.push(Detection {
                    class: AttackClass::BruteForceLogin,
                    severity: Severity::High,
                    source: DetectionSource::Signature,
                    detector: "preproc-bruteforce",
                });
            }
        }
    }

    fn match_rules(&mut self, now: SimTime, packet: &Packet, out: &mut Vec<Detection>) {
        let port = packet.transport.dst_port().unwrap_or(0);
        let noisy_enabled = self.sensitivity.noisy_tier_enabled();
        for pid in self.automaton.matching_patterns(&packet.payload) {
            let idx = pid as usize;
            let rule = &self.rules[idx];
            if rule.noisy && !noisy_enabled {
                continue;
            }
            if let Some(p) = rule.dst_port {
                // Match on either direction's service port so responses
                // (e.g. "uid=0(root)" from the victim) are still caught.
                let sport = packet.transport.src_port().unwrap_or(0);
                if p != port && p != sport {
                    continue;
                }
            }
            if self.rule_cooldown.try_fire(now, (idx, packet.ip.src)) {
                out.push(Detection {
                    class: rule.class,
                    severity: rule.severity,
                    source: DetectionSource::Signature,
                    detector: rule.name,
                });
            }
        }
    }
}

impl DetectionEngine for SignatureEngine {
    fn name(&self) -> &'static str {
        "signature"
    }

    fn set_sensitivity(&mut self, s: Sensitivity) {
        self.sensitivity = s;
    }

    fn inspect(&mut self, now: SimTime, packet: &Packet) -> Vec<Detection> {
        let mut out = Vec::new();
        if self.config.preprocessors {
            self.run_preprocessors(now, packet, &mut out);
        }
        // Payload inspection: on fragments, go through the reassembler if
        // one is configured; otherwise inspect the raw fragment bytes.
        if packet.ip.is_fragment() {
            if let Some(reasm) = self.reassembler.as_mut() {
                if let Some(whole) = reasm.push(packet) {
                    self.match_rules(now, &whole, &mut out);
                }
            } else {
                self.match_rules(now, packet, &mut out);
            }
        } else {
            self.match_rules(now, packet, &mut out);
        }
        out
    }

    fn cost_ops(&self, packet: &Packet) -> f64 {
        40.0 + 2.0 * packet.payload.len() as f64
    }

    fn state_bytes(&self) -> usize {
        self.automaton.state_count() * 1024
            + self.scan_ports.approx_bytes()
            + self.sweep_hosts.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_net::packet::{Ipv4Header, TcpFlags, TcpHeader};
    use idse_sim::RngStream;

    fn engine() -> SignatureEngine {
        SignatureEngine::standard(SignatureConfig::default())
    }

    fn tcp_packet(dst_port: u16, payload: &[u8]) -> Packet {
        Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(66, 1, 1, 1), Ipv4Addr::new(10, 0, 1, 1)),
            TcpHeader {
                src_port: 31000,
                dst_port,
                seq: 1,
                ack: 1,
                flags: TcpFlags::PSH_ACK,
                window: 1024,
            },
            payload.to_vec(),
        )
    }

    #[test]
    fn known_exploit_matches() {
        let mut e = engine();
        let p = tcp_packet(80, b"GET /cgi-bin/phf?Qalias=x HTTP/1.0\r\n\r\n");
        let d = e.inspect(SimTime::ZERO, &p);
        assert!(d.iter().any(|d| d.detector == "http-cgi-phf"));
        assert!(d.iter().any(|d| d.severity == Severity::Critical));
    }

    #[test]
    fn novel_exploit_is_missed() {
        let mut e = engine();
        e.set_sensitivity(Sensitivity::new(1.0));
        let p = tcp_packet(80, b"GET /cgi-bin/stats.pl?page=|id;uname%20-a| HTTP/1.0\r\n\r\n");
        let d = e.inspect(SimTime::ZERO, &p);
        assert!(d.is_empty(), "novel exploits must evade the database: {d:?}");
    }

    #[test]
    fn port_predicate_enforced() {
        let mut e = engine();
        // phf pattern on a non-HTTP port: the port-80 rule must not fire.
        let p = tcp_packet(9999, b"/cgi-bin/phf?Qalias");
        let d = e.inspect(SimTime::ZERO, &p);
        assert!(d.iter().all(|d| d.detector != "http-cgi-phf"));
    }

    #[test]
    fn benign_traffic_is_clean_at_default_sensitivity() {
        let mut e = engine();
        let mut rng = RngStream::derive(5, "sig");
        for i in 0..200 {
            let body = idse_traffic::payload::http_response(&mut rng, 512);
            let p = tcp_packet(80, &body);
            let d = e.inspect(SimTime::from_millis(i * 10), &p);
            assert!(d.is_empty(), "benign http must not alert: {d:?}");
        }
    }

    #[test]
    fn noisy_rules_gate_on_sensitivity() {
        let failed = tcp_packet(23, b"login: jsmith\r\npassword: ****\r\nLogin incorrect\r\n");
        let mut e = engine();
        e.set_sensitivity(Sensitivity::new(0.5));
        assert!(e.inspect(SimTime::ZERO, &failed).is_empty());
        let mut e = engine();
        e.set_sensitivity(Sensitivity::new(0.9));
        let d = e.inspect(SimTime::ZERO, &failed);
        assert!(d.iter().any(|d| d.detector == "info-failed-login"));
    }

    #[test]
    fn scan_preprocessor_fires_with_sensitivity_dependent_threshold() {
        let syn_to = |port: u16, i: u64| {
            let mut p = tcp_packet(port, b"");
            if let idse_net::Transport::Tcp(ref mut t) = p.transport {
                t.flags = TcpFlags::SYN;
                t.src_port = 31000 + i as u16;
            }
            p
        };
        // Strict sensitivity: fires after ~8 distinct ports.
        let mut e = engine();
        e.set_sensitivity(Sensitivity::new(1.0));
        let mut fired_at = None;
        for i in 0..60u64 {
            let d = e.inspect(SimTime::from_millis(i), &syn_to(i as u16 + 1, i));
            if d.iter().any(|d| d.detector == "preproc-portscan") {
                fired_at = Some(i);
                break;
            }
        }
        assert_eq!(fired_at, Some(7), "strict threshold is 8 distinct ports");

        // Lax sensitivity: needs ~60 ports.
        let mut e = engine();
        e.set_sensitivity(Sensitivity::new(0.0));
        let mut fired_at = None;
        for i in 0..100u64 {
            let d = e.inspect(SimTime::from_millis(i), &syn_to(i as u16 + 1, i));
            if d.iter().any(|d| d.detector == "preproc-portscan") {
                fired_at = Some(i);
                break;
            }
        }
        assert_eq!(fired_at, Some(59));
    }

    #[test]
    fn flood_preprocessor_counts_per_destination() {
        let mut e = engine();
        e.set_sensitivity(Sensitivity::new(1.0)); // threshold 400 SYN/s
        let mut fired = false;
        for i in 0..500u64 {
            let mut p = tcp_packet(80, b"");
            if let idse_net::Transport::Tcp(ref mut t) = p.transport {
                t.flags = TcpFlags::SYN;
            }
            // Distinct spoofed sources, same destination.
            p.ip.src = Ipv4Addr::new(203, 0, (i / 250) as u8, (i % 250) as u8 + 1);
            let d = e.inspect(SimTime::from_micros(i * 100), &p);
            if d.iter().any(|d| d.detector == "preproc-synflood") {
                fired = true;
                break;
            }
        }
        assert!(fired, "400+ SYN/s to one host must trip the flood preprocessor");
    }

    #[test]
    fn reassembly_policy_decides_evasion_outcome() {
        use idse_net::frag::fragment;
        let exploit =
            tcp_packet(80, b"GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd HTTP/1.0\r\n\r\n");
        let frags = fragment(&exploit, 32);
        assert!(frags.len() > 1);
        // Decoys at each continuation offset, sent first.
        let mut feed = vec![frags[0].clone()];
        for f in &frags[1..] {
            let mut decoy = f.clone();
            decoy.payload = std::sync::Arc::from(vec![0x20u8; f.payload.len()].into_boxed_slice());
            feed.push(decoy);
            feed.push(f.clone());
        }

        let run = |policy: Option<OverlapPolicy>| -> bool {
            let mut e = SignatureEngine::standard(SignatureConfig {
                reassembly: policy,
                preprocessors: false,
            });
            let mut hit = false;
            for (i, p) in feed.iter().enumerate() {
                let d = e.inspect(SimTime::from_millis(i as u64), p);
                hit |= d.iter().any(|d| d.detector == "http-cgi-phf");
            }
            hit
        };
        assert!(!run(None), "no reassembly → blind");
        assert!(!run(Some(OverlapPolicy::FirstWins)), "wrong policy → blind");
        assert!(run(Some(OverlapPolicy::LastWins)), "victim-matching policy → caught");
    }

    #[test]
    fn default_evasion_fragments_blind_every_engine_without_matching_reassembly() {
        use idse_attacks::evasion::{splittable_exploits, FragmentationEvasion};
        use idse_attacks::Scenario;
        for exploit in splittable_exploits() {
            let scenario = FragmentationEvasion::new(
                Ipv4Addr::new(66, 9, 9, 9),
                Ipv4Addr::new(10, 0, 1, 1),
                exploit,
            );
            let mut rng = idse_sim::RngStream::derive(77, exploit.name);
            let trace = scenario.generate(SimTime::ZERO, 1, &mut rng);
            let run =
                |policy: Option<OverlapPolicy>| -> bool {
                    let mut e = SignatureEngine::standard(SignatureConfig {
                        reassembly: policy,
                        preprocessors: false,
                    });
                    e.set_sensitivity(Sensitivity::new(0.5)); // noisy tier off
                    trace.records().iter().enumerate().any(|(i, r)| {
                        !e.inspect(SimTime::from_millis(i as u64), &r.packet).is_empty()
                    })
                };
            assert!(!run(None), "{}: per-fragment matching must be blind", exploit.name);
            assert!(
                !run(Some(OverlapPolicy::FirstWins)),
                "{}: FirstWins reassembly must be blind",
                exploit.name
            );
            assert!(
                run(Some(OverlapPolicy::LastWins)),
                "{}: victim-matching reassembly must catch it",
                exploit.name
            );
        }
    }

    #[test]
    fn cost_scales_with_payload() {
        let e = engine();
        let small = tcp_packet(80, &[0; 10]);
        let large = tcp_packet(80, &[0; 1000]);
        assert!(e.cost_ops(&large) > e.cost_ops(&small) * 10.0);
        assert!(e.state_bytes() > 0);
    }
}
