//! The anomaly (behavior-based) engine.
//!
//! "An anomaly-based IDS attempts to detect behavior that is inconsistent
//! with 'normal' behavior … may be able to detect new attacks.
//! Distinguishing between 'normal' and 'anomalous' behavior, however, is
//! the subject of much research" (§2.1). The paper also observes that "a
//! constrained application environment may help constrain the definition
//! of normal behavior making anomaly-based systems more appropriate" for
//! distributed real-time clusters — experiment X3 tests exactly that by
//! training the same engine on two site profiles.
//!
//! The engine learns baselines from a known-benign training trace:
//!
//! * per-source behavioral rates (distinct ports, fan-out, SYN rate,
//!   failed logins) — scaled by sensitivity into thresholds;
//! * the population of hosts/prefixes that legitimately log in (origin
//!   model — catches masquerade);
//! * per-service payload character (printable fraction — catches shellcode
//!   in text protocols, including *novel* exploits no signature knows);
//! * DNS query size statistics (catches tunneling);
//! * the RPC path-token vocabulary (catches trust exploitation, weakly,
//!   and only at high sensitivity — the paper's hardest case).

use crate::alert::{DetectionSource, Severity};
use crate::engine::stateful::{Cooldown, DistinctCounter, RateCounter};
use crate::engine::{Detection, DetectionEngine, Sensitivity};
use idse_net::trace::{AttackClass, Trace};
use idse_net::Packet;
use idse_sim::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Anomaly engine configuration: which detector families are built in.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// Learn who logs in from where (masquerade detection).
    pub origin_model: bool,
    /// Learn per-service payload character (shellcode-in-text detection).
    pub payload_model: bool,
    /// Learn the RPC path vocabulary (trust-exploit detection).
    pub rpc_model: bool,
    /// DNS size/rate model (tunnel detection).
    pub dns_model: bool,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self { origin_model: true, payload_model: true, rpc_model: true, dns_model: true }
    }
}

/// Learned baselines.
#[derive(Debug, Clone, Default)]
struct Baselines {
    /// Max distinct destination ports per source per second seen benign.
    scan_ports: f64,
    /// Max distinct destination hosts per source per second.
    fanout_hosts: f64,
    /// Max SYN/s against one destination.
    syn_rate: f64,
    /// Max failed logins per source per second.
    failed_logins: f64,
    /// Hosts that logged in during training.
    login_hosts: HashSet<Ipv4Addr>,
    /// /24 prefixes that logged in during training.
    login_prefixes: HashSet<u32>,
    /// Per-destination-port minimum printable fraction (text services).
    min_printable: HashMap<u16, f64>,
    /// DNS query payload size mean/std.
    dns_size_mean: f64,
    dns_size_std: f64,
    /// ICMP echo payload size mean/std (the other covert carrier).
    icmp_size_mean: f64,
    icmp_size_std: f64,
    /// Path tokens seen in RPC payloads.
    rpc_tokens: HashSet<Vec<u8>>,
    trained: bool,
}

/// The anomaly engine.
pub struct AnomalyEngine {
    config: AnomalyConfig,
    sensitivity: Sensitivity,
    base: Baselines,
    scan_ports: DistinctCounter<Ipv4Addr, u16>,
    fanout: DistinctCounter<Ipv4Addr, Ipv4Addr>,
    syn_rate: RateCounter<Ipv4Addr>,
    failed_logins: RateCounter<Ipv4Addr>,
    cooldown: Cooldown<(&'static str, Ipv4Addr)>,
}

impl std::fmt::Debug for AnomalyEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnomalyEngine")
            .field("trained", &self.base.trained)
            .field("sensitivity", &self.sensitivity)
            .finish()
    }
}

fn printable_fraction(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let printable = data
        .iter()
        .filter(|&&b| (0x20..0x7f).contains(&b) || b == b'\r' || b == b'\n' || b == b'\t')
        .count();
    printable as f64 / data.len() as f64
}

fn prefix24(addr: Ipv4Addr) -> u32 {
    u32::from(addr) >> 8
}

/// Extract printable tokens of length ≥ 4 from a payload (path components,
/// identifiers).
fn tokens(payload: &[u8]) -> Vec<Vec<u8>> {
    // Pre-sized: called per record on the anomaly hot path, so growth by
    // repeated doubling would reallocate for every payload.
    let mut out = Vec::with_capacity(payload.len() / 8 + 1);
    let mut cur = Vec::with_capacity(16);
    for &b in payload {
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
            cur.push(b.to_ascii_lowercase());
        } else {
            if cur.len() >= 4 {
                out.push(std::mem::take(&mut cur));
            }
            cur.clear();
        }
    }
    if cur.len() >= 4 {
        out.push(cur);
    }
    out
}

fn is_login_payload(payload: &[u8]) -> bool {
    crate::aho::contains(payload, b"login: ")
}

impl AnomalyEngine {
    /// An untrained engine.
    pub fn new(config: AnomalyConfig) -> Self {
        Self {
            config,
            sensitivity: Sensitivity::DEFAULT,
            base: Baselines::default(),
            scan_ports: DistinctCounter::new(),
            fanout: DistinctCounter::new(),
            syn_rate: RateCounter::new(),
            failed_logins: RateCounter::new(),
            cooldown: Cooldown::new(SimDuration::from_secs(2)),
        }
    }

    /// Whether [`DetectionEngine::train`] has run.
    pub fn is_trained(&self) -> bool {
        self.base.trained
    }

    /// Rate-threshold factor: how many multiples of the benign maximum a
    /// counter must reach before alerting. Strict sensitivity sits just
    /// above the benign ceiling; lax demands a large exceedance.
    fn rate_factor(&self) -> f64 {
        self.sensitivity.threshold(6.0, 1.25)
    }
}

impl DetectionEngine for AnomalyEngine {
    fn name(&self) -> &'static str {
        "anomaly"
    }

    fn set_sensitivity(&mut self, s: Sensitivity) {
        self.sensitivity = s;
    }

    fn train(&mut self, benign: &Trace) {
        let mut scan = DistinctCounter::new();
        let mut fanout = DistinctCounter::new();
        let mut syn = RateCounter::new();
        let mut fails = RateCounter::new();
        let mut dns_sizes: Vec<f64> = Vec::new();
        let mut icmp_sizes: Vec<f64> = Vec::new();
        let b = &mut self.base;
        for rec in benign.records() {
            let p = &rec.packet;
            let now = rec.at;
            if p.is_syn() {
                if let Some(t) = p.tcp_header() {
                    b.scan_ports =
                        b.scan_ports.max(f64::from(scan.record(now, p.ip.src, t.dst_port)));
                }
                b.fanout_hosts =
                    b.fanout_hosts.max(f64::from(fanout.record(now, p.ip.src, p.ip.dst)));
                b.syn_rate = b.syn_rate.max(f64::from(syn.record(now, p.ip.dst)));
            }
            if crate::aho::contains(&p.payload, b"Login incorrect") {
                b.failed_logins = b.failed_logins.max(f64::from(fails.record(now, p.ip.src)));
            }
            if is_login_payload(&p.payload) {
                b.login_hosts.insert(p.ip.src);
                b.login_prefixes.insert(prefix24(p.ip.src));
            }
            if !p.payload.is_empty() {
                if let Some(port) = p.transport.dst_port() {
                    let frac = printable_fraction(&p.payload);
                    b.min_printable.entry(port).and_modify(|m| *m = m.min(frac)).or_insert(frac);
                }
            }
            if p.transport.dst_port() == Some(53) {
                dns_sizes.push(p.payload.len() as f64);
            }
            if matches!(
                p.transport,
                idse_net::Transport::Icmp(h) if h.kind == idse_net::packet::IcmpKind::EchoRequest
            ) {
                icmp_sizes.push(p.payload.len() as f64);
            }
            if p.transport.dst_port() == Some(2049) {
                for t in tokens(&p.payload) {
                    b.rpc_tokens.insert(t);
                }
            }
        }
        if !dns_sizes.is_empty() {
            let n = dns_sizes.len() as f64;
            let mean = dns_sizes.iter().sum::<f64>() / n;
            let var = dns_sizes.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            b.dns_size_mean = mean;
            b.dns_size_std = var.sqrt().max(1.0);
        } else {
            // No DNS during training: on such a network any DNS traffic is
            // judged against a conventional small-query prior.
            b.dns_size_mean = 48.0;
            b.dns_size_std = 16.0;
        }
        if !icmp_sizes.is_empty() {
            let n = icmp_sizes.len() as f64;
            let mean = icmp_sizes.iter().sum::<f64>() / n;
            let var = icmp_sizes.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            b.icmp_size_mean = mean;
            b.icmp_size_std = var.sqrt().max(1.0);
        } else {
            // Conventional 32-byte ping prior.
            b.icmp_size_mean = 32.0;
            b.icmp_size_std = 8.0;
        }
        // Guard against degenerate baselines from tiny training sets.
        b.scan_ports = b.scan_ports.max(2.0);
        b.fanout_hosts = b.fanout_hosts.max(2.0);
        b.syn_rate = b.syn_rate.max(5.0);
        b.failed_logins = b.failed_logins.max(1.0);
        b.trained = true;
    }

    fn inspect(&mut self, now: SimTime, packet: &Packet) -> Vec<Detection> {
        let mut out = Vec::new();
        if !self.base.trained {
            return out;
        }
        let factor = self.rate_factor();
        let src = packet.ip.src;

        if packet.is_syn() {
            if let Some(t) = packet.tcp_header() {
                let ports = f64::from(self.scan_ports.record(now, src, t.dst_port));
                if ports >= self.base.scan_ports * factor
                    && self.cooldown.try_fire(now, ("scan", src))
                {
                    out.push(Detection {
                        class: AttackClass::PortScan,
                        severity: Severity::Warning,
                        source: DetectionSource::Anomaly,
                        detector: "anomaly-port-fanout",
                    });
                }
            }
            let hosts = f64::from(self.fanout.record(now, src, packet.ip.dst));
            if hosts >= self.base.fanout_hosts * factor
                && self.cooldown.try_fire(now, ("fanout", src))
            {
                out.push(Detection {
                    class: AttackClass::HostSweep,
                    severity: Severity::Warning,
                    source: DetectionSource::Anomaly,
                    detector: "anomaly-host-fanout",
                });
            }
            let syns = f64::from(self.syn_rate.record(now, packet.ip.dst));
            if syns >= self.base.syn_rate * factor
                && self.cooldown.try_fire(now, ("flood", packet.ip.dst))
            {
                out.push(Detection {
                    class: AttackClass::SynFlood,
                    severity: Severity::High,
                    source: DetectionSource::Anomaly,
                    detector: "anomaly-syn-rate",
                });
            }
        }

        if crate::aho::contains(&packet.payload, b"Login incorrect") {
            let fails = f64::from(self.failed_logins.record(now, src));
            if fails >= self.base.failed_logins * factor
                && self.cooldown.try_fire(now, ("bruteforce", src))
            {
                out.push(Detection {
                    class: AttackClass::BruteForceLogin,
                    severity: Severity::High,
                    source: DetectionSource::Anomaly,
                    detector: "anomaly-failed-logins",
                });
            }
        }

        // Origin model: logins from hosts/prefixes never seen logging in.
        if self.config.origin_model && is_login_payload(&packet.payload) {
            let s = self.sensitivity.value();
            let unseen_prefix = !self.base.login_prefixes.contains(&prefix24(src));
            let unseen_host = !self.base.login_hosts.contains(&src);
            let fire = (s >= 0.35 && unseen_prefix) || (s >= 0.75 && unseen_host);
            if fire && self.cooldown.try_fire(now, ("origin", src)) {
                out.push(Detection {
                    class: AttackClass::Masquerade,
                    severity: Severity::Warning,
                    source: DetectionSource::Anomaly,
                    detector: "anomaly-login-origin",
                });
            }
        }

        // Payload-character model: binary content on a learned text port.
        if self.config.payload_model && !packet.payload.is_empty() {
            if let Some(port) = packet.transport.dst_port() {
                if let Some(&min_benign) = self.base.min_printable.get(&port) {
                    let margin = self.sensitivity.threshold(0.6, 0.2);
                    let frac = printable_fraction(&packet.payload);
                    if frac < min_benign - margin && self.cooldown.try_fire(now, ("payload", src)) {
                        out.push(Detection {
                            class: AttackClass::PayloadExploit,
                            severity: Severity::High,
                            source: DetectionSource::Anomaly,
                            detector: "anomaly-payload-character",
                        });
                    }
                }
            }
        }

        // DNS model: oversized queries (tunnel carrier).
        if self.config.dns_model
            && packet.transport.dst_port() == Some(53)
            && self.base.dns_size_std > 0.0
        {
            let k = self.sensitivity.threshold(12.0, 4.0);
            let z =
                (packet.payload.len() as f64 - self.base.dns_size_mean) / self.base.dns_size_std;
            if z > k && self.cooldown.try_fire(now, ("dns", src)) {
                out.push(Detection {
                    class: AttackClass::Tunneling,
                    severity: Severity::Warning,
                    source: DetectionSource::Anomaly,
                    detector: "anomaly-dns-size",
                });
            }
        }

        // ICMP covert-carrier model: oversized echo payloads.
        if self.config.dns_model
            && matches!(
                packet.transport,
                idse_net::Transport::Icmp(h) if h.kind == idse_net::packet::IcmpKind::EchoRequest
            )
            && self.base.icmp_size_std > 0.0
        {
            let k = self.sensitivity.threshold(12.0, 4.0);
            let z =
                (packet.payload.len() as f64 - self.base.icmp_size_mean) / self.base.icmp_size_std;
            if z > k && self.cooldown.try_fire(now, ("icmp", src)) {
                out.push(Detection {
                    class: AttackClass::Tunneling,
                    severity: Severity::Warning,
                    source: DetectionSource::Anomaly,
                    detector: "anomaly-icmp-size",
                });
            }
        }

        // RPC vocabulary model: novel path tokens on the NFS port. Only
        // armed at high sensitivity — the trust-exploit trade-off of §3.3.
        if self.config.rpc_model
            && packet.transport.dst_port() == Some(2049)
            && self.sensitivity.value() >= 0.55
            && !packet.payload.is_empty()
        {
            let novel =
                tokens(&packet.payload).into_iter().any(|t| !self.base.rpc_tokens.contains(&t));
            if novel && self.cooldown.try_fire(now, ("rpc", src)) {
                out.push(Detection {
                    class: AttackClass::TrustExploit,
                    severity: Severity::Warning,
                    source: DetectionSource::Anomaly,
                    detector: "anomaly-rpc-vocabulary",
                });
            }
        }

        out
    }

    fn cost_ops(&self, packet: &Packet) -> f64 {
        60.0 + 0.4 * packet.payload.len() as f64
    }

    fn state_bytes(&self) -> usize {
        self.base.login_hosts.len() * 8
            + self.base.login_prefixes.len() * 8
            + self.base.min_printable.len() * 16
            + self.base.rpc_tokens.iter().map(|t| t.len() + 16).sum::<usize>()
            + self.scan_ports.approx_bytes()
            + self.fanout.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_net::packet::{Ipv4Header, TcpFlags, TcpHeader, UdpHeader};
    use idse_sim::SimDuration;
    use idse_traffic::{ArrivalProcess, BackgroundGenerator, GeneratorConfig, SiteProfile};

    fn trained_engine(sensitivity: f64) -> AnomalyEngine {
        let cfg = GeneratorConfig::new(
            SiteProfile::realtime_cluster(),
            ArrivalProcess::Poisson { rate: 30.0 },
            SimDuration::from_secs(20),
            1234,
        );
        let benign = BackgroundGenerator::new(cfg).generate();
        let mut e = AnomalyEngine::new(AnomalyConfig::default());
        e.train(&benign);
        e.set_sensitivity(Sensitivity::new(sensitivity));
        e
    }

    fn syn(src: Ipv4Addr, dst: Ipv4Addr, port: u16) -> Packet {
        Packet::tcp(
            Ipv4Header::simple(src, dst),
            TcpHeader {
                src_port: 40000,
                dst_port: port,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 512,
            },
            Vec::new(),
        )
    }

    #[test]
    fn untrained_engine_is_silent() {
        let mut e = AnomalyEngine::new(AnomalyConfig::default());
        e.set_sensitivity(Sensitivity::new(1.0));
        let p = syn(Ipv4Addr::new(6, 6, 6, 6), Ipv4Addr::new(10, 10, 0, 1), 80);
        assert!(e.inspect(SimTime::ZERO, &p).is_empty());
        assert!(!e.is_trained());
    }

    #[test]
    fn detects_port_scan_after_training() {
        let mut e = trained_engine(0.8);
        let attacker = Ipv4Addr::new(66, 6, 6, 6);
        let target = Ipv4Addr::new(10, 10, 0, 9);
        let mut detected = false;
        for port in 1..200u16 {
            let d = e.inspect(SimTime::from_millis(port as u64), &syn(attacker, target, port));
            detected |= d.iter().any(|d| d.class == AttackClass::PortScan);
        }
        assert!(detected);
    }

    #[test]
    fn scan_threshold_depends_on_sensitivity() {
        let count_until_fire = |sens: f64| -> Option<u16> {
            let mut e = trained_engine(sens);
            let attacker = Ipv4Addr::new(66, 6, 6, 6);
            let target = Ipv4Addr::new(10, 10, 0, 9);
            for port in 1..500u16 {
                let d = e
                    .inspect(SimTime::from_micros(port as u64 * 100), &syn(attacker, target, port));
                if d.iter().any(|d| d.class == AttackClass::PortScan) {
                    return Some(port);
                }
            }
            None
        };
        let strict = count_until_fire(1.0).expect("strict must fire");
        let lax = count_until_fire(0.0);
        if let Some(l) = lax {
            assert!(l > strict, "lax {l} must need more ports than strict {strict}");
        } // lax may never fire in 500 probes: acceptable
    }

    #[test]
    fn detects_masquerade_via_origin_model() {
        let mut e = trained_engine(0.8);
        // Login payload from a host far outside the cluster block.
        let p = Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(198, 18, 5, 7), Ipv4Addr::new(10, 10, 0, 4)),
            TcpHeader {
                src_port: 20001,
                dst_port: 23,
                seq: 1,
                ack: 1,
                flags: TcpFlags::PSH_ACK,
                window: 512,
            },
            b"login: jsmith\r\npassword: ********\r\nLast login: Tue Apr 16\r\n".to_vec(),
        );
        let d = e.inspect(SimTime::ZERO, &p);
        assert!(d.iter().any(|d| d.class == AttackClass::Masquerade), "{d:?}");
        // At low sensitivity the origin detector is disarmed.
        let mut e = trained_engine(0.2);
        assert!(e.inspect(SimTime::ZERO, &p).is_empty());
    }

    #[test]
    fn detects_shellcode_in_text_protocol() {
        let mut e = trained_engine(0.9);
        let p = Packet::tcp(
            Ipv4Header::simple(Ipv4Addr::new(66, 1, 2, 3), Ipv4Addr::new(10, 10, 0, 3)),
            TcpHeader {
                src_port: 31000,
                dst_port: 80,
                seq: 1,
                ack: 1,
                flags: TcpFlags::PSH_ACK,
                window: 512,
            },
            // Not in any signature DB, but visibly binary.
            b"\xeb\x1f\x5e\x89\x76\x08\x31\xc0\x88\x46\x07\x89\x46\x0c\xb0\x0b\x01\x02\x03\x04"
                .to_vec(),
        );
        let d = e.inspect(SimTime::ZERO, &p);
        assert!(
            d.iter().any(|d| d.class == AttackClass::PayloadExploit),
            "anomaly engine should catch novel shellcode: {d:?}"
        );
    }

    #[test]
    fn detects_dns_tunnel_by_size() {
        let mut e = trained_engine(0.9);
        let big_query = vec![b'a'; 300];
        let p = Packet::udp(
            Ipv4Header::simple(Ipv4Addr::new(10, 10, 0, 5), Ipv4Addr::new(198, 18, 1, 1)),
            UdpHeader { src_port: 5000, dst_port: 53 },
            big_query,
        );
        let d = e.inspect(SimTime::ZERO, &p);
        assert!(d.iter().any(|d| d.class == AttackClass::Tunneling), "{d:?}");
    }

    #[test]
    fn trust_exploit_needs_high_sensitivity() {
        let rpc_write = |e: &mut AnomalyEngine| {
            let mut body = Vec::new();
            body.extend_from_slice(&100003u32.to_be_bytes());
            body.extend_from_slice(b"/export/.ssh/authorized_keys");
            let p = Packet::tcp(
                Ipv4Header::simple(Ipv4Addr::new(10, 10, 0, 7), Ipv4Addr::new(10, 10, 0, 12)),
                TcpHeader {
                    src_port: 1023,
                    dst_port: 2049,
                    seq: 1,
                    ack: 1,
                    flags: TcpFlags::PSH_ACK,
                    window: 512,
                },
                body,
            );
            e.inspect(SimTime::ZERO, &p)
        };
        let mut strict = trained_engine(0.9);
        assert!(rpc_write(&mut strict).iter().any(|d| d.class == AttackClass::TrustExploit));
        let mut moderate = trained_engine(0.4);
        assert!(rpc_write(&mut moderate).is_empty(), "below the rpc-model arm point");
    }

    #[test]
    fn benign_cluster_traffic_is_mostly_clean_at_moderate_sensitivity() {
        let mut e = trained_engine(0.5);
        let cfg = GeneratorConfig::new(
            SiteProfile::realtime_cluster(),
            ArrivalProcess::Poisson { rate: 30.0 },
            SimDuration::from_secs(10),
            999, // different seed than training
        );
        let test = BackgroundGenerator::new(cfg).generate();
        let mut alerts = 0;
        for rec in test.records() {
            alerts += e.inspect(rec.at, &rec.packet).len();
        }
        let ratio = alerts as f64 / test.len() as f64;
        assert!(ratio < 0.005, "benign alert ratio {ratio} too high ({alerts} alerts)");
    }

    #[test]
    fn token_extraction() {
        let toks = tokens(b"/export/.ssh/authorized_keys\x00\x00data");
        assert!(toks.contains(&b"export".to_vec()));
        assert!(toks.contains(&b"authorized_keys".to_vec()));
        assert!(!toks.contains(&b"ssh".to_vec()), "3-byte tokens are skipped");
        assert!(toks.contains(&b"data".to_vec()));
    }
}
