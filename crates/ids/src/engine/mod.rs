//! Detection engines: the §2.1 taxonomy as a trait.
//!
//! "An IDS may be categorized by its detection mechanism: anomaly-based,
//! signature-based, or hybrid." Engines consume packets in time order and
//! emit [`Detection`]s; the surrounding sensor/analyzer components handle
//! queuing, capacity and failure. Every engine exposes an *Adjustable
//! Sensitivity* knob (Table 2) — the single scalar the Figure 4 error-rate
//! sweep turns.

pub mod anomaly;
pub mod host_agent;
pub mod signature;
pub mod stateful;

use crate::alert::{DetectionSource, Severity};
use idse_net::trace::{AttackClass, Trace};
use idse_net::Packet;
use idse_sim::SimTime;
use serde::{Deserialize, Serialize};

/// The sensitivity knob, in `[0, 1]`. Higher values lower detection
/// thresholds: more true positives *and* more false positives — the
/// trade-off Figure 4 plots.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Sensitivity(f64);

impl Sensitivity {
    /// The factory-default midpoint.
    pub const DEFAULT: Sensitivity = Sensitivity(0.5);

    /// Clamp into `[0, 1]`.
    pub fn new(v: f64) -> Self {
        Sensitivity(v.clamp(0.0, 1.0))
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Scale a threshold: at sensitivity 0 returns `lax`, at 1 returns
    /// `strict`, linear in between. (`strict < lax` for count thresholds.)
    pub fn threshold(self, lax: f64, strict: f64) -> f64 {
        lax + (strict - lax) * self.0
    }

    /// Whether an optional noisy detector tier is enabled (top third of
    /// the sensitivity range).
    pub fn noisy_tier_enabled(self) -> bool {
        self.0 >= 0.65
    }
}

impl Default for Sensitivity {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// A single engine-level detection (pre-analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The engine's best class guess.
    pub class: AttackClass,
    /// Severity estimate.
    pub severity: Severity,
    /// Which mechanism produced it.
    pub source: DetectionSource,
    /// Detector/rule name.
    pub detector: &'static str,
}

/// A detection engine: packets in, detections out.
pub trait DetectionEngine: Send {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Adjust sensitivity.
    fn set_sensitivity(&mut self, s: Sensitivity);

    /// Train on known-benign traffic (anomaly engines; no-op elsewhere).
    fn train(&mut self, _benign: &Trace) {}

    /// Inspect one packet observed at `now`; return any detections.
    fn inspect(&mut self, now: SimTime, packet: &Packet) -> Vec<Detection>;

    /// Abstract processing cost of inspecting `packet`, in host ops (for
    /// the capacity/overload model).
    fn cost_ops(&self, packet: &Packet) -> f64;

    /// Approximate retained state in bytes (the *Data Storage* metric).
    fn state_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_clamps() {
        assert_eq!(Sensitivity::new(2.0).value(), 1.0);
        assert_eq!(Sensitivity::new(-0.5).value(), 0.0);
        assert_eq!(Sensitivity::new(0.3).value(), 0.3);
    }

    #[test]
    fn threshold_interpolates() {
        let s = Sensitivity::new(0.0);
        assert_eq!(s.threshold(100.0, 10.0), 100.0);
        let s = Sensitivity::new(1.0);
        assert_eq!(s.threshold(100.0, 10.0), 10.0);
        let s = Sensitivity::new(0.5);
        assert_eq!(s.threshold(100.0, 10.0), 55.0);
    }

    #[test]
    fn noisy_tier_gating() {
        assert!(!Sensitivity::new(0.5).noisy_tier_enabled());
        assert!(Sensitivity::new(0.7).noisy_tier_enabled());
    }
}
