//! Data pool selection (Table 2: *Data Pool Selectability* — "ability to
//! define the source data to be analyzed for intrusions (by protocol,
//! source and dest addresses, etc)").
//!
//! A [`DataPoolFilter`] is evaluated at the sensor input: packets outside
//! the selected pool are not inspected (and not charged to the sensor).
//! The paper's own use case: "Data Pool Selectivity would allow the IDS to
//! consider only protocols outside those typically used within the
//! distributed cluster" — i.e. spend the inspection budget on the traffic
//! most likely to be hostile, at the price of blindness inside the
//! excluded pool. Both effects are measurable in the pipeline.

use idse_net::packet::{IpProtocol, Packet};
use idse_net::Cidr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A predicate over packets selecting the analyzed data pool.
///
/// Empty clauses are permissive: a default filter selects everything.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DataPoolFilter {
    /// If non-empty, only these IP protocols are analyzed.
    pub protocols: Vec<IpProtocol>,
    /// If non-empty, a packet must have its source OR destination inside
    /// one of these blocks.
    pub include_blocks: Vec<Cidr>,
    /// Packets with source AND destination inside one of these blocks are
    /// excluded (the intra-cluster trust domain carve-out).
    pub exclude_internal: Vec<Cidr>,
    /// If non-empty, only traffic to/from these service ports is analyzed.
    pub service_ports: Vec<u16>,
}

impl DataPoolFilter {
    /// The permissive filter: analyze everything.
    pub fn everything() -> Self {
        Self::default()
    }

    /// The paper's cluster use case: ignore traffic that stays inside the
    /// trust domain, analyze everything crossing its boundary.
    pub fn boundary_of(trust_domain: Cidr) -> Self {
        Self { exclude_internal: vec![trust_domain], ..Self::default() }
    }

    /// Whether `packet` is inside the analyzed pool.
    pub fn selects(&self, packet: &Packet) -> bool {
        if !self.protocols.is_empty() && !self.protocols.contains(&packet.transport.protocol()) {
            return false;
        }
        if !self.include_blocks.is_empty()
            && !self
                .include_blocks
                .iter()
                .any(|b| b.contains(packet.ip.src) || b.contains(packet.ip.dst))
        {
            return false;
        }
        if self
            .exclude_internal
            .iter()
            .any(|b| b.contains(packet.ip.src) && b.contains(packet.ip.dst))
        {
            return false;
        }
        if !self.service_ports.is_empty() {
            let ports: BTreeSet<u16> = self.service_ports.iter().copied().collect();
            let hit = packet.transport.src_port().is_some_and(|p| ports.contains(&p))
                || packet.transport.dst_port().is_some_and(|p| ports.contains(&p));
            if !hit {
                return false;
            }
        }
        true
    }

    /// Whether the filter is the permissive default.
    pub fn is_permissive(&self) -> bool {
        self.protocols.is_empty()
            && self.include_blocks.is_empty()
            && self.exclude_internal.is_empty()
            && self.service_ports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_net::packet::{Ipv4Header, TcpFlags, TcpHeader, UdpHeader};
    use std::net::Ipv4Addr;

    fn tcp(src: Ipv4Addr, dst: Ipv4Addr, dport: u16) -> Packet {
        Packet::tcp(
            Ipv4Header::simple(src, dst),
            TcpHeader {
                src_port: 40000,
                dst_port: dport,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 0,
            },
            Vec::new(),
        )
    }

    #[test]
    fn permissive_selects_everything() {
        let f = DataPoolFilter::everything();
        assert!(f.is_permissive());
        assert!(f.selects(&tcp(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 80)));
    }

    #[test]
    fn protocol_clause_filters() {
        let f = DataPoolFilter { protocols: vec![IpProtocol::Udp], ..Default::default() };
        assert!(!f.selects(&tcp(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 80)));
        let udp = Packet::udp(
            Ipv4Header::simple(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)),
            UdpHeader { src_port: 1, dst_port: 53 },
            Vec::new(),
        );
        assert!(f.selects(&udp));
    }

    #[test]
    fn boundary_filter_excludes_intra_domain_traffic() {
        let domain: Cidr = "10.10.0.0/24".parse().unwrap();
        let f = DataPoolFilter::boundary_of(domain);
        let inside = tcp(Ipv4Addr::new(10, 10, 0, 5), Ipv4Addr::new(10, 10, 0, 9), 2049);
        let crossing = tcp(Ipv4Addr::new(66, 1, 1, 1), Ipv4Addr::new(10, 10, 0, 9), 80);
        let outgoing = tcp(Ipv4Addr::new(10, 10, 0, 5), Ipv4Addr::new(198, 18, 0, 1), 53);
        assert!(!f.selects(&inside), "intra-domain traffic is out of pool");
        assert!(f.selects(&crossing));
        assert!(f.selects(&outgoing));
    }

    #[test]
    fn include_blocks_require_membership() {
        let f = DataPoolFilter {
            include_blocks: vec!["10.0.1.0/24".parse().unwrap()],
            ..Default::default()
        };
        assert!(f.selects(&tcp(Ipv4Addr::new(66, 1, 1, 1), Ipv4Addr::new(10, 0, 1, 5), 80)));
        assert!(!f.selects(&tcp(Ipv4Addr::new(66, 1, 1, 1), Ipv4Addr::new(10, 9, 9, 9), 80)));
    }

    #[test]
    fn service_port_clause() {
        let f = DataPoolFilter { service_ports: vec![80, 443], ..Default::default() };
        assert!(f.selects(&tcp(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 80)));
        assert!(!f.selects(&tcp(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 23)));
    }

    #[test]
    fn clauses_conjoin() {
        let f = DataPoolFilter {
            protocols: vec![IpProtocol::Tcp],
            service_ports: vec![80],
            ..Default::default()
        };
        assert!(f.selects(&tcp(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 80)));
        assert!(!f.selects(&tcp(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), 22)));
    }
}
