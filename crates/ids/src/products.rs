//! The four simulated IDS products.
//!
//! The paper evaluated NFR Security NID 5.0, ISS RealSecure 5.0 and
//! Recourse ManHunt 1.2 with a prototype scorecard, plus an initial look at
//! the AAFID research system. Those products are closed-source and long
//! gone, so this module defines four *models* in the same architecture
//! classes (the DESIGN.md substitution table):
//!
//! | model | patterned on | class |
//! |---|---|---|
//! | `NidSentry NS-5` | NFR NID 5.0 | centralized network signature IDS |
//! | `GuardSecure GS-5` | ISS RealSecure 5.0 | network+host hybrid signature IDS with response console |
//! | `FlowHunter FH-1` | Recourse ManHunt 1.2 | distributed, load-balanced anomaly/flow IDS |
//! | `AgentWatch AW-0.9` | AAFID | autonomous host-agent research IDS |
//!
//! Each product bundles an architecture spec (capacities, tap, balancing,
//! failure behavior), an engine suite, and a vendor profile — the
//! open-source-material facts the logistical/architectural rubrics score.

use crate::components::{BalanceStrategy, FailureBehavior, ResponseCapabilities, TapMode};
use crate::engine::anomaly::AnomalyConfig;
use crate::engine::signature::SignatureConfig;
use idse_net::frag::OverlapPolicy;
use idse_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Product identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProductId {
    /// Centralized network signature IDS (modeled on NFR NID 5.0).
    NidSentry,
    /// Hybrid network+host signature IDS (modeled on ISS RealSecure 5.0).
    GuardSecure,
    /// Distributed anomaly/flow IDS (modeled on Recourse ManHunt 1.2).
    FlowHunter,
    /// Autonomous host-agent research IDS (modeled on AAFID).
    AgentWatch,
}

impl ProductId {
    /// All products, in the paper's presentation order.
    pub const ALL: [ProductId; 4] = [
        ProductId::NidSentry,
        ProductId::GuardSecure,
        ProductId::FlowHunter,
        ProductId::AgentWatch,
    ];

    /// Display name with version.
    pub fn name(self) -> &'static str {
        match self {
            ProductId::NidSentry => "NidSentry NS-5",
            ProductId::GuardSecure => "GuardSecure GS-5",
            ProductId::FlowHunter => "FlowHunter FH-1",
            ProductId::AgentWatch => "AgentWatch AW-0.9",
        }
    }
}

/// Architecture parameters: what the deployment builder instantiates.
#[derive(Debug, Clone)]
pub struct ArchitectureSpec {
    /// Tap mode (inline vs mirrored).
    pub tap: TapMode,
    /// Load-balancing strategy.
    pub balance: BalanceStrategy,
    /// Whether a real LB station exists (None strategy may still have no
    /// station at all).
    pub lb_capacity_ops: Option<f64>,
    /// Network sensor count.
    pub sensors: usize,
    /// Per-sensor capacity, ops/second.
    pub sensor_capacity_ops: f64,
    /// Per-sensor backlog bound.
    pub sensor_backlog: SimDuration,
    /// Analyzer count (combined products reuse sensor stations).
    pub analyzers: usize,
    /// Per-analyzer capacity, ops/second.
    pub analyzer_capacity_ops: f64,
    /// Whether sensing and analysis share a station (the 1:1 collapse the
    /// paper describes).
    pub combined_sensor_analyzer: bool,
    /// Monitor station capacity, ops/second.
    pub monitor_capacity_ops: f64,
    /// Delay from analysis verdict to operator visibility.
    pub notification_delay: SimDuration,
    /// Delay from alert visibility to automated response installation.
    pub response_delay: SimDuration,
    /// Failure behavior under sustained overload.
    pub failure: FailureBehavior,
    /// Shed fraction within one second that kills a component (the
    /// lethal-dose trigger; hardier products tolerate more).
    pub lethal_drop_ratio: f64,
    /// Automated response capabilities.
    pub response: ResponseCapabilities,
}

/// Detection engine suite.
#[derive(Debug, Clone)]
pub struct EngineSuite {
    /// Signature engine configuration, if present.
    pub signature: Option<SignatureConfig>,
    /// Anomaly engine configuration, if present.
    pub anomaly: Option<AnomalyConfig>,
    /// Whether host agents deploy on monitored server hosts.
    pub host_agents: bool,
}

/// Vendor facts gathered by the paper's "open source material" observation
/// method (specifications, white papers, reviews). Rubrics in `idse-eval`
/// convert these to discrete 0–4 scores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VendorProfile {
    /// Remote-management capability tier.
    pub remote_management: ManagementTier,
    /// Installation/configuration difficulty.
    pub configuration: EffortTier,
    /// Policy creation/maintenance tooling.
    pub policy_tooling: EffortTier,
    /// License administration burden.
    pub licensing: EffortTier,
    /// Degree of outsourcing in the delivery model (0 = fully in-house
    /// operable, 1 = fully outsourced service).
    pub outsourced_degree: f64,
    /// Disk+memory footprint of the full deployment, MB.
    pub platform_footprint_mb: u32,
    /// Requires dedicated standalone hardware.
    pub dedicated_hardware: bool,
    /// Documentation quality tier.
    pub documentation: QualityTier,
    /// Technical support tier.
    pub support: QualityTier,
    /// Evaluation copies available to procurers.
    pub evaluation_copy: bool,
    /// Three-year cost of ownership, USD (2002 dollars).
    pub cost_3yr_usd: u32,
    /// Vendor-published training offerings.
    pub training: QualityTier,
    /// Sensitivity is operator-adjustable at runtime.
    pub adjustable_sensitivity: bool,
    /// Data pool selectable by protocol/address filters.
    pub data_pool_selectable: bool,
    /// Storage required per MB of monitored source data, KB.
    pub storage_kb_per_mb: u32,
    /// Product performs autonomous/online learning.
    pub autonomous_learning: bool,
    /// Interoperability tier (open formats, APIs, SNMP MIBs).
    pub interoperability: QualityTier,
}

/// Management capability tiers (Distributed Management anchors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ManagementTier {
    /// "Management of each node must be done at the node."
    NodeOnly,
    /// "Nodes may be remotely managed, but either security, or degree of
    /// administrative control is limited."
    LimitedRemote,
    /// "Complete management of all nodes may be done from any node or
    /// remotely. Appropriate encryption and authentication are employed."
    FullSecureRemote,
}

/// Effort tiers for administrative metrics (low effort = better).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EffortTier {
    /// Requires expert/vendor involvement.
    Heavy,
    /// Reasonable administrator effort.
    Moderate,
    /// Turnkey.
    Light,
}

/// Quality tiers for vendor-delivered intangibles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QualityTier {
    /// Absent or unusable.
    Poor,
    /// Serviceable.
    Fair,
    /// Strong.
    Good,
}

/// A complete product definition.
#[derive(Debug, Clone)]
pub struct IdsProduct {
    /// Identity.
    pub id: ProductId,
    /// Architecture parameters.
    pub architecture: ArchitectureSpec,
    /// Engine suite.
    pub engines: EngineSuite,
    /// Vendor facts.
    pub vendor: VendorProfile,
}

impl IdsProduct {
    /// Build the model for `id`.
    pub fn model(id: ProductId) -> IdsProduct {
        match id {
            ProductId::NidSentry => nid_sentry(),
            ProductId::GuardSecure => guard_secure(),
            ProductId::FlowHunter => flow_hunter(),
            ProductId::AgentWatch => agent_watch(),
        }
    }

    /// All four models.
    pub fn all_models() -> Vec<IdsProduct> {
        ProductId::ALL.iter().map(|&id| Self::model(id)).collect()
    }

    /// Fraction of the product's input that is host-based (Table 2's
    /// Host-based / Network-based metrics).
    pub fn host_based_fraction(&self) -> f64 {
        if !self.engines.host_agents {
            0.0
        } else if self.engines.signature.is_none() && self.engines.anomaly.is_none() {
            1.0 // pure host-agent product
        } else {
            0.35 // hybrid: host agents beside network sensors
        }
    }
}

fn nid_sentry() -> IdsProduct {
    IdsProduct {
        id: ProductId::NidSentry,
        architecture: ArchitectureSpec {
            tap: TapMode::Mirrored,
            balance: BalanceStrategy::None,
            lb_capacity_ops: None,
            sensors: 1,
            sensor_capacity_ops: 30e6,
            sensor_backlog: SimDuration::from_millis(50),
            analyzers: 1,
            analyzer_capacity_ops: 20e6,
            combined_sensor_analyzer: true,
            monitor_capacity_ops: 2e6,
            notification_delay: SimDuration::from_millis(200),
            response_delay: SimDuration::from_secs(2),
            failure: FailureBehavior::RestartService { downtime: SimDuration::from_secs(2) },
            lethal_drop_ratio: 0.60,
            response: ResponseCapabilities { firewall: false, router: false, snmp: true },
        },
        engines: EngineSuite {
            // No fragment reassembly in the 5.0-era engine: structurally
            // blind to overlap evasion.
            signature: Some(SignatureConfig { reassembly: None, preprocessors: true }),
            anomaly: None,
            host_agents: false,
        },
        vendor: VendorProfile {
            remote_management: ManagementTier::LimitedRemote,
            configuration: EffortTier::Moderate,
            policy_tooling: EffortTier::Moderate, // N-Code programmable
            licensing: EffortTier::Moderate,
            outsourced_degree: 0.0,
            platform_footprint_mb: 400,
            dedicated_hardware: true,
            documentation: QualityTier::Good,
            support: QualityTier::Fair,
            evaluation_copy: true,
            cost_3yr_usd: 45_000,
            training: QualityTier::Fair,
            adjustable_sensitivity: true,
            data_pool_selectable: true,
            storage_kb_per_mb: 80,
            autonomous_learning: false,
            interoperability: QualityTier::Fair,
        },
    }
}

fn guard_secure() -> IdsProduct {
    IdsProduct {
        id: ProductId::GuardSecure,
        architecture: ArchitectureSpec {
            tap: TapMode::Mirrored,
            balance: BalanceStrategy::StaticPartition,
            lb_capacity_ops: None, // static placement, no LB device
            sensors: 3,
            sensor_capacity_ops: 12e6,
            sensor_backlog: SimDuration::from_millis(40),
            analyzers: 3,
            analyzer_capacity_ops: 8e6,
            combined_sensor_analyzer: true,
            monitor_capacity_ops: 3e6,
            notification_delay: SimDuration::from_millis(300),
            response_delay: SimDuration::from_millis(800),
            failure: FailureBehavior::ColdReboot { downtime: SimDuration::from_secs(30) },
            lethal_drop_ratio: 0.50,
            response: ResponseCapabilities { firewall: true, router: false, snmp: true },
        },
        engines: EngineSuite {
            signature: Some(SignatureConfig {
                reassembly: Some(OverlapPolicy::FirstWins),
                preprocessors: true,
            }),
            anomaly: None,
            host_agents: true,
        },
        vendor: VendorProfile {
            remote_management: ManagementTier::FullSecureRemote,
            configuration: EffortTier::Light,
            policy_tooling: EffortTier::Light,
            licensing: EffortTier::Heavy, // per-sensor + per-agent keys
            outsourced_degree: 0.2,       // optional managed service
            platform_footprint_mb: 900,
            dedicated_hardware: false,
            documentation: QualityTier::Good,
            support: QualityTier::Good,
            evaluation_copy: true,
            cost_3yr_usd: 120_000,
            training: QualityTier::Good,
            adjustable_sensitivity: true,
            data_pool_selectable: true,
            storage_kb_per_mb: 150,
            autonomous_learning: false,
            interoperability: QualityTier::Good,
        },
    }
}

fn flow_hunter() -> IdsProduct {
    IdsProduct {
        id: ProductId::FlowHunter,
        architecture: ArchitectureSpec {
            tap: TapMode::Inline, // traffic-control capable: sits in path
            balance: BalanceStrategy::SessionHash,
            lb_capacity_ops: Some(120e6),
            sensors: 4,
            sensor_capacity_ops: 15e6,
            sensor_backlog: SimDuration::from_millis(60),
            analyzers: 2,
            analyzer_capacity_ops: 10e6,
            combined_sensor_analyzer: false,
            monitor_capacity_ops: 2e6,
            notification_delay: SimDuration::from_millis(500), // flow batching
            response_delay: SimDuration::from_millis(400),
            failure: FailureBehavior::RestartService { downtime: SimDuration::from_secs(1) },
            lethal_drop_ratio: 0.80,
            response: ResponseCapabilities { firewall: false, router: true, snmp: true },
        },
        engines: EngineSuite {
            signature: None,
            anomaly: Some(AnomalyConfig::default()),
            host_agents: false,
        },
        vendor: VendorProfile {
            remote_management: ManagementTier::FullSecureRemote,
            configuration: EffortTier::Heavy, // anomaly baselining is work
            policy_tooling: EffortTier::Moderate,
            licensing: EffortTier::Light,
            outsourced_degree: 0.0,
            platform_footprint_mb: 1200,
            dedicated_hardware: true,
            documentation: QualityTier::Fair,
            support: QualityTier::Fair,
            evaluation_copy: false,
            cost_3yr_usd: 150_000,
            training: QualityTier::Fair,
            adjustable_sensitivity: true,
            data_pool_selectable: true,
            storage_kb_per_mb: 300, // flow history retention
            autonomous_learning: true,
            interoperability: QualityTier::Fair,
        },
    }
}

fn agent_watch() -> IdsProduct {
    IdsProduct {
        id: ProductId::AgentWatch,
        architecture: ArchitectureSpec {
            tap: TapMode::Mirrored, // host vantage; no in-path element
            balance: BalanceStrategy::None,
            lb_capacity_ops: None,
            sensors: 1, // a thin aggregation point for agent reports
            sensor_capacity_ops: 6e6,
            sensor_backlog: SimDuration::from_millis(80),
            analyzers: 1,
            analyzer_capacity_ops: 4e6,
            combined_sensor_analyzer: true,
            monitor_capacity_ops: 1e6,
            notification_delay: SimDuration::from_secs(1), // research console
            response_delay: SimDuration::from_secs(5),
            failure: FailureBehavior::Hang, // research prototype
            lethal_drop_ratio: 0.35,
            response: ResponseCapabilities { firewall: false, router: false, snmp: false },
        },
        engines: EngineSuite { signature: None, anomaly: None, host_agents: true },
        vendor: VendorProfile {
            remote_management: ManagementTier::NodeOnly,
            configuration: EffortTier::Heavy,
            policy_tooling: EffortTier::Heavy,
            licensing: EffortTier::Light, // research license, free
            outsourced_degree: 0.0,
            platform_footprint_mb: 60,
            dedicated_hardware: false,
            documentation: QualityTier::Poor,
            support: QualityTier::Poor,
            evaluation_copy: true,
            cost_3yr_usd: 8_000, // integration labor only
            training: QualityTier::Poor,
            adjustable_sensitivity: true,
            data_pool_selectable: false,
            storage_kb_per_mb: 40,
            autonomous_learning: true,
            interoperability: QualityTier::Poor,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_distinct_models() {
        let all = IdsProduct::all_models();
        assert_eq!(all.len(), 4);
        let names: std::collections::HashSet<&str> = all.iter().map(|p| p.id.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn detection_mechanisms_follow_the_paper_taxonomy() {
        let nid = IdsProduct::model(ProductId::NidSentry);
        assert!(nid.engines.signature.is_some() && nid.engines.anomaly.is_none());
        let fh = IdsProduct::model(ProductId::FlowHunter);
        assert!(fh.engines.signature.is_none() && fh.engines.anomaly.is_some());
        let gs = IdsProduct::model(ProductId::GuardSecure);
        assert!(gs.engines.signature.is_some() && gs.engines.host_agents);
        let aw = IdsProduct::model(ProductId::AgentWatch);
        assert!(aw.engines.signature.is_none() && !aw.architecture.response.snmp);
    }

    #[test]
    fn architecture_classes_differ() {
        let nid = IdsProduct::model(ProductId::NidSentry);
        assert_eq!(nid.architecture.balance, BalanceStrategy::None);
        let fh = IdsProduct::model(ProductId::FlowHunter);
        assert_eq!(fh.architecture.balance, BalanceStrategy::SessionHash);
        assert_eq!(fh.architecture.tap, TapMode::Inline);
        assert!(fh.architecture.lb_capacity_ops.is_some());
        assert!(!fh.architecture.combined_sensor_analyzer);
    }

    #[test]
    fn host_based_fractions() {
        assert_eq!(IdsProduct::model(ProductId::NidSentry).host_based_fraction(), 0.0);
        assert!(IdsProduct::model(ProductId::GuardSecure).host_based_fraction() > 0.0);
        assert!(IdsProduct::model(ProductId::AgentWatch).host_based_fraction() > 0.3);
    }

    #[test]
    fn failure_behaviors_span_the_rubric() {
        let behaviors: Vec<FailureBehavior> =
            IdsProduct::all_models().iter().map(|p| p.architecture.failure).collect();
        assert!(behaviors.iter().any(|b| matches!(b, FailureBehavior::Hang)));
        assert!(behaviors.iter().any(|b| matches!(b, FailureBehavior::ColdReboot { .. })));
        assert!(behaviors.iter().any(|b| matches!(b, FailureBehavior::RestartService { .. })));
    }
}
