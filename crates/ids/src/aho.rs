//! A from-scratch Aho–Corasick multi-pattern matcher.
//!
//! The signature engine must scan every payload byte against the whole rule
//! database at line rate — the *System Throughput* and *Maximal Throughput
//! with Zero Loss* metrics are dominated by this scan. Aho–Corasick gives
//! O(payload + matches) per packet independent of pattern count, which is
//! why it (and its descendants) power real signature IDSes. A naive
//! per-rule scan is kept in `idse-bench` as the ablation baseline.
//!
//! The automaton is the classic goto/fail construction with an explicit
//! 256-way dense transition table per node, built breadth-first, with
//! output lists merged along failure links.

/// One-off substring search for tiny needles; used by stateful detectors
/// that key on a single literal (the compiled automaton handles the bulk
/// rule database).
pub fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > haystack.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// A compiled multi-pattern automaton. Pattern ids are the indices of the
/// patterns passed to [`AhoCorasick::new`].
///
/// ```
/// use idse_ids::aho::AhoCorasick;
/// let ac = AhoCorasick::new(&[b"/bin/sh".as_slice(), b"\x90\x90\x90\x90"]);
/// assert_eq!(ac.matching_patterns(b"exec /bin/sh now"), vec![0]);
/// assert!(ac.find_first(b"clean payload").is_none());
/// ```
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Dense next-state table: `next[state * 256 + byte]`.
    next: Vec<u32>,
    /// Pattern ids that end at each state (merged via failure links).
    outputs: Vec<Vec<u32>>,
    pattern_count: usize,
}

/// A single match occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Which pattern matched (index into the constructor's list).
    pub pattern: u32,
    /// Byte offset one past the match's last byte.
    pub end: usize,
}

impl AhoCorasick {
    /// Build the automaton over the given patterns. Empty patterns are
    /// rejected (they would match everywhere).
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        assert!(patterns.iter().all(|p| !p.as_ref().is_empty()), "empty patterns are not allowed");
        // Trie construction. goto_[node][byte] = child or u32::MAX.
        let mut goto_: Vec<[u32; 256]> = vec![[u32::MAX; 256]];
        let mut out: Vec<Vec<u32>> = vec![Vec::new()];
        for (id, p) in patterns.iter().enumerate() {
            let mut s = 0usize;
            for &b in p.as_ref() {
                let t = goto_[s][b as usize];
                s = if t == u32::MAX {
                    goto_.push([u32::MAX; 256]);
                    out.push(Vec::new());
                    let new = (goto_.len() - 1) as u32;
                    goto_[s][b as usize] = new;
                    new as usize
                } else {
                    t as usize
                };
            }
            out[s].push(id as u32);
        }

        // BFS failure computation, flattening into a dense delta table.
        let n = goto_.len();
        let mut fail = vec![0u32; n];
        let mut next = vec![0u32; n * 256];
        let mut queue = std::collections::VecDeque::new();
        for b in 0..256 {
            let t = goto_[0][b];
            if t == u32::MAX {
                next[b] = 0;
            } else {
                next[b] = t;
                fail[t as usize] = 0;
                queue.push_back(t as usize);
            }
        }
        while let Some(s) = queue.pop_front() {
            let f = fail[s] as usize;
            // Merge outputs from the failure state.
            if !out[f].is_empty() {
                let merged: Vec<u32> = out[f].clone();
                out[s].extend(merged);
            }
            for b in 0..256 {
                let t = goto_[s][b];
                if t == u32::MAX {
                    next[s * 256 + b] = next[f * 256 + b];
                } else {
                    next[s * 256 + b] = t;
                    fail[t as usize] = next[f * 256 + b];
                    queue.push_back(t as usize);
                }
            }
        }

        Self { next, outputs: out, pattern_count: patterns.len() }
    }

    /// Number of patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Number of automaton states (diagnostics / Data Storage metric).
    pub fn state_count(&self) -> usize {
        self.outputs.len()
    }

    /// Find all matches in `haystack`.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut matches = Vec::new();
        let mut s = 0usize;
        for (i, &b) in haystack.iter().enumerate() {
            s = self.next[s * 256 + b as usize] as usize;
            for &pid in &self.outputs[s] {
                matches.push(Match { pattern: pid, end: i + 1 });
            }
        }
        matches
    }

    /// Whether any pattern occurs in `haystack` (early exit).
    pub fn find_first(&self, haystack: &[u8]) -> Option<Match> {
        let mut s = 0usize;
        for (i, &b) in haystack.iter().enumerate() {
            s = self.next[s * 256 + b as usize] as usize;
            if let Some(&pid) = self.outputs[s].first() {
                return Some(Match { pattern: pid, end: i + 1 });
            }
        }
        None
    }

    /// The distinct pattern ids occurring in `haystack`, sorted.
    ///
    /// Walks the automaton directly rather than going through
    /// [`find_all`](Self::find_all): the per-packet hot path needs only
    /// pattern ids, so building (and throwing away) a `Match` per
    /// occurrence would pay an extra allocation per packet.
    pub fn matching_patterns(&self, haystack: &[u8]) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::with_capacity(4);
        let mut s = 0usize;
        for &b in haystack {
            s = self.next[s * 256 + b as usize] as usize;
            ids.extend_from_slice(&self.outputs[s]);
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_patterns() {
        let ac = AhoCorasick::new(&[b"he".as_slice(), b"she", b"his", b"hers"]);
        let found = ac.find_all(b"ushers");
        // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
        let pats: Vec<u32> = found.iter().map(|m| m.pattern).collect();
        assert!(pats.contains(&0)); // he
        assert!(pats.contains(&1)); // she
        assert!(pats.contains(&3)); // hers
        assert!(!pats.contains(&2)); // his
    }

    #[test]
    fn overlapping_matches_all_reported() {
        let ac = AhoCorasick::new(&[b"aa".as_slice()]);
        let found = ac.find_all(b"aaaa");
        assert_eq!(found.len(), 3);
        assert_eq!(found[0].end, 2);
        assert_eq!(found[2].end, 4);
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[b"\x90\x90\x90\x90".as_slice(), b"/bin/sh"]);
        let hay = b"junk\x90\x90\x90\x90\x90shell=/bin/sh;";
        let ids = ac.matching_patterns(hay);
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn no_match_in_clean_text() {
        let ac = AhoCorasick::new(&[b"attack".as_slice(), b"\x90\x90"]);
        assert!(ac.find_first(b"perfectly normal http body").is_none());
        assert!(ac.find_all(b"").is_empty());
    }

    #[test]
    fn find_first_early_exit_matches_find_all() {
        let ac = AhoCorasick::new(&[b"abc".as_slice(), b"bcd"]);
        let hay = b"xxabcdxx";
        let first = ac.find_first(hay).unwrap();
        let all = ac.find_all(hay);
        assert_eq!(first, all[0]);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn pattern_that_is_prefix_of_another() {
        let ac = AhoCorasick::new(&[b"abc".as_slice(), b"abcdef"]);
        let all = ac.find_all(b"zzabcdefzz");
        let pats: Vec<u32> = all.iter().map(|m| m.pattern).collect();
        assert_eq!(pats, vec![0, 1]);
    }

    #[test]
    fn suffix_output_merging() {
        // "bc" must be reported even when reached while matching "abcd".
        let ac = AhoCorasick::new(&[b"abcd".as_slice(), b"bc"]);
        let all = ac.find_all(b"abcd");
        let pats: Vec<u32> = all.iter().map(|m| m.pattern).collect();
        assert!(pats.contains(&0));
        assert!(pats.contains(&1));
    }

    #[test]
    #[should_panic(expected = "empty patterns")]
    fn empty_pattern_rejected() {
        let _ = AhoCorasick::new(&[b"".as_slice()]);
    }

    #[test]
    fn exploit_corpus_compiles_and_matches() {
        // Realistic-scale rule set: a few dozen patterns.
        let patterns: Vec<Vec<u8>> =
            (0..50).map(|i| format!("exploit-pattern-{i:02}").into_bytes()).collect();
        let ac = AhoCorasick::new(&patterns);
        assert_eq!(ac.pattern_count(), 50);
        let hay = b"prefix exploit-pattern-31 suffix";
        assert_eq!(ac.matching_patterns(hay), vec![31]);
    }
}
