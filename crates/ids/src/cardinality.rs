//! Figure 2: relational cardinality of the IDS subprocesses, as data.
//!
//! The paper specifies: Load Balancer **1c:M** Sensor, Sensor **M:M**
//! Analyzer, Analyzer **M:1** Monitor, Monitor **1:1c** Management
//! Console, and Console **1c:M** the other components ("c" marking the
//! conditional/optional side). This module encodes those relations and
//! validates any [`IdsProduct`]'s architecture against them — which is
//! also how the `figure2` bench regenerates the figure.

use crate::products::IdsProduct;
use serde::{Deserialize, Serialize};

/// The five subprocesses (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Subprocess {
    /// 1. Distributing traffic among sensors (optional).
    LoadBalancer,
    /// 2. Separating suspicious from normal traffic (essential).
    Sensor,
    /// 3. Determining the nature and threat of suspicious traffic
    ///    (essential).
    Analyzer,
    /// 4. Operator visibility, reports, notification (essential).
    Monitor,
    /// 5. Configuration and response management (optional).
    Manager,
}

impl Subprocess {
    /// All five, in sequential-process order.
    pub const ALL: [Subprocess; 5] = [
        Subprocess::LoadBalancer,
        Subprocess::Sensor,
        Subprocess::Analyzer,
        Subprocess::Monitor,
        Subprocess::Manager,
    ];

    /// Whether the paper marks this subprocess optional.
    pub fn is_optional(self) -> bool {
        matches!(self, Subprocess::LoadBalancer | Subprocess::Manager)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Subprocess::LoadBalancer => "Load Balancer",
            Subprocess::Sensor => "Sensor",
            Subprocess::Analyzer => "Analyzer",
            Subprocess::Monitor => "Monitor",
            Subprocess::Manager => "Management Console",
        }
    }
}

/// One side of a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// Exactly one.
    One,
    /// Zero or one ("1c" in the paper's notation).
    ConditionalOne,
    /// One or more.
    Many,
}

impl Side {
    /// Whether `count` instances satisfy this side.
    pub fn admits(self, count: usize) -> bool {
        match self {
            Side::One => count == 1,
            Side::ConditionalOne => count <= 1,
            Side::Many => count >= 1,
        }
    }

    /// Paper notation.
    pub fn notation(self) -> &'static str {
        match self {
            Side::One => "1",
            Side::ConditionalOne => "1c",
            Side::Many => "M",
        }
    }
}

/// A cardinality relation between two subprocesses.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Relation {
    /// Left subprocess.
    pub from: Subprocess,
    /// Left-side cardinality.
    pub from_side: Side,
    /// Right subprocess.
    pub to: Subprocess,
    /// Right-side cardinality.
    pub to_side: Side,
}

impl Relation {
    /// Paper notation, e.g. `Load Balancer 1c:M Sensor`.
    pub fn notation(&self) -> String {
        format!(
            "{} {}:{} {}",
            self.from.name(),
            self.from_side.notation(),
            self.to_side.notation(),
            self.to.name()
        )
    }
}

/// The Figure 2 relation set.
pub fn figure2_relations() -> Vec<Relation> {
    use Side::*;
    use Subprocess::*;
    vec![
        Relation { from: LoadBalancer, from_side: ConditionalOne, to: Sensor, to_side: Many },
        Relation { from: Sensor, from_side: Many, to: Analyzer, to_side: Many },
        Relation { from: Analyzer, from_side: Many, to: Monitor, to_side: One },
        Relation { from: Monitor, from_side: One, to: Manager, to_side: ConditionalOne },
        Relation { from: Manager, from_side: ConditionalOne, to: Sensor, to_side: Many },
        Relation { from: Manager, from_side: ConditionalOne, to: Analyzer, to_side: Many },
        Relation { from: Manager, from_side: ConditionalOne, to: Monitor, to_side: Many },
    ]
}

/// Instance counts of each subprocess in a product's architecture.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SubprocessCounts {
    /// Load balancers present.
    pub load_balancers: usize,
    /// Sensors present.
    pub sensors: usize,
    /// Analyzers present.
    pub analyzers: usize,
    /// Monitors present.
    pub monitors: usize,
    /// Management consoles present.
    pub managers: usize,
}

impl SubprocessCounts {
    /// Extract counts from a product.
    pub fn of(product: &IdsProduct) -> Self {
        let arch = &product.architecture;
        let has_console = arch.response.firewall || arch.response.router || arch.response.snmp;
        Self {
            load_balancers: arch.lb_capacity_ops.is_some() as usize,
            sensors: arch.sensors,
            analyzers: if arch.combined_sensor_analyzer { arch.sensors } else { arch.analyzers },
            monitors: 1,
            managers: has_console as usize,
        }
    }

    fn count(&self, s: Subprocess) -> usize {
        match s {
            Subprocess::LoadBalancer => self.load_balancers,
            Subprocess::Sensor => self.sensors,
            Subprocess::Analyzer => self.analyzers,
            Subprocess::Monitor => self.monitors,
            Subprocess::Manager => self.managers,
        }
    }

    /// Validate against the Figure 2 relations; returns violations in
    /// notation form (empty = conformant).
    pub fn validate(&self) -> Vec<String> {
        let mut violations = Vec::new();
        // Essential subprocesses must exist.
        for s in Subprocess::ALL {
            if !s.is_optional() && self.count(s) == 0 {
                violations.push(format!("{} is essential but absent", s.name()));
            }
        }
        for rel in figure2_relations() {
            let from_n = self.count(rel.from);
            let to_n = self.count(rel.to);
            // A relation involving an absent optional side is vacuous.
            if (from_n == 0 && rel.from.is_optional()) || (to_n == 0 && rel.to.is_optional()) {
                continue;
            }
            if !rel.from_side.admits(from_n) || !rel.to_side.admits(to_n) {
                violations.push(format!(
                    "{} violated by counts {}:{}",
                    rel.notation(),
                    from_n,
                    to_n
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::products::IdsProduct;

    #[test]
    fn all_products_conform_to_figure2() {
        for p in IdsProduct::all_models() {
            let counts = SubprocessCounts::of(&p);
            let violations = counts.validate();
            assert!(violations.is_empty(), "{}: {violations:?}", p.id.name());
        }
    }

    #[test]
    fn missing_essential_subprocess_is_flagged() {
        let counts = SubprocessCounts {
            load_balancers: 0,
            sensors: 0,
            analyzers: 1,
            monitors: 1,
            managers: 0,
        };
        let v = counts.validate();
        assert!(v.iter().any(|m| m.contains("Sensor is essential")));
    }

    #[test]
    fn two_monitors_violate_m_to_1() {
        let counts = SubprocessCounts {
            load_balancers: 1,
            sensors: 4,
            analyzers: 2,
            monitors: 2,
            managers: 1,
        };
        let v = counts.validate();
        assert!(!v.is_empty());
    }

    #[test]
    fn optional_subprocesses_may_be_absent() {
        let counts = SubprocessCounts {
            load_balancers: 0,
            sensors: 1,
            analyzers: 1,
            monitors: 1,
            managers: 0,
        };
        assert!(counts.validate().is_empty());
    }

    #[test]
    fn notation_matches_paper() {
        let rels = figure2_relations();
        let notations: Vec<String> = rels.iter().map(|r| r.notation()).collect();
        assert!(notations.contains(&"Load Balancer 1c:M Sensor".to_owned()));
        assert!(notations.contains(&"Sensor M:M Analyzer".to_owned()));
        assert!(notations.contains(&"Analyzer M:1 Monitor".to_owned()));
        assert!(notations.contains(&"Monitor 1:1c Management Console".to_owned()));
    }

    #[test]
    fn side_admission_rules() {
        assert!(Side::One.admits(1));
        assert!(!Side::One.admits(0));
        assert!(Side::ConditionalOne.admits(0));
        assert!(Side::ConditionalOne.admits(1));
        assert!(!Side::ConditionalOne.admits(2));
        assert!(Side::Many.admits(5));
        assert!(!Side::Many.admits(0));
    }
}
