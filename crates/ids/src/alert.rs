//! Alerts: what the IDS tells the operator.
//!
//! An alert's `trigger` indexes the trace record that crossed the
//! detection threshold. The IDS never sees ground truth — attribution
//! happens in `idse-eval`, which joins trigger indices back to the labeled
//! trace to score the paper's Figure 3 confusion quantities.

use idse_net::trace::AttackClass;
use idse_net::FlowKey;
use idse_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Alert severity, as presented to the monitoring console.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: worth logging, not paging anyone.
    Info,
    /// Suspicious activity needing review.
    Warning,
    /// Confirmed-pattern attack.
    High,
    /// Attack against critical infrastructure / in-progress compromise.
    Critical,
}

/// Which detection mechanism raised the alert (the §2.1 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectionSource {
    /// Signature (knowledge-based) match.
    Signature,
    /// Anomaly (behavior-based) detection.
    Anomaly,
    /// Host-based agent observation.
    HostAgent,
}

/// One alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// When the *monitor* surfaced the alert to the operator (end of the
    /// pipeline) — the paper's Timeliness endpoint.
    pub raised_at: SimTime,
    /// When the triggering packet was observed by the sensor.
    pub observed_at: SimTime,
    /// Index of the triggering record in the input trace.
    pub trigger: usize,
    /// Flow the alert concerns.
    pub flow: FlowKey,
    /// What the IDS believes this is.
    pub class_guess: AttackClass,
    /// Severity level.
    pub severity: Severity,
    /// Which mechanism fired.
    pub source: DetectionSource,
    /// Sensor that observed the trigger (index within the deployment).
    pub sensor: usize,
    /// Short rule/detector name for reports. `Cow` so the per-alert path
    /// borrows the engines' `&'static str` names instead of allocating;
    /// deserialization still yields owned strings.
    pub detector: Cow<'static, str>,
}

impl Alert {
    /// Detection latency: trigger observation → operator visibility.
    pub fn report_latency(&self) -> idse_sim::SimDuration {
        self.raised_at.saturating_since(self.observed_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idse_net::packet::IpProtocol;
    use std::net::Ipv4Addr;

    fn flow() -> FlowKey {
        FlowKey {
            protocol: IpProtocol::Tcp,
            src: Ipv4Addr::new(1, 1, 1, 1),
            src_port: 1000,
            dst: Ipv4Addr::new(2, 2, 2, 2),
            dst_port: 80,
        }
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Critical > Severity::High);
        assert!(Severity::High > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_latency_computes() {
        let a = Alert {
            raised_at: SimTime::from_millis(105),
            observed_at: SimTime::from_millis(100),
            trigger: 7,
            flow: flow(),
            class_guess: AttackClass::PortScan,
            severity: Severity::Warning,
            source: DetectionSource::Signature,
            sensor: 0,
            detector: "scan-threshold".into(),
        };
        assert_eq!(a.report_latency(), idse_sim::SimDuration::from_millis(5));
    }

    #[test]
    fn serde_round_trip() {
        let a = Alert {
            raised_at: SimTime::from_millis(105),
            observed_at: SimTime::from_millis(100),
            trigger: 7,
            flow: flow(),
            class_guess: AttackClass::SynFlood,
            severity: Severity::Critical,
            source: DetectionSource::Anomaly,
            sensor: 2,
            detector: "half-open".into(),
        };
        let s = serde_json::to_string(&a).unwrap();
        let b: Alert = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
    }
}
