//! # idse-ids — the generalized network IDS framework
//!
//! An implementation of the paper's Figure 1 architecture: "ID is a
//! sequential process consisting of five subprocesses: load balancing,
//! sensing, analyzing, monitoring, managing." Subprocesses 1 and 5 are
//! optional; 2–4 are essential. Figure 2's relational cardinalities
//! (LB 1c:M Sensor, Sensor M:M Analyzer, Analyzer M:1 Monitor,
//! Monitor 1:1c Console, Console 1c:M components) are encoded and validated
//! in [`cardinality`].
//!
//! Detection mechanisms follow §2.1's taxonomy:
//!
//! * [`engine::signature`] — a knowledge-based engine: header-predicate +
//!   payload-pattern rules over a from-scratch Aho–Corasick multi-pattern
//!   matcher ([`aho`]), plus Snort-style scan/flood preprocessors;
//! * [`engine::anomaly`] — a behavior-based engine: trained baselines for
//!   rates, fan-out, origins, payload character and login behavior;
//! * [`engine::host_agent`] — host-based sensing from the monitored hosts'
//!   own vantage (log-level events), consuming host CPU per §2.1.
//!
//! [`datapool`] implements Table 2's *Data Pool Selectability* as a
//! functional sensor-input filter (not just a scored claim), and
//! [`products`] instantiates four concrete IDS models patterned on the
//! systems the paper evaluated (NFR NID 5.0, ISS RealSecure 5.0, Recourse
//! ManHunt 1.2, and the AAFID research prototype), and [`pipeline`] drives
//! a labeled trace through a deployed product on the `idse-sim` kernel,
//! producing the alerts, drops, latencies and failure events that
//! `idse-eval` turns into scorecard measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aho;
pub mod alert;
pub mod cardinality;
pub mod components;
pub mod datapool;
pub mod engine;
pub mod pipeline;
pub mod products;

pub use alert::{Alert, Severity};
pub use engine::Sensitivity;
pub use pipeline::{PipelineOutcome, PipelineRunner};
pub use products::{IdsProduct, ProductId};
