//! The pipeline: a labeled trace through a deployed product, on the
//! discrete-event kernel.
//!
//! This is the testbed run the paper's performance metrics come from. For
//! every trace record the packet walks the Figure 1 subprocess chain —
//! (load balance) → sense → analyze → monitor → (manage) — with each stage
//! a finite-capacity [`ServiceStation`]. Everything Table 3 measures falls
//! out of one run:
//!
//! * **System Throughput / Maximal Throughput with Zero Loss** — packets
//!   monitored vs offered as the replay rate rises;
//! * **Network Lethal Dose** — the offered rate at which a station's
//!   failure behavior trips;
//! * **Induced Traffic Latency** — in-line tap delay per forwarded packet;
//! * **Timeliness** — trace-record time → alert visibility;
//! * **Operational Performance Impact** — host-agent CPU charged to the
//!   monitored hosts' [`HostCpu`]s;
//! * **Observed False Positive/Negative Ratio** — alerts joined back to
//!   ground truth by `idse-eval`.

use crate::alert::Alert;
use crate::components::{
    BalanceStrategy, LoadBalancer, ManagementConsole, Monitor, ServeOutcome, ServiceStation,
    TapMode,
};
use crate::engine::anomaly::AnomalyEngine;
use crate::engine::host_agent::{HostAgentConfig, HostAgentEngine};
use crate::engine::signature::SignatureEngine;
use crate::engine::{Detection, DetectionEngine, Sensitivity};
use crate::products::IdsProduct;
use idse_faults::{CompiledFaults, FaultComponent, FaultStats};
use idse_net::trace::{GroundTruth, Trace, TraceRecord};
use idse_net::FlowKey;
use idse_sim::stats::{DurationSummary, StageCounters};
use idse_sim::{AuditLevel, EventQueue, HostCpu, SimDuration, SimTime, Simulation, World};
use idse_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Sim-time a rerouting stage pays per retry hop while hunting a live
/// instance (bounded backoff: `hops * 250 µs`).
const REROUTE_BACKOFF_NANOS: u64 = 250_000;

/// Bounded capacity of each degraded-mode replay buffer. Alerts beyond
/// this are lost, not queued — survivability is measured, not faked.
const REPLAY_LIMIT: usize = 256;

/// Backoff paid after `hops` failed routing attempts.
fn reroute_backoff(hops: usize) -> SimDuration {
    SimDuration::from_nanos(REROUTE_BACKOFF_NANOS * hops as u64)
}

/// Everything a run produces.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// Operator-visible alerts.
    pub alerts: Vec<Alert>,
    /// Ground truth of each alert's trigger record, parallel to `alerts`.
    /// Streaming consumers score from this without re-materializing the
    /// trace to join `Alert::trigger` back to records.
    pub alert_truths: Vec<Option<GroundTruth>>,
    /// Peak number of trace records held live at once. Equals the trace
    /// length for monolithic runs; stays O(in-flight) for chunked sessions
    /// — the bounded-RSS evidence.
    pub window_peak: usize,
    /// Total packets offered.
    pub offered: u64,
    /// Packets inspected by at least one engine.
    pub monitored: u64,
    /// Packets lost before inspection (stage sheds + failure windows).
    pub missed: u64,
    /// Packets suppressed by automated perimeter blocking, by truth:
    /// `(attack_packets_blocked, benign_packets_blocked)`.
    pub blocked: (u64, u64),
    /// Packets excluded by the data-pool filter (deliberately unanalyzed —
    /// not counted as loss).
    pub pool_excluded: u64,
    /// Benign sources collaterally blocked by false-positive responses.
    pub collateral_blocked_sources: usize,
    /// Per-stage counters.
    pub lb_counters: Option<StageCounters>,
    /// Per-sensor counters.
    pub sensor_counters: Vec<StageCounters>,
    /// Analyzer counters.
    pub analyzer_counters: Vec<StageCounters>,
    /// In-line induced latency per forwarded packet (empty for mirrored
    /// taps).
    pub induced_latency: DurationSummary,
    /// Component failures observed.
    pub failures: u32,
    /// Whether any component was still down when the run ended.
    pub ended_down: bool,
    /// Mean IDS share of monitored-host CPU (Operational Performance
    /// Impact), 0 when no host agents.
    pub host_impact: f64,
    /// Approximate engine state footprint in bytes (Data Storage).
    pub state_bytes: usize,
    /// What the injected faults did to this run (all-zero when the run
    /// carried no fault plan).
    pub fault_stats: FaultStats,
    /// Virtual time the run finished.
    pub finished_at: SimTime,
}

impl PipelineOutcome {
    /// Fraction of offered packets that were never inspected.
    pub fn loss_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.missed as f64 / self.offered as f64
        }
    }
}

/// Run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Engine sensitivity for the run.
    pub sensitivity: Sensitivity,
    /// Server hosts that host agents deploy on (and whose CPU is charged).
    pub monitored_hosts: Vec<Ipv4Addr>,
    /// Audit level on monitored hosts.
    pub audit_level: AuditLevel,
    /// Whether the console's automated responses are armed.
    pub auto_response: bool,
    /// The analyzed data pool (Table 2's Data Pool Selectability).
    /// Packets outside the pool bypass the network sensors entirely: no
    /// inspection, no inspection cost — and no detection.
    pub data_pool: crate::datapool::DataPoolFilter,
    /// Telemetry handle. Disabled by default; when enabled the run emits
    /// per-stage spans (`stage.load_balance` … `stage.manage`), shed and
    /// alert counters, engine match-latency spans and host-CPU samples.
    /// Recording is observation-only: it never changes the run.
    pub telemetry: Telemetry,
    /// Fault plan injected into the run (`None` = healthy run). Crashes,
    /// partitions and degradations fire on the sim-time axis; every
    /// stochastic draw is derived from the plan label, so a faulted run
    /// replays byte-identically under any scheduling.
    pub faults: Option<idse_faults::FaultPlan>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            sensitivity: Sensitivity::DEFAULT,
            monitored_hosts: Vec::new(),
            audit_level: AuditLevel::Nominal,
            auto_response: false,
            data_pool: crate::datapool::DataPoolFilter::everything(),
            telemetry: Telemetry::disabled(),
            faults: None,
        }
    }
}

/// Builds deployments and runs traces through them.
pub struct PipelineRunner {
    product: IdsProduct,
    config: RunConfig,
    training: Option<Trace>,
}

impl PipelineRunner {
    /// A runner for `product` under `config`.
    pub fn new(product: IdsProduct, config: RunConfig) -> Self {
        Self { product, config, training: None }
    }

    /// Provide the known-benign training trace (anomaly/host-agent
    /// baselines).
    pub fn with_training(mut self, training: Trace) -> Self {
        self.training = Some(training);
        self
    }

    /// Run `trace` through the deployment — a one-chunk [`PipelineSession`].
    pub fn run(&self, trace: &Trace) -> PipelineOutcome {
        let mut session = self.session();
        session.push_chunk(trace.records().iter().cloned());
        session.finish()
    }

    /// Open a chunked session: records are fed incrementally with
    /// [`PipelineSession::push_chunk`] and the deployment holds only the
    /// records still in flight, so memory stays O(chunk + in-flight)
    /// regardless of the total run length. Feeding the whole trace as one
    /// chunk is byte-identical to feeding it in any chunking (the event
    /// kernel dispatches inputs ahead of same-instant derived events, so
    /// arrival order matches a fully pre-scheduled run).
    pub fn session(&self) -> PipelineSession {
        let world = DeploymentWorld::build(&self.product, &self.config, self.training.as_ref());
        let mut sim = Simulation::new();
        sim.set_telemetry(self.config.telemetry.clone());
        PipelineSession { world, sim, next_index: 0 }
    }
}

/// An in-progress chunked pipeline run. See [`PipelineRunner::session`].
pub struct PipelineSession {
    world: DeploymentWorld,
    sim: Simulation<Ev>,
    next_index: u32,
}

impl PipelineSession {
    /// Feed the next chunk of trace records (must continue the global
    /// time-sorted order). The simulation first drains everything strictly
    /// earlier than the chunk's first record, then admits the records as
    /// input events — so no stage ever sees a packet out of order.
    pub fn push_chunk(&mut self, records: impl IntoIterator<Item = TraceRecord>) {
        let mut records = records.into_iter().peekable();
        let Some(first) = records.peek() else { return };
        self.sim.run_before(&mut self.world, first.at);
        for rec in records {
            let idx = self.next_index;
            self.next_index += 1;
            let at = rec.at;
            self.world.admit(idx, rec);
            self.sim.queue_mut().schedule_input(at, Ev::Arrive(idx));
        }
    }

    /// Records fed so far.
    pub fn fed(&self) -> u64 {
        u64::from(self.next_index)
    }

    /// Drain every remaining event and produce the outcome.
    pub fn finish(mut self) -> PipelineOutcome {
        self.sim.run_to_completion(&mut self.world);
        self.world.finish(self.sim.now())
    }
}

#[derive(Debug, Clone)]
enum Ev {
    /// A trace record reaches the tap.
    Arrive(u32),
    /// The sensor station finishes a record; engines inspect now.
    SensorDone { sensor: u8, rec: u32 },
    /// A host agent finishes inspecting a record.
    AgentDone { rec: u32 },
    /// Analysis of a detection completes; monitor presents it.
    AnalyzerDone { rec: u32, observed: SimTime, det: Detection },
    /// A crashed component restarts; buffered state replays.
    Replay,
}

/// One live record with its scope flag and reference count.
struct WindowEntry {
    record: TraceRecord,
    in_scope: bool,
    monitored: bool,
    /// Outstanding holds: the pending `Arrive`, every scheduled event
    /// carrying this record's index, and every replay-buffer slot. The
    /// entry is evicted when the count returns to zero.
    refs: u32,
}

/// The bounded set of records currently in flight through the deployment.
/// Each record enters with one reference (its pending `Arrive`), gains one
/// per scheduled follow-up event or replay-buffer hold, and is dropped as
/// soon as nothing references it — the constant-memory substitute for
/// borrowing the whole trace.
#[derive(Default)]
struct RecordWindow {
    entries: BTreeMap<u32, WindowEntry>,
    peak: usize,
}

impl RecordWindow {
    fn insert(&mut self, idx: u32, record: TraceRecord, in_scope: bool) {
        let prev =
            self.entries.insert(idx, WindowEntry { record, in_scope, monitored: false, refs: 1 });
        debug_assert!(prev.is_none(), "record index {idx} admitted twice");
        self.peak = self.peak.max(self.entries.len());
    }

    fn record(&self, idx: u32) -> &TraceRecord {
        &self.entries.get(&idx).expect("record still referenced").record
    }

    fn in_scope(&self, idx: u32) -> bool {
        self.entries.get(&idx).expect("record still referenced").in_scope
    }

    /// Mark inspected; returns true on the first marking of an in-scope
    /// record (the `monitored` counter's increment condition).
    fn mark_monitored(&mut self, idx: u32) -> bool {
        let e = self.entries.get_mut(&idx).expect("record still referenced");
        let first = !e.monitored && e.in_scope;
        e.monitored = true;
        first
    }

    fn retain(&mut self, idx: u32) {
        self.entries.get_mut(&idx).expect("record still referenced").refs += 1;
    }

    fn release(&mut self, idx: u32) {
        let e = self.entries.get_mut(&idx).expect("record still referenced");
        e.refs -= 1;
        if e.refs == 0 {
            self.entries.remove(&idx);
        }
    }
}

struct DeploymentWorld {
    window: RecordWindow,
    tap: TapMode,
    lb: Option<LoadBalancer>,
    /// Routing used when no LB station exists.
    fallback_route: BalanceStrategy,
    sensors: Vec<ServiceStation>,
    sensor_sig: Vec<Option<SignatureEngine>>,
    sensor_ano: Vec<Option<AnomalyEngine>>,
    agents: Option<HostAgentEngine>,
    // Ordered map: `host_impact` sums floats over the values, and the
    // addition order must not depend on a hash seed.
    host_cpus: BTreeMap<Ipv4Addr, HostCpu>,
    analyzers: Vec<ServiceStation>,
    combined: bool,
    monitor: Monitor,
    console: ManagementConsole,
    auto_response: bool,
    sensitivity: Sensitivity,
    data_pool: crate::datapool::DataPoolFilter,
    /// Whether any network-side engine exists. Host-agent-only products
    /// monitor only traffic touching their hosts; everything else is out
    /// of the product's monitoring scope (a host IDS's throughput is
    /// denominated in host data, per Table 2's System Throughput note).
    has_network_engines: bool,
    monitored_set: std::collections::HashSet<Ipv4Addr>,
    // accounting (all incremental: the full trace is never held)
    offered: u64,
    monitored: u64,
    attack_sources: std::collections::HashSet<Ipv4Addr>,
    alert_truths: Vec<Option<GroundTruth>>,
    pool_excluded: u64,
    induced_latency: DurationSummary,
    blocked_attack: u64,
    blocked_benign: u64,
    rr_next: usize,
    telemetry: Telemetry,
    // fault injection
    faults: CompiledFaults,
    fstats: FaultStats,
    /// Detections awaiting an analyzer restart: `(rec, observed, det)`.
    analyzer_replay: Vec<(u32, SimTime, Detection)>,
    /// Alerts awaiting a monitor restart.
    monitor_replay: Vec<(u32, SimTime, Detection)>,
    /// Visible alerts the monitor holds for a crashed manager (1:1c).
    console_replay: Vec<Alert>,
    /// Restart instants already scheduled as [`Ev::Replay`].
    replay_scheduled: Vec<SimTime>,
}

impl DeploymentWorld {
    fn build(product: &IdsProduct, config: &RunConfig, training: Option<&Trace>) -> Self {
        let arch = &product.architecture;
        let mk_station = |name: &'static str, cap: f64, backlog: SimDuration| {
            ServiceStation::new(name, cap, backlog, arch.lethal_drop_ratio, arch.failure)
        };

        let lb = arch.lb_capacity_ops.map(|cap| {
            LoadBalancer::new(
                mk_station("load-balancer", cap, SimDuration::from_millis(20)),
                arch.balance,
                arch.sensors,
            )
        });

        let sensors: Vec<ServiceStation> = (0..arch.sensors)
            .map(|_| mk_station("sensor", arch.sensor_capacity_ops, arch.sensor_backlog))
            .collect();

        let mut sensor_sig: Vec<Option<SignatureEngine>> = (0..arch.sensors)
            .map(|_| product.engines.signature.clone().map(SignatureEngine::standard))
            .collect();
        let mut sensor_ano: Vec<Option<AnomalyEngine>> = (0..arch.sensors)
            .map(|_| product.engines.anomaly.clone().map(AnomalyEngine::new))
            .collect();

        let mut agents = product.engines.host_agents.then(|| {
            HostAgentEngine::new(HostAgentConfig { monitored: config.monitored_hosts.clone() })
        });

        // Train and set sensitivity on every engine instance.
        for engine in sensor_sig.iter_mut().flatten() {
            if let Some(t) = training {
                engine.train(t);
            }
            engine.set_sensitivity(config.sensitivity);
        }
        for engine in sensor_ano.iter_mut().flatten() {
            if let Some(t) = training {
                engine.train(t);
            }
            engine.set_sensitivity(config.sensitivity);
        }
        if let Some(agent) = agents.as_mut() {
            if let Some(t) = training {
                agent.train(t);
            }
            agent.set_sensitivity(config.sensitivity);
        }

        let mut host_cpus = BTreeMap::new();
        for &h in &config.monitored_hosts {
            // 2002-era server: ~500M abstract ops/s, 100 ms scheduling slack.
            let mut cpu = HostCpu::new(500e6, SimDuration::from_millis(100));
            cpu.set_audit_level(config.audit_level);
            host_cpus.insert(h, cpu);
        }

        let analyzers: Vec<ServiceStation> = (0..arch.analyzers.max(1))
            .map(|_| {
                mk_station("analyzer", arch.analyzer_capacity_ops, SimDuration::from_millis(200))
            })
            .collect();

        let monitor = Monitor::new(
            mk_station("monitor", arch.monitor_capacity_ops, SimDuration::from_secs(2)),
            arch.notification_delay,
        );
        let console = ManagementConsole::new(arch.response, arch.response_delay);

        let has_network_engines =
            product.engines.signature.is_some() || product.engines.anomaly.is_some();
        let monitored_set: std::collections::HashSet<Ipv4Addr> =
            config.monitored_hosts.iter().copied().collect();

        Self {
            window: RecordWindow::default(),
            tap: arch.tap,
            lb,
            fallback_route: arch.balance,
            sensors,
            sensor_sig,
            sensor_ano,
            agents,
            host_cpus,
            analyzers,
            combined: arch.combined_sensor_analyzer,
            monitor,
            console,
            auto_response: config.auto_response,
            sensitivity: config.sensitivity,
            data_pool: config.data_pool.clone(),
            has_network_engines,
            monitored_set,
            offered: 0,
            monitored: 0,
            attack_sources: std::collections::HashSet::new(),
            alert_truths: Vec::new(),
            pool_excluded: 0,
            induced_latency: DurationSummary::new(),
            blocked_attack: 0,
            blocked_benign: 0,
            rr_next: 0,
            telemetry: config.telemetry.clone(),
            faults: config
                .faults
                .as_ref()
                .map(|p| p.compile())
                .unwrap_or_else(CompiledFaults::none),
            fstats: FaultStats::default(),
            analyzer_replay: Vec::new(),
            monitor_replay: Vec::new(),
            console_replay: Vec::new(),
            replay_scheduled: Vec::new(),
        }
    }

    /// Admit one trace record into the live window, doing the per-record
    /// accounting the monolithic path used to precompute over the whole
    /// trace: monitoring scope, the offered count, and attack sources (for
    /// collateral-damage attribution).
    fn admit(&mut self, idx: u32, record: TraceRecord) {
        let in_scope = self.has_network_engines
            || self.monitored_set.contains(&record.packet.ip.dst)
            || self.monitored_set.contains(&record.packet.ip.src);
        if in_scope {
            self.offered += 1;
        }
        if record.truth.is_some() {
            self.attack_sources.insert(record.packet.ip.src);
        }
        self.window.insert(idx, record, in_scope);
    }

    fn route(&mut self, packet: &idse_net::Packet) -> usize {
        if let Some(lb) = self.lb.as_mut() {
            return lb.route(packet);
        }
        self.fallback_sensor(packet)
    }

    /// LB-free routing — also the bypass path when an injected fault kills
    /// the (optional, 1c) balancing subprocess.
    fn fallback_sensor(&mut self, packet: &idse_net::Packet) -> usize {
        let n = self.sensors.len();
        match self.fallback_route {
            BalanceStrategy::None => 0,
            BalanceStrategy::StaticPartition => (u32::from(packet.ip.dst) as usize) % n,
            BalanceStrategy::SessionHash => (FlowKey::of(packet).session_hash() as usize) % n,
            BalanceStrategy::RoundRobin => {
                let s = self.rr_next;
                self.rr_next = (self.rr_next + 1) % n;
                s
            }
        }
    }

    /// Offer `rec` to `sensor` at `t`, walking to the next live instance
    /// (the Sensor side of Figure 2's M:M promise) with per-hop retry
    /// backoff when the preferred target is crashed.
    fn offer_to_sensor(&mut self, t: SimTime, rec: u32, sensor: usize, queue: &mut EventQueue<Ev>) {
        let n = self.sensors.len();
        let mut target = None;
        for hop in 0..n {
            let cand = (sensor + hop) % n;
            if !self.faults.is_down(FaultComponent::Sensor(cand as u8), t) {
                target = Some((cand, hop));
                break;
            }
        }
        let Some((cand, hop)) = target else {
            // Every sensor instance is down: the record is lost.
            self.fstats.lost_records += 1;
            self.telemetry.counter(t.as_nanos(), "fault.tap_drop", 1);
            return;
        };
        let mut t = t;
        if hop > 0 {
            let backoff = reroute_backoff(hop);
            self.fstats.rerouted += 1;
            self.fstats.reroute_delay_total += backoff;
            self.telemetry.counter(t.as_nanos(), "fault.reroute", 1);
            t += backoff;
        }
        let cost = self.sensor_cost(cand, &self.window.record(rec).packet);
        match self.sensors[cand].serve(t, cost) {
            ServeOutcome::Done(done) => {
                self.telemetry.span(t.as_nanos(), done.as_nanos(), "stage.sense");
                self.window.retain(rec);
                queue.schedule(done, Ev::SensorDone { sensor: cand as u8, rec });
            }
            _ => {
                // Sensor shed or down: packet unmonitored.
                self.telemetry.counter(t.as_nanos(), "shed.sense", 1);
            }
        }
    }

    fn sensor_cost(&self, sensor: usize, packet: &idse_net::Packet) -> f64 {
        let mut cost = 10.0;
        if let Some(e) = &self.sensor_sig[sensor] {
            cost += e.cost_ops(packet);
        }
        if let Some(e) = &self.sensor_ano[sensor] {
            cost += e.cost_ops(packet);
        }
        cost
    }

    fn dispatch_detections(
        &mut self,
        now: SimTime,
        rec: u32,
        sensor: usize,
        observed: SimTime,
        detections: impl IntoIterator<Item = Detection>,
        queue: &mut EventQueue<Ev>,
    ) {
        for det in detections {
            if self.combined {
                // Analysis runs on the same station as sensing.
                match self.sensors[sensor].serve(now, 400.0) {
                    ServeOutcome::Done(t) => {
                        self.telemetry.span(now.as_nanos(), t.as_nanos(), "stage.analyze");
                        self.window.retain(rec);
                        queue.schedule(t, Ev::AnalyzerDone { rec, observed, det });
                    }
                    _ => {
                        // Analysis backlog shed: detection lost.
                        self.telemetry.counter(now.as_nanos(), "shed.analyze", 1);
                    }
                }
            } else {
                let n = self.analyzers.len();
                let base = sensor % n;
                let mut target = None;
                for hop in 0..n {
                    let cand = (base + hop) % n;
                    if !self.faults.is_down(FaultComponent::Analyzer(cand as u8), now) {
                        target = Some((cand, hop));
                        break;
                    }
                }
                match target {
                    Some((cand, hop)) => {
                        let mut t = now;
                        if hop > 0 {
                            // Sensor M:M Analyzer: the sensor retries the
                            // next live analyzer, paying backoff per hop.
                            let backoff = reroute_backoff(hop);
                            self.fstats.rerouted += 1;
                            self.fstats.reroute_delay_total += backoff;
                            self.telemetry.counter(now.as_nanos(), "fault.reroute", 1);
                            t = now + backoff;
                        }
                        match self.analyzers[cand].serve(t, 400.0) {
                            ServeOutcome::Done(done) => {
                                self.telemetry.span(t.as_nanos(), done.as_nanos(), "stage.analyze");
                                self.window.retain(rec);
                                queue.schedule(done, Ev::AnalyzerDone { rec, observed, det });
                            }
                            _ => {
                                self.telemetry.counter(t.as_nanos(), "shed.analyze", 1);
                            }
                        }
                    }
                    None => {
                        // Every analyzer is down. Bounded buffering until
                        // the earliest restart (state replay); a hang or a
                        // full buffer loses the detection.
                        let restart = (0..n)
                            .filter_map(|i| {
                                self.faults.restart_at(FaultComponent::Analyzer(i as u8), now)
                            })
                            .min();
                        match restart {
                            Some(at) if self.analyzer_replay.len() < REPLAY_LIMIT => {
                                self.window.retain(rec);
                                self.analyzer_replay.push((rec, observed, det));
                                self.fstats.alerts_buffered += 1;
                                self.telemetry.counter(now.as_nanos(), "fault.buffered", 1);
                                self.schedule_replay(at, queue);
                            }
                            _ => {
                                self.fstats.lost_alerts += 1;
                                self.telemetry.counter(now.as_nanos(), "fault.alert_lost", 1);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Schedule a [`Ev::Replay`] at `at` once.
    fn schedule_replay(&mut self, at: SimTime, queue: &mut EventQueue<Ev>) {
        if !self.replay_scheduled.contains(&at) {
            self.replay_scheduled.push(at);
            queue.schedule(at, Ev::Replay);
        }
    }

    /// The management console evaluates its response policy for an alert
    /// made visible at `at`.
    fn console_react(&mut self, at: SimTime, alert: &Alert) {
        let blocked_before = self.console.blocked_sources().len();
        self.console.react(alert);
        let installed = at + self.console.response_delay();
        self.telemetry.span(at.as_nanos(), installed.as_nanos(), "stage.manage");
        if self.console.blocked_sources().len() > blocked_before {
            self.telemetry.counter(installed.as_nanos(), "manage.block", 1);
        }
    }

    /// Monitor-side presentation of a completed analysis, with every
    /// monitor/manager-side fault applied: alert-channel drops, monitor
    /// outage buffering (Analyzer M:1 Monitor), clock skew on the
    /// presentation stamp, and manager-outage alert holding (Monitor 1:1c
    /// Manager).
    fn present_alert(
        &mut self,
        now: SimTime,
        rec: u32,
        observed: SimTime,
        det: Detection,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.faults.alert_channel_down(now) {
            // The analyzer→monitor channel eats the alert silently.
            self.fstats.lost_alerts += 1;
            self.telemetry.counter(now.as_nanos(), "fault.alert_lost", 1);
            return;
        }
        if self.faults.is_down(FaultComponent::Monitor, now) {
            match self.faults.restart_at(FaultComponent::Monitor, now) {
                Some(at) if self.monitor_replay.len() < REPLAY_LIMIT => {
                    self.window.retain(rec);
                    self.monitor_replay.push((rec, observed, det));
                    self.fstats.alerts_buffered += 1;
                    self.telemetry.counter(now.as_nanos(), "fault.buffered", 1);
                    self.schedule_replay(at, queue);
                }
                _ => {
                    self.fstats.lost_alerts += 1;
                    self.telemetry.counter(now.as_nanos(), "fault.alert_lost", 1);
                }
            }
            return;
        }
        let record = self.window.record(rec);
        let truth = record.truth;
        let alert = Alert {
            raised_at: now, // monitor re-stamps on presentation
            observed_at: observed,
            trigger: rec as usize,
            flow: FlowKey::of(&record.packet),
            class_guess: det.class,
            severity: det.severity,
            source: det.source,
            sensor: 0,
            detector: det.detector.into(),
        };
        // Injected clock skew shifts the monitor's presentation clock.
        let skew = self.faults.skew(FaultComponent::Monitor, now);
        if skew > SimDuration::ZERO {
            self.fstats.skewed_alerts += 1;
        }
        match self.monitor.present(now + skew, alert) {
            Some(visible) => {
                // One truth entry per stored alert, in presentation order.
                self.alert_truths.push(truth);
                self.telemetry.span(now.as_nanos(), visible.as_nanos(), "stage.monitor");
                self.telemetry.counter(visible.as_nanos(), "pipeline.alert", 1);
                if self.auto_response {
                    let presented = self.monitor.alerts().last().cloned().expect("just presented");
                    if self.faults.is_down(FaultComponent::Manager, visible) {
                        // Monitor 1:1c Manager: the monitor holds
                        // manager-bound alerts across the outage.
                        match self.faults.restart_at(FaultComponent::Manager, visible) {
                            Some(at) if self.console_replay.len() < REPLAY_LIMIT => {
                                self.console_replay.push(presented);
                                self.fstats.alerts_buffered += 1;
                                self.telemetry.counter(visible.as_nanos(), "fault.buffered", 1);
                                self.schedule_replay(at, queue);
                            }
                            _ => {
                                // The optional manager never returns: the
                                // operator still sees the alert; only the
                                // automated response is lost.
                                self.telemetry.counter(
                                    visible.as_nanos(),
                                    "fault.response_lost",
                                    1,
                                );
                            }
                        }
                    } else {
                        self.console_react(visible, &presented);
                    }
                }
            }
            None => {
                self.telemetry.counter(now.as_nanos(), "shed.monitor", 1);
            }
        }
    }

    /// A restart instant: drain whichever bounded replay buffers' gating
    /// component is back up.
    fn run_replay(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        let analyzers_up = (0..self.analyzers.len())
            .any(|i| !self.faults.is_down(FaultComponent::Analyzer(i as u8), now));
        if !self.analyzer_replay.is_empty() && analyzers_up {
            let buffered = std::mem::take(&mut self.analyzer_replay);
            self.fstats.replayed += buffered.len() as u64;
            self.telemetry.counter(now.as_nanos(), "fault.replay", buffered.len() as u64);
            for (rec, observed, det) in buffered {
                // Re-dispatch on the restarted analyzers; the original
                // sensing instant survives as `observed`.
                self.dispatch_detections(
                    now,
                    rec,
                    rec as usize,
                    observed,
                    std::iter::once(det),
                    queue,
                );
                self.window.release(rec);
            }
        }
        if !self.monitor_replay.is_empty() && !self.faults.is_down(FaultComponent::Monitor, now) {
            let buffered = std::mem::take(&mut self.monitor_replay);
            self.fstats.replayed += buffered.len() as u64;
            self.telemetry.counter(now.as_nanos(), "fault.replay", buffered.len() as u64);
            for (rec, observed, det) in buffered {
                self.present_alert(now, rec, observed, det, queue);
                self.window.release(rec);
            }
        }
        if !self.console_replay.is_empty() && !self.faults.is_down(FaultComponent::Manager, now) {
            let buffered = std::mem::take(&mut self.console_replay);
            self.fstats.replayed += buffered.len() as u64;
            self.telemetry.counter(now.as_nanos(), "fault.replay", buffered.len() as u64);
            for mut alert in buffered {
                // The restarted manager reacts on its own (restart) clock.
                alert.raised_at = now;
                self.console_react(now, &alert);
            }
        }
    }

    fn finish(mut self, finished_at: SimTime) -> PipelineOutcome {
        let monitored = self.monitored;
        let offered = self.offered;
        let blocked_total = self.blocked_attack + self.blocked_benign + self.pool_excluded;
        let missed = offered - monitored - blocked_total.min(offered - monitored);

        let host_impact = if self.host_cpus.is_empty() {
            0.0
        } else {
            self.host_cpus.values().map(|c| c.ids_impact(finished_at)).sum::<f64>()
                / self.host_cpus.len() as f64
        };

        let mut state_bytes = 0;
        for e in self.sensor_sig.iter().flatten() {
            state_bytes += e.state_bytes();
        }
        for e in self.sensor_ano.iter().flatten() {
            state_bytes += e.state_bytes();
        }
        if let Some(a) = &self.agents {
            state_bytes += a.state_bytes();
        }

        let failures = self.sensors.iter().map(|s| s.failures()).sum::<u32>()
            + self.analyzers.iter().map(|s| s.failures()).sum::<u32>()
            + self.lb.as_ref().map(|l| l.station.failures()).unwrap_or(0)
            + self.monitor.station.failures();
        // Injected-fault accounting: recovery counts come straight off the
        // compiled schedule; anything still in a replay buffer at end of
        // run never reached its destination.
        let (crashes, recoveries) = self.faults.crash_recovery_counts(finished_at);
        self.fstats.crashes_seen = crashes;
        self.fstats.recoveries_seen = recoveries;
        let stranded = (self.analyzer_replay.len() + self.monitor_replay.len()) as u64;
        self.fstats.lost_alerts += stranded;
        let fault_down =
            self.faults.outages().iter().any(|o| o.start <= finished_at && finished_at < o.end);
        for o in self.faults.outages() {
            if o.start <= finished_at {
                self.telemetry.span(
                    o.start.as_nanos(),
                    o.end.min(finished_at).as_nanos(),
                    "fault.outage",
                );
            }
        }

        let ended_down = self.sensors.iter().any(|s| s.is_down(finished_at))
            || self.analyzers.iter().any(|s| s.is_down(finished_at))
            || self.lb.as_ref().is_some_and(|l| l.station.is_down(finished_at))
            || fault_down;
        if failures > 0 {
            self.telemetry.counter(
                finished_at.as_nanos(),
                "pipeline.failures",
                u64::from(failures),
            );
        }

        // Collateral damage: blocked sources that never sent attack
        // packets (attack sources were accumulated record by record on
        // admission).
        let collateral = self
            .console
            .blocked_sources()
            .iter()
            .filter(|(src, _)| !self.attack_sources.contains(src))
            .count();

        let alerts = self.monitor.take_alerts();
        debug_assert_eq!(alerts.len(), self.alert_truths.len());
        PipelineOutcome {
            alerts,
            alert_truths: self.alert_truths,
            window_peak: self.window.peak,
            offered,
            monitored,
            missed,
            blocked: (self.blocked_attack, self.blocked_benign),
            pool_excluded: self.pool_excluded,
            collateral_blocked_sources: collateral,
            lb_counters: self.lb.as_ref().map(|l| l.station.counters()),
            sensor_counters: self.sensors.iter().map(|s| s.counters()).collect(),
            analyzer_counters: self.analyzers.iter().map(|s| s.counters()).collect(),
            induced_latency: self.induced_latency,
            failures,
            ended_down,
            host_impact,
            state_bytes,
            fault_stats: self.fstats,
            finished_at,
        }
    }
}

impl World for DeploymentWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
        // Every record-carrying event holds one window reference; release
        // it when the handler finishes, whichever path it took. Follow-up
        // events and replay-buffer slots take their own holds.
        let held = match &event {
            Ev::Arrive(rec)
            | Ev::SensorDone { rec, .. }
            | Ev::AgentDone { rec }
            | Ev::AnalyzerDone { rec, .. } => Some(*rec),
            Ev::Replay => None,
        };
        self.dispatch_event(now, event, queue);
        if let Some(rec) = held {
            self.window.release(rec);
        }
    }
}

impl DeploymentWorld {
    fn dispatch_event(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Arrive(rec) => {
                // Clone the handles out of the window (the payload is
                // shared, not copied) so the stations below can borrow
                // `self` mutably.
                let record = self.window.record(rec);
                let truth = record.truth;
                let packet = record.packet.clone();
                let packet = &packet;
                let in_scope = self.window.in_scope(rec);

                // Perimeter auto-response: blocked sources never reach the
                // protected network (nor the IDS).
                if self.auto_response && self.console.is_blocked(now, packet.ip.src) {
                    if in_scope {
                        if truth.is_some() {
                            self.blocked_attack += 1;
                        } else {
                            self.blocked_benign += 1;
                        }
                    }
                    return;
                }

                // Injected CPU exhaustion: a co-resident workload steals
                // capacity on every monitored host while the window is
                // active (and releases it after).
                if !self.faults.is_empty() {
                    let steal = self.faults.cpu_steal_percent(now);
                    for cpu in self.host_cpus.values_mut() {
                        cpu.set_contention_percent(steal);
                    }
                }

                // Host agents observe from the host vantage, independent of
                // the network sensor path.
                if let Some(agent) = self.agents.as_mut() {
                    let cost = agent.cost_ops(packet);
                    if cost > 0.0 {
                        let charge_host = if self.host_cpus.contains_key(&packet.ip.dst) {
                            Some(packet.ip.dst)
                        } else if self.host_cpus.contains_key(&packet.ip.src) {
                            Some(packet.ip.src)
                        } else {
                            None
                        };
                        if let Some(h) = charge_host {
                            let cpu = self.host_cpus.get_mut(&h).expect("host exists");
                            match cpu.execute_ids(now, cost) {
                                idse_sim::host::CpuVerdict::Completed { at } => {
                                    self.window.retain(rec);
                                    queue.schedule(at, Ev::AgentDone { rec });
                                }
                                idse_sim::host::CpuVerdict::Overloaded => {
                                    // Overloaded host: the agent misses this event.
                                    self.telemetry.counter(now.as_nanos(), "shed.host_agent", 1);
                                }
                            }
                            cpu.sample_telemetry(&self.telemetry, now);
                        }
                    }
                }

                if self.sensors.is_empty() || !in_scope {
                    return;
                }
                // Data-pool selection: out-of-pool packets are neither
                // inspected nor charged (Table 2's selectability, made
                // functional). They count as unmonitored-by-choice, not
                // as loss.
                if !self.data_pool.selects(packet) {
                    self.pool_excluded += 1;
                    return;
                }
                // Injected tap faults: a partition loses the record
                // outright; a degraded feed flips a per-record coin and
                // delivers survivors late.
                let mut t0 = now;
                if !self.faults.is_empty() {
                    if self.faults.partitioned(now) || self.faults.degrade_drops(now, rec) {
                        self.fstats.lost_records += 1;
                        self.telemetry.counter(now.as_nanos(), "fault.tap_drop", 1);
                        return;
                    }
                    if let Some((_, extra)) = self.faults.degrade(now) {
                        t0 = now + extra;
                    }
                }
                let lb_down =
                    self.lb.is_some() && self.faults.is_down(FaultComponent::LoadBalancer, t0);
                let sensor =
                    if lb_down { self.fallback_sensor(packet) } else { self.route(packet) };
                // The LB station (if any) is the in-line element.
                let deliver_at = if lb_down {
                    // 1c:M fail-open: with the optional balancing
                    // subprocess dead, the tap feeds the sensors directly
                    // over the static fallback routing.
                    self.fstats.lb_bypassed += 1;
                    self.telemetry.counter(t0.as_nanos(), "fault.lb_bypass", 1);
                    Some(t0)
                } else if let Some(lb) = self.lb.as_mut() {
                    let cost = 20.0 + 0.05 * packet.payload.len() as f64;
                    match lb.station.serve(t0, cost) {
                        ServeOutcome::Done(t) => {
                            if self.tap == TapMode::Inline {
                                self.induced_latency.record(t.saturating_since(now));
                            }
                            self.telemetry.span(t0.as_nanos(), t.as_nanos(), "stage.load_balance");
                            Some(t)
                        }
                        _ => {
                            // LB shed: packet unmonitored (fail-open).
                            self.telemetry.counter(t0.as_nanos(), "shed.load_balance", 1);
                            None
                        }
                    }
                } else {
                    Some(t0)
                };
                if let Some(t) = deliver_at {
                    self.offer_to_sensor(t, rec, sensor, queue);
                }
            }

            Ev::SensorDone { sensor, rec } => {
                let record = self.window.record(rec);
                let at = record.at;
                let packet = record.packet.clone();
                // For host-agent-only products the network station is just
                // the report aggregation point — passing it is not
                // inspection.
                if self.has_network_engines && self.window.mark_monitored(rec) {
                    self.monitored += 1;
                }
                let sensor = sensor as usize;
                // Match latency: trace-record timestamp → engines run.
                self.telemetry.span(at.as_nanos(), now.as_nanos(), "engine.match");
                let mut detections = Vec::new();
                if let Some(e) = self.sensor_sig[sensor].as_mut() {
                    detections.extend(e.inspect(now, &packet));
                }
                if let Some(e) = self.sensor_ano[sensor].as_mut() {
                    detections.extend(e.inspect(now, &packet));
                }
                self.dispatch_detections(now, rec, sensor, now, detections, queue);
            }

            Ev::AgentDone { rec } => {
                let packet = self.window.record(rec).packet.clone();
                if self.window.mark_monitored(rec) {
                    self.monitored += 1;
                }
                let detections = match self.agents.as_mut() {
                    Some(agent) => agent.inspect(now, &packet),
                    None => Vec::new(),
                };
                // Agent reports go to analyzer 0 (the aggregation point).
                if !detections.is_empty() {
                    let sensor = 0;
                    self.dispatch_detections(now, rec, sensor, now, detections, queue);
                }
            }

            Ev::AnalyzerDone { rec, observed, det } => {
                self.present_alert(now, rec, observed, det, queue);
                let _ = self.sensitivity;
            }

            Ev::Replay => {
                self.run_replay(now, queue);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::products::ProductId;
    use idse_attacks::{Campaign, CampaignConfig, Scenario};
    use idse_sim::SimDuration;
    use idse_traffic::{ArrivalProcess, BackgroundGenerator, GeneratorConfig, SiteProfile};

    fn benign(seed: u64, secs: u64, rate: f64) -> Trace {
        BackgroundGenerator::new(GeneratorConfig::new(
            SiteProfile::ecommerce_web(),
            ArrivalProcess::Poisson { rate },
            SimDuration::from_secs(secs),
            seed,
        ))
        .generate()
    }

    fn mixed(seed: u64, secs: u64) -> Trace {
        let mut t = benign(seed, secs, 25.0);
        let cfg = CampaignConfig::new(SimDuration::from_secs(secs), seed ^ 0xa77ac);
        let c = Campaign::standard_mix(&SiteProfile::ecommerce_web(), &cfg);
        t.merge(c.generate(&cfg));
        t
    }

    fn servers() -> Vec<Ipv4Addr> {
        let block: idse_net::Cidr = "10.0.1.0/24".parse().unwrap();
        (1..=6).map(|i| block.host(i)).collect()
    }

    #[test]
    fn benign_run_produces_few_alerts_and_no_loss() {
        let product = IdsProduct::model(ProductId::NidSentry);
        let runner =
            PipelineRunner::new(product, RunConfig::default()).with_training(benign(1, 10, 20.0));
        let out = runner.run(&benign(2, 10, 20.0));
        assert_eq!(out.offered, out.monitored, "moderate load must be lossless");
        assert_eq!(out.failures, 0);
        let ratio = out.alerts.len() as f64 / out.offered as f64;
        assert!(ratio < 0.01, "benign alert ratio {ratio}");
    }

    #[test]
    fn attacks_generate_alerts() {
        let product = IdsProduct::model(ProductId::NidSentry);
        let runner = PipelineRunner::new(
            product,
            RunConfig { sensitivity: Sensitivity::new(0.7), ..RunConfig::default() },
        )
        .with_training(benign(1, 10, 20.0));
        let out = runner.run(&mixed(3, 30));
        assert!(!out.alerts.is_empty(), "campaign must trigger alerts");
        // Alerts attribute to attack packets (mostly).
        let trace = mixed(3, 30);
        let attributed =
            out.alerts.iter().filter(|a| trace.records()[a.trigger].truth.is_some()).count();
        assert!(attributed > 0);
    }

    #[test]
    fn chunked_session_is_byte_identical_to_monolithic() {
        let trace = mixed(3, 30);
        let product = IdsProduct::model(ProductId::NidSentry);
        let mk = || {
            PipelineRunner::new(
                product.clone(),
                RunConfig { sensitivity: Sensitivity::new(0.7), ..RunConfig::default() },
            )
            .with_training(benign(1, 10, 20.0))
        };
        let mono = mk().run(&trace);
        assert!(!mono.alerts.is_empty());
        for chunk in [1usize, 97, 4096] {
            let mut session = mk().session();
            for c in trace.records().chunks(chunk) {
                session.push_chunk(c.iter().cloned());
            }
            let out = session.finish();
            assert_eq!(out.alerts, mono.alerts, "chunk size {chunk} changed the alerts");
            assert_eq!(out.alert_truths, mono.alert_truths);
            assert_eq!(out.offered, mono.offered);
            assert_eq!(out.monitored, mono.monitored);
            assert_eq!(out.missed, mono.missed);
            assert_eq!(out.blocked, mono.blocked);
            assert_eq!(out.finished_at, mono.finished_at);
            // Small chunks keep the live window far below the trace length.
            if chunk < trace.len() / 4 {
                assert!(
                    out.window_peak < trace.len() / 2,
                    "window peak {} vs trace {}",
                    out.window_peak,
                    trace.len()
                );
            }
        }
    }

    #[test]
    fn alert_truths_join_alerts_to_ground_truth() {
        let trace = mixed(7, 30);
        let product = IdsProduct::model(ProductId::NidSentry);
        let out = PipelineRunner::new(
            product,
            RunConfig { sensitivity: Sensitivity::new(0.7), ..RunConfig::default() },
        )
        .with_training(benign(1, 10, 20.0))
        .run(&trace);
        assert_eq!(out.alerts.len(), out.alert_truths.len());
        for (alert, truth) in out.alerts.iter().zip(out.alert_truths.iter()) {
            assert_eq!(trace.records()[alert.trigger].truth, *truth);
        }
    }

    #[test]
    fn anomaly_product_requires_training() {
        let product = IdsProduct::model(ProductId::FlowHunter);
        // No training: the anomaly engine stays silent.
        let runner = PipelineRunner::new(product.clone(), RunConfig::default());
        let out = runner.run(&mixed(4, 20));
        assert!(out.alerts.is_empty());
        // With training it detects.
        let runner = PipelineRunner::new(
            product,
            RunConfig { sensitivity: Sensitivity::new(0.8), ..RunConfig::default() },
        )
        .with_training(benign(5, 15, 25.0));
        let out = runner.run(&mixed(4, 20));
        assert!(!out.alerts.is_empty());
    }

    #[test]
    fn host_agents_charge_host_cpu() {
        let product = IdsProduct::model(ProductId::AgentWatch);
        let cfg = RunConfig {
            monitored_hosts: servers(),
            sensitivity: Sensitivity::new(0.6),
            ..RunConfig::default()
        };
        let runner = PipelineRunner::new(product, cfg).with_training(benign(1, 10, 20.0));
        let out = runner.run(&benign(2, 10, 30.0));
        assert!(out.host_impact > 0.0, "agents must consume host CPU");
        assert!(out.host_impact < 0.5, "impact {} should be a modest fraction", out.host_impact);
    }

    #[test]
    fn inline_product_induces_latency_mirrored_does_not() {
        let fh = IdsProduct::model(ProductId::FlowHunter);
        let runner =
            PipelineRunner::new(fh, RunConfig::default()).with_training(benign(1, 10, 20.0));
        let out = runner.run(&benign(2, 10, 20.0));
        assert!(out.induced_latency.count() > 0);
        assert!(out.induced_latency.mean() > SimDuration::ZERO);

        let nid = IdsProduct::model(ProductId::NidSentry);
        let runner = PipelineRunner::new(nid, RunConfig::default());
        let out = runner.run(&benign(2, 10, 20.0));
        assert_eq!(out.induced_latency.count(), 0, "mirrored tap induces nothing");
    }

    #[test]
    fn overload_causes_loss_and_eventually_failure() {
        let product = IdsProduct::model(ProductId::AgentWatch); // weakest station
                                                                // A dense SYN flood at extreme rate against a monitored host.
        let flood = idse_attacks::flood::SynFlood {
            rate: 2_000_000.0,
            duration: SimDuration::from_secs(1),
            ..idse_attacks::flood::SynFlood::new(Ipv4Addr::new(10, 0, 1, 1))
        };
        let mut rng = idse_sim::RngStream::derive(9, "lethal");
        let trace = flood.generate(SimTime::ZERO, 1, &mut rng);
        let cfg = RunConfig { monitored_hosts: servers(), ..RunConfig::default() };
        let runner = PipelineRunner::new(product, cfg);
        let out = runner.run(&trace);
        assert!(out.loss_ratio() > 0.25, "loss {}", out.loss_ratio());
        assert!(out.failures > 0, "extreme overload must trip the failure behavior");
        assert!(out.ended_down, "AgentWatch hangs and stays down");
    }

    #[test]
    fn data_pool_filter_trades_cost_for_blindness() {
        // The paper's cluster use case: exclude intra-cluster traffic from
        // the pool. Inspection load falls; attacks that stay inside the
        // trust domain become invisible — both effects measurable.
        let product = IdsProduct::model(ProductId::FlowHunter);
        let cluster_profile = idse_traffic::SiteProfile::realtime_cluster();
        let training = BackgroundGenerator::new(GeneratorConfig::new(
            cluster_profile.clone(),
            ArrivalProcess::Poisson { rate: 20.0 },
            SimDuration::from_secs(10),
            61,
        ))
        .generate();
        let mut test = BackgroundGenerator::new(GeneratorConfig::new(
            cluster_profile.clone(),
            ArrivalProcess::Poisson { rate: 20.0 },
            SimDuration::from_secs(15),
            62,
        ))
        .generate();
        // An intra-domain trust exploit.
        let te = idse_attacks::trust::TrustExploit::new(
            cluster_profile.clients.host(3),
            cluster_profile.clients.host(9),
        );
        let mut rng = idse_sim::RngStream::derive(63, "te");
        test.merge(idse_attacks::Scenario::generate(&te, SimTime::from_secs(2), 1, &mut rng));

        let run = |pool: crate::datapool::DataPoolFilter| {
            let cfg = RunConfig {
                sensitivity: Sensitivity::new(0.9),
                data_pool: pool,
                ..RunConfig::default()
            };
            PipelineRunner::new(product.clone(), cfg).with_training(training.clone()).run(&test)
        };
        let full = run(crate::datapool::DataPoolFilter::everything());
        let boundary = run(crate::datapool::DataPoolFilter::boundary_of(cluster_profile.clients));
        assert_eq!(full.pool_excluded, 0);
        assert!(boundary.pool_excluded > 0, "intra-domain traffic must be carved out");
        // Sensing load falls with the pool.
        let load = |o: &PipelineOutcome| o.sensor_counters.iter().map(|c| c.offered).sum::<u64>();
        assert!(load(&boundary) < load(&full));
        // The intra-domain attack is visible only in the full pool.
        let saw_trust = |o: &PipelineOutcome| {
            o.alerts.iter().any(|a| {
                test.records()[a.trigger]
                    .truth
                    .is_some_and(|t| t.class == idse_net::trace::AttackClass::TrustExploit)
            })
        };
        assert!(saw_trust(&full), "full pool sees the trust exploit");
        assert!(!saw_trust(&boundary), "the carve-out is blind to it");
    }

    #[test]
    fn telemetry_observes_all_stages_without_changing_outcomes() {
        use idse_telemetry::{summary::summarize, MemorySink, Telemetry};
        let product = IdsProduct::model(ProductId::GuardSecure);
        let base_cfg = RunConfig {
            sensitivity: Sensitivity::new(0.7),
            monitored_hosts: servers(),
            auto_response: true,
            ..RunConfig::default()
        };
        let plain = PipelineRunner::new(product.clone(), base_cfg.clone())
            .with_training(benign(1, 10, 20.0))
            .run(&mixed(3, 30));
        let sink = MemorySink::new(1 << 16);
        let cfg = RunConfig { telemetry: Telemetry::new(sink.clone()), ..base_cfg };
        let observed =
            PipelineRunner::new(product, cfg).with_training(benign(1, 10, 20.0)).run(&mixed(3, 30));
        // Observation must not perturb the run.
        assert_eq!(plain.alerts.len(), observed.alerts.len());
        assert_eq!(plain.monitored, observed.monitored);
        assert_eq!(plain.missed, observed.missed);
        assert_eq!(plain.blocked, observed.blocked);

        let s = summarize(&sink.events());
        for stage in ["stage.sense", "stage.analyze", "stage.monitor", "stage.manage"] {
            assert!(s.span(stage).is_some(), "{stage} missing from summary");
        }
        assert!(s.span("engine.match").is_some());
        assert!(s.counter("pipeline.alert").is_some());

        // The load-balanced product also exposes the fifth stage.
        let lb_sink = MemorySink::new(1 << 16);
        let cfg = RunConfig { telemetry: Telemetry::new(lb_sink.clone()), ..RunConfig::default() };
        PipelineRunner::new(IdsProduct::model(ProductId::FlowHunter), cfg)
            .with_training(benign(1, 10, 20.0))
            .run(&benign(2, 10, 20.0));
        let s = summarize(&lb_sink.events());
        assert!(s.span("stage.load_balance").is_some(), "LB stage missing");
    }

    mod faults {
        use super::*;
        use idse_faults::{FaultComponent, FaultKind, FaultPlan};

        fn run_with(plan: Option<FaultPlan>) -> PipelineOutcome {
            let product = IdsProduct::model(ProductId::NidSentry);
            let cfg = RunConfig {
                sensitivity: Sensitivity::new(0.7),
                faults: plan,
                ..RunConfig::default()
            };
            PipelineRunner::new(product, cfg).with_training(benign(1, 10, 20.0)).run(&mixed(3, 30))
        }

        #[test]
        fn unfaulted_runs_report_quiet_stats() {
            let out = run_with(None);
            assert!(out.fault_stats.is_quiet());
            assert_eq!(out.fault_stats, FaultStats::default());
        }

        #[test]
        fn monitor_outage_buffers_alerts_and_replays_on_restart() {
            let baseline = run_with(None);
            let plan = FaultPlan::new("monitor-blink").with(
                SimTime::from_secs(5),
                FaultKind::Crash {
                    component: FaultComponent::Monitor,
                    restart_after: Some(SimDuration::from_secs(10)),
                },
            );
            let out = run_with(Some(plan));
            assert!(out.fault_stats.alerts_buffered > 0, "outage window must buffer");
            assert!(out.fault_stats.replayed > 0, "restart must replay the buffer");
            assert_eq!(out.fault_stats.crashes_seen, 1);
            assert_eq!(out.fault_stats.recoveries_seen, 1);
            assert!(!out.ended_down, "recovered run must not end down");
            // Buffering holds alerts; the bounded buffer may lose some,
            // but the recovered pipeline keeps most of the detections.
            assert!(!out.alerts.is_empty());
            assert!(
                out.alerts.len() + out.fault_stats.lost_alerts as usize
                    >= baseline.alerts.len() / 2
            );
        }

        #[test]
        fn monitor_hang_loses_alerts_and_ends_down() {
            let plan = FaultPlan::new("monitor-hang").with(
                SimTime::ZERO,
                FaultKind::Crash { component: FaultComponent::Monitor, restart_after: None },
            );
            let out = run_with(Some(plan));
            assert!(out.alerts.is_empty(), "a hung monitor presents nothing");
            assert!(out.fault_stats.lost_alerts > 0);
            assert!(out.ended_down);
            assert_eq!(out.fault_stats.recoveries_seen, 0);
        }

        #[test]
        fn tap_partition_loses_records() {
            let baseline = run_with(None);
            let plan = FaultPlan::new("tap-partition").with(
                SimTime::from_secs(5),
                FaultKind::LinkPartition { duration: SimDuration::from_secs(10) },
            );
            let out = run_with(Some(plan));
            assert!(out.fault_stats.lost_records > 0, "partition must eat records");
            assert!(out.monitored < baseline.monitored);
        }

        #[test]
        fn lb_kill_bypasses_and_detection_survives() {
            // FlowHunter deploys the optional (1c) load balancer.
            let product = IdsProduct::model(ProductId::FlowHunter);
            let plan = FaultPlan::new("lb-kill").with(
                SimTime::ZERO,
                FaultKind::Crash { component: FaultComponent::LoadBalancer, restart_after: None },
            );
            let cfg = RunConfig {
                sensitivity: Sensitivity::new(0.8),
                faults: Some(plan),
                ..RunConfig::default()
            };
            let out = PipelineRunner::new(product, cfg)
                .with_training(benign(5, 15, 25.0))
                .run(&mixed(4, 20));
            assert!(out.fault_stats.lb_bypassed > 0, "dead LB must be bypassed");
            assert!(!out.alerts.is_empty(), "fail-open keeps detection alive");
        }

        #[test]
        fn sensor_crash_reroutes_to_live_instance() {
            // GuardSecure fields several sensors; kill the first for a
            // while and watch records hop to its neighbors.
            let product = IdsProduct::model(ProductId::GuardSecure);
            let plan = FaultPlan::new("sensor-kill").with(
                SimTime::from_secs(2),
                FaultKind::Crash {
                    component: FaultComponent::Sensor(0),
                    restart_after: Some(SimDuration::from_secs(20)),
                },
            );
            let cfg = RunConfig {
                sensitivity: Sensitivity::new(0.7),
                faults: Some(plan),
                ..RunConfig::default()
            };
            let out = PipelineRunner::new(product, cfg)
                .with_training(benign(1, 10, 20.0))
                .run(&mixed(3, 30));
            assert!(out.fault_stats.rerouted > 0, "records must hop to a live sensor");
            assert!(out.fault_stats.mean_reroute() > SimDuration::ZERO);
            assert!(!out.alerts.is_empty(), "rerouted records still detect");
        }

        #[test]
        fn faulted_runs_replay_byte_identically() {
            let plan = || {
                FaultPlan::new("replay-check")
                    .with(
                        SimTime::from_secs(3),
                        FaultKind::LinkDegrade {
                            loss_per_mille: 300,
                            extra_latency: SimDuration::from_millis(2),
                            duration: SimDuration::from_secs(8),
                        },
                    )
                    .with(
                        SimTime::from_secs(6),
                        FaultKind::Crash {
                            component: FaultComponent::Monitor,
                            restart_after: Some(SimDuration::from_secs(5)),
                        },
                    )
            };
            let a = run_with(Some(plan()));
            let b = run_with(Some(plan()));
            assert_eq!(a.alerts, b.alerts);
            assert_eq!(a.fault_stats, b.fault_stats);
            assert_eq!(a.monitored, b.monitored);
            assert_eq!(a.missed, b.missed);
            assert!(!a.fault_stats.is_quiet());
        }
    }

    #[test]
    fn auto_response_blocks_attackers() {
        let product = IdsProduct::model(ProductId::GuardSecure); // has firewall
        let cfg = RunConfig {
            sensitivity: Sensitivity::new(0.6),
            monitored_hosts: servers(),
            auto_response: true,
            ..RunConfig::default()
        };
        let runner = PipelineRunner::new(product, cfg).with_training(benign(1, 10, 20.0));
        let out = runner.run(&mixed(6, 40));
        assert!(out.blocked.0 > 0, "sustained attacks should get their sources blocked");
    }
}
