//! The five IDS subprocess components (paper Figure 1).
//!
//! Each component is a finite-capacity service station: work serializes at
//! a configured ops/second rate, a bounded virtual backlog sheds load when
//! exceeded, and sustained overload trips the component's *failure
//! behavior* — the thing the **Error Reporting and Recovery** metric
//! grades and the **Network Lethal Dose** search hunts for.

use crate::alert::Alert;
use idse_sim::stats::StageCounters;
use idse_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// How the IDS taps the network (paper §2.2: "Load balancers may be
/// in-line … or all traffic may be mirrored to it").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TapMode {
    /// The IDS sits in the traffic path: its processing delays delivery
    /// (induced latency), and its failure can block traffic.
    Inline,
    /// Traffic is port-mirrored: zero induced latency, but mirror-drop
    /// under overload means missed packets.
    Mirrored,
}

/// What a component does when overload kills it (paper's Error Reporting
/// and Recovery anchors: hang / cold reboot / service restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureBehavior {
    /// Low score: hangs indefinitely, no notification.
    Hang,
    /// Average score: the whole machine cold-reboots; down for the given
    /// period, failure logged but reported late.
    ColdReboot {
        /// Reboot time.
        downtime: SimDuration,
    },
    /// High score: the service restarts; down briefly and the failure is
    /// reported in near real time through the alert channel.
    RestartService {
        /// Restart time.
        downtime: SimDuration,
    },
}

impl FailureBehavior {
    /// Whether recovery ever happens.
    pub fn recovers(self) -> bool {
        !matches!(self, FailureBehavior::Hang)
    }

    /// Whether the failure is reported through the alert channel.
    pub fn reports_failure(self) -> bool {
        matches!(self, FailureBehavior::RestartService { .. })
    }

    /// Downtime duration (infinite for hang).
    pub fn downtime(self) -> SimDuration {
        match self {
            FailureBehavior::Hang => SimDuration::MAX,
            FailureBehavior::ColdReboot { downtime }
            | FailureBehavior::RestartService { downtime } => downtime,
        }
    }
}

/// Outcome of offering work to a station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Work completes at the given time.
    Done(SimTime),
    /// Backlog full — work shed.
    Dropped,
    /// The component is failed/down; work silently lost.
    Failed,
}

/// A finite-capacity FIFO service station with overload-triggered failure.
#[derive(Debug, Clone)]
pub struct ServiceStation {
    /// Name for diagnostics.
    pub name: &'static str,
    capacity_ops: f64,
    max_backlog: SimDuration,
    busy_until: SimTime,
    counters: StageCounters,
    /// Offered/dropped within the current one-second bucket.
    bucket: (u64, u32, u32),
    /// Fraction of a second's offered work that, if shed, kills the
    /// component (the lethal-dose trigger).
    lethal_drop_ratio: f64,
    behavior: FailureBehavior,
    down_until: Option<SimTime>,
    failures: u32,
    ops_done: f64,
}

impl ServiceStation {
    /// A station retiring `capacity_ops` per second, shedding work beyond
    /// `max_backlog`, failing per `behavior` once the shed fraction within
    /// one second exceeds `lethal_drop_ratio` (with at least
    /// [`Self::LETHAL_MIN_OFFERED`] offers in that second).
    pub fn new(
        name: &'static str,
        capacity_ops: f64,
        max_backlog: SimDuration,
        lethal_drop_ratio: f64,
        behavior: FailureBehavior,
    ) -> Self {
        assert!(capacity_ops > 0.0, "station capacity must be positive");
        assert!(
            lethal_drop_ratio > 0.0 && lethal_drop_ratio <= 1.0,
            "lethal drop ratio must be in (0, 1]"
        );
        Self {
            name,
            capacity_ops,
            max_backlog,
            busy_until: SimTime::ZERO,
            counters: StageCounters::default(),
            bucket: (0, 0, 0),
            lethal_drop_ratio,
            behavior,
            down_until: None,
            failures: 0,
            ops_done: 0.0,
        }
    }

    /// Minimum offers within a second before the lethal trigger can arm
    /// (keeps a lone drop on an idle station from counting as a dose).
    pub const LETHAL_MIN_OFFERED: u32 = 1000;

    /// Offer `ops` of work at `now`.
    pub fn serve(&mut self, now: SimTime, ops: f64) -> ServeOutcome {
        self.counters.offered += 1;
        if let Some(until) = self.down_until {
            if now < until {
                self.counters.dropped += 1;
                return ServeOutcome::Failed;
            }
            // Recovered: backlog was lost in the failure.
            self.down_until = None;
            self.busy_until = now;
            self.bucket = (0, 0, 0);
        }
        // Roll the one-second accounting bucket.
        let second = now.as_nanos() / 1_000_000_000;
        if self.bucket.0 != second {
            self.bucket = (second, 0, 0);
        }
        self.bucket.1 += 1;
        let backlog = self.busy_until.saturating_since(now);
        if backlog > self.max_backlog {
            self.counters.dropped += 1;
            self.bucket.2 += 1;
            if self.bucket.1 >= Self::LETHAL_MIN_OFFERED
                && f64::from(self.bucket.2) / f64::from(self.bucket.1) > self.lethal_drop_ratio
            {
                self.fail(now);
            }
            return ServeOutcome::Dropped;
        }
        let start = self.busy_until.max(now);
        let done = start + SimDuration::from_secs_f64(ops / self.capacity_ops);
        self.busy_until = done;
        self.counters.processed += 1;
        self.ops_done += ops;
        ServeOutcome::Done(done)
    }

    fn fail(&mut self, now: SimTime) {
        self.failures += 1;
        self.down_until = Some(match self.behavior {
            FailureBehavior::Hang => SimTime::MAX,
            b => now + b.downtime(),
        });
    }

    /// Whether the station is currently down.
    pub fn is_down(&self, now: SimTime) -> bool {
        self.down_until.is_some_and(|t| now < t)
    }

    /// Times the station has failed.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Configured failure behavior.
    pub fn behavior(&self) -> FailureBehavior {
        self.behavior
    }

    /// Work counters.
    pub fn counters(&self) -> StageCounters {
        self.counters
    }

    /// Mean utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        (self.ops_done / self.capacity_ops / span).min(1.0)
    }

    /// Configured capacity in ops/second.
    pub fn capacity_ops(&self) -> f64 {
        self.capacity_ops
    }
}

/// Load-balancing strategy (paper §2.2 and the Scalable Load-balancing
/// metric's anchors: none / static placement / intelligent dynamic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalanceStrategy {
    /// No balancing: everything goes to sensor 0.
    None,
    /// Static: sensors own address partitions (placement by subnet).
    StaticPartition,
    /// Session-aware hashing: both directions of a connection reach the
    /// same sensor, load spreads across all sensors.
    SessionHash,
    /// Naive per-packet round robin — spreads load but breaks session
    /// affinity (the ablation case for the session-awareness requirement).
    RoundRobin,
}

/// The load-balancing subprocess.
#[derive(Debug)]
pub struct LoadBalancer {
    /// Service station (in-line LBs add latency through it).
    pub station: ServiceStation,
    strategy: BalanceStrategy,
    sensors: usize,
    rr_next: usize,
}

impl LoadBalancer {
    /// A balancer over `sensors` downstream sensors.
    pub fn new(station: ServiceStation, strategy: BalanceStrategy, sensors: usize) -> Self {
        assert!(sensors > 0, "a balancer needs at least one sensor");
        Self { station, strategy, sensors, rr_next: 0 }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> BalanceStrategy {
        self.strategy
    }

    /// Pick the sensor for `packet`.
    pub fn route(&mut self, packet: &idse_net::Packet) -> usize {
        match self.strategy {
            BalanceStrategy::None => 0,
            BalanceStrategy::StaticPartition => {
                // Partition by destination address (placement by subnet).
                (u32::from(packet.ip.dst) as usize) % self.sensors
            }
            BalanceStrategy::SessionHash => {
                (idse_net::FlowKey::of(packet).session_hash() as usize) % self.sensors
            }
            BalanceStrategy::RoundRobin => {
                let s = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.sensors;
                s
            }
        }
    }

    /// Number of downstream sensors.
    pub fn sensor_count(&self) -> usize {
        self.sensors
    }
}

/// The monitoring subprocess: the operator-facing alert sink.
#[derive(Debug)]
pub struct Monitor {
    /// Alert-processing station.
    pub station: ServiceStation,
    alerts: Vec<Alert>,
    /// Extra delay between analysis verdict and operator visibility
    /// (console refresh, notification path).
    notification_delay: SimDuration,
}

impl Monitor {
    /// A monitor with the given processing station and notification delay.
    pub fn new(station: ServiceStation, notification_delay: SimDuration) -> Self {
        Self { station, alerts: Vec::new(), notification_delay }
    }

    /// Offer an alert for presentation at `now`; returns when the operator
    /// sees it (if the monitor keeps up).
    pub fn present(&mut self, now: SimTime, mut alert: Alert) -> Option<SimTime> {
        match self.station.serve(now, 200.0) {
            ServeOutcome::Done(t) => {
                let visible = t + self.notification_delay;
                alert.raised_at = visible;
                self.alerts.push(alert);
                Some(visible)
            }
            _ => None,
        }
    }

    /// Alerts the operator has seen.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Drain alerts (for the evaluation harness).
    pub fn take_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.alerts)
    }
}

/// Automated response capabilities of the management console (Table 3's
/// Firewall/Router/SNMP Interaction metrics).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ResponseCapabilities {
    /// Can push block entries to a firewall.
    pub firewall: bool,
    /// Can redirect traffic at a router (e.g. to a honeypot).
    pub router: bool,
    /// Can emit SNMP traps.
    pub snmp: bool,
}

/// The managing subprocess: configuration plus automated response.
#[derive(Debug)]
pub struct ManagementConsole {
    caps: ResponseCapabilities,
    /// Latency from alert visibility to filter installation.
    response_delay: SimDuration,
    /// Sources blocked at the perimeter, with install time.
    blocked: Vec<(Ipv4Addr, SimTime)>,
    blocked_set: HashSet<Ipv4Addr>,
    snmp_traps: u32,
}

impl ManagementConsole {
    /// A console with the given capabilities and response delay.
    pub fn new(caps: ResponseCapabilities, response_delay: SimDuration) -> Self {
        Self {
            caps,
            response_delay,
            blocked: Vec::new(),
            blocked_set: HashSet::new(),
            snmp_traps: 0,
        }
    }

    /// Capabilities.
    pub fn capabilities(&self) -> ResponseCapabilities {
        self.caps
    }

    /// Latency from alert visibility to filter installation.
    pub fn response_delay(&self) -> SimDuration {
        self.response_delay
    }

    /// React to a visible alert: block the offending source (if a firewall
    /// is attached) and emit an SNMP trap. Only High/Critical alerts
    /// trigger blocking — the policy maps threats to automated actions.
    pub fn react(&mut self, alert: &Alert) {
        if alert.severity >= crate::alert::Severity::High {
            if self.caps.snmp {
                self.snmp_traps += 1;
            }
            if self.caps.firewall {
                let src = alert.flow.src;
                if self.blocked_set.insert(src) {
                    self.blocked.push((src, alert.raised_at + self.response_delay));
                }
            }
        }
    }

    /// Whether `src` is blocked as of `now`.
    pub fn is_blocked(&self, now: SimTime, src: Ipv4Addr) -> bool {
        self.blocked_set.contains(&src) && self.blocked.iter().any(|&(a, t)| a == src && now >= t)
    }

    /// All blocked sources with install times.
    pub fn blocked_sources(&self) -> &[(Ipv4Addr, SimTime)] {
        &self.blocked
    }

    /// SNMP traps emitted.
    pub fn snmp_traps(&self) -> u32 {
        self.snmp_traps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{DetectionSource, Severity};
    use idse_net::packet::{IpProtocol, Ipv4Header, TcpFlags, TcpHeader};
    use idse_net::{FlowKey, Packet};

    fn station(behavior: FailureBehavior) -> ServiceStation {
        ServiceStation::new("test", 1000.0, SimDuration::from_millis(10), 0.5, behavior)
    }

    #[test]
    fn station_serves_fifo() {
        let mut s = station(FailureBehavior::Hang);
        match s.serve(SimTime::ZERO, 100.0) {
            ServeOutcome::Done(t) => assert_eq!(t, SimTime::from_millis(100)),
            _ => panic!("must serve"),
        }
    }

    #[test]
    fn station_sheds_beyond_backlog() {
        let mut s =
            station(FailureBehavior::RestartService { downtime: SimDuration::from_secs(1) });
        // 100 ops = 100 ms service; backlog bound 10 ms.
        assert!(matches!(s.serve(SimTime::ZERO, 100.0), ServeOutcome::Done(_)));
        assert!(matches!(s.serve(SimTime::ZERO, 100.0), ServeOutcome::Dropped));
        assert_eq!(s.counters().dropped, 1);
    }

    #[test]
    fn sustained_overload_trips_failure_then_recovers() {
        let mut s =
            station(FailureBehavior::RestartService { downtime: SimDuration::from_secs(1) });
        s.serve(SimTime::ZERO, 10_000.0); // 10 s of work: station saturated
                                          // A lethal second: >1000 offers, nearly all shed.
        for i in 0..2500u64 {
            s.serve(SimTime::from_micros(i * 10), 10.0);
        }
        assert_eq!(s.failures(), 1);
        assert!(s.is_down(SimTime::from_millis(500)));
        // After downtime it serves again (backlog flushed).
        assert!(matches!(s.serve(SimTime::from_millis(1200), 10.0), ServeOutcome::Done(_)));
        assert!(!s.is_down(SimTime::from_millis(1200)));
    }

    #[test]
    fn hang_never_recovers() {
        let mut s = station(FailureBehavior::Hang);
        s.serve(SimTime::ZERO, 1e9);
        for i in 0..2500u64 {
            s.serve(SimTime::from_micros(i * 10), 10.0);
        }
        assert_eq!(s.failures(), 1);
        assert!(matches!(s.serve(SimTime::from_secs(3600), 10.0), ServeOutcome::Failed));
        assert!(!FailureBehavior::Hang.recovers());
        assert!(FailureBehavior::RestartService { downtime: SimDuration::ZERO }.reports_failure());
    }

    fn pkt(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16) -> Packet {
        Packet::tcp(
            Ipv4Header::simple(src, dst),
            TcpHeader {
                src_port: sport,
                dst_port: dport,
                seq: 0,
                ack: 0,
                flags: TcpFlags::SYN,
                window: 0,
            },
            Vec::new(),
        )
    }

    #[test]
    fn session_hash_routes_both_directions_together() {
        let mut lb =
            LoadBalancer::new(station(FailureBehavior::Hang), BalanceStrategy::SessionHash, 4);
        let a = pkt(Ipv4Addr::new(1, 1, 1, 1), 1000, Ipv4Addr::new(2, 2, 2, 2), 80);
        let b = pkt(Ipv4Addr::new(2, 2, 2, 2), 80, Ipv4Addr::new(1, 1, 1, 1), 1000);
        assert_eq!(lb.route(&a), lb.route(&b));
    }

    #[test]
    fn round_robin_breaks_affinity_but_spreads() {
        let mut lb =
            LoadBalancer::new(station(FailureBehavior::Hang), BalanceStrategy::RoundRobin, 4);
        let a = pkt(Ipv4Addr::new(1, 1, 1, 1), 1000, Ipv4Addr::new(2, 2, 2, 2), 80);
        let routes: Vec<usize> = (0..8).map(|_| lb.route(&a)).collect();
        assert_eq!(routes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn session_hash_spreads_distinct_flows() {
        let mut lb =
            LoadBalancer::new(station(FailureBehavior::Hang), BalanceStrategy::SessionHash, 4);
        let mut used = std::collections::HashSet::new();
        for i in 0..64u16 {
            let p = pkt(
                Ipv4Addr::new(1, 1, 1, (i % 250) as u8 + 1),
                1000 + i,
                Ipv4Addr::new(2, 2, 2, 2),
                80,
            );
            used.insert(lb.route(&p));
        }
        assert_eq!(used.len(), 4, "64 flows should hit all 4 sensors");
    }

    fn alert(severity: Severity) -> Alert {
        Alert {
            raised_at: SimTime::from_millis(10),
            observed_at: SimTime::from_millis(9),
            trigger: 0,
            flow: FlowKey {
                protocol: IpProtocol::Tcp,
                src: Ipv4Addr::new(66, 1, 1, 1),
                src_port: 999,
                dst: Ipv4Addr::new(10, 0, 0, 1),
                dst_port: 80,
            },
            class_guess: idse_net::trace::AttackClass::PayloadExploit,
            severity,
            source: DetectionSource::Signature,
            sensor: 0,
            detector: "t".into(),
        }
    }

    #[test]
    fn monitor_stamps_visibility_time() {
        let mut m = Monitor::new(
            ServiceStation::new(
                "mon",
                10_000.0,
                SimDuration::from_secs(1),
                0.9,
                FailureBehavior::Hang,
            ),
            SimDuration::from_millis(50),
        );
        let t = m.present(SimTime::from_millis(10), alert(Severity::High)).unwrap();
        assert!(t >= SimTime::from_millis(60));
        assert_eq!(m.alerts().len(), 1);
        assert_eq!(m.alerts()[0].raised_at, t);
    }

    #[test]
    fn console_blocks_on_high_severity_only() {
        let mut c = ManagementConsole::new(
            ResponseCapabilities { firewall: true, router: false, snmp: true },
            SimDuration::from_millis(100),
        );
        c.react(&alert(Severity::Info));
        assert!(c.blocked_sources().is_empty());
        c.react(&alert(Severity::Critical));
        assert_eq!(c.blocked_sources().len(), 1);
        assert_eq!(c.snmp_traps(), 1);
        let src = Ipv4Addr::new(66, 1, 1, 1);
        assert!(!c.is_blocked(SimTime::from_millis(50), src), "before install");
        assert!(c.is_blocked(SimTime::from_millis(200), src), "after install");
    }

    #[test]
    fn console_without_firewall_never_blocks() {
        let mut c = ManagementConsole::new(ResponseCapabilities::default(), SimDuration::ZERO);
        c.react(&alert(Severity::Critical));
        assert!(c.blocked_sources().is_empty());
        assert_eq!(c.snmp_traps(), 0);
    }
}
