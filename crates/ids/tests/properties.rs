//! Property-based tests for the IDS engines and components.

use idse_ids::aho::{contains, AhoCorasick};
use idse_ids::components::{FailureBehavior, ServeOutcome, ServiceStation};
use idse_ids::engine::Sensitivity;
use idse_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 1..8), 1..12)
}

proptest! {
    /// Aho–Corasick agrees with the naive scanner on which patterns occur.
    #[test]
    fn aho_corasick_equals_naive(
        patterns in arb_patterns(),
        haystack in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let ac = AhoCorasick::new(&patterns);
        let got = ac.matching_patterns(&haystack);
        let want: Vec<u32> = patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| contains(&haystack, p))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Every reported match end position actually ends an occurrence.
    #[test]
    fn aho_corasick_match_positions_are_real(
        patterns in arb_patterns(),
        haystack in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let ac = AhoCorasick::new(&patterns);
        for m in ac.find_all(&haystack) {
            let pat = &patterns[m.pattern as usize];
            prop_assert!(m.end >= pat.len());
            prop_assert_eq!(&haystack[m.end - pat.len()..m.end], pat.as_slice());
        }
    }

    /// Matches found in a prefix are found in the whole (monotonicity).
    #[test]
    fn aho_corasick_prefix_monotone(
        patterns in arb_patterns(),
        haystack in prop::collection::vec(any::<u8>(), 1..200),
        cut in any::<prop::sample::Index>(),
    ) {
        let ac = AhoCorasick::new(&patterns);
        let cut = cut.index(haystack.len());
        let prefix_matches = ac.find_all(&haystack[..cut]);
        let whole_matches = ac.find_all(&haystack);
        for m in prefix_matches {
            prop_assert!(whole_matches.contains(&m));
        }
    }

    /// Sensitivity thresholds interpolate monotonically between the lax
    /// and strict anchors.
    #[test]
    fn sensitivity_threshold_monotone(lax in 1.0f64..1000.0, strict in 0.0f64..1.0, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = Sensitivity::new(lo).threshold(lax, strict);
        let t_hi = Sensitivity::new(hi).threshold(lax, strict);
        prop_assert!(t_hi <= t_lo, "higher sensitivity must not raise a count threshold");
        prop_assert!(t_lo <= lax && t_hi >= strict);
    }

    /// Service stations conserve work: offered = processed + dropped, and
    /// completion times are monotone for monotone arrivals.
    #[test]
    fn service_station_conserves_and_orders(
        jobs in prop::collection::vec((0u64..1_000_000, 1.0f64..500.0), 1..100),
    ) {
        let mut station = ServiceStation::new(
            "prop",
            10_000.0,
            SimDuration::from_millis(50),
            0.9,
            FailureBehavior::RestartService { downtime: SimDuration::from_secs(1) },
        );
        let mut arrivals: Vec<(u64, f64)> = jobs;
        arrivals.sort_by_key(|&(t, _)| t);
        let mut last_done = SimTime::ZERO;
        for &(t, ops) in &arrivals {
            match station.serve(SimTime::from_micros(t), ops) {
                ServeOutcome::Done(done) => {
                    prop_assert!(done >= last_done, "FIFO completions must be monotone");
                    last_done = done;
                }
                ServeOutcome::Dropped | ServeOutcome::Failed => {}
            }
        }
        let c = station.counters();
        prop_assert_eq!(c.offered, arrivals.len() as u64);
        prop_assert_eq!(c.processed + c.dropped, c.offered);
    }
}
