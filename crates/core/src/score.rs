//! Discrete scoring and flexible weighting (paper §3.1, Figure 5).
//!
//! "We chose to use scores with the discrete values zero through four,
//! with higher scores interpreted as more favorable ratings." Weights are
//! "any consistent numeric system … discrete or continuous … Negative
//! weights may also be used to help distinguish where a feature is
//! actually counterproductive." The weighted overall score is
//! `S = Σ_j Σ_i (U_ij · W_ij)` over classes `j` and metrics `i`.

use crate::catalog;
use crate::metric::{MetricClass, MetricId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A discrete metric score in `0..=4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DiscreteScore(u8);

impl DiscreteScore {
    /// The minimum (least favorable) score.
    pub const MIN: DiscreteScore = DiscreteScore(0);
    /// The maximum (most favorable) score.
    pub const MAX: DiscreteScore = DiscreteScore(4);

    /// Construct; panics outside `0..=4` (a scoring bug, not user input).
    pub fn new(v: u8) -> Self {
        assert!(v <= 4, "discrete scores are 0..=4, got {v}");
        DiscreteScore(v)
    }

    /// Clamp a continuous rubric output onto the discrete scale.
    pub fn from_f64(v: f64) -> Self {
        DiscreteScore(v.clamp(0.0, 4.0).round() as u8)
    }

    /// Raw value.
    pub fn value(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for DiscreteScore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A complete scorecard: one evaluated system's score for every metric.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Scorecard {
    /// System under evaluation.
    pub system: String,
    scores: BTreeMap<MetricId, DiscreteScore>,
    /// Free-form observation notes per metric (how the score was obtained
    /// — the reproducibility requirement).
    notes: BTreeMap<MetricId, String>,
}

impl Scorecard {
    /// An empty scorecard for `system`.
    pub fn new(system: impl Into<String>) -> Self {
        Self { system: system.into(), scores: BTreeMap::new(), notes: BTreeMap::new() }
    }

    /// Record a score.
    pub fn set(&mut self, id: MetricId, score: DiscreteScore) {
        self.scores.insert(id, score);
    }

    /// Record a score with an observation note.
    pub fn set_with_note(&mut self, id: MetricId, score: DiscreteScore, note: impl Into<String>) {
        self.scores.insert(id, score);
        self.notes.insert(id, note.into());
    }

    /// Look up a score.
    pub fn get(&self, id: MetricId) -> Option<DiscreteScore> {
        self.scores.get(&id).copied()
    }

    /// The observation note for a metric.
    pub fn note(&self, id: MetricId) -> Option<&str> {
        self.notes.get(&id).map(String::as_str)
    }

    /// Number of scored metrics.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether nothing is scored.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Metrics from the catalog that have not been scored yet.
    pub fn unscored(&self) -> Vec<MetricId> {
        catalog::catalog()
            .into_iter()
            .map(|m| m.id)
            .filter(|id| !self.scores.contains_key(id))
            .collect()
    }

    /// Iterate `(metric, score)` in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (MetricId, DiscreteScore)> + '_ {
        self.scores.iter().map(|(&k, &v)| (k, v))
    }

    /// Unweighted mean score per class (quick-look summary).
    pub fn class_mean(&self, class: MetricClass) -> f64 {
        let ms = catalog::metrics_of_class(class);
        let scored: Vec<f64> =
            ms.iter().filter_map(|m| self.get(m.id)).map(|s| f64::from(s.value())).collect();
        if scored.is_empty() {
            0.0
        } else {
            scored.iter().sum::<f64>() / scored.len() as f64
        }
    }
}

/// A weight assignment over metrics: the procurer's standard.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WeightSet {
    /// Name of the weighting (e.g. the requirement set it derives from).
    pub name: String,
    weights: BTreeMap<MetricId, f64>,
}

impl WeightSet {
    /// An empty weight set (unlisted metrics weigh 0).
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), weights: BTreeMap::new() }
    }

    /// Uniform weight 1 over the whole catalog — the "no preference"
    /// standard.
    pub fn uniform() -> Self {
        let mut w = Self::new("uniform");
        for m in catalog::catalog() {
            w.set(m.id, 1.0);
        }
        w
    }

    /// Set one metric's weight (replacing any previous value).
    pub fn set(&mut self, id: MetricId, weight: f64) {
        self.weights.insert(id, weight);
    }

    /// Add to one metric's weight.
    pub fn add(&mut self, id: MetricId, weight: f64) {
        *self.weights.entry(id).or_insert(0.0) += weight;
    }

    /// A metric's weight (0 when unlisted).
    pub fn get(&self, id: MetricId) -> f64 {
        self.weights.get(&id).copied().unwrap_or(0.0)
    }

    /// Iterate `(metric, weight)` for nonzero weights.
    pub fn iter(&self) -> impl Iterator<Item = (MetricId, f64)> + '_ {
        // idse-lint: allow(float-eq-comparison, reason = "exact-zero sentinel: unset weights are stored as literal 0.0, never computed, so exact comparison is the correct membership test")
        self.weights.iter().filter(|(_, &w)| w != 0.0).map(|(&k, &v)| (k, v))
    }

    /// The Figure 5 class score: `S_j = Σ_i (U_ij · W_ij)` for one class.
    /// Unscored metrics contribute nothing.
    pub fn class_score(&self, card: &Scorecard, class: MetricClass) -> f64 {
        catalog::metrics_of_class(class)
            .iter()
            .filter_map(|m| card.get(m.id).map(|s| f64::from(s.value()) * self.get(m.id)))
            .sum()
    }

    /// The Figure 5 overall score: `S = Σ_j S_j`.
    pub fn weighted_total(&self, card: &Scorecard) -> f64 {
        MetricClass::ALL.iter().map(|&c| self.class_score(card, c)).sum()
    }

    /// The maximum achievable total under this weighting (every
    /// positive-weight metric at 4, every negative-weight metric at 0) —
    /// the "standard" a candidate is compared against.
    pub fn ideal_total(&self) -> f64 {
        self.iter().map(|(_, w)| if w > 0.0 { 4.0 * w } else { 0.0 }).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_score_bounds() {
        assert_eq!(DiscreteScore::new(4).value(), 4);
        assert_eq!(DiscreteScore::from_f64(2.4).value(), 2);
        assert_eq!(DiscreteScore::from_f64(2.6).value(), 3);
        assert_eq!(DiscreteScore::from_f64(-3.0), DiscreteScore::MIN);
        assert_eq!(DiscreteScore::from_f64(99.0), DiscreteScore::MAX);
    }

    #[test]
    #[should_panic(expected = "0..=4")]
    fn out_of_range_panics() {
        let _ = DiscreteScore::new(5);
    }

    #[test]
    fn figure5_formula() {
        // A tiny hand-computable case.
        let mut card = Scorecard::new("X");
        card.set(MetricId::DistributedManagement, DiscreteScore::new(3)); // class 1
        card.set(MetricId::SystemThroughput, DiscreteScore::new(2)); // class 2
        card.set(MetricId::Timeliness, DiscreteScore::new(4)); // class 3
        let mut w = WeightSet::new("t");
        w.set(MetricId::DistributedManagement, 2.0);
        w.set(MetricId::SystemThroughput, 1.5);
        w.set(MetricId::Timeliness, 3.0);
        assert_eq!(w.class_score(&card, MetricClass::Logistical), 6.0);
        assert_eq!(w.class_score(&card, MetricClass::Architectural), 3.0);
        assert_eq!(w.class_score(&card, MetricClass::Performance), 12.0);
        assert_eq!(w.weighted_total(&card), 21.0);
        assert_eq!(w.ideal_total(), 4.0 * (2.0 + 1.5 + 3.0));
    }

    #[test]
    fn negative_weights_penalize() {
        let mut card_a = Scorecard::new("A");
        card_a.set(MetricId::OutsourcedSolution, DiscreteScore::new(0));
        let mut card_b = Scorecard::new("B");
        card_b.set(MetricId::OutsourcedSolution, DiscreteScore::new(4));
        let mut w = WeightSet::new("anti-outsourcing");
        // Here high "degree outsourced" is counterproductive for the
        // real-time procurer: weight it negatively.
        w.set(MetricId::OutsourcedSolution, -2.0);
        assert!(w.weighted_total(&card_a) > w.weighted_total(&card_b));
        assert_eq!(w.ideal_total(), 0.0);
    }

    #[test]
    fn unscored_metrics_are_reported() {
        let mut card = Scorecard::new("X");
        assert_eq!(card.unscored().len(), 56);
        card.set(MetricId::Timeliness, DiscreteScore::new(1));
        assert_eq!(card.unscored().len(), 55);
        assert!(!card.unscored().contains(&MetricId::Timeliness));
    }

    #[test]
    fn class_mean_summarizes() {
        let mut card = Scorecard::new("X");
        card.set(MetricId::Timeliness, DiscreteScore::new(4));
        card.set(MetricId::NetworkLethalDose, DiscreteScore::new(2));
        assert_eq!(card.class_mean(MetricClass::Performance), 3.0);
        assert_eq!(card.class_mean(MetricClass::Logistical), 0.0);
    }

    #[test]
    fn notes_travel_with_scores() {
        let mut card = Scorecard::new("X");
        card.set_with_note(MetricId::SystemThroughput, DiscreteScore::new(3), "measured 41k pps");
        assert_eq!(card.note(MetricId::SystemThroughput), Some("measured 41k pps"));
        let json = serde_json::to_string(&card).unwrap();
        let back: Scorecard = serde_json::from_str(&json).unwrap();
        assert_eq!(back.note(MetricId::SystemThroughput), Some("measured 41k pps"));
    }

    #[test]
    fn uniform_weighting_covers_catalog() {
        let w = WeightSet::uniform();
        assert_eq!(w.iter().count(), 56);
        assert_eq!(w.ideal_total(), 4.0 * 56.0);
    }
}
