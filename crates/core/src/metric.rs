//! Metric identities, classes, and definitions.

use serde::{Deserialize, Serialize};

/// The paper's three metric classes (§3.1). The numeric values are the
/// class indices `j` in the Figure 5 formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricClass {
    /// Class 1: expense, maintainability, manageability.
    Logistical,
    /// Class 2: fit between intended and deployment architecture.
    Architectural,
    /// Class 3: ability to do the job within performance constraints.
    Performance,
}

impl MetricClass {
    /// All classes in index order.
    pub const ALL: [MetricClass; 3] =
        [MetricClass::Logistical, MetricClass::Architectural, MetricClass::Performance];

    /// The paper's class index (logistical = 1, …).
    pub fn index(self) -> usize {
        match self {
            MetricClass::Logistical => 1,
            MetricClass::Architectural => 2,
            MetricClass::Performance => 3,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MetricClass::Logistical => "Logistical",
            MetricClass::Architectural => "Architectural",
            MetricClass::Performance => "Performance",
        }
    }
}

/// How a metric value is observed (§3.1): laboratory analysis or
/// open-source material.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObservationMethod {
    /// "Direct observation in a laboratory setting or source code
    /// analysis."
    Analysis,
    /// "Specifications, white papers or reviews provided by the vendor or
    /// users."
    OpenSource,
}

/// Every metric in the paper — the selected metrics of Tables 1–3 plus
/// the metrics the paper defines but does not show.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // names are self-describing; prose lives in the catalog
pub enum MetricId {
    // --- Logistical, shown in Table 1 ---
    DistributedManagement,
    EaseOfConfiguration,
    EaseOfPolicyMaintenance,
    LicenseManagement,
    OutsourcedSolution,
    PlatformRequirements,
    // --- Logistical, defined but not shown ---
    QualityOfDocumentation,
    EaseOfAttackFilterGeneration,
    EvaluationCopyAvailability,
    LevelOfAdministration,
    ProductLifetime,
    QualityOfTechnicalSupport,
    ThreeYearCostOfOwnership,
    TrainingSupport,
    // --- Architectural, shown in Table 2 ---
    AdjustableSensitivity,
    DataPoolSelectability,
    DataStorage,
    HostBased,
    MultiSensorSupport,
    NetworkBased,
    ScalableLoadBalancing,
    SystemThroughput,
    // --- Architectural, defined but not shown ---
    AnomalyBased,
    AutonomousLearning,
    HostOsSecurity,
    Interoperability,
    PackageContents,
    ProcessSecurity,
    SignatureBased,
    Visibility,
    // --- Architectural, survivability family (measured under injected
    // faults; extends the paper's Table 2 architecture-fit class with the
    // distributed-real-time survivability the Figure 2 cardinalities
    // promise) ---
    DetectionRetentionUnderFailure,
    AlertLossRatio,
    MeanTimeToReroute,
    RecoveryCompleteness,
    // --- Performance, shown in Table 3 ---
    AnalysisOfCompromise,
    ErrorReportingAndRecovery,
    FirewallInteraction,
    InducedTrafficLatency,
    MaximalThroughputZeroLoss,
    NetworkLethalDose,
    ObservedFalseNegativeRatio,
    ObservedFalsePositiveRatio,
    OperationalPerformanceImpact,
    RouterInteraction,
    SnmpInteraction,
    Timeliness,
    // --- Performance, defined but not shown ---
    AnalysisOfIntruderIntent,
    ClarityOfReports,
    EffectivenessOfGeneratedFilters,
    EvidenceCollection,
    InformationSharing,
    NotificationUserAlerts,
    ProgramInteraction,
    SessionRecordingAndPlayback,
    ThreatCorrelation,
    TrendAnalysis,
}

/// Scoring anchors: the paper's definition style gives examples of low
/// (0), average (2) and high (4) scores for each metric.
#[derive(Debug, Clone, Serialize)]
pub struct Anchors {
    /// What a score of 0 looks like.
    pub low: &'static str,
    /// What a score of 2 looks like.
    pub average: &'static str,
    /// What a score of 4 looks like.
    pub high: &'static str,
}

/// A complete metric definition. (Serialize-only: the catalog is static
/// data; scorecards, not definitions, round-trip through serde.)
#[derive(Debug, Clone, Serialize)]
pub struct MetricDef {
    /// Identity.
    pub id: MetricId,
    /// Human-readable name as printed in the paper's tables.
    pub name: &'static str,
    /// Class (1–3).
    pub class: MetricClass,
    /// The paper's one-line definition (verbatim where the paper gives
    /// one).
    pub description: &'static str,
    /// Observation methods applicable to this metric.
    pub methods: &'static [ObservationMethod],
    /// Whether this metric appears in the paper's selected-metric tables
    /// (vs being listed by name only).
    pub in_paper_table: bool,
    /// Scoring anchors.
    pub anchors: Anchors,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_match_paper() {
        assert_eq!(MetricClass::Logistical.index(), 1);
        assert_eq!(MetricClass::Architectural.index(), 2);
        assert_eq!(MetricClass::Performance.index(), 3);
    }

    #[test]
    fn metric_ids_are_ordered_and_hashable() {
        let mut set = std::collections::BTreeSet::new();
        set.insert(MetricId::Timeliness);
        set.insert(MetricId::DistributedManagement);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let j = serde_json::to_string(&MetricId::NetworkLethalDose).unwrap();
        let back: MetricId = serde_json::from_str(&j).unwrap();
        assert_eq!(back, MetricId::NetworkLethalDose);
    }
}
