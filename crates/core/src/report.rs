//! Report rendering: the scorecard tables as text.
//!
//! The benches print these; EXPERIMENTS.md embeds them. Formats follow the
//! paper's presentation: metrics grouped by class, one column per
//! evaluated system, weighted class subtotals and the Figure 5 total.

use crate::catalog::{self};
use crate::metric::{MetricClass, MetricDef};
use crate::score::{Scorecard, WeightSet};

/// Render one class's metric definitions in the paper's table style
/// (name + description), e.g. to regenerate Tables 1–3.
pub fn render_metric_table(class: MetricClass, only_paper_selected: bool) -> String {
    let mut out = String::new();
    let metrics: Vec<MetricDef> = catalog::metrics_of_class(class)
        .into_iter()
        .filter(|m| !only_paper_selected || m.in_paper_table)
        .collect();
    let name_w = metrics.iter().map(|m| m.name.len()).max().unwrap_or(10).max(6);
    out.push_str(&format!("{} Metrics (class {})\n", class.name(), class.index()));
    out.push_str(&format!("{}\n", "=".repeat(name_w + 64)));
    for m in &metrics {
        let mut desc = m.description.to_string();
        let mut first = true;
        while !desc.is_empty() {
            let take = desc
                .char_indices()
                .take_while(|&(i, _)| i < 60)
                .last()
                .map(|(i, c)| i + c.len_utf8())
                .unwrap_or(desc.len());
            // Break at a word boundary where possible.
            let cut = if take < desc.len() {
                desc[..take].rfind(' ').map(|i| i + 1).unwrap_or(take)
            } else {
                take
            };
            let (line, rest) = desc.split_at(cut);
            if first {
                out.push_str(&format!("{:name_w$}  {}\n", m.name, line.trim_end()));
                first = false;
            } else {
                out.push_str(&format!("{:name_w$}  {}\n", "", line.trim_end()));
            }
            desc = rest.to_string();
        }
    }
    out
}

/// Render a side-by-side scorecard comparison under a weighting.
pub fn render_comparison(cards: &[&Scorecard], weights: &WeightSet) -> String {
    let mut out = String::new();
    let name_w = catalog::catalog().iter().map(|m| m.name.len()).max().unwrap_or(10);
    let col_w = cards.iter().map(|c| c.system.len()).max().unwrap_or(8).max(8);

    out.push_str(&format!("Scorecard comparison under weighting {:?}\n", weights.name));
    out.push_str(&format!("{:name_w$}  {:>6}", "Metric", "Weight"));
    for c in cards {
        out.push_str(&format!("  {:>col_w$}", c.system));
    }
    out.push('\n');
    out.push_str(&format!("{}\n", "-".repeat(name_w + 8 + (col_w + 2) * cards.len())));

    for class in MetricClass::ALL {
        out.push_str(&format!("--- {} (class {}) ---\n", class.name(), class.index()));
        for m in catalog::metrics_of_class(class) {
            let w = weights.get(m.id);
            // idse-lint: allow(float-eq-comparison, reason = "exact-zero sentinel: Weights::get returns literal 0.0 for unset metrics; this hides only never-weighted, never-scored rows")
            if w == 0.0 && cards.iter().all(|c| c.get(m.id).is_none()) {
                continue;
            }
            out.push_str(&format!("{:name_w$}  {:>6.1}", m.name, w));
            for c in cards {
                match c.get(m.id) {
                    Some(s) => out.push_str(&format!("  {:>col_w$}", s.value())),
                    None => out.push_str(&format!("  {:>col_w$}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{:name_w$}  {:>6}",
            format!("S_{} (class subtotal)", class.index()),
            ""
        ));
        for c in cards {
            out.push_str(&format!("  {:>col_w$.1}", weights.class_score(c, class)));
        }
        out.push('\n');
    }

    out.push_str(&format!("{:name_w$}  {:>6}", "S (weighted total)", ""));
    for c in cards {
        out.push_str(&format!("  {:>col_w$.1}", weights.weighted_total(c)));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:name_w$}  {:>6}  (ideal standard: {:.1})\n",
        "",
        "",
        weights.ideal_total()
    ));
    out
}

/// Render a ranked summary: each system's total and percentage of the
/// ideal standard. The paper's methodology compares against the standard,
/// not systems against each other — the percentage column is the verdict.
pub fn render_ranking(cards: &[&Scorecard], weights: &WeightSet) -> String {
    let ideal = weights.ideal_total();
    let mut rows: Vec<(String, f64)> =
        cards.iter().map(|c| (c.system.clone(), weights.weighted_total(c))).collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("totals are finite"));
    let mut out = String::new();
    out.push_str(&format!("Ranking under {:?} (standard = {ideal:.1})\n", weights.name));
    for (i, (name, total)) in rows.iter().enumerate() {
        let pct = if ideal > 0.0 { 100.0 * total / ideal } else { 0.0 };
        out.push_str(&format!(
            "{}. {:24} {:>9.1}  ({pct:>5.1}% of standard)\n",
            i + 1,
            name,
            total
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::MetricId;
    use crate::score::DiscreteScore;

    fn sample_card(name: &str, score: u8) -> Scorecard {
        let mut c = Scorecard::new(name);
        c.set(MetricId::Timeliness, DiscreteScore::new(score));
        c.set(MetricId::SystemThroughput, DiscreteScore::new(4 - score));
        c
    }

    #[test]
    fn metric_table_contains_paper_rows() {
        let t = render_metric_table(MetricClass::Logistical, true);
        assert!(t.contains("Distributed Management"));
        assert!(t.contains("Outsourced Solution"));
        assert!(!t.contains("Quality of Documentation"), "not in Table 1");
        let full = render_metric_table(MetricClass::Logistical, false);
        assert!(full.contains("Quality of Documentation"));
    }

    #[test]
    fn comparison_renders_scores_and_totals() {
        let a = sample_card("A", 4);
        let b = sample_card("B", 1);
        let mut w = WeightSet::new("t");
        w.set(MetricId::Timeliness, 2.0);
        w.set(MetricId::SystemThroughput, 1.0);
        let r = render_comparison(&[&a, &b], &w);
        assert!(r.contains("Timeliness"));
        assert!(r.contains("S (weighted total)"));
        // A: 4*2 + 0*1 = 8; B: 1*2 + 3*1 = 5.
        assert!(r.contains("8.0"));
        assert!(r.contains("5.0"));
    }

    #[test]
    fn ranking_orders_by_total() {
        let a = sample_card("Alpha", 4);
        let b = sample_card("Beta", 0);
        let mut w = WeightSet::new("t");
        w.set(MetricId::Timeliness, 1.0);
        let r = render_ranking(&[&b, &a], &w);
        let alpha_pos = r.find("Alpha").unwrap();
        let beta_pos = r.find("Beta").unwrap();
        assert!(alpha_pos < beta_pos, "higher total ranks first:\n{r}");
        assert!(r.contains("% of standard"));
    }

    #[test]
    fn long_descriptions_wrap() {
        let t = render_metric_table(MetricClass::Performance, true);
        // The zero-loss metric's description is long; it must wrap, so the
        // full text appears across lines without any line being huge.
        for line in t.lines() {
            assert!(line.len() < 140, "line too long: {line}");
        }
        assert!(t.contains("Maximal Throughput with Zero Loss"));
    }
}
